//! Criterion micro-benchmark: single-layer core decomposition
//! (Batagelj–Zaversnik peeling) on synthetic layers of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlgraph::generators::{chung_lu_layers, ChungLuConfig};

fn bench_core_numbers(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_numbers");
    for &n in &[1_000usize, 5_000, 20_000] {
        let g = chung_lu_layers(&ChungLuConfig {
            num_vertices: n,
            num_layers: 1,
            avg_degree: 8.0,
            exponent: 2.3,
            layer_jitter: 0.1,
            seed: 7,
        })
        .unwrap();
        let layer = g.layer(0).clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &layer, |b, layer| {
            b.iter(|| coreness::core_numbers(std::hint::black_box(layer)));
        });
    }
    group.finish();
}

fn bench_d_core(c: &mut Criterion) {
    let g = chung_lu_layers(&ChungLuConfig {
        num_vertices: 10_000,
        num_layers: 1,
        avg_degree: 8.0,
        exponent: 2.3,
        layer_jitter: 0.1,
        seed: 7,
    })
    .unwrap();
    let layer = g.layer(0).clone();
    let mut group = c.benchmark_group("d_core");
    for d in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| coreness::d_core(std::hint::black_box(&layer), d));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_core_numbers, bench_d_core);
criterion_main!(benches);
