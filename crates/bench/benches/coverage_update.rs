//! Criterion micro-benchmark: the `Update` procedure maintaining the
//! temporary top-k diversified result set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dccs::{CoherentCore, TopKDiversified};
use mlgraph::VertexSet;
use rand::{Rng, SeedableRng};

fn random_cores(n: usize, count: usize, core_size: usize, seed: u64) -> Vec<CoherentCore> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let vertices: Vec<u32> = (0..core_size).map(|_| rng.gen_range(0..n as u32)).collect();
            CoherentCore::new(vec![i % 8], VertexSet::from_iter(n, vertices))
        })
        .collect()
}

fn bench_update_stream(c: &mut Criterion) {
    let n = 50_000;
    let mut group = c.benchmark_group("coverage_update_stream");
    for &k in &[5usize, 10, 25] {
        let cores = random_cores(n, 500, 400, 42);
        group.bench_with_input(BenchmarkId::from_parameter(k), &cores, |b, cores| {
            b.iter(|| {
                let mut topk = TopKDiversified::new(n, k);
                for core in cores {
                    topk.try_update(core.clone());
                }
                std::hint::black_box(topk.cover_size())
            });
        });
    }
    group.finish();
}

fn bench_eq1_check(c: &mut Criterion) {
    let n = 50_000;
    let mut topk = TopKDiversified::new(n, 10);
    for core in random_cores(n, 10, 800, 7) {
        topk.try_update(core);
    }
    let probe = VertexSet::from_iter(n, (0..600u32).map(|x| x * 37 % n as u32));
    c.bench_function("coverage_eq1_check", |b| {
        b.iter(|| topk.satisfies_eq1(std::hint::black_box(&probe)));
    });
}

criterion_group!(benches, bench_update_stream, bench_eq1_check);
criterion_main!(benches);
