//! Criterion micro-benchmark: the multi-layer `dCC` procedure (Appendix B)
//! for growing layer-subset sizes, plus the candidate restriction of Lemma 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::{generate, DatasetId, Scale};
use mlgraph::MultiLayerGraph;

fn wiki_like() -> MultiLayerGraph {
    generate(DatasetId::Wiki, Scale::Tiny).graph
}

fn bench_dcc_by_layer_count(c: &mut Criterion) {
    let g = wiki_like();
    let all = g.full_vertex_set();
    let mut group = c.benchmark_group("dcc_procedure");
    for s in [1usize, 2, 4, 8] {
        let layers: Vec<usize> = (0..s).collect();
        group.bench_with_input(BenchmarkId::from_parameter(s), &layers, |b, layers| {
            b.iter(|| coreness::d_coherent_core(&g, std::hint::black_box(layers), 3, &all));
        });
    }
    group.finish();
}

fn bench_dcc_with_and_without_lemma1(c: &mut Criterion) {
    let g = wiki_like();
    let all = g.full_vertex_set();
    let layers = vec![0usize, 1, 2];
    let mut restricted = coreness::d_core(g.layer(0), 3);
    restricted.intersect_with(&coreness::d_core(g.layer(1), 3));
    restricted.intersect_with(&coreness::d_core(g.layer(2), 3));

    let mut group = c.benchmark_group("dcc_lemma1_restriction");
    group.bench_function("full_universe", |b| {
        b.iter(|| coreness::d_coherent_core(&g, &layers, 3, std::hint::black_box(&all)));
    });
    group.bench_function("core_intersection", |b| {
        b.iter(|| coreness::d_coherent_core(&g, &layers, 3, std::hint::black_box(&restricted)));
    });
    group.finish();
}

/// Engine vs. naive: the workspace-backed peel (scratch reused across calls)
/// against the pre-refactor per-call-allocating reference implementation.
fn bench_dcc_engine_vs_naive(c: &mut Criterion) {
    let g = wiki_like();
    let all = g.full_vertex_set();
    let mut group = c.benchmark_group("dcc_engine_vs_naive");
    for s in [2usize, 4] {
        let layers: Vec<usize> = (0..s).collect();
        group.bench_with_input(BenchmarkId::new("engine", s), &layers, |b, layers| {
            let mut ws = coreness::PeelWorkspace::new();
            let mut out = mlgraph::VertexSet::new(g.num_vertices());
            b.iter(|| {
                coreness::d_coherent_core_in(
                    &mut ws,
                    &g,
                    std::hint::black_box(layers),
                    3,
                    &all,
                    &mut out,
                );
                out.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", s), &layers, |b, layers| {
            b.iter(|| coreness::d_coherent_core_naive(&g, std::hint::black_box(layers), 3, &all));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dcc_by_layer_count,
    bench_dcc_with_and_without_lemma1,
    bench_dcc_engine_vs_naive
);
criterion_main!(benches);
