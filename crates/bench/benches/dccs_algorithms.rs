//! Criterion benchmark: the three DCCS algorithms end to end on a tiny
//! dataset analogue, for a small and a large support threshold, plus the
//! parallel-greedy extension.

use criterion::{criterion_group, criterion_main, Criterion};
use datasets::{generate, DatasetId, Scale};
use dccs::{bottom_up_dccs, greedy_dccs, parallel_greedy_dccs, top_down_dccs, DccsParams};

fn bench_small_s(c: &mut Criterion) {
    let ds = generate(DatasetId::German, Scale::Tiny);
    let params = DccsParams::new(3, 2, 10);
    let mut group = c.benchmark_group("dccs_small_s");
    group.sample_size(10);
    group.bench_function("GD-DCCS", |b| b.iter(|| greedy_dccs(&ds.graph, &params)));
    group.bench_function("BU-DCCS", |b| b.iter(|| bottom_up_dccs(&ds.graph, &params)));
    group.finish();
}

fn bench_large_s(c: &mut Criterion) {
    let ds = generate(DatasetId::German, Scale::Tiny);
    let l = ds.graph.num_layers();
    let params = DccsParams::new(3, l - 2, 10);
    let mut group = c.benchmark_group("dccs_large_s");
    group.sample_size(10);
    group.bench_function("GD-DCCS", |b| b.iter(|| greedy_dccs(&ds.graph, &params)));
    group.bench_function("TD-DCCS", |b| b.iter(|| top_down_dccs(&ds.graph, &params)));
    group.finish();
}

fn bench_parallel_greedy(c: &mut Criterion) {
    let ds = generate(DatasetId::Wiki, Scale::Tiny);
    let params = DccsParams::new(3, 2, 10);
    let mut group = c.benchmark_group("parallel_greedy");
    group.sample_size(10);
    group.bench_function("1-thread", |b| b.iter(|| parallel_greedy_dccs(&ds.graph, &params, 1)));
    group.bench_function("4-threads", |b| b.iter(|| parallel_greedy_dccs(&ds.graph, &params, 4)));
    group.finish();
}

/// Greedy candidate generation: the subset-lattice engine (prefix-seeded
/// peels on a reused workspace) against the pre-refactor path (per-subset
/// core intersection + from-scratch allocating peel).
fn bench_candidate_generation(c: &mut Criterion) {
    let ds = generate(DatasetId::Wiki, Scale::Tiny);
    let mut group = c.benchmark_group("greedy_candidate_generation");
    group.sample_size(20);
    for s in [2usize, 3] {
        let params = DccsParams::new(3, s, 10);
        let pre = dccs::preprocess::preprocess(&ds.graph, &params, &dccs::DccsOptions::default());
        group.bench_function(&format!("engine/s{s}"), |b| {
            let mut ws = coreness::PeelWorkspace::new();
            b.iter(|| {
                let mut emitted = 0usize;
                dccs::for_each_subset_core(
                    &ds.graph,
                    params.d,
                    params.s,
                    &pre.layer_cores,
                    &mut ws,
                    |_, core| emitted += core.len(),
                );
                emitted
            });
        });
        group.bench_function(&format!("naive/s{s}"), |b| {
            b.iter(|| {
                // The shared frozen oracle (pre-refactor per-subset path).
                dccs::naive_subset_cores(&ds.graph, params.d, params.s, &pre.layer_cores)
                    .iter()
                    .map(|(_, core)| core.len())
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_small_s,
    bench_large_s,
    bench_parallel_greedy,
    bench_candidate_generation
);
criterion_main!(benches);
