//! Records the `dCC` engine-vs-naive baseline and the executor's
//! thread-scaling measurements as `BENCH_dcc.json`.
//!
//! ```text
//! bench_dcc [--scale tiny|small|full|large] [--runs N] [--threads N]
//!           [--large-vertices N] [--out PATH]
//! ```
//!
//! The engine path (subset-lattice candidate generation on a reused
//! `PeelWorkspace`, the three-regime dense/compressed/CSR index cost
//! model) is compared against the frozen pre-refactor path
//! (`dccs::naive_subset_cores`) on the Wiki and German analogues, then
//! each algorithm is run end to end at 1 vs `--threads` executor workers
//! (the `thread_scaling` group, plus the `subtree_scaling` group for
//! BU/TD on deep search trees — skipped with a `skipped_single_core`
//! marker on one-core hosts); per-configuration timings, the chosen
//! index path, and the geometric-mean speedup are printed and written as
//! JSON.
//!
//! `--scale large` keeps the standard comparison groups at `Tiny` (so
//! the recorded `geomean_speedup` stays comparable run over run) and
//! additionally drives the `large_scale` group at `--large-vertices`
//! (default 10^6) Chung–Lu vertices; every other scale still records a
//! scaled-down `large_scale` group so the key is always present. This
//! binary owns a counting global allocator so the tier can report peak
//! allocated bytes next to the OS-level peak RSS.

use datasets::Scale;
use dccs_bench::dcc_baseline::{
    auto_selection_suite, baseline_suite, concurrent_service_suite, incremental_maintenance_suite,
    kernel_dispatch_suite, phase_breakdown_suite, serve_from_index_suite, single_core,
    subtree_scaling_suite, suite_to_json, thread_scaling_suite,
};
use dccs_bench::large_scale::{install_alloc_probe, large_scale_suite, AllocProbe};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counting wrapper over the system allocator: tracks live bytes and
/// their high-water mark so the large-scale tier can record peak
/// allocated bytes. Lives in the binary because the bench library
/// forbids `unsafe` and must not impose the tracking tax on dependents.
struct TrackingAllocator;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

fn track_add(size: usize) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn track_sub(size: usize) {
    LIVE_BYTES.fetch_sub(size, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            track_add(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            track_add(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        track_sub(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            track_sub(layout.size());
            track_add(new_size);
        }
        new_ptr
    }
}

#[global_allocator]
static GLOBAL: TrackingAllocator = TrackingAllocator;

fn reset_alloc_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn alloc_peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

const USAGE: &str = "usage: bench_dcc [--scale tiny|small|full|large] [--runs N] [--threads N] \
                     [--large-vertices N] [--out PATH]";

fn main() {
    install_alloc_probe(AllocProbe { reset_peak: reset_alloc_peak, peak_bytes: alloc_peak_bytes });
    let mut scale = Scale::Tiny;
    let mut runs = 5usize;
    let mut threads = 4usize;
    let mut large_vertices = 1_000_000usize;
    let mut out_path = String::from("BENCH_dcc.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = match Scale::parse(&value) {
                    Some(s) => s,
                    None => {
                        eprintln!("unknown scale `{value}`\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--runs" => {
                let value = args.next().unwrap_or_default();
                runs = match value.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--runs needs a number\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                let value = args.next().unwrap_or_default();
                threads = match value.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--threads needs a number >= 1\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--large-vertices" => {
                let value = args.next().unwrap_or_default();
                large_vertices = match value.parse() {
                    Ok(n) if n >= 64 => n,
                    _ => {
                        eprintln!("--large-vertices needs a number >= 64\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                out_path = args.next().unwrap_or(out_path);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    // `--scale large` pins the standard comparison groups at Tiny so the
    // recorded geomean stays comparable run over run; the large-scale
    // tier is what actually grows. Every other scale still records a
    // scaled-down large_scale group (one tenth of `--large-vertices`) so
    // the JSON key is always present.
    let standard_scale = if scale == Scale::Large { Scale::Tiny } else { scale };
    let tier_vertices =
        if scale == Scale::Large { large_vertices } else { (large_vertices / 10).max(64) };

    let comparisons = baseline_suite(standard_scale, runs);
    for c in &comparisons {
        println!(
            "{:>8} d={} s={} candidates={:>4}  engine {:>10.6}s  naive {:>10.6}s  speedup {:>5.2}x  [{:?}]",
            c.dataset,
            c.d,
            c.s,
            c.candidates,
            c.engine_secs,
            c.naive_secs,
            c.speedup(),
            c.index_path,
        );
    }
    // On a single-core host a 1-vs-N comparison measures only scheduling
    // overhead; record the groups as skipped instead of as ~0.9× noise.
    let skip_scaling = single_core();
    let (scaling, subtree) = if skip_scaling {
        println!("[bench] single core detected: skipping the thread/subtree scaling groups");
        (Vec::new(), Vec::new())
    } else {
        (
            thread_scaling_suite(standard_scale, runs, threads),
            subtree_scaling_suite(standard_scale, runs, threads),
        )
    };
    for t in scaling.iter().chain(&subtree) {
        println!(
            "{:>8} {:<8} d={} s={}  1-thread {:>10.6}s  {}-thread {:>10.6}s  speedup {:>5.2}x",
            t.dataset,
            t.algorithm,
            t.d,
            t.s,
            t.secs_1,
            t.threads,
            t.secs_n,
            t.speedup(),
        );
    }
    let auto = auto_selection_suite(standard_scale, runs);
    for a in &auto {
        let (best, best_secs) = a.best_fixed();
        println!(
            "{:>8} d={} s={} k={}  auto → {:<8} {:>10.6}s  best fixed {:<8} {:>10.6}s  efficiency {:>5.2}",
            a.dataset, a.d, a.s, a.k, a.chosen, a.auto_secs, best, best_secs,
            a.efficiency(),
        );
    }
    let phases = phase_breakdown_suite(standard_scale, runs);
    for p in &phases {
        println!(
            "{:>8} {:<8} d={} s={}  preprocess {:>10.6}s  search {:>10.6}s  select {:>10.6}s{}",
            p.dataset,
            p.algorithm,
            p.d,
            p.s,
            p.preprocess_secs,
            p.search_secs,
            p.select_secs,
            if p.complete { "" } else { "  [INCOMPLETE]" },
        );
    }
    let kernels = kernel_dispatch_suite(runs);
    println!("[bench] dispatched bit kernel: {}", mlgraph::kernels::kernel().kind().name());
    for k in &kernels {
        println!(
            "kernel {:<20} words={:<3} scalar {:>10.6}s  {} {:>10.6}s  speedup {:>5.2}x",
            k.op,
            k.words,
            k.scalar_secs,
            k.kernel,
            k.dispatched_secs,
            k.speedup(),
        );
    }
    let serve = serve_from_index_suite(standard_scale, runs);
    for m in &serve {
        println!(
            "{:>8} d={} s={} k={}  build {:>10.6}s  {:>9} bytes  peel {:>10.6}s  index {:>10.6}s  speedup {:>6.2}x",
            m.dataset,
            m.d,
            m.s,
            m.k,
            m.build_secs,
            m.bytes,
            m.query_peel_secs,
            m.query_index_secs,
            m.speedup(),
        );
    }
    // Like the scaling groups, a 1-vs-N service comparison on one core
    // would only measure contention; record it as skipped instead.
    let concurrent = if skip_scaling {
        println!("[bench] single core detected: skipping the concurrent_service group");
        Vec::new()
    } else {
        concurrent_service_suite(standard_scale, runs, threads)
    };
    for c in &concurrent {
        println!(
            "{:>8} workers={:<2} requests={}  batch {:>10.6}s  {:>8.1} q/s  p50 {:>8.3}ms  p95 {:>8.3}ms  p99 {:>8.3}ms  cache {:>5.1}%",
            c.dataset,
            c.workers,
            c.requests,
            c.secs,
            c.qps(),
            c.p50_ms,
            c.p95_ms,
            c.p99_ms,
            c.cache_hit_rate * 100.0,
        );
    }
    let incremental = incremental_maintenance_suite(standard_scale, runs);
    for m in &incremental {
        println!(
            "{:>14} batch={:<4} x{}  {:>6} edges  incremental {:>10.6}s  recompute {:>10.6}s  {:>10.0} upd/s  speedup {:>6.2}x",
            m.dataset,
            m.batch_size,
            m.batches,
            m.edges,
            m.incremental_secs,
            m.recompute_secs,
            m.updates_per_sec(),
            m.speedup(),
        );
    }
    let warm_queries = runs.clamp(1, 8);
    println!(
        "[bench] large-scale tier: {tier_vertices} Chung-Lu vertices, {warm_queries} warm queries"
    );
    let large = large_scale_suite(tier_vertices, warm_queries);
    for m in &large {
        println!(
            "{:>16} n={} L={} edges={}  d={} s={}  gen {:>8.3}s  preprocess {:>8.3}s  cold {:>8.3}s  {:>7.2} q/s  [{:?}] index {} B  scratch {} B  rss {} B  alloc-peak {} B",
            m.dataset,
            m.vertices,
            m.layers,
            m.edges,
            m.d,
            m.s,
            m.generate_secs,
            m.preprocess_secs,
            m.cold_query_secs,
            m.throughput_qps(),
            m.index_path,
            m.index_bytes,
            m.peel_scratch_bytes,
            m.peak_rss_bytes,
            m.peak_alloc_bytes,
        );
    }
    let json = suite_to_json(
        scale,
        runs,
        &comparisons,
        &scaling,
        &subtree,
        skip_scaling,
        &auto,
        &kernels,
        &phases,
        &serve,
        &concurrent,
        &incremental,
        &large,
    );
    let text = serde_json::to_string_pretty(&json);
    if let Err(err) = std::fs::write(&out_path, text + "\n") {
        eprintln!("failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    println!("[bench] wrote {out_path}");
}
