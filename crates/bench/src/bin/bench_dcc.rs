//! Records the `dCC` engine-vs-naive baseline and the executor's
//! thread-scaling measurements as `BENCH_dcc.json`.
//!
//! ```text
//! bench_dcc [--scale tiny|small|full] [--runs N] [--threads N] [--out PATH]
//! ```
//!
//! The engine path (subset-lattice candidate generation on a reused
//! `PeelWorkspace`, dense-vs-CSR chosen by the cost model) is compared
//! against the frozen pre-refactor path (`dccs::naive_subset_cores`) on the
//! Wiki and German analogues, then each algorithm is run end to end at 1 vs
//! `--threads` executor workers (the `thread_scaling` group, plus the
//! `subtree_scaling` group for BU/TD on deep search trees — skipped with a
//! `skipped_single_core` marker on one-core hosts); per-configuration
//! timings, the chosen index path, and the geometric-mean speedup are
//! printed and written as JSON.

use datasets::Scale;
use dccs_bench::dcc_baseline::{
    auto_selection_suite, baseline_suite, concurrent_service_suite, incremental_maintenance_suite,
    kernel_dispatch_suite, phase_breakdown_suite, serve_from_index_suite, single_core,
    subtree_scaling_suite, suite_to_json, thread_scaling_suite,
};

const USAGE: &str =
    "usage: bench_dcc [--scale tiny|small|full] [--runs N] [--threads N] [--out PATH]";

fn main() {
    let mut scale = Scale::Tiny;
    let mut runs = 5usize;
    let mut threads = 4usize;
    let mut out_path = String::from("BENCH_dcc.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = match Scale::parse(&value) {
                    Some(s) => s,
                    None => {
                        eprintln!("unknown scale `{value}`\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--runs" => {
                let value = args.next().unwrap_or_default();
                runs = match value.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--runs needs a number\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                let value = args.next().unwrap_or_default();
                threads = match value.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--threads needs a number >= 1\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                out_path = args.next().unwrap_or(out_path);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let comparisons = baseline_suite(scale, runs);
    for c in &comparisons {
        println!(
            "{:>8} d={} s={} candidates={:>4}  engine {:>10.6}s  naive {:>10.6}s  speedup {:>5.2}x  [{:?}]",
            c.dataset,
            c.d,
            c.s,
            c.candidates,
            c.engine_secs,
            c.naive_secs,
            c.speedup(),
            c.index_path,
        );
    }
    // On a single-core host a 1-vs-N comparison measures only scheduling
    // overhead; record the groups as skipped instead of as ~0.9× noise.
    let skip_scaling = single_core();
    let (scaling, subtree) = if skip_scaling {
        println!("[bench] single core detected: skipping the thread/subtree scaling groups");
        (Vec::new(), Vec::new())
    } else {
        (thread_scaling_suite(scale, runs, threads), subtree_scaling_suite(scale, runs, threads))
    };
    for t in scaling.iter().chain(&subtree) {
        println!(
            "{:>8} {:<8} d={} s={}  1-thread {:>10.6}s  {}-thread {:>10.6}s  speedup {:>5.2}x",
            t.dataset,
            t.algorithm,
            t.d,
            t.s,
            t.secs_1,
            t.threads,
            t.secs_n,
            t.speedup(),
        );
    }
    let auto = auto_selection_suite(scale, runs);
    for a in &auto {
        let (best, best_secs) = a.best_fixed();
        println!(
            "{:>8} d={} s={} k={}  auto → {:<8} {:>10.6}s  best fixed {:<8} {:>10.6}s  efficiency {:>5.2}",
            a.dataset, a.d, a.s, a.k, a.chosen, a.auto_secs, best, best_secs,
            a.efficiency(),
        );
    }
    let phases = phase_breakdown_suite(scale, runs);
    for p in &phases {
        println!(
            "{:>8} {:<8} d={} s={}  preprocess {:>10.6}s  search {:>10.6}s  select {:>10.6}s{}",
            p.dataset,
            p.algorithm,
            p.d,
            p.s,
            p.preprocess_secs,
            p.search_secs,
            p.select_secs,
            if p.complete { "" } else { "  [INCOMPLETE]" },
        );
    }
    let kernels = kernel_dispatch_suite(runs);
    println!("[bench] dispatched bit kernel: {}", mlgraph::kernels::kernel().kind().name());
    for k in &kernels {
        println!(
            "kernel {:<20} words={:<3} scalar {:>10.6}s  {} {:>10.6}s  speedup {:>5.2}x",
            k.op,
            k.words,
            k.scalar_secs,
            k.kernel,
            k.dispatched_secs,
            k.speedup(),
        );
    }
    let serve = serve_from_index_suite(scale, runs);
    for m in &serve {
        println!(
            "{:>8} d={} s={} k={}  build {:>10.6}s  {:>9} bytes  peel {:>10.6}s  index {:>10.6}s  speedup {:>6.2}x",
            m.dataset,
            m.d,
            m.s,
            m.k,
            m.build_secs,
            m.bytes,
            m.query_peel_secs,
            m.query_index_secs,
            m.speedup(),
        );
    }
    // Like the scaling groups, a 1-vs-N service comparison on one core
    // would only measure contention; record it as skipped instead.
    let concurrent = if skip_scaling {
        println!("[bench] single core detected: skipping the concurrent_service group");
        Vec::new()
    } else {
        concurrent_service_suite(scale, runs, threads)
    };
    for c in &concurrent {
        println!(
            "{:>8} workers={:<2} requests={}  batch {:>10.6}s  {:>8.1} q/s  p50 {:>8.3}ms  p95 {:>8.3}ms  p99 {:>8.3}ms  cache {:>5.1}%",
            c.dataset,
            c.workers,
            c.requests,
            c.secs,
            c.qps(),
            c.p50_ms,
            c.p95_ms,
            c.p99_ms,
            c.cache_hit_rate * 100.0,
        );
    }
    let incremental = incremental_maintenance_suite(scale, runs);
    for m in &incremental {
        println!(
            "{:>14} batch={:<4} x{}  {:>6} edges  incremental {:>10.6}s  recompute {:>10.6}s  {:>10.0} upd/s  speedup {:>6.2}x",
            m.dataset,
            m.batch_size,
            m.batches,
            m.edges,
            m.incremental_secs,
            m.recompute_secs,
            m.updates_per_sec(),
            m.speedup(),
        );
    }
    let json = suite_to_json(
        scale,
        runs,
        &comparisons,
        &scaling,
        &subtree,
        skip_scaling,
        &auto,
        &kernels,
        &phases,
        &serve,
        &concurrent,
        &incremental,
    );
    let text = serde_json::to_string_pretty(&json);
    if let Err(err) = std::fs::write(&out_path, text + "\n") {
        eprintln!("failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    println!("[bench] wrote {out_path}");
}
