//! Fig. 12 — dataset statistics.
//!
//! Prints two tables: the statistics the paper reports for the original
//! datasets, and the statistics of the synthetic analogues generated at the
//! requested scale (so the scale factor of the substitution is explicit).

use datasets::{all_datasets, generate};
use dccs_bench::{ExperimentArgs, Table};
use mlgraph::GraphStats;

const USAGE: &str = "fig12_datasets [--scale tiny|small|full] [--csv DIR] [--datasets LIST]";

fn main() {
    let args = ExperimentArgs::from_env(USAGE);
    let ids = args.datasets_or(&all_datasets());

    let mut paper = Table::new(
        "Fig. 12 (paper) dataset statistics",
        &["Graph", "|V(G)|", "sum |E(Gi)|", "|union E(Gi)|", "l(G)"],
    );
    for id in &ids {
        let spec = id.spec();
        paper.add_row(&[
            spec.name.to_string(),
            spec.paper.num_vertices.to_string(),
            spec.paper.total_edges.to_string(),
            spec.paper.union_edges.to_string(),
            spec.paper.num_layers.to_string(),
        ]);
    }
    args.emit(&paper);

    let mut synth = Table::new(
        &format!("Fig. 12 (synthetic analogues, scale {:?})", args.scale),
        &["Graph", "|V(G)|", "sum |E(Gi)|", "|union E(Gi)|", "l(G)", "vertex scale"],
    );
    for id in &ids {
        let ds = generate(*id, args.scale);
        let stats = GraphStats::compute(&ds.graph);
        synth.add_row(&[
            ds.spec.name.to_string(),
            stats.num_vertices.to_string(),
            stats.total_edges.to_string(),
            stats.union_edges.to_string(),
            stats.num_layers.to_string(),
            format!("{:.4}", stats.num_vertices as f64 / ds.spec.paper.num_vertices as f64),
        ]);
    }
    args.emit(&synth);
}
