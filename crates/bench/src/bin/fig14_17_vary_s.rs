//! Figs. 14–17 — execution time and result cover size versus the support
//! threshold `s`.
//!
//! * Fig. 14 / Fig. 16: small `s` ∈ {1..5} on the English and Stack
//!   analogues, GD-DCCS vs BU-DCCS.
//! * Fig. 15 / Fig. 17: large `s` ∈ {l−4..l}, GD-DCCS vs BU-DCCS vs TD-DCCS.
//!
//! The extra columns report the number of candidate d-CCs each algorithm
//! examined, backing the paper's "search space reduced by 80–90 %" claim.

use datasets::{generate, DatasetId};
use dccs::{DccsOptions, DccsParams};
use dccs_bench::table::fmt_secs;
use dccs_bench::{run_algorithm, Algorithm, ExperimentArgs, ParameterGrid, Table};

const USAGE: &str = "fig14_17_vary_s [--scale tiny|small|full] [--csv DIR] [--datasets LIST]";

fn main() {
    let args = ExperimentArgs::from_env(USAGE);
    let ids = args.datasets_or(&[DatasetId::English, DatasetId::Stack]);
    let grid = ParameterGrid::default();
    let opts = DccsOptions::default();

    for id in ids {
        let ds = generate(id, args.scale);
        let g = &ds.graph;
        let l = g.num_layers();

        // Figs. 14 & 16: small s.
        let mut time_table = Table::new(
            &format!("Fig. 14 execution time vs small s ({})", ds.spec.name),
            &["s", "GD-DCCS (s)", "BU-DCCS (s)", "speedup", "GD cands", "BU cands", "BU pruned"],
        );
        let mut cover_table = Table::new(
            &format!("Fig. 16 result cover size vs small s ({})", ds.spec.name),
            &["s", "GD-DCCS", "BU-DCCS"],
        );
        for &s in grid.small_s.iter().filter(|&&s| s <= l) {
            let params = DccsParams::new(ParameterGrid::DEFAULT_D, s, ParameterGrid::DEFAULT_K);
            let gd = run_algorithm(Algorithm::Greedy, g, &params, &opts);
            let bu = run_algorithm(Algorithm::BottomUp, g, &params, &opts);
            let speedup = if bu.seconds() > 0.0 { gd.seconds() / bu.seconds() } else { f64::NAN };
            time_table.add_row(&[
                s.to_string(),
                fmt_secs(gd.seconds()),
                fmt_secs(bu.seconds()),
                format!("{speedup:.1}x"),
                gd.candidates.to_string(),
                bu.candidates.to_string(),
                bu.pruned.to_string(),
            ]);
            cover_table.add_row(&[
                s.to_string(),
                gd.cover_size.to_string(),
                bu.cover_size.to_string(),
            ]);
        }
        args.emit(&time_table);
        args.emit(&cover_table);

        // Figs. 15 & 17: large s.
        let mut time_table = Table::new(
            &format!("Fig. 15 execution time vs large s ({})", ds.spec.name),
            &["s", "GD-DCCS (s)", "BU-DCCS (s)", "TD-DCCS (s)", "TD speedup vs GD"],
        );
        let mut cover_table = Table::new(
            &format!("Fig. 17 result cover size vs large s ({})", ds.spec.name),
            &["s", "GD-DCCS", "BU-DCCS", "TD-DCCS"],
        );
        for s in ParameterGrid::large_s(l) {
            let params = DccsParams::new(ParameterGrid::DEFAULT_D, s, ParameterGrid::DEFAULT_K);
            let gd = run_algorithm(Algorithm::Greedy, g, &params, &opts);
            let bu = run_algorithm(Algorithm::BottomUp, g, &params, &opts);
            let td = run_algorithm(Algorithm::TopDown, g, &params, &opts);
            let speedup = if td.seconds() > 0.0 { gd.seconds() / td.seconds() } else { f64::NAN };
            time_table.add_row(&[
                s.to_string(),
                fmt_secs(gd.seconds()),
                fmt_secs(bu.seconds()),
                fmt_secs(td.seconds()),
                format!("{speedup:.1}x"),
            ]);
            cover_table.add_row(&[
                s.to_string(),
                gd.cover_size.to_string(),
                bu.cover_size.to_string(),
                td.cover_size.to_string(),
            ]);
        }
        args.emit(&time_table);
        args.emit(&cover_table);
    }
}
