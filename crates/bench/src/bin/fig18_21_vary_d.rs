//! Figs. 18–21 — execution time and result cover size versus the degree
//! threshold `d`.
//!
//! * Fig. 18 / Fig. 20: small `s` = 3 on the German and English analogues,
//!   GD-DCCS vs BU-DCCS.
//! * Fig. 19 / Fig. 21: large `s` = l − 2, GD-DCCS vs TD-DCCS.

use datasets::{generate, DatasetId};
use dccs::{DccsOptions, DccsParams};
use dccs_bench::table::fmt_secs;
use dccs_bench::{run_algorithm, Algorithm, ExperimentArgs, ParameterGrid, Table};

const USAGE: &str = "fig18_21_vary_d [--scale tiny|small|full] [--csv DIR] [--datasets LIST]";

fn main() {
    let args = ExperimentArgs::from_env(USAGE);
    let ids = args.datasets_or(&[DatasetId::German, DatasetId::English]);
    let grid = ParameterGrid::default();
    let opts = DccsOptions::default();

    for id in ids {
        let ds = generate(id, args.scale);
        let g = &ds.graph;
        let small_s = ParameterGrid::DEFAULT_SMALL_S.min(g.num_layers());
        let large_s = ParameterGrid::default_large_s(g.num_layers());

        let mut t18 = Table::new(
            &format!("Fig. 18 execution time vs d, s={small_s} ({})", ds.spec.name),
            &["d", "GD-DCCS (s)", "BU-DCCS (s)"],
        );
        let mut t20 = Table::new(
            &format!("Fig. 20 result cover size vs d, s={small_s} ({})", ds.spec.name),
            &["d", "GD-DCCS", "BU-DCCS"],
        );
        let mut t19 = Table::new(
            &format!("Fig. 19 execution time vs d, s={large_s} ({})", ds.spec.name),
            &["d", "GD-DCCS (s)", "TD-DCCS (s)"],
        );
        let mut t21 = Table::new(
            &format!("Fig. 21 result cover size vs d, s={large_s} ({})", ds.spec.name),
            &["d", "GD-DCCS", "TD-DCCS"],
        );

        for &d in &grid.d_values {
            let params = DccsParams::new(d, small_s, ParameterGrid::DEFAULT_K);
            let gd = run_algorithm(Algorithm::Greedy, g, &params, &opts);
            let bu = run_algorithm(Algorithm::BottomUp, g, &params, &opts);
            t18.add_row(&[d.to_string(), fmt_secs(gd.seconds()), fmt_secs(bu.seconds())]);
            t20.add_row(&[d.to_string(), gd.cover_size.to_string(), bu.cover_size.to_string()]);

            let params = DccsParams::new(d, large_s, ParameterGrid::DEFAULT_K);
            let gd = run_algorithm(Algorithm::Greedy, g, &params, &opts);
            let td = run_algorithm(Algorithm::TopDown, g, &params, &opts);
            t19.add_row(&[d.to_string(), fmt_secs(gd.seconds()), fmt_secs(td.seconds())]);
            t21.add_row(&[d.to_string(), gd.cover_size.to_string(), td.cover_size.to_string()]);
        }
        args.emit(&t18);
        args.emit(&t19);
        args.emit(&t20);
        args.emit(&t21);
    }
}
