//! Figs. 22–25 — execution time and result cover size versus the result
//! budget `k`.
//!
//! * Fig. 22 / Fig. 24: small `s` = 3 on the Wiki and English analogues,
//!   GD-DCCS vs BU-DCCS.
//! * Fig. 23 / Fig. 25: large `s` = l − 2, GD-DCCS vs TD-DCCS.
//!
//! Every `(algorithm, k)` point is a cold one-shot session query
//! ([`run_algorithm`]) on purpose: the paper's figures report full
//! per-query cost, and a shared session would let every `k` after the
//! first hit the layer-core memo and dense cache, bending the curves with
//! cache warm-up instead of `k`-scaling. Warm sweeps through one session
//! belong to [`dccs_bench::run_sweep`].

use datasets::{generate, DatasetId};
use dccs::{DccsOptions, DccsParams};
use dccs_bench::table::fmt_secs;
use dccs_bench::{run_algorithm, Algorithm, ExperimentArgs, ParameterGrid, Table};

const USAGE: &str = "fig22_25_vary_k [--scale tiny|small|full] [--csv DIR] [--datasets LIST]";

fn main() {
    let args = ExperimentArgs::from_env(USAGE);
    let ids = args.datasets_or(&[DatasetId::Wiki, DatasetId::English]);
    let grid = ParameterGrid::default();
    let opts = DccsOptions::default();

    for id in ids {
        let ds = generate(id, args.scale);
        let g = &ds.graph;
        let small_s = ParameterGrid::DEFAULT_SMALL_S.min(g.num_layers());
        let large_s = ParameterGrid::default_large_s(g.num_layers());

        let mut t22 = Table::new(
            &format!("Fig. 22 execution time vs k, s={small_s} ({})", ds.spec.name),
            &["k", "GD-DCCS (s)", "BU-DCCS (s)"],
        );
        let mut t24 = Table::new(
            &format!("Fig. 24 result cover size vs k, s={small_s} ({})", ds.spec.name),
            &["k", "GD-DCCS", "BU-DCCS"],
        );
        let mut t23 = Table::new(
            &format!("Fig. 23 execution time vs k, s={large_s} ({})", ds.spec.name),
            &["k", "GD-DCCS (s)", "TD-DCCS (s)"],
        );
        let mut t25 = Table::new(
            &format!("Fig. 25 result cover size vs k, s={large_s} ({})", ds.spec.name),
            &["k", "GD-DCCS", "TD-DCCS"],
        );

        for &k in &grid.k_values {
            let params = DccsParams::new(ParameterGrid::DEFAULT_D, small_s, k);
            let gd = run_algorithm(Algorithm::Greedy, g, &params, &opts);
            let bu = run_algorithm(Algorithm::BottomUp, g, &params, &opts);
            t22.add_row(&[k.to_string(), fmt_secs(gd.seconds()), fmt_secs(bu.seconds())]);
            t24.add_row(&[k.to_string(), gd.cover_size.to_string(), bu.cover_size.to_string()]);

            let params = DccsParams::new(ParameterGrid::DEFAULT_D, large_s, k);
            let gd = run_algorithm(Algorithm::Greedy, g, &params, &opts);
            let td = run_algorithm(Algorithm::TopDown, g, &params, &opts);
            t23.add_row(&[k.to_string(), fmt_secs(gd.seconds()), fmt_secs(td.seconds())]);
            t25.add_row(&[k.to_string(), gd.cover_size.to_string(), td.cover_size.to_string()]);
        }
        args.emit(&t22);
        args.emit(&t23);
        args.emit(&t24);
        args.emit(&t25);
    }
}
