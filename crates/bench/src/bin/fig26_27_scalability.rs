//! Figs. 26–27 — scalability: execution time versus the vertex fraction `p`
//! and the layer fraction `q` on the Stack analogue (the largest dataset).
//!
//! As in the paper, small-`s` runs compare GD-DCCS with BU-DCCS and large-`s`
//! runs compare GD-DCCS with TD-DCCS.

use datasets::{generate, DatasetId};
use dccs::{DccsOptions, DccsParams};
use dccs_bench::table::fmt_secs;
use dccs_bench::{run_algorithm, Algorithm, ExperimentArgs, ParameterGrid, Table};
use mlgraph::sample::{sample_layers, sample_vertices};

const USAGE: &str = "fig26_27_scalability [--scale tiny|small|full] [--csv DIR] [--datasets LIST]";
const SAMPLE_SEED: u64 = 0x5CA1E;

fn main() {
    let args = ExperimentArgs::from_env(USAGE);
    let ids = args.datasets_or(&[DatasetId::Stack]);
    let grid = ParameterGrid::default();
    let opts = DccsOptions::default();

    for id in ids {
        let ds = generate(id, args.scale);
        let g = &ds.graph;

        // Fig. 26: vary the vertex fraction p.
        let mut t26 = Table::new(
            &format!("Fig. 26 execution time vs p ({})", ds.spec.name),
            &["p", "|V|", "GD small-s (s)", "BU small-s (s)", "GD large-s (s)", "TD large-s (s)"],
        );
        for &p in &grid.p_values {
            let sampled = sample_vertices(g, p, SAMPLE_SEED).expect("valid fraction");
            let small_s = ParameterGrid::DEFAULT_SMALL_S.min(sampled.num_layers());
            let large_s = ParameterGrid::default_large_s(sampled.num_layers());
            let small =
                DccsParams::new(ParameterGrid::DEFAULT_D, small_s, ParameterGrid::DEFAULT_K);
            let large =
                DccsParams::new(ParameterGrid::DEFAULT_D, large_s, ParameterGrid::DEFAULT_K);
            let gd_s = run_algorithm(Algorithm::Greedy, &sampled, &small, &opts);
            let bu_s = run_algorithm(Algorithm::BottomUp, &sampled, &small, &opts);
            let gd_l = run_algorithm(Algorithm::Greedy, &sampled, &large, &opts);
            let td_l = run_algorithm(Algorithm::TopDown, &sampled, &large, &opts);
            t26.add_row(&[
                format!("{p:.1}"),
                sampled.num_vertices().to_string(),
                fmt_secs(gd_s.seconds()),
                fmt_secs(bu_s.seconds()),
                fmt_secs(gd_l.seconds()),
                fmt_secs(td_l.seconds()),
            ]);
        }
        args.emit(&t26);

        // Fig. 27: vary the layer fraction q.
        let mut t27 = Table::new(
            &format!("Fig. 27 execution time vs q ({})", ds.spec.name),
            &["q", "l", "GD small-s (s)", "BU small-s (s)", "GD large-s (s)", "TD large-s (s)"],
        );
        for &q in &grid.q_values {
            let sampled = sample_layers(g, q, SAMPLE_SEED).expect("valid fraction");
            let l = sampled.num_layers();
            let small_s = ParameterGrid::DEFAULT_SMALL_S.min(l);
            let large_s = ParameterGrid::default_large_s(l);
            let small =
                DccsParams::new(ParameterGrid::DEFAULT_D, small_s, ParameterGrid::DEFAULT_K);
            let large =
                DccsParams::new(ParameterGrid::DEFAULT_D, large_s, ParameterGrid::DEFAULT_K);
            let gd_s = run_algorithm(Algorithm::Greedy, &sampled, &small, &opts);
            let bu_s = run_algorithm(Algorithm::BottomUp, &sampled, &small, &opts);
            let gd_l = run_algorithm(Algorithm::Greedy, &sampled, &large, &opts);
            let td_l = run_algorithm(Algorithm::TopDown, &sampled, &large, &opts);
            t27.add_row(&[
                format!("{q:.1}"),
                l.to_string(),
                fmt_secs(gd_s.seconds()),
                fmt_secs(bu_s.seconds()),
                fmt_secs(gd_l.seconds()),
                fmt_secs(td_l.seconds()),
            ]);
        }
        args.emit(&t27);
    }
}
