//! Fig. 28 — effect of the preprocessing methods.
//!
//! Each preprocessing step (vertex deletion, layer sorting, result
//! initialization) is disabled in turn — and then all of them together — for
//! `BU-DCCS` with small `s` and `TD-DCCS` with large `s`, on the Wiki and
//! English analogues. Column names follow the paper: `No-VD`, `No-SL`,
//! `No-IR`, `No-Pre`.

use datasets::{generate, DatasetId};
use dccs::{DccsOptions, DccsParams};
use dccs_bench::table::fmt_secs;
use dccs_bench::{run_algorithm, Algorithm, ExperimentArgs, ParameterGrid, Table};

const USAGE: &str = "fig28_preprocessing [--scale tiny|small|full] [--csv DIR] [--datasets LIST]";

fn variants() -> Vec<(&'static str, DccsOptions)> {
    vec![
        ("Default", DccsOptions::default()),
        ("No-SL", DccsOptions::no_sort_layers()),
        ("No-IR", DccsOptions::no_init_topk()),
        ("No-VD", DccsOptions::no_vertex_deletion()),
        ("No-Pre", DccsOptions::no_preprocessing()),
    ]
}

fn main() {
    let args = ExperimentArgs::from_env(USAGE);
    let ids = args.datasets_or(&[DatasetId::Wiki, DatasetId::English]);

    let mut small_table = Table::new(
        "Fig. 28a preprocessing ablation, BU-DCCS (small s)",
        &["Graph", "Variant", "time (s)", "cover", "dCC calls", "pruned"],
    );
    let mut large_table = Table::new(
        "Fig. 28b preprocessing ablation, TD-DCCS (large s)",
        &["Graph", "Variant", "time (s)", "cover", "dCC calls", "pruned"],
    );

    for id in ids {
        let ds = generate(id, args.scale);
        let g = &ds.graph;
        let small_s = ParameterGrid::DEFAULT_SMALL_S.min(g.num_layers());
        let large_s = ParameterGrid::default_large_s(g.num_layers());
        let small = DccsParams::new(ParameterGrid::DEFAULT_D, small_s, ParameterGrid::DEFAULT_K);
        let large = DccsParams::new(ParameterGrid::DEFAULT_D, large_s, ParameterGrid::DEFAULT_K);

        for (name, opts) in variants() {
            let bu = run_algorithm(Algorithm::BottomUp, g, &small, &opts);
            small_table.add_row(&[
                ds.spec.name.to_string(),
                name.to_string(),
                fmt_secs(bu.seconds()),
                bu.cover_size.to_string(),
                bu.dcc_calls.to_string(),
                bu.pruned.to_string(),
            ]);
            let td = run_algorithm(Algorithm::TopDown, g, &large, &opts);
            large_table.add_row(&[
                ds.spec.name.to_string(),
                name.to_string(),
                fmt_secs(td.seconds()),
                td.cover_size.to_string(),
                td.dcc_calls.to_string(),
                td.pruned.to_string(),
            ]);
        }
    }
    args.emit(&small_table);
    args.emit(&large_table);
}
