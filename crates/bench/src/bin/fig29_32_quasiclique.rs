//! Figs. 29–32 — comparison with the quasi-clique baseline (`MiMAG`).
//!
//! * Fig. 29: execution time, cover size, precision, recall and F1 of the
//!   MiMAG-style baseline versus BU-DCCS on the PPI and Author analogues,
//!   for d ∈ {2, 3, 4} with γ = 0.8, s = l/2, k = 10 and d′ = d + 1.
//! * Fig. 30: the distribution of `|Q ∩ Cov(R_C)|` over the baseline's
//!   quasi-cliques `Q`, grouped by `|Q|`.
//! * Fig. 31 (analysis substitute): edge densities of the vertex classes
//!   `Cov(R_C) ∩ Cov(R_Q)`, `Cov(R_C) − Cov(R_Q)` and `Cov(R_Q) − Cov(R_C)`
//!   on the Author analogue, plus a DOT export when `--csv` is given.
//! * Fig. 32: the proportion of planted protein complexes entirely contained
//!   in a reported dense subgraph, for MiMAG and BU-DCCS.

use datasets::{generate, DatasetId};
use dccs::{
    bottom_up_dccs, complexes_found, containment_distribution, CoverSimilarity, DccsParams,
};
use dccs_bench::table::fmt_secs;
use dccs_bench::{ExperimentArgs, Table};
use mlgraph::algo::edge_density_within;
use mlgraph::io::dot::{induced_subgraph_dot, DotOptions};
use mlgraph::VertexSet;
use quasiclique::{mimag_baseline, QcConfig};

const USAGE: &str = "fig29_32_quasiclique [--scale tiny|small|full] [--csv DIR] [--datasets LIST]";
const GAMMA: f64 = 0.8;
const K: usize = 10;

fn main() {
    let args = ExperimentArgs::from_env(USAGE);
    let ids = args.datasets_or(&[DatasetId::Ppi, DatasetId::Author]);

    let mut fig29 = Table::new(
        "Fig. 29 MiMAG vs BU-DCCS",
        &["Graph", "d", "Algorithm", "time (s)", "size", "precision", "recall", "F1"],
    );
    let mut fig30 = Table::new(
        "Fig. 30 distribution of |Q ∩ Cov(Rc)|",
        &["Graph", "d", "|Q|", "counts 0..|Q| (fractions)"],
    );
    let mut fig31 = Table::new(
        "Fig. 31 induced-subgraph density analysis",
        &["Graph", "d", "vertex class", "#vertices", "union-graph edge density"],
    );
    let mut fig32 = Table::new(
        "Fig. 32 proportion of planted complexes found",
        &["Graph", "d", "MiMAG", "BU-DCCS"],
    );

    for id in ids {
        let ds = generate(id, args.scale);
        let g = &ds.graph;
        let s = (g.num_layers() / 2).max(1);

        for d in [2u32, 3, 4] {
            // BU-DCCS with (d, s, k).
            let params = DccsParams::new(d, s, K);
            let dccs_result = bottom_up_dccs(g, &params);
            // MiMAG-style baseline with d' = d + 1 and the same s.
            let qc_config = QcConfig {
                gamma: GAMMA,
                min_support: s,
                min_size: (d + 1) as usize,
                ..QcConfig::default()
            };
            let mimag = mimag_baseline(g, &qc_config, K);

            let sim = CoverSimilarity::compute(&mimag.cover, &dccs_result.cover);
            fig29.add_row(&[
                ds.spec.name.to_string(),
                d.to_string(),
                "MiMAG".to_string(),
                fmt_secs(mimag.elapsed.as_secs_f64()),
                mimag.cover_size().to_string(),
                String::new(),
                String::new(),
                String::new(),
            ]);
            fig29.add_row(&[
                ds.spec.name.to_string(),
                d.to_string(),
                "BU-DCCS".to_string(),
                fmt_secs(dccs_result.elapsed.as_secs_f64()),
                dccs_result.cover_size().to_string(),
                format!("{:.3}", sim.precision),
                format!("{:.3}", sim.recall),
                format!("{:.3}", sim.f1),
            ]);

            // Fig. 30: containment of each quasi-clique in the d-CC cover.
            let qcs: Vec<Vec<u32>> = mimag.quasi_cliques.iter().map(|q| q.to_vec()).collect();
            for (size, dist) in containment_distribution(&qcs, &dccs_result.cover) {
                let cells: Vec<String> = dist.iter().map(|p| format!("{p:.3}")).collect();
                fig30.add_row(&[
                    ds.spec.name.to_string(),
                    d.to_string(),
                    size.to_string(),
                    cells.join(" "),
                ]);
            }

            // Fig. 31: density of the three vertex classes (Author, d = 3 in
            // the paper; we report every (graph, d) combination).
            let both = dccs_result.cover.intersection(&mimag.cover);
            let only_dccs = dccs_result.cover.difference(&mimag.cover);
            let only_qc = mimag.cover.difference(&dccs_result.cover);
            let union_graph = g.union_graph();
            for (class, set) in [
                ("Cov(Rc) ∩ Cov(Rq)", &both),
                ("Cov(Rc) − Cov(Rq)", &only_dccs),
                ("Cov(Rq) − Cov(Rc)", &only_qc),
            ] {
                fig31.add_row(&[
                    ds.spec.name.to_string(),
                    d.to_string(),
                    class.to_string(),
                    set.len().to_string(),
                    format!("{:.4}", edge_density_within(&union_graph, set)),
                ]);
            }
            if let (Some(dir), DatasetId::Author, 3) = (&args.csv_dir, id, d) {
                let mut full: VertexSet = dccs_result.cover.clone();
                full.union_with(&mimag.cover);
                let dot = induced_subgraph_dot(
                    g,
                    &full,
                    &DotOptions {
                        layer: None,
                        name: "fig31_author".into(),
                        highlight: vec![
                            ("both".into(), both.clone()),
                            ("only_dccs".into(), only_dccs.clone()),
                            ("only_qc".into(), only_qc.clone()),
                        ],
                    },
                );
                if std::fs::create_dir_all(dir).is_ok() {
                    let path = dir.join("fig31_author.dot");
                    if std::fs::write(&path, dot).is_ok() {
                        println!("[dot] wrote {}", path.display());
                    }
                }
            }

            // Fig. 32: planted complexes found (only meaningful where ground
            // truth exists; the PPI analogue plays the MIPS role).
            if !ds.ground_truth.is_empty() {
                let dccs_subgraphs: Vec<VertexSet> =
                    dccs_result.cores.iter().map(|c| c.vertices.clone()).collect();
                let found_dccs = complexes_found(&ds.ground_truth.modules, &dccs_subgraphs);
                let found_mimag = complexes_found(&ds.ground_truth.modules, &mimag.quasi_cliques);
                fig32.add_row(&[
                    ds.spec.name.to_string(),
                    d.to_string(),
                    format!("{:.1}%", 100.0 * found_mimag),
                    format!("{:.1}%", 100.0 * found_dccs),
                ]);
            }
        }
    }

    args.emit(&fig29);
    args.emit(&fig30);
    args.emit(&fig31);
    args.emit(&fig32);
}
