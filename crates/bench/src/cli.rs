//! Minimal command-line flag parsing shared by the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--scale tiny|small|full` — dataset analogue size (default `small`);
//! * `--csv DIR` — also write each printed table as a CSV file into `DIR`;
//! * `--datasets NAME[,NAME...]` — restrict to specific datasets;
//! * `--help` — print usage.

use datasets::{DatasetId, Scale};
use std::path::PathBuf;

/// Parsed experiment arguments.
#[derive(Clone, Debug)]
pub struct ExperimentArgs {
    /// Dataset scale to generate.
    pub scale: Scale,
    /// Optional CSV output directory.
    pub csv_dir: Option<PathBuf>,
    /// Dataset filter (empty = binary default).
    pub datasets: Vec<DatasetId>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs { scale: Scale::Small, csv_dir: None, datasets: Vec::new() }
    }
}

impl ExperimentArgs {
    /// Parses an iterator of arguments (without the program name).
    /// Returns `Err(usage)` for `--help` or malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I, usage: &str) -> Result<Self, String> {
        let mut out = ExperimentArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(usage.to_string()),
                "--scale" => {
                    let value =
                        iter.next().ok_or_else(|| format!("--scale needs a value\n{usage}"))?;
                    out.scale = Scale::parse(&value)
                        .ok_or_else(|| format!("unknown scale `{value}`\n{usage}"))?;
                }
                "--csv" => {
                    let value =
                        iter.next().ok_or_else(|| format!("--csv needs a directory\n{usage}"))?;
                    out.csv_dir = Some(PathBuf::from(value));
                }
                "--datasets" => {
                    let value =
                        iter.next().ok_or_else(|| format!("--datasets needs a value\n{usage}"))?;
                    for name in value.split(',') {
                        let id = DatasetId::parse(name.trim())
                            .ok_or_else(|| format!("unknown dataset `{name}`\n{usage}"))?;
                        out.datasets.push(id);
                    }
                }
                other => return Err(format!("unknown argument `{other}`\n{usage}")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments; prints the error/usage and exits on
    /// failure.
    pub fn from_env(usage: &str) -> Self {
        match Self::parse(std::env::args().skip(1), usage) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// The datasets to run: the explicit filter, or the given default list.
    pub fn datasets_or(&self, default: &[DatasetId]) -> Vec<DatasetId> {
        if self.datasets.is_empty() {
            default.to_vec()
        } else {
            self.datasets.clone()
        }
    }

    /// Writes a table as CSV if `--csv` was given, and always prints it.
    pub fn emit(&self, table: &crate::table::Table) {
        table.print();
        if let Some(dir) = &self.csv_dir {
            match table.write_csv_into(dir) {
                Ok(path) => println!("[csv] wrote {}", path.display()),
                Err(err) => eprintln!("[csv] failed to write table: {err}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentArgs, String> {
        ExperimentArgs::parse(args.iter().map(|s| s.to_string()), "usage")
    }

    #[test]
    fn defaults() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.scale, Scale::Small);
        assert!(args.csv_dir.is_none());
        assert!(args.datasets.is_empty());
    }

    #[test]
    fn parses_all_flags() {
        let args =
            parse(&["--scale", "tiny", "--csv", "/tmp/out", "--datasets", "ppi,author"]).unwrap();
        assert_eq!(args.scale, Scale::Tiny);
        assert_eq!(args.csv_dir.as_deref(), Some(std::path::Path::new("/tmp/out")));
        assert_eq!(args.datasets, vec![DatasetId::Ppi, DatasetId::Author]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "gigantic"]).is_err());
        assert!(parse(&["--datasets", "nope"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn dataset_default_fallback() {
        let args = parse(&[]).unwrap();
        let d = args.datasets_or(&[DatasetId::English]);
        assert_eq!(d, vec![DatasetId::English]);
        let args = parse(&["--datasets", "wiki"]).unwrap();
        assert_eq!(args.datasets_or(&[DatasetId::English]), vec![DatasetId::Wiki]);
    }
}
