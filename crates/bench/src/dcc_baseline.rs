//! Engine-vs-naive, thread-scaling, and algorithm-auto-selection
//! measurements for the `dCC` peeling engine, recorded as `BENCH_dcc.json`
//! by the `bench_dcc` binary.
//!
//! Three groups are recorded on synthetic benchmark graphs:
//!
//! * **engine vs naive** — the subset-lattice candidate generation
//!   (prefix-seeded peels on a reused [`PeelWorkspace`], dense-vs-CSR chosen
//!   by the [`dccs::engine`] cost model) against the frozen pre-refactor
//!   oracle [`dccs::naive_subset_cores`] (per-subset intersection +
//!   allocating peel). Both paths produce identical candidate cores
//!   (checksummed to make sure); only the time differs.
//! * **thread scaling** — each DCCS algorithm end to end at 1 executor
//!   thread vs `N`, asserting the covers match (the executor's determinism
//!   contract) and recording both times.
//! * **subtree scaling** — BU/TD on deeper search trees (`s = 3` and the
//!   near-full-layer-set TD regime), the workloads the subtree-level task
//!   graph exists for: sibling subtrees evaluate concurrently instead of
//!   serializing behind one node's fork-join.
//! * **auto selection** — [`dccs::Algorithm::Auto`] against every fixed
//!   algorithm at the same `(d, s, k)`, recording which algorithm the
//!   session picked and how close its time lands to the best fixed choice,
//!   so the selection policy's quality is tracked in the perf trajectory.
//! * **phase breakdown** — where each algorithm's end-to-end time goes
//!   (preprocess / search / select, from [`dccs::SearchStats::phase`]),
//!   plus the `complete` limit flag, so a future cancellation tax or a
//!   phase-level regression shows up in the recorded JSON.
//! * **serve from index** — [`dccs::DccIndex`] build time, serialized
//!   artifact size, and the repeat-query speedup of answering a greedy
//!   query from the precomputed hierarchy vs re-peeling it (both paths
//!   asserted to cover the same vertices before timing is recorded).
//! * **concurrent service** — a deterministic query mix (with repeats)
//!   batched through one [`dccs::QueryService`] at 1 vs N workers:
//!   throughput, p50/p95/p99 latency, and the result-cache hit rate, with
//!   the answers asserted identical across widths.
//! * **incremental maintenance** — temporal mutation batches (sizes 1, 16,
//!   256) committed through a warm [`dccs::QueryService`] (the per-`d`
//!   repair path) vs applied + re-peeled from scratch, recording
//!   updates/sec and the repair-vs-recompute speedup, with the post-stream
//!   answers asserted identical on both graphs.
//!
//! On a single-core host (`available_parallelism() == 1`) the scaling
//! groups (including `concurrent_service`) are **skipped** and recorded
//! with `"skipped_single_core": true` —
//! an N-worker crew on one core measures pure scheduling overhead, and the
//! ~0.9× "speedups" it produces would be read as regressions.

use crate::runner::{run_algorithm, Algorithm};
use coreness::PeelWorkspace;
use datasets::{generate, Dataset, DatasetId, Scale};
use dccs::{DccsOptions, DccsParams, IndexPath};
use serde_json::Value;
use std::time::Instant;

/// One engine-vs-naive comparison at fixed `(dataset, d, s)`.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Dataset analogue name.
    pub dataset: String,
    /// Degree threshold.
    pub d: u32,
    /// Layer-subset size.
    pub s: usize,
    /// `C(l, s)` candidates generated per run.
    pub candidates: usize,
    /// Best-of-N wall time of the lattice + workspace engine, seconds.
    pub engine_secs: f64,
    /// Best-of-N wall time of the pre-refactor path, seconds.
    pub naive_secs: f64,
    /// Checksum over emitted cores (must match between the two paths).
    pub checksum: u64,
    /// Adjacency representation the cost model picked for the engine run.
    pub index_path: IndexPath,
}

impl Comparison {
    /// `naive_secs / engine_secs`.
    pub fn speedup(&self) -> f64 {
        self.naive_secs / self.engine_secs
    }

    /// Renders the comparison as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("d", Value::from(self.d)),
            ("s", Value::from(self.s)),
            ("candidates", Value::from(self.candidates)),
            ("engine_secs", Value::from(self.engine_secs)),
            ("naive_secs", Value::from(self.naive_secs)),
            ("speedup", Value::from(self.speedup())),
            ("index_path", Value::from(format!("{:?}", self.index_path))),
        ])
    }
}

/// One 1-vs-N-thread measurement of a full algorithm run.
#[derive(Clone, Debug)]
pub struct ThreadScaling {
    /// Dataset analogue name.
    pub dataset: String,
    /// Algorithm name (`GD-DCCS`, `BU-DCCS`, `TD-DCCS`).
    pub algorithm: &'static str,
    /// Degree threshold.
    pub d: u32,
    /// Layer-subset size.
    pub s: usize,
    /// Worker count of the multi-threaded run.
    pub threads: usize,
    /// Best-of-N wall time at 1 thread, seconds.
    pub secs_1: f64,
    /// Best-of-N wall time at `threads` workers, seconds.
    pub secs_n: f64,
    /// `|Cov(R)|` — identical at both thread counts by construction.
    pub cover: usize,
}

impl ThreadScaling {
    /// `secs_1 / secs_n` (> 1 means the threaded run was faster).
    pub fn speedup(&self) -> f64 {
        self.secs_1 / self.secs_n
    }

    /// Renders the measurement as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("algorithm", Value::from(self.algorithm)),
            ("d", Value::from(self.d)),
            ("s", Value::from(self.s)),
            ("threads", Value::from(self.threads)),
            ("secs_1", Value::from(self.secs_1)),
            ("secs_n", Value::from(self.secs_n)),
            ("speedup", Value::from(self.speedup())),
            ("cover", Value::from(self.cover)),
        ])
    }
}

/// One `Auto`-vs-fixed-algorithm measurement at `(dataset, d, s, k)`.
#[derive(Clone, Debug)]
pub struct AutoSelection {
    /// Dataset analogue name.
    pub dataset: String,
    /// Degree threshold.
    pub d: u32,
    /// Layer-subset size.
    pub s: usize,
    /// Result budget.
    pub k: usize,
    /// Name of the algorithm `Auto` resolved to.
    pub chosen: &'static str,
    /// Best-of-N wall time of the `Auto` run, seconds.
    pub auto_secs: f64,
    /// Best-of-N wall time of each fixed algorithm, seconds.
    pub fixed_secs: Vec<(&'static str, f64)>,
    /// `|Cov(R)|` of the auto run (identical to its chosen fixed run).
    pub cover: usize,
}

impl AutoSelection {
    /// The fastest fixed algorithm and its time.
    pub fn best_fixed(&self) -> (&'static str, f64) {
        self.fixed_secs
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one fixed algorithm measured")
    }

    /// `best_fixed_secs / auto_secs` — 1.0 means the policy picked the
    /// fastest algorithm (modulo timing noise); below 1.0 quantifies how
    /// much a wrong pick cost.
    pub fn efficiency(&self) -> f64 {
        self.best_fixed().1 / self.auto_secs
    }

    /// Renders the measurement as a JSON object.
    pub fn to_json(&self) -> Value {
        let fixed = self
            .fixed_secs
            .iter()
            .map(|&(name, secs)| {
                Value::object(vec![("algorithm", Value::from(name)), ("secs", Value::from(secs))])
            })
            .collect();
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("d", Value::from(self.d)),
            ("s", Value::from(self.s)),
            ("k", Value::from(self.k)),
            ("chosen", Value::from(self.chosen)),
            ("auto_secs", Value::from(self.auto_secs)),
            ("best_fixed", Value::from(self.best_fixed().0)),
            ("best_fixed_secs", Value::from(self.best_fixed().1)),
            ("efficiency", Value::from(self.efficiency())),
            ("cover", Value::from(self.cover)),
            ("fixed", Value::Array(fixed)),
        ])
    }
}

/// Per-phase wall-clock breakdown of one end-to-end algorithm run (the
/// `phase_breakdown` group of `BENCH_dcc.json`): where a query's time goes
/// — vertex-deletion preprocessing, the candidate search itself, and the
/// final max-k-cover selection — as recorded by
/// [`dccs::SearchStats::phase`]. The `complete` flag is the limit marker:
/// `true` means no query limit fired (the bench harness runs unlimited, so
/// anything else is a harness bug worth seeing in the JSON).
#[derive(Clone, Debug)]
pub struct PhaseBreakdown {
    /// Dataset analogue name.
    pub dataset: String,
    /// Algorithm name (`GD-DCCS`, `BU-DCCS`, `TD-DCCS`).
    pub algorithm: &'static str,
    /// Degree threshold.
    pub d: u32,
    /// Layer-subset size.
    pub s: usize,
    /// Preprocessing seconds of the fastest run.
    pub preprocess_secs: f64,
    /// Candidate-search seconds of the fastest run.
    pub search_secs: f64,
    /// Max-k-cover selection seconds of the fastest run.
    pub select_secs: f64,
    /// End-to-end seconds of the fastest run.
    pub total_secs: f64,
    /// Whether the run finished without tripping any query limit.
    pub complete: bool,
}

impl PhaseBreakdown {
    /// Renders the measurement as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("algorithm", Value::from(self.algorithm)),
            ("d", Value::from(self.d)),
            ("s", Value::from(self.s)),
            ("preprocess_secs", Value::from(self.preprocess_secs)),
            ("search_secs", Value::from(self.search_secs)),
            ("select_secs", Value::from(self.select_secs)),
            ("total_secs", Value::from(self.total_secs)),
            ("complete", Value::from(self.complete)),
        ])
    }
}

/// One serve-from-index measurement (the `serve_from_index` group of
/// `BENCH_dcc.json`): the cost of building and persisting a
/// [`dccs::DccIndex`] for one degree threshold, and what a *repeat* query
/// costs when answered from the artifact vs re-peeled from the graph. The
/// two answers are asserted identical before either time is recorded.
#[derive(Clone, Debug)]
pub struct ServeFromIndex {
    /// Dataset analogue name.
    pub dataset: String,
    /// Degree threshold the index was built for, covering subset sizes
    /// `1..=s` (the grid the measured query is served from — the full
    /// hierarchy of a many-layer graph is exponentially larger than any
    /// query working set, so the bench builds what it serves).
    pub d: u32,
    /// Layer-subset size of the measured query.
    pub s: usize,
    /// Result budget of the measured query.
    pub k: usize,
    /// Best-of-N seconds to build the full per-subset-size index for `d`.
    pub build_secs: f64,
    /// Serialized artifact size in bytes.
    pub bytes: usize,
    /// Best-of-N seconds of the greedy query answered by re-peeling.
    pub query_peel_secs: f64,
    /// Best-of-N seconds of the same query answered from the index.
    pub query_index_secs: f64,
    /// `|Cov(R)|` — identical on both paths by the bit-identity contract.
    pub cover: usize,
}

impl ServeFromIndex {
    /// `query_peel_secs / query_index_secs` — the repeat-query speedup.
    pub fn speedup(&self) -> f64 {
        self.query_peel_secs / self.query_index_secs
    }

    /// Renders the measurement as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("d", Value::from(self.d)),
            ("s", Value::from(self.s)),
            ("k", Value::from(self.k)),
            ("build_secs", Value::from(self.build_secs)),
            ("bytes", Value::from(self.bytes)),
            ("query_peel_secs", Value::from(self.query_peel_secs)),
            ("query_index_secs", Value::from(self.query_index_secs)),
            ("speedup", Value::from(self.speedup())),
            ("cover", Value::from(self.cover)),
        ])
    }
}

/// One concurrent-service measurement (the `concurrent_service` group of
/// `BENCH_dcc.json`): a deterministic query mix with repeats answered
/// through one [`dccs::QueryService`] at a fixed worker width, recording
/// throughput, latency percentiles, and the result-cache hit rate. The
/// suite runs the same mix at 1 and N workers so batch-level scaling and
/// the bit-identity contract both stay on the perf trajectory.
#[derive(Clone, Debug)]
pub struct ConcurrentService {
    /// Dataset analogue name.
    pub dataset: String,
    /// Worker-pool width the batch fanned out over.
    pub workers: usize,
    /// Requests in the mix (with repeats, so the cache gets hits).
    pub requests: usize,
    /// Best-of-N wall time of the whole batch, seconds.
    pub secs: f64,
    /// Per-query latency percentiles of the best repetition, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// `hits / (hits + misses)` of the best repetition's fresh cache.
    pub cache_hit_rate: f64,
    /// Sum of cover sizes over the mix — must match across widths.
    pub cover_sum: usize,
}

impl ConcurrentService {
    /// Requests answered per second in the best repetition.
    pub fn qps(&self) -> f64 {
        self.requests as f64 / self.secs
    }

    /// Renders the measurement as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("workers", Value::from(self.workers)),
            ("requests", Value::from(self.requests)),
            ("secs", Value::from(self.secs)),
            ("qps", Value::from(self.qps())),
            ("p50_ms", Value::from(self.p50_ms)),
            ("p95_ms", Value::from(self.p95_ms)),
            ("p99_ms", Value::from(self.p99_ms)),
            ("cache_hit_rate", Value::from(self.cache_hit_rate)),
            ("cover_sum", Value::from(self.cover_sum)),
        ])
    }
}

/// One incremental-maintenance measurement (the `incremental_maintenance`
/// group of `BENCH_dcc.json`): a temporal batch stream committed through
/// one warm [`dccs::QueryService`] (the repair path — bounded reach-set
/// growth for inserts, cascade re-peel within the old core for deletes, on
/// touched layers only) against the recompute-from-scratch baseline (apply
/// the batch, then re-peel every layer's `d`-core as a repair-less service
/// would at its next query). The final answers on both graphs are asserted
/// identical before either time is recorded.
#[derive(Clone, Debug)]
pub struct IncrementalMaintenance {
    /// Dataset analogue name (the temporal generator at the bench scale).
    pub dataset: String,
    /// Edge operations per committed batch.
    pub batch_size: usize,
    /// Batches committed per repetition.
    pub batches: usize,
    /// Total edge operations across the stream (inserts + deletes).
    pub edges: usize,
    /// Materialized per-`d` tier entries each commit repaired.
    pub repaired_ds: usize,
    /// Best-of-N seconds to commit the whole stream incrementally.
    pub incremental_secs: f64,
    /// Best-of-N seconds to apply + re-peel from scratch per batch.
    pub recompute_secs: f64,
    /// `|Cov(R)|` of the post-stream probe — identical on both paths.
    pub cover: usize,
}

impl IncrementalMaintenance {
    /// Edge operations maintained per second on the incremental path.
    pub fn updates_per_sec(&self) -> f64 {
        self.edges as f64 / self.incremental_secs
    }

    /// `recompute_secs / incremental_secs` (> 1 means repair beats
    /// re-peeling from scratch).
    pub fn speedup(&self) -> f64 {
        self.recompute_secs / self.incremental_secs
    }

    /// Renders the measurement as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("batch_size", Value::from(self.batch_size)),
            ("batches", Value::from(self.batches)),
            ("edges", Value::from(self.edges)),
            ("repaired_ds", Value::from(self.repaired_ds)),
            ("incremental_secs", Value::from(self.incremental_secs)),
            ("recompute_secs", Value::from(self.recompute_secs)),
            ("updates_per_sec", Value::from(self.updates_per_sec())),
            ("speedup", Value::from(self.speedup())),
            ("cover", Value::from(self.cover)),
        ])
    }
}

/// One scalar-vs-dispatched micro-comparison of a bit-kernel primitive
/// (the `kernel_dispatch` group of `BENCH_dcc.json`): the same operation
/// over the same words, once on the scalar reference kernel and once on
/// the kernel the process dispatched to (`DCCS_FORCE_KERNEL` or CPU
/// detection) — so the JSON records what the SIMD layer is actually worth
/// on the recording host.
#[derive(Clone, Debug)]
pub struct KernelDispatch {
    /// Primitive measured (`and_count`, `and_assign_count`, …).
    pub op: &'static str,
    /// Operand length in 64-bit words (row width of the simulated universe).
    pub words: usize,
    /// Best-of-N seconds on the scalar reference kernel.
    pub scalar_secs: f64,
    /// Best-of-N seconds on the dispatched kernel.
    pub dispatched_secs: f64,
    /// Name of the dispatched kernel (`scalar`, `unrolled`, `avx2`).
    pub kernel: &'static str,
}

impl KernelDispatch {
    /// `scalar_secs / dispatched_secs` (> 1 means the dispatched kernel is
    /// faster; ≈ 1 when the dispatch resolved to scalar itself).
    pub fn speedup(&self) -> f64 {
        self.scalar_secs / self.dispatched_secs
    }

    /// Renders the measurement as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("op", Value::from(self.op)),
            ("words", Value::from(self.words)),
            ("scalar_secs", Value::from(self.scalar_secs)),
            ("dispatched_secs", Value::from(self.dispatched_secs)),
            ("kernel", Value::from(self.kernel)),
            ("speedup", Value::from(self.speedup())),
        ])
    }
}

/// Deterministic mixed-density word patterns (no external RNG needed).
fn bench_words(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match i % 7 {
                0 => 0,
                1 => !0,
                _ => state,
            }
        })
        .collect()
}

/// Measures the dispatched kernel against the scalar reference on the
/// primitives the peeling engines actually spend their words in, at row
/// widths bracketing the bench universes (8 words ≈ a 512-vertex dense
/// universe, 64 words ≈ 4096). Each measurement is the best of `runs`
/// timed repetitions of a fixed iteration count.
pub fn kernel_dispatch_suite(runs: usize) -> Vec<KernelDispatch> {
    use mlgraph::kernels::{kernel, kernel_for, BitKernel, KernelKind};
    let scalar = kernel_for(KernelKind::Scalar).expect("scalar kernel always available");
    let dispatched = kernel();
    let kernel_name = dispatched.kind().name();
    let mut out = Vec::new();
    for &words in &[8usize, 64] {
        let a = bench_words(1, words);
        let b = bench_words(2, words);
        let iterations = 4 << 20 >> words.trailing_zeros().min(6); // ~same total words per op
        let time_op = |k: &'static dyn BitKernel, op: &str| -> f64 {
            let mut buf = vec![0u64; words];
            let (secs, _) = best_of(runs, || {
                let mut checksum = 0u64;
                for _ in 0..iterations {
                    checksum = checksum.wrapping_add(match op {
                        "and_count" => k.and_count(&a, &b) as u64,
                        "and_assign_count" => k.and_assign_count(&mut buf, &a, &b) as u64,
                        "andnot_assign_count" => k.andnot_assign_count(&mut buf, &a, &b) as u64,
                        "or_inplace_count" => k.or_inplace_count(&mut buf, &b) as u64,
                        _ => unreachable!("unknown kernel op"),
                    });
                }
                checksum
            });
            secs
        };
        for op in ["and_count", "and_assign_count", "andnot_assign_count", "or_inplace_count"] {
            let scalar_secs = time_op(scalar, op);
            let dispatched_secs = time_op(dispatched, op);
            out.push(KernelDispatch {
                op,
                words,
                scalar_secs,
                dispatched_secs,
                kernel: kernel_name,
            });
        }
    }
    out
}

fn best_of<F: FnMut() -> u64>(runs: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        checksum = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, checksum)
}

/// Measures engine vs naive candidate generation on `ds` at `(d, s)`,
/// taking the best of `runs` timed repetitions per path.
///
/// # Panics
///
/// Panics if the two paths emit different cores (they never should; this is
/// the bench double-checking the equivalence the property tests prove).
pub fn compare_candidate_generation(ds: &Dataset, d: u32, s: usize, runs: usize) -> Comparison {
    let params = DccsParams::new(d, s, 10);
    let pre = dccs::preprocess::preprocess(&ds.graph, &params, &DccsOptions::default());
    let l = ds.graph.num_layers();

    let mut ws = PeelWorkspace::new();
    let mut index_path = IndexPath::Csr;
    let (engine_secs, engine_sum) = best_of(runs, || {
        let mut checksum = 0u64;
        let stats =
            dccs::for_each_subset_core(&ds.graph, d, s, &pre.layer_cores, &mut ws, |_, core| {
                for v in core.iter() {
                    checksum = checksum.wrapping_mul(31).wrapping_add(v as u64 + 1);
                }
            });
        index_path = stats.index_path;
        checksum
    });

    let (naive_secs, naive_sum) = best_of(runs, || {
        let mut checksum = 0u64;
        for (_, core) in dccs::naive_subset_cores(&ds.graph, d, s, &pre.layer_cores) {
            for v in core.iter() {
                checksum = checksum.wrapping_mul(31).wrapping_add(v as u64 + 1);
            }
        }
        checksum
    });

    assert_eq!(engine_sum, naive_sum, "engine and naive paths disagree on the emitted cores");
    Comparison {
        dataset: format!("{:?}", ds.id),
        d,
        s,
        candidates: dccs::layer_subsets::combinations(l, s).count(),
        engine_secs,
        naive_secs,
        checksum: engine_sum,
        index_path,
    }
}

/// Measures one algorithm end to end at 1 executor thread and at `threads`,
/// asserting the covers agree (they must — the executor is deterministic).
///
/// Caveat: each timed run includes the executor's per-run worker
/// spawn/join (`with_pool` creates the crew per algorithm invocation), so
/// on sub-millisecond inputs — the tiny analogues — `secs_n` is dominated
/// by that fixed cost and understates the scheduling speedup larger inputs
/// would see.
pub fn compare_thread_scaling(
    ds: &Dataset,
    algorithm: Algorithm,
    d: u32,
    s: usize,
    threads: usize,
    runs: usize,
) -> ThreadScaling {
    let params = DccsParams::new(d, s, 10);
    let mut cover_1 = 0usize;
    let (secs_1, _) = best_of(runs, || {
        let outcome = run_algorithm(algorithm, &ds.graph, &params, &DccsOptions::with_threads(1));
        cover_1 = outcome.cover_size;
        cover_1 as u64
    });
    let mut cover_n = 0usize;
    let (secs_n, _) = best_of(runs, || {
        let outcome =
            run_algorithm(algorithm, &ds.graph, &params, &DccsOptions::with_threads(threads));
        cover_n = outcome.cover_size;
        cover_n as u64
    });
    assert_eq!(cover_1, cover_n, "thread count changed the cover — determinism violated");
    ThreadScaling {
        dataset: format!("{:?}", ds.id),
        algorithm: algorithm.name(),
        d,
        s,
        threads,
        secs_1,
        secs_n,
        cover: cover_1,
    }
}

/// Measures `Algorithm::Auto` against every fixed algorithm on `ds` at
/// `(d, s, k)`, asserting the auto run's cover matches its chosen fixed
/// algorithm's (the policy only *selects*; it must not change results).
pub fn compare_auto_selection(
    ds: &Dataset,
    d: u32,
    s: usize,
    k: usize,
    runs: usize,
) -> AutoSelection {
    let params = DccsParams::new(d, s, k);
    let opts = DccsOptions::default();
    let mut chosen = Algorithm::Auto;
    let mut auto_cover = 0usize;
    let (auto_secs, _) = best_of(runs, || {
        let outcome = run_algorithm(Algorithm::Auto, &ds.graph, &params, &opts);
        chosen = outcome.algorithm;
        auto_cover = outcome.cover_size;
        auto_cover as u64
    });
    let mut fixed_secs = Vec::new();
    for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown] {
        let mut cover = 0usize;
        let (secs, _) = best_of(runs, || {
            let outcome = run_algorithm(algorithm, &ds.graph, &params, &opts);
            cover = outcome.cover_size;
            cover as u64
        });
        if algorithm == chosen {
            assert_eq!(cover, auto_cover, "auto's result must equal its chosen algorithm's result");
        }
        fixed_secs.push((algorithm.name(), secs));
    }
    AutoSelection {
        dataset: format!("{:?}", ds.id),
        d,
        s,
        k,
        chosen: chosen.name(),
        auto_secs,
        fixed_secs,
        cover: auto_cover,
    }
}

/// The standard baseline suite recorded in `BENCH_dcc.json`: the Wiki and
/// German analogues at the bench scale, over a small `(d, s)` grid.
pub fn baseline_suite(scale: Scale, runs: usize) -> Vec<Comparison> {
    let mut out = Vec::new();
    for id in [DatasetId::Wiki, DatasetId::German] {
        let ds = generate(id, scale);
        for (d, s) in [(3u32, 2usize), (3, 3), (2, 2)] {
            if s <= ds.graph.num_layers() {
                out.push(compare_candidate_generation(&ds, d, s, runs));
            }
        }
    }
    out
}

/// Whether this host has a single hardware thread — the case where
/// 1-vs-N-worker wall-clock comparisons measure only scheduling overhead
/// and must be skipped rather than recorded as bogus sub-1× "speedups".
pub fn single_core() -> bool {
    detected_cores() == 1
}

/// The hardware thread count `available_parallelism` reports (1 when the
/// query fails) — recorded next to every `skipped_single_core` marker so a
/// skipped scaling group documents the host it was skipped on.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The human-readable reason attached to a skipped scaling group (empty
/// when the group actually ran).
fn scaling_skip_reason(skipped_single_core: bool) -> &'static str {
    if skipped_single_core {
        "single hardware thread: a 1-vs-N comparison measures scheduling overhead, not scaling"
    } else {
        ""
    }
}

/// The 1-vs-N-thread suite: every algorithm on the Wiki and German
/// analogues at a representative `(d, s)` each.
pub fn thread_scaling_suite(scale: Scale, runs: usize, threads: usize) -> Vec<ThreadScaling> {
    let mut out = Vec::new();
    for id in [DatasetId::Wiki, DatasetId::German] {
        let ds = generate(id, scale);
        let s = 2.min(ds.graph.num_layers());
        for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown] {
            out.push(compare_thread_scaling(&ds, algorithm, 3, s, threads, runs));
        }
    }
    out
}

/// The subtree-level task-graph suite: BU and TD on the configurations with
/// real search-tree width — `s = 3` (deep bottom-up fan-out) and, for TD,
/// additionally `s = l − 2` (the near-full-layer-set regime whose tree the
/// top-down search descends). These are the workloads where node-at-a-time
/// fork-join serialized sibling subtrees and the task graph does not.
pub fn subtree_scaling_suite(scale: Scale, runs: usize, threads: usize) -> Vec<ThreadScaling> {
    let mut out = Vec::new();
    for id in [DatasetId::Wiki, DatasetId::German] {
        let ds = generate(id, scale);
        let l = ds.graph.num_layers();
        let s = 3.min(l);
        for algorithm in [Algorithm::BottomUp, Algorithm::TopDown] {
            out.push(compare_thread_scaling(&ds, algorithm, 2, s, threads, runs));
        }
        if l >= 4 {
            out.push(compare_thread_scaling(&ds, Algorithm::TopDown, 2, l - 2, threads, runs));
        }
    }
    out
}

/// Measures where one end-to-end run's time goes, keeping the phase split
/// of the fastest of `runs` repetitions.
pub fn compare_phase_breakdown(
    ds: &Dataset,
    algorithm: Algorithm,
    d: u32,
    s: usize,
    runs: usize,
) -> PhaseBreakdown {
    let params = DccsParams::new(d, s, 10);
    let mut best: Option<PhaseBreakdown> = None;
    for _ in 0..runs.max(1) {
        let outcome = run_algorithm(algorithm, &ds.graph, &params, &DccsOptions::default());
        let total = outcome.seconds();
        if best.as_ref().is_some_and(|b| b.total_secs <= total) {
            continue;
        }
        let phase = &outcome.result.stats.phase;
        best = Some(PhaseBreakdown {
            dataset: format!("{:?}", ds.id),
            algorithm: outcome.algorithm.name(),
            d,
            s,
            preprocess_secs: phase.preprocess.as_secs_f64(),
            search_secs: phase.search.as_secs_f64(),
            select_secs: phase.select.as_secs_f64(),
            total_secs: total,
            complete: outcome.result.stats.complete,
        });
    }
    best.expect("at least one repetition runs")
}

/// The phase-breakdown suite: every algorithm on the Wiki and German
/// analogues at the thread-scaling suite's representative `(d, s)`.
pub fn phase_breakdown_suite(scale: Scale, runs: usize) -> Vec<PhaseBreakdown> {
    let mut out = Vec::new();
    for id in [DatasetId::Wiki, DatasetId::German] {
        let ds = generate(id, scale);
        let s = 2.min(ds.graph.num_layers());
        for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown] {
            out.push(compare_phase_breakdown(&ds, algorithm, 3, s, runs));
        }
    }
    out
}

/// The `Auto`-vs-fixed suite: the Wiki and German analogues over a small
/// and a large support threshold each, at the Fig. 13 default `k`.
pub fn auto_selection_suite(scale: Scale, runs: usize) -> Vec<AutoSelection> {
    let mut out = Vec::new();
    for id in [DatasetId::Wiki, DatasetId::German] {
        let ds = generate(id, scale);
        let l = ds.graph.num_layers();
        let small_s = 2.min(l);
        let large_s = l.saturating_sub(1).max(1);
        for s in [small_s, large_s] {
            out.push(compare_auto_selection(&ds, 3, s, 10, runs));
        }
    }
    out
}

/// Measures one serve-from-index configuration: index build time, artifact
/// size, and the repeat-query cost from the index vs from a fresh peel.
/// Both query paths run through warmed sessions (best of `runs` each), so
/// the comparison isolates candidate *derivation* — hierarchy lookup vs
/// re-peeling — not session setup.
pub fn compare_serve_from_index(
    ds: &Dataset,
    d: u32,
    s: usize,
    k: usize,
    runs: usize,
) -> ServeFromIndex {
    use dccs::{DccIndex, DccsSession, Serve};
    let g = &ds.graph;
    let params = DccsParams::new(d, s, k);

    let mut build_secs = f64::MAX;
    let mut index = None;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let built = DccIndex::build(g, &[d], s);
        build_secs = build_secs.min(start.elapsed().as_secs_f64());
        index = Some(built);
    }
    let index = index.expect("at least one build runs");
    let bytes = index.to_bytes().len();

    let mut peel_session = DccsSession::new(g);
    let mut query_peel_secs = f64::MAX;
    let mut peel_cover = 0;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let result = peel_session
            .query(params)
            .algorithm(Algorithm::Greedy)
            .serve(Serve::Peel)
            .run()
            .expect("peel query");
        query_peel_secs = query_peel_secs.min(start.elapsed().as_secs_f64());
        peel_cover = result.cover_size();
    }

    let mut index_session = DccsSession::new(g);
    index_session.attach_index(index).expect("index fits its own graph");
    let mut query_index_secs = f64::MAX;
    let mut index_cover = 0;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let result = index_session
            .query(params)
            .algorithm(Algorithm::Greedy)
            .serve(Serve::Index)
            .run()
            .expect("index query");
        query_index_secs = query_index_secs.min(start.elapsed().as_secs_f64());
        index_cover = result.cover_size();
    }
    assert_eq!(peel_cover, index_cover, "serve paths diverged on {:?} d={d} s={s}", ds.id);

    ServeFromIndex {
        dataset: format!("{:?}", ds.id),
        d,
        s,
        k,
        build_secs,
        bytes,
        query_peel_secs,
        query_index_secs,
        cover: peel_cover,
    }
}

/// The serve-from-index suite: the Wiki and German analogues at the
/// baseline grid's two representative `(d, s)` points, `k = 10`.
pub fn serve_from_index_suite(scale: Scale, runs: usize) -> Vec<ServeFromIndex> {
    let mut out = Vec::new();
    for id in [DatasetId::Wiki, DatasetId::German] {
        let ds = generate(id, scale);
        let l = ds.graph.num_layers();
        for (d, s) in [(3u32, 2usize.min(l)), (2, 3usize.min(l))] {
            out.push(compare_serve_from_index(&ds, d, s, 10, runs));
        }
    }
    out
}

/// Nearest-rank percentile of an ascending-sorted sample (0 on empty).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted_ms.len() as f64).ceil().max(1.0) as usize;
    sorted_ms[rank.min(sorted_ms.len()) - 1]
}

/// Measures one concurrent-service configuration: a `requests`-long mix
/// (four query shapes cycled, so every shape repeats and the result cache
/// gets hits) batched through a fresh [`dccs::QueryService`] at `workers`
/// width. A fresh service per repetition keeps the cache cold at the
/// start, so the recorded hit rate is the mix's intrinsic repeat rate, not
/// an artifact of earlier repetitions.
pub fn compare_concurrent_service(
    ds: &Dataset,
    workers: usize,
    requests: usize,
    runs: usize,
) -> ConcurrentService {
    use dccs::{QueryService, ServiceQuery};
    let g = &ds.graph;
    let l = g.num_layers().max(1);
    let shapes = [(3u32, 2usize, 10usize), (2, 2, 10), (3, 2, 5), (2, 3, 10)];
    let queries: Vec<ServiceQuery> = (0..requests)
        .map(|i| {
            let (d, s, k) = shapes[i % shapes.len()];
            ServiceQuery::new(DccsParams::new(d, s.min(l), k))
        })
        .collect();

    let mut best: Option<ConcurrentService> = None;
    for _ in 0..runs.max(1) {
        let opts = DccsOptions { threads: workers, ..DccsOptions::default() };
        let service = QueryService::new(g, opts);
        let start = Instant::now();
        let outcomes = service.run_batch(&queries).expect("bench mix is valid");
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_some_and(|b| b.secs <= secs) {
            continue;
        }
        let cover_sum = outcomes
            .iter()
            .map(|o| o.result.as_ref().expect("unlimited bench query").cover_size())
            .sum();
        let mut latencies: Vec<f64> =
            outcomes.iter().map(|o| o.latency.as_secs_f64() * 1e3).collect();
        latencies.sort_by(f64::total_cmp);
        let cache = service.cache_stats();
        best = Some(ConcurrentService {
            dataset: format!("{:?}", ds.id),
            workers,
            requests,
            secs,
            p50_ms: percentile(&latencies, 0.50),
            p95_ms: percentile(&latencies, 0.95),
            p99_ms: percentile(&latencies, 0.99),
            cache_hit_rate: cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64,
            cover_sum,
        });
    }
    best.expect("at least one repetition runs")
}

/// The concurrent-service suite: the Wiki and German analogues, each mix
/// at 1 worker vs `threads`, with the cover checksum asserted identical
/// across widths (the service's bit-identity contract).
pub fn concurrent_service_suite(
    scale: Scale,
    runs: usize,
    threads: usize,
) -> Vec<ConcurrentService> {
    let mut out = Vec::new();
    for id in [DatasetId::Wiki, DatasetId::German] {
        let ds = generate(id, scale);
        let one = compare_concurrent_service(&ds, 1, 16, runs);
        let many = compare_concurrent_service(&ds, threads, 16, runs);
        assert_eq!(
            one.cover_sum, many.cover_sum,
            "service answers diverged between 1 and {threads} workers on {id:?}"
        );
        out.push(one);
        out.push(many);
    }
    out
}

/// The temporal generator configuration matching the bench scale (the same
/// shape the CLI's `dccs apply --stream` drives).
fn temporal_config(scale: Scale) -> mlgraph::generators::TemporalConfig {
    use mlgraph::generators::TemporalConfig;
    let (num_vertices, num_layers, edges_per_layer, core_size) = match scale {
        Scale::Tiny => (150, 4, 450, 24),
        Scale::Small => (600, 6, 2400, 48),
        Scale::Full => (2000, 8, 8000, 80),
        Scale::Large => (8000, 8, 32000, 160),
    };
    TemporalConfig { num_vertices, num_layers, edges_per_layer, core_size, ..Default::default() }
}

/// Measures one incremental-maintenance configuration: `num_batches`
/// temporal batches of `batch_size` operations, committed through a warm
/// [`dccs::QueryService`] (one probe query materializes the shared `d`-core
/// tier, so every commit exercises the repair path) vs applied + re-peeled
/// from scratch per batch (every layer's `d`-core, the work a repair-less
/// service defers to its next query). The post-stream probe answer is
/// asserted identical on both graphs before timing is recorded.
pub fn compare_incremental_maintenance(
    scale: Scale,
    batch_size: usize,
    num_batches: usize,
    runs: usize,
) -> IncrementalMaintenance {
    use dccs::{DccsSession, QueryService, ServiceQuery};
    use mlgraph::generators::temporal_batches;
    use mlgraph::MultiLayerGraph;

    let config = temporal_config(scale);
    let (base, batches) =
        temporal_batches(&config, num_batches, batch_size).expect("bench temporal config is valid");
    let d = 3u32;
    let params = DccsParams::new(d, 2.min(base.num_layers()), 10);
    let edges: usize = batches.iter().map(mlgraph::EdgeBatch::len).sum();

    let mut incremental_secs = f64::MAX;
    let mut repaired_ds = 0usize;
    let mut service_cover = 0usize;
    for _ in 0..runs.max(1) {
        let service = QueryService::new(&base, DccsOptions::default());
        // Warm the shared tier: the probe materializes the d-core entries
        // the commits will repair (a cold service has nothing to maintain).
        service.query(&ServiceQuery::new(params)).expect("warm probe");
        let start = Instant::now();
        for batch in &batches {
            let receipt = service.commit(batch).expect("generated batches are valid");
            repaired_ds = repaired_ds.max(receipt.repaired_ds);
        }
        incremental_secs = incremental_secs.min(start.elapsed().as_secs_f64());
        service_cover =
            service.query(&ServiceQuery::new(params)).expect("post-stream probe").cover_size();
    }

    let mut recompute_secs = f64::MAX;
    let mut final_graph: Option<MultiLayerGraph> = None;
    for _ in 0..runs.max(1) {
        let mut mutated: Option<MultiLayerGraph> = None;
        let start = Instant::now();
        for batch in &batches {
            let src = mutated.as_ref().unwrap_or(&base);
            let (next, _) = src.apply_batch(batch).expect("generated batches are valid");
            // From-scratch tier rebuild: what the next query pays when the
            // commit throws the materialized cores away instead of
            // repairing them.
            let mut rebuilt = 0usize;
            for layer in 0..next.num_layers() {
                rebuilt += coreness::d_core(next.layer(layer), d).len();
            }
            std::hint::black_box(rebuilt);
            mutated = Some(next);
        }
        recompute_secs = recompute_secs.min(start.elapsed().as_secs_f64());
        final_graph = mutated;
    }

    let final_graph = final_graph.expect("at least one batch in the stream");
    let mut session = DccsSession::new(&final_graph);
    let fresh = session.query(params).run().expect("recompute probe");
    assert_eq!(
        service_cover,
        fresh.cover_size(),
        "incremental and recomputed answers diverged at batch_size {batch_size}"
    );

    IncrementalMaintenance {
        dataset: format!("Temporal-{scale:?}"),
        batch_size,
        batches: batches.len(),
        edges,
        repaired_ds,
        incremental_secs,
        recompute_secs,
        cover: service_cover,
    }
}

/// The incremental-maintenance suite: the temporal generator at the bench
/// scale, streamed at batch sizes 1, 16, and 256 (single-edge repairs,
/// small bursts, and bulk loads).
pub fn incremental_maintenance_suite(scale: Scale, runs: usize) -> Vec<IncrementalMaintenance> {
    [1usize, 16, 256]
        .iter()
        .map(|&batch_size| compare_incremental_maintenance(scale, batch_size, 4, runs))
        .collect()
}

/// Renders one scaling group: the single-core skip marker, the detected
/// core count and skip reason documenting the host, plus the measurements
/// (empty when skipped).
fn scaling_group_to_json(measurements: &[ThreadScaling], skipped_single_core: bool) -> Value {
    Value::object(vec![
        ("skipped_single_core", Value::from(skipped_single_core)),
        ("detected_cores", Value::from(detected_cores())),
        ("reason", Value::from(scaling_skip_reason(skipped_single_core))),
        ("measurements", Value::Array(measurements.iter().map(ThreadScaling::to_json).collect())),
    ])
}

/// Renders the suites as the `BENCH_dcc.json` document.
/// `scaling_skipped_single_core` marks the two scaling groups as skipped (their
/// measurement lists are then expected to be empty — see [`single_core`]).
#[allow(clippy::too_many_arguments)]
pub fn suite_to_json(
    scale: Scale,
    runs: usize,
    comparisons: &[Comparison],
    scaling: &[ThreadScaling],
    subtree: &[ThreadScaling],
    scaling_skipped_single_core: bool,
    auto: &[AutoSelection],
    kernels: &[KernelDispatch],
    phases: &[PhaseBreakdown],
    serve: &[ServeFromIndex],
    concurrent: &[ConcurrentService],
    incremental: &[IncrementalMaintenance],
    large: &[crate::large_scale::LargeScaleMeasurement],
) -> Value {
    let geomean = if comparisons.is_empty() {
        1.0
    } else {
        let log_sum: f64 = comparisons.iter().map(|c| c.speedup().ln()).sum();
        (log_sum / comparisons.len() as f64).exp()
    };
    let auto_geomean = if auto.is_empty() {
        1.0
    } else {
        let log_sum: f64 = auto.iter().map(|a| a.efficiency().ln()).sum();
        (log_sum / auto.len() as f64).exp()
    };
    let kernel_geomean = if kernels.is_empty() {
        1.0
    } else {
        let log_sum: f64 = kernels.iter().map(|k| k.speedup().ln()).sum();
        (log_sum / kernels.len() as f64).exp()
    };
    let serve_geomean = if serve.is_empty() {
        1.0
    } else {
        let log_sum: f64 = serve.iter().map(|s| s.speedup().ln()).sum();
        (log_sum / serve.len() as f64).exp()
    };
    let incremental_geomean = if incremental.is_empty() {
        1.0
    } else {
        let log_sum: f64 = incremental.iter().map(|m| m.speedup().ln()).sum();
        (log_sum / incremental.len() as f64).exp()
    };
    Value::object(vec![
        ("benchmark", Value::from("dcc_candidate_generation_engine_vs_naive")),
        ("scale", Value::from(format!("{scale:?}"))),
        ("runs_per_measurement", Value::from(runs)),
        ("geomean_speedup", Value::from(geomean)),
        ("auto_selection_efficiency_geomean", Value::from(auto_geomean)),
        ("selected_kernel", Value::from(mlgraph::kernels::kernel().kind().name())),
        ("kernel_dispatch_speedup_geomean", Value::from(kernel_geomean)),
        ("serve_from_index_speedup_geomean", Value::from(serve_geomean)),
        ("incremental_maintenance_speedup_geomean", Value::from(incremental_geomean)),
        ("comparisons", Value::Array(comparisons.iter().map(Comparison::to_json).collect())),
        ("thread_scaling", scaling_group_to_json(scaling, scaling_skipped_single_core)),
        ("subtree_scaling", scaling_group_to_json(subtree, scaling_skipped_single_core)),
        ("auto_selection", Value::Array(auto.iter().map(AutoSelection::to_json).collect())),
        ("kernel_dispatch", Value::Array(kernels.iter().map(KernelDispatch::to_json).collect())),
        ("phase_breakdown", Value::Array(phases.iter().map(PhaseBreakdown::to_json).collect())),
        ("serve_from_index", Value::Array(serve.iter().map(ServeFromIndex::to_json).collect())),
        (
            "concurrent_service",
            Value::object(vec![
                ("skipped_single_core", Value::from(scaling_skipped_single_core)),
                ("detected_cores", Value::from(detected_cores())),
                ("reason", Value::from(scaling_skip_reason(scaling_skipped_single_core))),
                (
                    "measurements",
                    Value::Array(concurrent.iter().map(ConcurrentService::to_json).collect()),
                ),
            ]),
        ),
        (
            "incremental_maintenance",
            Value::Array(incremental.iter().map(IncrementalMaintenance::to_json).collect()),
        ),
        (
            "large_scale",
            Value::Array(
                large.iter().map(crate::large_scale::LargeScaleMeasurement::to_json).collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_and_naive_agree_and_record_json() {
        let ds = generate(DatasetId::German, Scale::Tiny);
        let cmp = compare_candidate_generation(&ds, 2, 2, 1);
        assert!(cmp.engine_secs > 0.0 && cmp.naive_secs > 0.0);
        assert!(cmp.candidates > 0);
        let json = suite_to_json(
            Scale::Tiny,
            1,
            &[cmp],
            &[],
            &[],
            false,
            &[],
            &[],
            &[],
            &[],
            &[],
            &[],
            &[],
        );
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"geomean_speedup\""));
        assert!(text.contains("\"dataset\": \"German\""));
        assert!(text.contains("\"index_path\""));
        assert!(text.contains("\"thread_scaling\""));
        assert!(text.contains("\"subtree_scaling\""));
        assert!(text.contains("\"auto_selection\""));
    }

    /// On a single-core host the scaling groups carry the skip marker (and
    /// no measurements); on a multi-core host the marker is false. Either
    /// way both groups are present in the document.
    #[test]
    fn scaling_groups_record_the_single_core_skip() {
        let json =
            suite_to_json(Scale::Tiny, 1, &[], &[], &[], true, &[], &[], &[], &[], &[], &[], &[]);
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"skipped_single_core\": true"));
        assert!(text.contains("\"detected_cores\""));
        assert!(text.contains("single hardware thread"));
        let json =
            suite_to_json(Scale::Tiny, 1, &[], &[], &[], false, &[], &[], &[], &[], &[], &[], &[]);
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"skipped_single_core\": false"));
        assert!(text.contains("\"detected_cores\""));
        assert!(text.contains("\"reason\": \"\""));
        assert!(text.contains("\"subtree_scaling\""));
        assert!(text.contains("\"large_scale\""));
    }

    #[test]
    fn auto_selection_is_measured_and_recorded() {
        let ds = generate(DatasetId::German, Scale::Tiny);
        let auto = compare_auto_selection(&ds, 2, 2, 5, 1);
        assert!(auto.auto_secs > 0.0);
        assert_eq!(auto.fixed_secs.len(), 3);
        assert_ne!(auto.chosen, "AUTO", "auto must resolve to a concrete algorithm");
        assert!(auto.fixed_secs.iter().any(|&(name, _)| name == auto.chosen));
        assert!(auto.efficiency() > 0.0);
        let text = serde_json::to_string_pretty(&auto.to_json());
        assert!(text.contains("\"chosen\""));
        assert!(text.contains("\"efficiency\""));
    }

    #[test]
    fn phase_breakdown_is_measured_and_recorded() {
        let ds = generate(DatasetId::German, Scale::Tiny);
        let p = compare_phase_breakdown(&ds, Algorithm::BottomUp, 2, 2, 1);
        assert!(p.complete, "an unlimited bench run must finish");
        assert!(p.total_secs > 0.0);
        // The three phases partition the run (modulo dispatch overhead):
        // their sum cannot exceed the end-to-end wall clock.
        assert!(p.preprocess_secs + p.search_secs + p.select_secs <= p.total_secs);
        let json =
            suite_to_json(Scale::Tiny, 1, &[], &[], &[], false, &[], &[], &[p], &[], &[], &[], &[]);
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"phase_breakdown\""));
        assert!(text.contains("\"preprocess_secs\""));
        assert!(text.contains("\"search_secs\""));
        assert!(text.contains("\"select_secs\""));
        assert!(text.contains("\"complete\": true"));
    }

    #[test]
    fn kernel_dispatch_is_measured_and_recorded() {
        let kernels = kernel_dispatch_suite(1);
        assert!(!kernels.is_empty());
        for k in &kernels {
            assert!(k.scalar_secs > 0.0 && k.dispatched_secs > 0.0, "{}", k.op);
            assert!(k.speedup() > 0.0);
        }
        let json = suite_to_json(
            Scale::Tiny,
            1,
            &[],
            &[],
            &[],
            false,
            &[],
            &kernels,
            &[],
            &[],
            &[],
            &[],
            &[],
        );
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"selected_kernel\""));
        assert!(text.contains("\"kernel_dispatch\""));
        assert!(text.contains("\"kernel_dispatch_speedup_geomean\""));
        assert!(text.contains("\"and_count\""));
    }

    #[test]
    fn serve_from_index_is_measured_and_recorded() {
        let ds = generate(DatasetId::German, Scale::Tiny);
        let m = compare_serve_from_index(&ds, 2, 2, 5, 1);
        assert!(m.build_secs > 0.0);
        assert!(m.bytes > 0);
        assert!(m.query_peel_secs > 0.0 && m.query_index_secs > 0.0);
        assert!(m.speedup() > 0.0);
        let json =
            suite_to_json(Scale::Tiny, 1, &[], &[], &[], false, &[], &[], &[], &[m], &[], &[], &[]);
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"serve_from_index\""));
        assert!(text.contains("\"serve_from_index_speedup_geomean\""));
        assert!(text.contains("\"build_secs\""));
        assert!(text.contains("\"query_index_secs\""));
    }

    #[test]
    fn concurrent_service_is_measured_and_recorded() {
        let ds = generate(DatasetId::German, Scale::Tiny);
        let one = compare_concurrent_service(&ds, 1, 8, 1);
        let two = compare_concurrent_service(&ds, 2, 8, 1);
        assert_eq!(one.cover_sum, two.cover_sum, "answers must not depend on width");
        assert!(one.secs > 0.0 && two.secs > 0.0);
        assert!(one.qps() > 0.0);
        // Eight requests over four shapes repeat each shape once: half the
        // cache-eligible queries must have hit.
        assert!(one.cache_hit_rate >= 0.5, "hit rate {}", one.cache_hit_rate);
        assert!(one.p50_ms <= one.p95_ms && one.p95_ms <= one.p99_ms);
        let json = suite_to_json(
            Scale::Tiny,
            1,
            &[],
            &[],
            &[],
            false,
            &[],
            &[],
            &[],
            &[],
            &[one],
            &[],
            &[],
        );
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"concurrent_service\""));
        assert!(text.contains("\"qps\""));
        assert!(text.contains("\"p99_ms\""));
        assert!(text.contains("\"cache_hit_rate\""));
    }

    #[test]
    fn incremental_maintenance_is_measured_and_recorded() {
        let m = compare_incremental_maintenance(Scale::Tiny, 8, 2, 1);
        assert_eq!(m.batches, 2);
        assert_eq!(m.edges, 16, "the generator fills every batch at tiny scale");
        assert!(m.repaired_ds >= 1, "the warm probe must materialize a tier to repair");
        assert!(m.incremental_secs > 0.0 && m.recompute_secs > 0.0);
        assert!(m.updates_per_sec() > 0.0);
        let json =
            suite_to_json(Scale::Tiny, 1, &[], &[], &[], false, &[], &[], &[], &[], &[], &[m], &[]);
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"incremental_maintenance\""));
        assert!(text.contains("\"incremental_maintenance_speedup_geomean\""));
        assert!(text.contains("\"updates_per_sec\""));
        assert!(text.contains("\"batch_size\": 8"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let ms: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&ms, 0.50), 50.0);
        assert_eq!(percentile(&ms, 0.95), 95.0);
        assert_eq!(percentile(&ms, 0.99), 99.0);
    }

    #[test]
    fn thread_scaling_is_deterministic_and_recorded() {
        let ds = generate(DatasetId::German, Scale::Tiny);
        let ts = compare_thread_scaling(&ds, Algorithm::BottomUp, 2, 2, 2, 1);
        assert!(ts.secs_1 > 0.0 && ts.secs_n > 0.0);
        let json = ts.to_json();
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"algorithm\": \"BU-DCCS\""));
        assert!(text.contains("\"threads\": 2"));
    }
}
