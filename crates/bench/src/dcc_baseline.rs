//! Engine-vs-naive baseline measurement for the `dCC` peeling engine,
//! recorded as `BENCH_dcc.json` by the `bench_dcc` binary.
//!
//! Two code paths are compared on a synthetic benchmark graph:
//!
//! * **engine** — the subset-lattice candidate generation: prefix-seeded
//!   peels on a reused [`PeelWorkspace`] (the post-refactor hot path of
//!   `GD-DCCS`);
//! * **naive** — the pre-refactor path: per layer subset, intersect the
//!   memoized per-layer d-cores and run the per-call-allocating reference
//!   peel [`coreness::d_coherent_core_naive`].
//!
//! Both paths produce identical candidate cores (checksummed to make sure);
//! only the time differs.

use coreness::PeelWorkspace;
use datasets::{generate, Dataset, DatasetId, Scale};
use dccs::layer_subsets::combinations;
use dccs::preprocess::preprocess;
use dccs::{DccsOptions, DccsParams};
use serde_json::Value;
use std::time::Instant;

/// One engine-vs-naive comparison at fixed `(dataset, d, s)`.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Dataset analogue name.
    pub dataset: String,
    /// Degree threshold.
    pub d: u32,
    /// Layer-subset size.
    pub s: usize,
    /// `C(l, s)` candidates generated per run.
    pub candidates: usize,
    /// Best-of-N wall time of the lattice + workspace engine, seconds.
    pub engine_secs: f64,
    /// Best-of-N wall time of the pre-refactor path, seconds.
    pub naive_secs: f64,
    /// Checksum over emitted cores (must match between the two paths).
    pub checksum: u64,
}

impl Comparison {
    /// `naive_secs / engine_secs`.
    pub fn speedup(&self) -> f64 {
        self.naive_secs / self.engine_secs
    }

    /// Renders the comparison as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("d", Value::from(self.d)),
            ("s", Value::from(self.s)),
            ("candidates", Value::from(self.candidates)),
            ("engine_secs", Value::from(self.engine_secs)),
            ("naive_secs", Value::from(self.naive_secs)),
            ("speedup", Value::from(self.speedup())),
        ])
    }
}

fn best_of<F: FnMut() -> u64>(runs: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        checksum = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, checksum)
}

/// Measures engine vs naive candidate generation on `ds` at `(d, s)`,
/// taking the best of `runs` timed repetitions per path.
///
/// # Panics
///
/// Panics if the two paths emit different cores (they never should; this is
/// the bench double-checking the equivalence the property tests prove).
pub fn compare_candidate_generation(ds: &Dataset, d: u32, s: usize, runs: usize) -> Comparison {
    let params = DccsParams::new(d, s, 10);
    let pre = preprocess(&ds.graph, &params, &DccsOptions::default());
    let l = ds.graph.num_layers();

    let mut ws = PeelWorkspace::new();
    let (engine_secs, engine_sum) = best_of(runs, || {
        let mut checksum = 0u64;
        dccs::for_each_subset_core(&ds.graph, d, s, &pre.layer_cores, &mut ws, |_, core| {
            for v in core.iter() {
                checksum = checksum.wrapping_mul(31).wrapping_add(v as u64 + 1);
            }
        });
        checksum
    });

    let (naive_secs, naive_sum) = best_of(runs, || {
        let mut checksum = 0u64;
        for subset in combinations(l, s) {
            let mut candidate = pre.layer_cores[subset[0]].clone();
            for &i in &subset[1..] {
                candidate.intersect_with(&pre.layer_cores[i]);
            }
            let core = coreness::d_coherent_core_naive(&ds.graph, &subset, d, &candidate);
            for v in core.iter() {
                checksum = checksum.wrapping_mul(31).wrapping_add(v as u64 + 1);
            }
        }
        checksum
    });

    assert_eq!(engine_sum, naive_sum, "engine and naive paths disagree on the emitted cores");
    Comparison {
        dataset: format!("{:?}", ds.id),
        d,
        s,
        candidates: combinations(l, s).count(),
        engine_secs,
        naive_secs,
        checksum: engine_sum,
    }
}

/// The standard baseline suite recorded in `BENCH_dcc.json`: the Wiki and
/// German analogues at the bench scale, over a small `(d, s)` grid.
pub fn baseline_suite(scale: Scale, runs: usize) -> Vec<Comparison> {
    let mut out = Vec::new();
    for id in [DatasetId::Wiki, DatasetId::German] {
        let ds = generate(id, scale);
        for (d, s) in [(3u32, 2usize), (3, 3), (2, 2)] {
            if s <= ds.graph.num_layers() {
                out.push(compare_candidate_generation(&ds, d, s, runs));
            }
        }
    }
    out
}

/// Renders a suite as the `BENCH_dcc.json` document.
pub fn suite_to_json(scale: Scale, runs: usize, comparisons: &[Comparison]) -> Value {
    let geomean = if comparisons.is_empty() {
        1.0
    } else {
        let log_sum: f64 = comparisons.iter().map(|c| c.speedup().ln()).sum();
        (log_sum / comparisons.len() as f64).exp()
    };
    Value::object(vec![
        ("benchmark", Value::from("dcc_candidate_generation_engine_vs_naive")),
        ("scale", Value::from(format!("{scale:?}"))),
        ("runs_per_measurement", Value::from(runs)),
        ("geomean_speedup", Value::from(geomean)),
        ("comparisons", Value::Array(comparisons.iter().map(Comparison::to_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_and_naive_agree_and_record_json() {
        let ds = generate(DatasetId::German, Scale::Tiny);
        let cmp = compare_candidate_generation(&ds, 2, 2, 1);
        assert!(cmp.engine_secs > 0.0 && cmp.naive_secs > 0.0);
        assert!(cmp.candidates > 0);
        let json = suite_to_json(Scale::Tiny, 1, &[cmp]);
        let text = serde_json::to_string_pretty(&json);
        assert!(text.contains("\"geomean_speedup\""));
        assert!(text.contains("\"dataset\": \"German\""));
    }
}
