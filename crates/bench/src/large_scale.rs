//! The million-vertex bench tier: end-to-end generation, preprocessing,
//! and warm-session query throughput on streaming Chung–Lu graphs, with
//! peak-RSS and allocator-peak memory accounting.
//!
//! The standard `BENCH_dcc.json` groups measure the engine on paper-scale
//! analogues (hundreds to tens of thousands of vertices). This tier drives
//! the full query path — candidate-universe construction, the three-regime
//! index cost model (flat dense / compressed containers / CSR), and the
//! peel cascade — on graphs of 10^6+ vertices and 10^7+ edges, where the
//! compressed-bitset index regime is the one that actually fires.
//!
//! Memory is accounted two ways, both best-effort:
//!
//! * **peak RSS** — `VmHWM` from `/proc/self/status` (0 where absent), the
//!   OS-observed high-water mark of the whole process;
//! * **peak allocated bytes** — a counting [`std::alloc::GlobalAlloc`]
//!   wrapper installed by the `bench_dcc` binary through
//!   [`install_alloc_probe`] (0 when no probe is installed, e.g. under
//!   `cargo test`, where the library cannot own the global allocator).

use dccs::{Algorithm, DccsParams, DccsSession, IndexPath};
use mlgraph::generators::{chung_lu_layers, ChungLuConfig};
use mlgraph::MultiLayerGraph;
use serde_json::Value;
use std::sync::OnceLock;
use std::time::Instant;

/// Hooks into a counting global allocator owned by the host binary. The
/// library cannot install a `#[global_allocator]` itself (it forbids
/// `unsafe`, and a library-owned allocator would impose the tracking tax
/// on every dependent); the binary installs one and hands these two
/// function pointers over before running the suite.
#[derive(Clone, Copy)]
pub struct AllocProbe {
    /// Resets the allocator's peak counter to its current level.
    pub reset_peak: fn(),
    /// Reads the peak allocated-bytes counter.
    pub peak_bytes: fn() -> usize,
}

static ALLOC_PROBE: OnceLock<AllocProbe> = OnceLock::new();

/// Installs the binary's allocator probe. Later calls are ignored (the
/// first probe wins); the suite works without one, recording 0.
pub fn install_alloc_probe(probe: AllocProbe) {
    let _ = ALLOC_PROBE.set(probe);
}

fn reset_alloc_peak() {
    if let Some(probe) = ALLOC_PROBE.get() {
        (probe.reset_peak)();
    }
}

fn alloc_peak_bytes() -> usize {
    ALLOC_PROBE.get().map_or(0, |probe| (probe.peak_bytes)())
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where the proc file is absent or unreadable.
pub fn peak_rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: usize = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One large-scale measurement: a query shape driven through a warm
/// [`DccsSession`] on one generated graph, with the graph-shape, timing,
/// and memory columns the tier exists to record.
#[derive(Clone, Debug)]
pub struct LargeScaleMeasurement {
    /// Graph name (generator + shape).
    pub dataset: String,
    /// Number of vertices.
    pub vertices: usize,
    /// Number of layers.
    pub layers: usize,
    /// Total edge count summed over layers.
    pub edges: usize,
    /// Degree threshold.
    pub d: u32,
    /// Layer-subset size.
    pub s: usize,
    /// Result budget.
    pub k: usize,
    /// Wall time of graph generation, seconds (shared across the
    /// measurements on one graph).
    pub generate_secs: f64,
    /// Preprocessing (vertex deletion + per-layer core fixpoints) wall
    /// time of the cold query, seconds.
    pub preprocess_secs: f64,
    /// Wall time of the cold (first) query, seconds.
    pub cold_query_secs: f64,
    /// Number of warm queries timed.
    pub warm_queries: usize,
    /// Total wall time of the warm queries, seconds.
    pub warm_secs: f64,
    /// `|Cov(R)|` of the answer (identical cold and warm).
    pub cover: usize,
    /// Adjacency representation the cost model picked (greedy records it).
    pub index_path: IndexPath,
    /// Heap bytes of the peeled adjacency index ([`dccs::SearchStats`]).
    pub index_bytes: usize,
    /// Capacity bytes of the peel workspace scratch buffers.
    pub peel_scratch_bytes: usize,
    /// Process peak RSS in bytes after the queries (0 where unavailable).
    pub peak_rss_bytes: usize,
    /// Peak allocated bytes over generation + queries (0 without a probe).
    pub peak_alloc_bytes: usize,
}

impl LargeScaleMeasurement {
    /// Warm queries answered per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.warm_secs <= 0.0 {
            return 0.0;
        }
        self.warm_queries as f64 / self.warm_secs
    }

    /// Renders the measurement as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("dataset", Value::from(self.dataset.as_str())),
            ("vertices", Value::from(self.vertices)),
            ("layers", Value::from(self.layers)),
            ("edges", Value::from(self.edges)),
            ("d", Value::from(self.d)),
            ("s", Value::from(self.s)),
            ("k", Value::from(self.k)),
            ("generate_secs", Value::from(self.generate_secs)),
            ("preprocess_secs", Value::from(self.preprocess_secs)),
            ("cold_query_secs", Value::from(self.cold_query_secs)),
            ("warm_queries", Value::from(self.warm_queries)),
            ("warm_secs", Value::from(self.warm_secs)),
            ("throughput_qps", Value::from(self.throughput_qps())),
            ("cover", Value::from(self.cover)),
            ("index_path", Value::from(format!("{:?}", self.index_path))),
            ("index_bytes", Value::from(self.index_bytes)),
            ("peel_scratch_bytes", Value::from(self.peel_scratch_bytes)),
            ("peak_rss_bytes", Value::from(self.peak_rss_bytes)),
            ("peak_alloc_bytes", Value::from(self.peak_alloc_bytes)),
        ])
    }
}

/// Total edge count summed over the graph's layers.
fn total_edges(g: &MultiLayerGraph) -> usize {
    g.layers().iter().map(mlgraph::Csr::num_edges).sum()
}

/// Drives one query shape through a warm session on `g`: one cold query
/// (whose phase split yields the preprocessing fixpoint cost), then
/// `warm_queries` timed repeats asserted to return the same cover. The
/// greedy algorithm is pinned — it is the one that peels through the
/// engine's three-regime adjacency index, so its stats carry the
/// `index_path` / `index_bytes` columns this tier exists to observe.
pub fn measure_large_scale(
    g: &MultiLayerGraph,
    dataset: &str,
    generate_secs: f64,
    d: u32,
    s: usize,
    k: usize,
    warm_queries: usize,
) -> LargeScaleMeasurement {
    let params = DccsParams::new(d, s.min(g.num_layers()).max(1), k);
    let mut session = DccsSession::new(g);

    let cold_start = Instant::now();
    let cold = session
        .query(params)
        .algorithm(Algorithm::Greedy)
        .run()
        .expect("unlimited large-scale bench query");
    let cold_query_secs = cold_start.elapsed().as_secs_f64();

    let warm_queries = warm_queries.max(1);
    let warm_start = Instant::now();
    for _ in 0..warm_queries {
        let warm = session
            .query(params)
            .algorithm(Algorithm::Greedy)
            .run()
            .expect("unlimited large-scale bench query");
        assert_eq!(
            warm.cover_size(),
            cold.cover_size(),
            "warm answers diverged from the cold query on {dataset}"
        );
    }
    let warm_secs = warm_start.elapsed().as_secs_f64();

    LargeScaleMeasurement {
        dataset: dataset.to_string(),
        vertices: g.num_vertices(),
        layers: g.num_layers(),
        edges: total_edges(g),
        d,
        s: params.s,
        k,
        generate_secs,
        preprocess_secs: cold.stats.phase.preprocess.as_secs_f64(),
        cold_query_secs,
        warm_queries,
        warm_secs,
        cover: cold.cover_size(),
        index_path: cold.stats.index_path.unwrap_or(IndexPath::Csr),
        index_bytes: cold.stats.index_bytes,
        peel_scratch_bytes: cold.stats.peel_scratch_bytes,
        peak_rss_bytes: peak_rss_bytes(),
        peak_alloc_bytes: alloc_peak_bytes(),
    }
}

/// The Chung–Lu shape of the tier at `vertices`: 3 layers at average
/// degree 7, so the flagship 10^6-vertex run carries ≥ 10^7 edges total
/// and the candidate universe overflows the flat dense-row word budget
/// into the compressed-container regime.
pub fn large_scale_config(vertices: usize) -> ChungLuConfig {
    ChungLuConfig {
        num_vertices: vertices.max(64),
        num_layers: 3,
        avg_degree: 7.0,
        exponent: 2.5,
        layer_jitter: 0.2,
        seed: 0xDCC,
    }
}

/// The large-scale suite: one streaming Chung–Lu graph at `vertices`,
/// measured under two query shapes (a 2-layer-subset sweep and the
/// full-layer-set query). Generation is timed once and the allocator peak
/// spans generation plus all queries of the run.
pub fn large_scale_suite(vertices: usize, warm_queries: usize) -> Vec<LargeScaleMeasurement> {
    reset_alloc_peak();
    let config = large_scale_config(vertices);
    let gen_start = Instant::now();
    let g = chung_lu_layers(&config).expect("large-scale Chung-Lu config is valid");
    let generate_secs = gen_start.elapsed().as_secs_f64();
    let name = format!("ChungLu-{}x{}", g.num_vertices(), g.num_layers());
    [(3u32, 2usize, 8usize), (2, 3, 8)]
        .iter()
        .map(|&(d, s, k)| measure_large_scale(&g, &name, generate_secs, d, s, k, warm_queries))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_or_degrades_gracefully() {
        // On Linux the proc file exists and the process certainly holds
        // more than a page; elsewhere the probe must return 0, not panic.
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 4096, "VmHWM should exceed a page, got {rss}");
        }
    }

    #[test]
    fn suite_measures_a_small_graph_end_to_end() {
        let measurements = large_scale_suite(2_000, 2);
        assert_eq!(measurements.len(), 2);
        for m in &measurements {
            assert_eq!(m.vertices, 2_000);
            assert_eq!(m.layers, 3);
            assert!(m.edges > 2_000, "average degree 7 implies edges >> n");
            assert!(m.generate_secs > 0.0 && m.cold_query_secs > 0.0);
            assert!(m.warm_secs > 0.0 && m.throughput_qps() > 0.0);
            assert_eq!(m.warm_queries, 2);
            // No probe installed under cargo test: allocator peak reads 0.
            assert_eq!(m.peak_alloc_bytes, 0);
            let text = serde_json::to_string_pretty(&m.to_json());
            assert!(text.contains("\"throughput_qps\""));
            assert!(text.contains("\"index_path\""));
            assert!(text.contains("\"peak_rss_bytes\""));
            assert!(text.contains("\"peak_alloc_bytes\""));
        }
    }

    #[test]
    fn flagship_config_clears_the_paper_scale_floor() {
        let config = large_scale_config(1_000_000);
        let per_layer = (config.num_vertices as f64 * config.avg_degree / 2.0).round() as usize;
        assert!(config.num_vertices >= 1_000_000);
        assert!(
            per_layer * config.num_layers >= 10_000_000,
            "the 10^6-vertex run must target at least 10^7 edges"
        );
    }
}
