//! # dccs-bench — experiment harness
//!
//! Reusable pieces shared by the experiment binaries in `src/bin/`, each of
//! which regenerates one group of tables/figures from the paper's Section VI
//! (see `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for the
//! recorded outputs).
//!
//! * [`sweeps`] — the parameter grid of Fig. 13.
//! * [`dcc_baseline`] — engine-vs-naive measurement of the peeling engine,
//!   recorded as `BENCH_dcc.json` by the `bench_dcc` binary.
//! * [`large_scale`] — the million-vertex tier: generation, preprocessing,
//!   and warm-session query throughput with memory accounting.
//! * [`runner`] — uniform invocation of the three DCCS algorithms with
//!   timing and search statistics.
//! * [`table`] — plain-text table rendering and CSV emission.
//! * [`cli`] — the tiny flag parser shared by the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod dcc_baseline;
pub mod large_scale;
pub mod runner;
pub mod sweeps;
pub mod table;

pub use cli::ExperimentArgs;
pub use runner::{run_algorithm, run_sweep, Algorithm, RunOutcome};
pub use sweeps::ParameterGrid;
pub use table::Table;
