//! Uniform invocation of the three DCCS algorithms.

use dccs::{
    bottom_up_dccs_with_options, greedy_dccs_with_options, top_down_dccs_with_options, DccsOptions,
    DccsParams, DccsResult,
};
use mlgraph::MultiLayerGraph;
use std::time::Duration;

/// The three algorithms evaluated in Section VI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// `GD-DCCS` (Fig. 2).
    Greedy,
    /// `BU-DCCS` (Fig. 7).
    BottomUp,
    /// `TD-DCCS` (Fig. 11).
    TopDown,
}

impl Algorithm {
    /// The paper's name for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Greedy => "GD-DCCS",
            Algorithm::BottomUp => "BU-DCCS",
            Algorithm::TopDown => "TD-DCCS",
        }
    }

    /// Parses an algorithm name (several aliases accepted).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "gd" | "greedy" | "gd-dccs" => Some(Algorithm::Greedy),
            "bu" | "bottom-up" | "bottomup" | "bu-dccs" => Some(Algorithm::BottomUp),
            "td" | "top-down" | "topdown" | "td-dccs" => Some(Algorithm::TopDown),
            _ => None,
        }
    }
}

/// One measured run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The parameters of the run.
    pub params: DccsParams,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// `|Cov(R)|`.
    pub cover_size: usize,
    /// Number of candidate d-CCs whose core was computed.
    pub candidates: usize,
    /// Total core computations.
    pub dcc_calls: usize,
    /// Subtrees pruned.
    pub pruned: usize,
    /// The full result (cores etc.).
    pub result: DccsResult,
}

impl RunOutcome {
    /// Seconds as a float, convenient for tables.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Runs one algorithm with the given options and collects the outcome.
///
/// The options' `threads` knob selects the shared executor's width for every
/// algorithm (see `dccs::engine`); results are identical at any thread
/// count, so bench sweeps can vary it freely without re-validating outputs.
pub fn run_algorithm(
    algorithm: Algorithm,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> RunOutcome {
    let result = match algorithm {
        Algorithm::Greedy => greedy_dccs_with_options(g, params, opts),
        Algorithm::BottomUp => bottom_up_dccs_with_options(g, params, opts),
        Algorithm::TopDown => top_down_dccs_with_options(g, params, opts),
    };
    RunOutcome {
        algorithm,
        params: *params,
        elapsed: result.elapsed,
        cover_size: result.cover_size(),
        candidates: result.stats.candidates_generated,
        dcc_calls: result.stats.dcc_calls,
        pruned: result.stats.subtrees_pruned,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{generate, DatasetId, Scale};

    #[test]
    fn algorithm_parsing_and_names() {
        assert_eq!(Algorithm::parse("bu"), Some(Algorithm::BottomUp));
        assert_eq!(Algorithm::parse("GD-DCCS"), Some(Algorithm::Greedy));
        assert_eq!(Algorithm::parse("topdown"), Some(Algorithm::TopDown));
        assert_eq!(Algorithm::parse("x"), None);
        assert_eq!(Algorithm::BottomUp.name(), "BU-DCCS");
    }

    #[test]
    fn all_three_algorithms_run_on_a_tiny_dataset() {
        let ds = generate(DatasetId::Ppi, Scale::Tiny);
        let params = DccsParams::new(2, 2, 5);
        let opts = DccsOptions::default();
        let gd = run_algorithm(Algorithm::Greedy, &ds.graph, &params, &opts);
        let bu = run_algorithm(Algorithm::BottomUp, &ds.graph, &params, &opts);
        let td = run_algorithm(Algorithm::TopDown, &ds.graph, &params, &opts);
        assert!(gd.cover_size > 0);
        assert!(bu.cover_size > 0);
        assert!(td.cover_size > 0);
        // The approximation algorithms stay within the usual band of greedy.
        assert!(4 * bu.cover_size >= gd.cover_size);
        assert!(4 * td.cover_size >= gd.cover_size);
        assert!(gd.candidates >= bu.candidates);
    }

    #[test]
    fn threads_knob_does_not_change_any_outcome() {
        let ds = generate(DatasetId::Ppi, Scale::Tiny);
        let params = DccsParams::new(2, 2, 5);
        for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown] {
            let seq = run_algorithm(algorithm, &ds.graph, &params, &DccsOptions::default());
            let par = run_algorithm(algorithm, &ds.graph, &params, &DccsOptions::with_threads(3));
            assert_eq!(seq.cover_size, par.cover_size, "{}", algorithm.name());
            assert_eq!(seq.result.stats, par.result.stats, "{}", algorithm.name());
        }
    }
}
