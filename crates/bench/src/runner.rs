//! Uniform invocation of the DCCS algorithms through the session API.

use dccs::{DccsOptions, DccsParams, DccsResult, DccsSession, QuerySpec};
use mlgraph::MultiLayerGraph;
use std::time::Duration;

pub use dccs::Algorithm;

/// One measured run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Which algorithm ran. When the query was submitted as
    /// [`Algorithm::Auto`] this is the *resolved* algorithm (pulled from
    /// [`dccs::SearchStats::algorithm`]).
    pub algorithm: Algorithm,
    /// The parameters of the run.
    pub params: DccsParams,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// `|Cov(R)|`.
    pub cover_size: usize,
    /// Number of candidate d-CCs whose core was computed.
    pub candidates: usize,
    /// Total core computations.
    pub dcc_calls: usize,
    /// Subtrees pruned.
    pub pruned: usize,
    /// The full result (cores etc.).
    pub result: DccsResult,
}

impl RunOutcome {
    /// Seconds as a float, convenient for tables.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    fn from_result(spec: QuerySpec, result: DccsResult) -> Self {
        RunOutcome {
            algorithm: result.stats.algorithm.unwrap_or(spec.algorithm),
            params: spec.params,
            elapsed: result.elapsed,
            cover_size: result.cover_size(),
            candidates: result.stats.candidates_generated,
            dcc_calls: result.stats.dcc_calls,
            pruned: result.stats.subtrees_pruned,
            result,
        }
    }
}

/// Runs one algorithm with the given options and collects the outcome — a
/// one-shot [`DccsSession`] query.
///
/// The options' `threads` knob selects the shared executor's width for every
/// algorithm (see `dccs::engine`); results are identical at any thread
/// count, so bench sweeps can vary it freely without re-validating outputs.
///
/// # Panics
///
/// Panics when the query is invalid for the graph (the experiment harness
/// controls its own inputs, so an invalid spec is a harness bug).
pub fn run_algorithm(
    algorithm: Algorithm,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> RunOutcome {
    let spec = QuerySpec::new(*params).with_algorithm(algorithm);
    let result = DccsSession::with_options(g, *opts)
        .query(*params)
        .algorithm(algorithm)
        .run()
        .unwrap_or_else(|err| panic!("bench query {params:?} failed: {err}"));
    RunOutcome::from_result(spec, result)
}

/// Runs a whole sweep through one reused [`DccsSession`] (and, with
/// `opts.threads > 1`, one worker crew via [`DccsSession::run_batch`]),
/// returning one outcome per spec in order.
///
/// # Panics
///
/// Panics when any spec is invalid for the graph.
pub fn run_sweep(g: &MultiLayerGraph, specs: &[QuerySpec], opts: &DccsOptions) -> Vec<RunOutcome> {
    let mut session = DccsSession::with_options(g, *opts);
    let results =
        session.run_batch(specs).unwrap_or_else(|err| panic!("bench sweep failed: {err}"));
    specs
        .iter()
        .zip(results)
        .map(|(&spec, result)| {
            // The bench harness runs no limits, so every per-spec slot
            // succeeds unless the engine itself is broken.
            let result =
                result.unwrap_or_else(|err| panic!("bench query {:?} failed: {err}", spec.params));
            RunOutcome::from_result(spec, result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{generate, DatasetId, Scale};

    #[test]
    fn algorithm_parsing_and_names() {
        assert_eq!(Algorithm::parse("bu"), Some(Algorithm::BottomUp));
        assert_eq!(Algorithm::parse("GD-DCCS"), Some(Algorithm::Greedy));
        assert_eq!(Algorithm::parse("topdown"), Some(Algorithm::TopDown));
        assert_eq!(Algorithm::parse("auto"), Some(Algorithm::Auto));
        assert_eq!(Algorithm::parse("x"), None);
        assert_eq!(Algorithm::BottomUp.name(), "BU-DCCS");
    }

    #[test]
    fn all_three_algorithms_run_on_a_tiny_dataset() {
        let ds = generate(DatasetId::Ppi, Scale::Tiny);
        let params = DccsParams::new(2, 2, 5);
        let opts = DccsOptions::default();
        let gd = run_algorithm(Algorithm::Greedy, &ds.graph, &params, &opts);
        let bu = run_algorithm(Algorithm::BottomUp, &ds.graph, &params, &opts);
        let td = run_algorithm(Algorithm::TopDown, &ds.graph, &params, &opts);
        assert!(gd.cover_size > 0);
        assert!(bu.cover_size > 0);
        assert!(td.cover_size > 0);
        // The approximation algorithms stay within the usual band of greedy.
        assert!(4 * bu.cover_size >= gd.cover_size);
        assert!(4 * td.cover_size >= gd.cover_size);
        assert!(gd.candidates >= bu.candidates);
    }

    #[test]
    fn auto_resolves_to_a_concrete_algorithm() {
        let ds = generate(DatasetId::Ppi, Scale::Tiny);
        let params = DccsParams::new(2, 2, 5);
        let auto = run_algorithm(Algorithm::Auto, &ds.graph, &params, &DccsOptions::default());
        assert_ne!(auto.algorithm, Algorithm::Auto);
        // The auto run is exactly one of the fixed runs.
        let fixed = run_algorithm(auto.algorithm, &ds.graph, &params, &DccsOptions::default());
        assert_eq!(auto.cover_size, fixed.cover_size);
        assert_eq!(auto.result.stats, fixed.result.stats);
    }

    #[test]
    fn run_sweep_matches_individual_runs() {
        let ds = generate(DatasetId::German, Scale::Tiny);
        let opts = DccsOptions::default();
        let specs: Vec<QuerySpec> = (1..=3)
            .map(|s| QuerySpec::new(DccsParams::new(2, s, 5)).with_algorithm(Algorithm::BottomUp))
            .collect();
        let swept = run_sweep(&ds.graph, &specs, &opts);
        assert_eq!(swept.len(), specs.len());
        for (outcome, spec) in swept.iter().zip(&specs) {
            let single = run_algorithm(spec.algorithm, &ds.graph, &spec.params, &opts);
            assert_eq!(outcome.cover_size, single.cover_size);
            assert_eq!(outcome.result.stats, single.result.stats);
        }
    }

    #[test]
    fn threads_knob_does_not_change_any_outcome() {
        let ds = generate(DatasetId::Ppi, Scale::Tiny);
        let params = DccsParams::new(2, 2, 5);
        for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown] {
            let seq = run_algorithm(algorithm, &ds.graph, &params, &DccsOptions::default());
            let par = run_algorithm(algorithm, &ds.graph, &params, &DccsOptions::with_threads(3));
            assert_eq!(seq.cover_size, par.cover_size, "{}", algorithm.name());
            assert_eq!(seq.result.stats, par.result.stats, "{}", algorithm.name());
        }
    }
}
