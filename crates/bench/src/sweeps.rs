//! The parameter configuration of Fig. 13, plus [`dccs::QuerySpec`]
//! builders that turn one grid axis into a session batch
//! ([`dccs::DccsSession::run_batch`] / [`crate::runner::run_sweep`]).

use dccs::{Algorithm, DccsParams, QuerySpec};

/// The parameter grid used throughout Section VI.
#[derive(Clone, Debug)]
pub struct ParameterGrid {
    /// Values of `k` (default 10).
    pub k_values: Vec<usize>,
    /// Values of `d` (default 4).
    pub d_values: Vec<u32>,
    /// Small-`s` values (default 3).
    pub small_s: Vec<usize>,
    /// Vertex fractions `p` (default 1.0).
    pub p_values: Vec<f64>,
    /// Layer fractions `q` (default 1.0).
    pub q_values: Vec<f64>,
}

impl Default for ParameterGrid {
    fn default() -> Self {
        ParameterGrid {
            k_values: vec![5, 10, 15, 20, 25],
            d_values: vec![2, 3, 4, 5, 6],
            small_s: vec![1, 2, 3, 4, 5],
            p_values: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            q_values: vec![0.2, 0.4, 0.6, 0.8, 1.0],
        }
    }
}

impl ParameterGrid {
    /// Default `k` (Fig. 13).
    pub const DEFAULT_K: usize = 10;
    /// Default `d` (Fig. 13).
    pub const DEFAULT_D: u32 = 4;
    /// Default small `s` (Fig. 13).
    pub const DEFAULT_SMALL_S: usize = 3;

    /// Large-`s` values for a graph with `l` layers:
    /// `{l-4, l-3, l-2, l-1, l}` (Fig. 13).
    pub fn large_s(num_layers: usize) -> Vec<usize> {
        (0..5)
            .rev()
            .filter_map(|offset| num_layers.checked_sub(offset))
            .filter(|&s| s >= 1)
            .collect()
    }

    /// Default large `s` for a graph with `l` layers: `l − 2` (Fig. 13).
    pub fn default_large_s(num_layers: usize) -> usize {
        num_layers.saturating_sub(2).max(1)
    }

    /// The Fig. 14/16 sweep as a session batch: vary small `s` (clamped to
    /// the layer count) at the default `(d, k)`, running `algorithm`.
    pub fn s_sweep(&self, algorithm: Algorithm, num_layers: usize) -> Vec<QuerySpec> {
        self.small_s
            .iter()
            .filter(|&&s| s <= num_layers)
            .map(|&s| {
                QuerySpec::new(DccsParams::new(Self::DEFAULT_D, s, Self::DEFAULT_K))
                    .with_algorithm(algorithm)
            })
            .collect()
    }

    /// The Fig. 18/20 sweep as a session batch: vary `d` at fixed `(s, k)`.
    pub fn d_sweep(&self, algorithm: Algorithm, s: usize) -> Vec<QuerySpec> {
        self.d_values
            .iter()
            .map(|&d| {
                QuerySpec::new(DccsParams::new(d, s, Self::DEFAULT_K)).with_algorithm(algorithm)
            })
            .collect()
    }

    /// The Fig. 22/24 sweep as a session batch: vary `k` at fixed `(d, s)` —
    /// the sweep shape where the session's per-`d` layer-core memo and dense
    /// cache pay off on every query after the first.
    pub fn k_sweep(&self, algorithm: Algorithm, s: usize) -> Vec<QuerySpec> {
        self.k_values
            .iter()
            .map(|&k| {
                QuerySpec::new(DccsParams::new(Self::DEFAULT_D, s, k)).with_algorithm(algorithm)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_fig13() {
        let g = ParameterGrid::default();
        assert_eq!(g.k_values, vec![5, 10, 15, 20, 25]);
        assert_eq!(g.d_values, vec![2, 3, 4, 5, 6]);
        assert_eq!(g.small_s, vec![1, 2, 3, 4, 5]);
        assert_eq!(g.p_values.len(), 5);
        assert_eq!(ParameterGrid::DEFAULT_K, 10);
        assert_eq!(ParameterGrid::DEFAULT_D, 4);
        assert_eq!(ParameterGrid::DEFAULT_SMALL_S, 3);
    }

    #[test]
    fn sweep_specs_follow_the_grid() {
        let grid = ParameterGrid::default();
        let s_specs = grid.s_sweep(Algorithm::BottomUp, 3);
        assert_eq!(s_specs.len(), 3); // small_s clamped to l = 3
        assert!(s_specs.iter().all(|q| q.algorithm == Algorithm::BottomUp));
        assert_eq!(s_specs[2].params.s, 3);
        let d_specs = grid.d_sweep(Algorithm::Auto, 2);
        assert_eq!(d_specs.len(), grid.d_values.len());
        assert_eq!(d_specs[0].params.d, 2);
        assert!(d_specs.iter().all(|q| q.params.s == 2));
        let k_specs = grid.k_sweep(Algorithm::Greedy, 3);
        assert_eq!(k_specs.iter().map(|q| q.params.k).collect::<Vec<_>>(), grid.k_values);
    }

    #[test]
    fn large_s_ranges() {
        assert_eq!(ParameterGrid::large_s(24), vec![20, 21, 22, 23, 24]);
        assert_eq!(ParameterGrid::large_s(15), vec![11, 12, 13, 14, 15]);
        assert_eq!(ParameterGrid::default_large_s(24), 22);
        assert_eq!(ParameterGrid::default_large_s(3), 1);
        // Tiny layer counts stay valid.
        assert_eq!(ParameterGrid::large_s(3), vec![1, 2, 3]);
    }
}
