//! Plain-text table rendering and CSV emission for the experiment binaries.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned table that can also be written out as CSV.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new<S: AsRef<str>>(title: &str, headers: &[S]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header count.
    pub fn add_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header width");
        self.rows.push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table as CSV text (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV into `dir/<slug(title)>.csv`; creates the directory.
    pub fn write_csv_into(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_ascii_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a duration in seconds with three significant decimals.
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.5}", seconds)
    } else {
        format!("{:.3}", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Fig. X", &["s", "GD-DCCS", "BU-DCCS"]);
        t.add_row(&["1", "10.2", "1.3"]);
        t.add_row(&["2", "100.25", "2"]);
        let text = t.render();
        assert!(text.contains("== Fig. X =="));
        assert!(text.contains("GD-DCCS"));
        assert_eq!(t.num_rows(), 2);
        // Line layout: title, header, separator, then the data rows.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].starts_with('-'));
        assert!(lines[3].starts_with('1'));
        assert!(lines[4].starts_with('2'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.add_row(&["only one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("csv", &["name", "value"]);
        t.add_row(&["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_file_roundtrip() {
        let mut t = Table::new("Fig 14 time vs s", &["s", "time"]);
        t.add_row(&["1", "0.5"]);
        let dir = std::env::temp_dir().join("dccs_bench_table_test");
        let path = t.write_csv_into(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("s,time"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(1.23456), "1.235");
        assert_eq!(fmt_secs(0.0001234), "0.00012");
    }
}
