//! `dccs` — command-line diversified coherent core search.
//!
//! ```text
//! dccs stats   (--input FILE | --dataset NAME [--scale S])
//! dccs run     (--input FILE | --dataset NAME [--scale S])
//!              [--algorithm auto|gd|bu|td|exact] [--index auto|csr|dense|compressed]
//!              [-d N] [-s N] [-k N] [--threads N] [--no-vd] [--no-sl] [--no-ir]
//! dccs compare (--input FILE | --dataset NAME [--scale S]) [-d N] [-s N] [-k N]
//!              [--threads N]
//! dccs generate --dataset NAME [--scale S] --output FILE
//! ```
//!
//! `--input` accepts the text edge-list format (`src dst layer`, `#`
//! comments); `--dataset` generates one of the built-in synthetic analogues
//! (PPI, Author, German, Wiki, English, Stack). All queries run through a
//! [`DccsSession`], so invalid parameters and malformed inputs surface as
//! one-line errors with a nonzero exit code — never a panic backtrace.

use datasets::{generate, DatasetId, Scale};
use dccs::{
    Algorithm, DccIndex, DccsError, DccsOptions, DccsParams, DccsSession, IndexChoice,
    QueryService, Serve,
};
use mlgraph::{EdgeBatch, GraphStats, MultiLayerGraph};
use std::process::ExitCode;
use std::time::{Duration, Instant};

mod ndjson;

const USAGE: &str = "\
dccs — diversified coherent core search on multi-layer graphs

USAGE:
    dccs stats    (--input FILE | --dataset NAME [--scale tiny|small|full|large])
    dccs run      (--input FILE | --dataset NAME [--scale SCALE])
                  [--algorithm auto|gd|bu|td|exact] [--index auto|csr|dense|compressed]
                  [-d N] [-s N] [-k N]
                  [--threads N] [--no-vd] [--no-sl] [--no-ir]
                  [--timeout-ms N] [--budget N] [--degrade]
                  [--serve auto|peel|index] [--load-index FILE] [--save-index FILE]
    dccs serve    (--input FILE | --dataset NAME [--scale SCALE])
                  [--threads N] [--mix N] [--load-index FILE]
                  [plus every `run` default: -d/-s/-k, --algorithm, --serve,
                   --timeout-ms, --budget, --degrade, --index]
    dccs apply    ((--input FILE | --dataset NAME [--scale SCALE]) --batch FILE
                   | --stream N [--scale SCALE])
                  [plus every `run` default: -d/-s/-k, --algorithm, --serve,
                   --timeout-ms, --budget, --degrade, --index, --threads]
    dccs compare  (--input FILE | --dataset NAME [--scale SCALE]) [-d N] [-s N] [-k N]
                  [--threads N] [--index auto|csr|dense|compressed]
    dccs generate --dataset NAME [--scale SCALE] --output FILE
    dccs index build (--input FILE | --dataset NAME [--scale SCALE]) --output FILE
                  [-d N[,N...]] [--max-s N] [--threads N]
    dccs index info FILE

DEFAULTS: -d 4, -s 3, -k 10, --algorithm auto, --index auto, --scale small,
          --threads 1, --serve auto

--algorithm auto picks GD/BU/TD per query from the paper's regime
heuristics and the three-regime (dense / compressed / CSR) cost model;
the choice is printed with the result. --index csr|dense|compressed
overrides that cost model's peeling representation (for A/B runs; all
produce identical results). --threads N
spreads the search over N executor workers (0 = all available cores).
Results are identical at any thread count.

--timeout-ms N stops the query at the next cooperative checkpoint once N
milliseconds of wall clock pass; --budget N caps the number of candidate
d-CCs a query may generate. A tripped limit exits with code 3 (usage
errors exit 2, other runtime errors 1). --degrade retries an over-budget
exact query as the greedy algorithm instead of failing.

`index build` precomputes every candidate d-CC for the listed degree
thresholds (-d accepts a comma list) and layer-subset sizes up to --max-s
(default: all) and writes the artifact to --output. `run --load-index`
attaches such an artifact; --serve auto answers covered greedy queries
from it without re-peeling (bit-identical results), --serve index demands
it, --serve peel ignores it. A corrupt or mismatched artifact is a
one-line error. `run --save-index` writes the queried thresholds' index
after the run.

`serve` answers a stream of queries over one shared graph snapshot:
each stdin line is a JSON object ({\"id\":1,\"d\":2,\"s\":2,\"k\":5,
\"algorithm\":\"bu\",\"serve\":\"peel\",\"timeout_ms\":250,\"budget\":40,
\"degrade\":true} — every field optional, defaults from the flags), and
each answer is one JSON line in input order. A malformed or rejected
line yields an ok:false line for that request only; the stream
continues and the process still exits 0. --threads N sets the worker
pool width (0 = all cores; results are identical at any width). --mix N
skips stdin and drives N deterministic synthetic requests (with repeats,
to exercise the result cache). Throughput and p50/p95/p99 latency go to
stderr.

A serve line carrying \"op\":\"apply\" mutates the graph instead:
{\"id\":9,\"op\":\"apply\",\"insert\":[[layer,u,v],...],\"delete\":[...]}
commits the batch atomically at its place in the stream and answers with
the new epoch; queries ahead of it finish on the old snapshot, queries
after it see the mutated graph. A rejected batch fails its line only.

`apply` commits edge mutations one-shot, then answers a single query on
the result and prints the serving epoch. --batch FILE reads operations
as `add|del <layer> <u> <v>` lines (`#` comments allowed) against
--input/--dataset; --stream N instead generates a temporal graph plus N
evolution batches (sized by --scale) and commits them in order.
";

/// CLI failure modes: usage errors reprint the synopsis, everything else
/// (malformed input files, invalid parameters, blown exact budgets) is a
/// one-line message so scripted callers get clean stderr.
#[derive(Debug)]
enum CliError {
    /// Malformed command line — worth reprinting the usage text.
    Usage(String),
    /// A valid invocation that failed on its input or parameters.
    Runtime(String),
    /// A query limit fired (deadline, budget, cancellation, memory
    /// ceiling): the invocation was fine, the query just ran out of its
    /// allowance. Scripted callers distinguish this via exit code 3.
    Limit(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Runtime(msg) | CliError::Limit(msg) => {
                write!(f, "{msg}")
            }
        }
    }
}

impl From<DccsError> for CliError {
    fn from(err: DccsError) -> Self {
        if err.is_limit() {
            CliError::Limit(err.to_string())
        } else {
            CliError::Runtime(err.to_string())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Limit(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(3)
        }
    }
}

struct Options {
    input: Option<String>,
    dataset: Option<DatasetId>,
    scale: Scale,
    output: Option<String>,
    algorithm: Algorithm,
    /// Degree thresholds: `run` queries the first, `index build` covers all.
    ds: Vec<u32>,
    s: Option<usize>,
    k: usize,
    max_s: Option<usize>,
    save_index: Option<String>,
    load_index: Option<String>,
    /// `serve` only: drive N synthetic requests instead of reading stdin.
    mix: Option<usize>,
    /// `apply` only: mutation batch file (`add|del <layer> <u> <v>` lines).
    batch: Option<String>,
    /// `apply` only: commit N generated temporal evolution batches.
    stream: Option<usize>,
    opts: DccsOptions,
}

impl Options {
    /// The single degree threshold used by `run`/`compare`.
    fn d(&self) -> u32 {
        self.ds[0]
    }
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut out = Options {
        input: None,
        dataset: None,
        scale: Scale::Small,
        output: None,
        algorithm: Algorithm::Auto,
        ds: vec![4],
        s: None,
        k: 10,
        max_s: None,
        save_index: None,
        load_index: None,
        mix: None,
        batch: None,
        stream: None,
        opts: DccsOptions::default(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            iter.next().cloned().ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--input" => out.input = Some(value("--input")?),
            "--output" => out.output = Some(value("--output")?),
            "--dataset" => {
                let name = value("--dataset")?;
                out.dataset = Some(
                    DatasetId::parse(&name)
                        .ok_or_else(|| CliError::Usage(format!("unknown dataset `{name}`")))?,
                );
            }
            "--scale" => {
                let name = value("--scale")?;
                out.scale = Scale::parse(&name)
                    .ok_or_else(|| CliError::Usage(format!("unknown scale `{name}`")))?;
            }
            "--algorithm" => {
                let name = value("--algorithm")?;
                out.algorithm = Algorithm::parse(&name)
                    .ok_or_else(|| CliError::Usage(format!("unknown algorithm `{name}`")))?;
            }
            "--index" => {
                let name = value("--index")?;
                out.opts.index = IndexChoice::parse(&name)
                    .ok_or_else(|| CliError::Usage(format!("unknown index `{name}`")))?;
            }
            "-d" => {
                let list = value("-d")?;
                out.ds = list
                    .split(',')
                    .map(|part| part.trim().parse::<u32>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| {
                        CliError::Usage("-d must be a number or a comma list of numbers".into())
                    })?;
                if out.ds.is_empty() {
                    return Err(CliError::Usage("-d needs at least one number".into()));
                }
            }
            "-s" => {
                out.s = Some(
                    value("-s")?
                        .parse()
                        .map_err(|_| CliError::Usage("-s must be a number".into()))?,
                )
            }
            "-k" => {
                out.k = value("-k")?
                    .parse()
                    .map_err(|_| CliError::Usage("-k must be a number".into()))?
            }
            "--threads" => {
                out.opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| CliError::Usage("--threads must be a number".into()))?
            }
            "--no-vd" => out.opts.vertex_deletion = false,
            "--no-sl" => out.opts.sort_layers = false,
            "--no-ir" => out.opts.init_topk = false,
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| CliError::Usage("--timeout-ms must be a number".into()))?;
                out.opts.limits.deadline = Some(Duration::from_millis(ms));
            }
            "--budget" => {
                out.opts.limits.candidate_budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|_| CliError::Usage("--budget must be a number".into()))?,
                );
            }
            "--degrade" => out.opts.limits.degrade = true,
            "--serve" => {
                let name = value("--serve")?;
                out.opts.serve = Serve::parse(&name)
                    .ok_or_else(|| CliError::Usage(format!("unknown serve mode `{name}`")))?;
            }
            "--save-index" => out.save_index = Some(value("--save-index")?),
            "--load-index" => out.load_index = Some(value("--load-index")?),
            "--mix" => {
                out.mix = Some(
                    value("--mix")?
                        .parse()
                        .map_err(|_| CliError::Usage("--mix must be a number".into()))?,
                )
            }
            "--batch" => out.batch = Some(value("--batch")?),
            "--stream" => {
                out.stream = Some(
                    value("--stream")?
                        .parse()
                        .map_err(|_| CliError::Usage("--stream must be a number".into()))?,
                )
            }
            "--max-s" => {
                out.max_s = Some(
                    value("--max-s")?
                        .parse()
                        .map_err(|_| CliError::Usage("--max-s must be a number".into()))?,
                )
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
    }
    Ok(out)
}

fn load_graph(opts: &Options) -> Result<MultiLayerGraph, CliError> {
    match (&opts.input, opts.dataset) {
        (Some(path), None) => mlgraph::io::read_edge_list(path)
            .map_err(|e| CliError::Runtime(format!("failed to load `{path}`: {e}"))),
        (None, Some(id)) => Ok(generate(id, opts.scale).graph),
        (Some(_), Some(_)) => {
            Err(CliError::Usage("use either --input or --dataset, not both".into()))
        }
        (None, None) => Err(CliError::Usage("one of --input or --dataset is required".into())),
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("a command is required".into()));
    };
    if command == "--help" || command == "-h" {
        println!("{USAGE}");
        return Ok(());
    }
    if command == "index" {
        return cmd_index(&args[1..]);
    }
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "stats" => cmd_stats(&opts),
        "run" => cmd_run(&opts),
        "serve" => cmd_serve(&opts),
        "apply" => cmd_apply(&opts),
        "compare" => cmd_compare(&opts),
        "generate" => cmd_generate(&opts),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn cmd_stats(opts: &Options) -> Result<(), CliError> {
    let g = load_graph(opts)?;
    let stats = GraphStats::compute(&g);
    println!("vertices        : {}", stats.num_vertices);
    println!("layers          : {}", stats.num_layers);
    println!("total edges     : {}", stats.total_edges);
    println!("union edges     : {}", stats.union_edges);
    for layer in &stats.layers {
        println!(
            "  layer {:>3} ({}): edges={} active={} max_deg={} avg_deg={:.2}",
            layer.layer,
            layer.name,
            layer.num_edges,
            layer.active_vertices,
            layer.max_degree,
            layer.avg_degree
        );
    }
    Ok(())
}

fn params_for(opts: &Options, g: &MultiLayerGraph) -> DccsParams {
    // Validation happens inside the session (`Query::run`), which turns a
    // bad combination into a one-line `DccsError` instead of a panic.
    let s = opts.s.unwrap_or_else(|| 3.min(g.num_layers()));
    DccsParams::new(opts.d(), s, opts.k)
}

fn print_result(name: &str, g: &MultiLayerGraph, result: &dccs::DccsResult) {
    println!("== {name} ==");
    println!("time            : {:.4}s", result.elapsed.as_secs_f64());
    let phase = &result.stats.phase;
    println!(
        "  preprocess    : {:.4}s | search: {:.4}s | select: {:.4}s",
        phase.preprocess.as_secs_f64(),
        phase.search.as_secs_f64(),
        phase.select.as_secs_f64()
    );
    if let Some(from) = result.stats.degraded_from {
        println!("degraded from   : {} (over budget; reran as greedy)", from.name());
    }
    println!("cover size      : {}", result.cover_size());
    println!("cores reported  : {}", result.num_cores());
    println!("candidates      : {}", result.stats.candidates_generated);
    println!("dCC calls       : {}", result.stats.dcc_calls);
    println!("subtrees pruned : {}", result.stats.subtrees_pruned);
    println!("vertices deleted: {}", result.stats.vertices_deleted);
    if let Some(path) = result.stats.index_path {
        println!("index path      : {path:?}");
    }
    if let Some(serve) = result.stats.serve {
        println!(
            "served from     : {}",
            match serve {
                dccs::ServePath::Index => "index (no re-peeling)",
                dccs::ServePath::Peel => "peel",
            }
        );
    }
    if let Some(epoch) = result.stats.graph_epoch {
        println!("graph epoch     : {epoch}");
    }
    if result.stats.served_from_cache {
        println!("cache           : hit (answered without running)");
    }
    for (i, core) in result.cores.iter().enumerate() {
        let layer_names: Vec<&str> = core.layers.iter().map(|&l| g.layer_name(l)).collect();
        println!("  core {:>2}: {} vertices on layers {:?}", i + 1, core.len(), layer_names);
    }
}

fn cmd_run(opts: &Options) -> Result<(), CliError> {
    let g = load_graph(opts)?;
    let params = params_for(opts, &g);
    let mut session = DccsSession::with_options(&g, opts.opts);
    if let Some(path) = &opts.load_index {
        // Corrupt files and fingerprint mismatches both surface here as
        // one-line typed errors (exit 1) before any query runs.
        session.attach_index(DccIndex::load(path)?)?;
    }
    let result = session.query(params).algorithm(opts.algorithm).run()?;
    // The concrete algorithm that ran (resolved from `auto` if requested).
    let ran = result.stats.algorithm.map_or("?", Algorithm::name);
    let label = if opts.algorithm == Algorithm::Auto {
        format!("auto → {ran} (d={}, s={}, k={})", params.d, params.s, params.k)
    } else {
        format!("{ran} (d={}, s={}, k={})", params.d, params.s, params.k)
    };
    print_result(&label, &g, &result);
    if let Some(path) = &opts.save_index {
        let index = match session.index() {
            // Reuse an attached index when it already covers the queried
            // thresholds; otherwise build one on the session's crew.
            Some(index) if opts.ds.iter().all(|&d| index.d_values().contains(&d)) => index.clone(),
            _ => session.build_index(&opts.ds, opts.max_s.unwrap_or(0)),
        };
        index.save(path)?;
        println!(
            "index saved     : {path} ({} entries, {} candidates)",
            index.num_entries(),
            index.num_candidates()
        );
    }
    Ok(())
}

/// `dccs serve`: answer an NDJSON request stream (or a synthetic `--mix`)
/// through one [`QueryService`] over a shared graph snapshot. Lines
/// carrying `"op":"apply"` commit mutation batches in stream order.
fn cmd_serve(opts: &Options) -> Result<(), CliError> {
    use std::io::{BufRead as _, Write as _};

    let g = load_graph(opts)?;
    let service = QueryService::new(&g, opts.opts);
    if let Some(path) = &opts.load_index {
        service.attach_index(DccIndex::load(path)?)?;
    }
    let defaults = ndjson::RequestDefaults {
        d: opts.d(),
        s: opts.s.unwrap_or_else(|| 3.min(g.num_layers())),
        k: opts.k,
        algorithm: opts.algorithm,
        serve: opts.opts.serve,
        limits: opts.opts.limits,
    };
    let lines: Vec<String> = match opts.mix {
        Some(n) => synthetic_mix(&defaults, n),
        None => std::io::stdin()
            .lock()
            .lines()
            .collect::<Result<_, _>>()
            .map_err(|e| CliError::Runtime(format!("failed to read stdin: {e}")))?,
    };

    let responses = serve_stream(&service, &defaults, &lines)?;
    let mut stdout = std::io::stdout().lock();
    for line in &responses {
        writeln!(stdout, "{line}")
            .map_err(|e| CliError::Runtime(format!("failed to write stdout: {e}")))?;
    }
    Ok(())
}

/// Answers a decoded NDJSON stream on `service`, returning the response
/// lines in input order and printing throughput/latency stats to stderr.
///
/// Query runs between two applies form one segment handed to
/// [`QueryService::run_batch`], so they spread over the worker pool and
/// answer on the snapshot current at their submission; each apply line then
/// commits its batch before the next segment starts. A line that fails to
/// decode or validate keeps its slot as an `ok:false` response — the batch
/// itself must only ever see queries it would accept, because `run_batch`
/// rejects a batch containing invalid parameters wholesale.
fn serve_stream(
    service: &QueryService<'_>,
    defaults: &ndjson::RequestDefaults,
    lines: &[String],
) -> Result<Vec<String>, CliError> {
    enum Event {
        Query { id: u64, query: dccs::ServiceQuery },
        Apply { id: u64, batch: EdgeBatch },
        Reject { id: u64, message: String },
    }
    // Mutations never change the vertex or layer count, so parameter
    // validation against the initial snapshot stays correct all stream.
    let num_layers = service.snapshot().graph().num_layers();
    let mut events = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match ndjson::parse_line(line, lineno + 1, defaults) {
            Ok(ndjson::Line::Query(req)) => match req.query.spec.params.validate(num_layers) {
                Ok(()) => events.push(Event::Query { id: req.id, query: req.query }),
                Err(e) => events.push(Event::Reject { id: req.id, message: e.to_string() }),
            },
            Ok(ndjson::Line::Apply(apply)) => {
                events.push(Event::Apply { id: apply.id, batch: apply.batch })
            }
            Err((id, message)) => events.push(Event::Reject { id, message }),
        }
    }

    #[derive(Default)]
    struct Tally {
        ran: usize,
        ok: u64,
        errors: u64,
        limits: u64,
        hits: u64,
        applied: u64,
    }
    enum Slot {
        Run(u64, usize),
        Reject(u64, String),
    }
    let mut tally = Tally::default();
    let mut latencies: Vec<f64> = Vec::new();
    let mut responses: Vec<String> = Vec::with_capacity(events.len());
    let mut slots: Vec<Slot> = Vec::new();
    let mut queries: Vec<dccs::ServiceQuery> = Vec::new();

    let flush = |slots: &mut Vec<Slot>,
                 queries: &mut Vec<dccs::ServiceQuery>,
                 responses: &mut Vec<String>,
                 latencies: &mut Vec<f64>,
                 tally: &mut Tally|
     -> Result<(), CliError> {
        if slots.is_empty() {
            return Ok(());
        }
        let outcomes = service.run_batch(queries)?;
        tally.ran += outcomes.len();
        for slot in slots.drain(..) {
            let line = match slot {
                Slot::Reject(id, msg) => {
                    tally.errors += 1;
                    ndjson::error_response(id, &msg, false)
                }
                Slot::Run(id, i) => {
                    let outcome = &outcomes[i];
                    let ms = outcome.latency.as_secs_f64() * 1e3;
                    latencies.push(ms);
                    match &outcome.result {
                        Ok(result) => {
                            tally.ok += 1;
                            if result.stats.served_from_cache {
                                tally.hits += 1;
                            }
                            ndjson::ok_response(id, result, ms)
                        }
                        Err(err) => {
                            tally.errors += 1;
                            if err.is_limit() {
                                tally.limits += 1;
                            }
                            ndjson::dccs_error_response(id, err)
                        }
                    }
                }
            };
            responses.push(line);
        }
        queries.clear();
        Ok(())
    };

    let start = Instant::now();
    for event in events {
        match event {
            Event::Query { id, query } => {
                slots.push(Slot::Run(id, queries.len()));
                queries.push(query);
            }
            Event::Reject { id, message } => slots.push(Slot::Reject(id, message)),
            Event::Apply { id, batch } => {
                // Everything already queued answers on the pre-commit
                // snapshot; only later lines see the new epoch.
                flush(&mut slots, &mut queries, &mut responses, &mut latencies, &mut tally)?;
                let t = Instant::now();
                match service.commit(&batch) {
                    Ok(receipt) => {
                        tally.applied += 1;
                        responses.push(ndjson::apply_response(
                            id,
                            &receipt,
                            t.elapsed().as_secs_f64() * 1e3,
                        ));
                    }
                    // A rejected batch (bad layer/vertex, insert+delete
                    // conflict) fails its line only; the snapshot and the
                    // rest of the stream are untouched.
                    Err(err) => {
                        tally.errors += 1;
                        responses.push(ndjson::dccs_error_response(id, &err));
                    }
                }
            }
        }
    }
    flush(&mut slots, &mut queries, &mut responses, &mut latencies, &mut tally)?;
    let wall = start.elapsed();

    latencies.sort_by(f64::total_cmp);
    let secs = wall.as_secs_f64();
    let qps = if secs > 0.0 { tally.ran as f64 / secs } else { 0.0 };
    let cache = service.cache_stats();
    eprintln!(
        "served {} requests ({} ran, {} ok, {} errors, {} limit-tripped, {} applied) \
         in {secs:.3}s on {} workers ({qps:.1} q/s)",
        responses.len(),
        tally.ran,
        tally.ok,
        tally.errors,
        tally.limits,
        tally.applied,
        service.workers()
    );
    eprintln!(
        "cache           : {} hits | {} misses | {} entries (graph epoch {})",
        tally.hits,
        cache.misses,
        cache.entries,
        service.epoch()
    );
    eprintln!(
        "latency ms      : p50 {:.3} | p95 {:.3} | p99 {:.3}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99)
    );
    Ok(responses)
}

/// The deterministic `--mix N` driver: four query shapes derived from the
/// command-line defaults, cycled with repeats so the result cache gets
/// exercised, emitted through the same NDJSON decode path as stdin.
fn synthetic_mix(defaults: &ndjson::RequestDefaults, n: usize) -> Vec<String> {
    let d = defaults.d.max(1);
    let s = defaults.s.max(1);
    let k = defaults.k.max(1);
    let shapes = [
        (d, s, k),
        (d.max(2) - 1, s, k),
        (d, s.saturating_sub(1).max(1), k),
        (d, s, (k / 2).max(1)),
    ];
    (0..n)
        .map(|i| {
            let (d, s, k) = shapes[i % shapes.len()];
            format!("{{\"id\":{},\"d\":{d},\"s\":{s},\"k\":{k}}}", i + 1)
        })
        .collect()
}

/// Nearest-rank percentile of an ascending-sorted sample (0 on empty).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted_ms.len() as f64).ceil().max(1.0) as usize;
    sorted_ms[rank.min(sorted_ms.len()) - 1]
}

/// `dccs apply`: commit mutation batches through a [`QueryService`], then
/// answer one query on the resulting snapshot — a one-shot probe of the
/// incremental-maintenance path with the serving epoch printed.
fn cmd_apply(opts: &Options) -> Result<(), CliError> {
    match (&opts.batch, opts.stream) {
        (Some(_), Some(_)) => {
            Err(CliError::Usage("use either --batch or --stream, not both".into()))
        }
        (None, None) => Err(CliError::Usage("apply requires --batch FILE or --stream N".into())),
        (Some(path), None) => {
            let g = load_graph(opts)?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Runtime(format!("failed to read `{path}`: {e}")))?;
            let batch = EdgeBatch::from_text(&text)
                .map_err(|e| CliError::Runtime(format!("failed to parse `{path}`: {e}")))?;
            apply_and_query(opts, &g, &[batch])
        }
        (None, Some(n)) => {
            if opts.input.is_some() || opts.dataset.is_some() {
                return Err(CliError::Usage(
                    "--stream generates its own temporal graph; drop --input/--dataset".into(),
                ));
            }
            let config = temporal_config(opts.scale);
            let (g, batches) = mlgraph::generators::temporal_batches(&config, n, 32)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            apply_and_query(opts, &g, &batches)
        }
    }
}

/// The temporal-generator shape backing `apply --stream`, sized by --scale.
fn temporal_config(scale: Scale) -> mlgraph::generators::TemporalConfig {
    let (num_vertices, num_layers, edges_per_layer, core_size) = match scale {
        Scale::Tiny => (150, 4, 450, 24),
        Scale::Small => (600, 6, 2400, 48),
        Scale::Full => (2000, 8, 8000, 80),
        Scale::Large => (8000, 8, 32000, 160),
    };
    mlgraph::generators::TemporalConfig {
        num_vertices,
        num_layers,
        edges_per_layer,
        core_size,
        ..Default::default()
    }
}

/// Commits `batches` in order (printing each receipt), then runs one query
/// with the command-line parameters on the final snapshot.
fn apply_and_query(
    opts: &Options,
    g: &MultiLayerGraph,
    batches: &[EdgeBatch],
) -> Result<(), CliError> {
    let service = QueryService::new(g, opts.opts);
    for batch in batches {
        let receipt = service.commit(batch)?;
        println!(
            "committed       : +{} -{} edges on {} layer(s) → epoch {}{}",
            receipt.inserted,
            receipt.deleted,
            receipt.layers_touched,
            receipt.epoch,
            if receipt.is_noop_commit() { " (no-op)" } else { "" }
        );
    }
    let snapshot = service.snapshot();
    let params = params_for(opts, snapshot.graph());
    let query = dccs::ServiceQuery::new(params)
        .with_algorithm(opts.algorithm)
        .with_serve(opts.opts.serve)
        .with_limits(opts.opts.limits);
    let result = service.query(&query)?;
    let ran = result.stats.algorithm.map_or("?", Algorithm::name);
    let label = format!(
        "apply → {ran} (d={}, s={}, k={}, epoch {})",
        params.d,
        params.s,
        params.k,
        service.epoch()
    );
    print_result(&label, snapshot.graph(), &result);
    Ok(())
}

fn cmd_index(args: &[String]) -> Result<(), CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::Usage("index requires a subcommand (build or info)".into()));
    };
    match sub.as_str() {
        "build" => {
            let opts = parse_options(&args[1..])?;
            let Some(output) = &opts.output else {
                return Err(CliError::Usage("index build requires --output".into()));
            };
            let g = load_graph(&opts)?;
            let mut session = DccsSession::with_options(&g, opts.opts);
            let index = session.build_index(&opts.ds, opts.max_s.unwrap_or(0));
            index.save(output)?;
            let bytes = index.to_bytes().len();
            println!(
                "built index for d={:?} over {} vertices / {} layers",
                index.d_values(),
                index.num_vertices(),
                index.num_layers()
            );
            println!(
                "wrote {} entries ({} candidate cores, {bytes} bytes) to {output}",
                index.num_entries(),
                index.num_candidates()
            );
            Ok(())
        }
        "info" => {
            let Some(path) = args.get(1) else {
                return Err(CliError::Usage("index info requires a file path".into()));
            };
            if let Some(extra) = args.get(2) {
                return Err(CliError::Usage(format!("unexpected argument `{extra}`")));
            }
            let index = DccIndex::load(path)?;
            println!("index file      : {path}");
            println!(
                "graph shape     : {} vertices, {} layers",
                index.num_vertices(),
                index.num_layers()
            );
            println!("degree values   : {:?}", index.d_values());
            println!("entries         : {}", index.num_entries());
            println!("candidate cores : {}", index.num_candidates());
            for (d, s, candidates) in index.entry_summaries() {
                println!("  d={d} s={s}: {candidates} candidates");
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown index subcommand `{other}`"))),
    }
}

fn cmd_compare(opts: &Options) -> Result<(), CliError> {
    let g = load_graph(opts)?;
    let params = params_for(opts, &g);
    // One session for the whole comparison, but each algorithm runs alone
    // (not as a parallel batch): the printed times are a head-to-head, so
    // no run may contend with another, and `--threads` spreads each
    // individual search over the executor as before.
    let mut session = DccsSession::with_options(&g, opts.opts);
    println!("algorithm  time(s)    cover  candidates");
    for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown] {
        let r = session.query(params).algorithm(algorithm).run()?;
        println!(
            "{:<10} {:<10.4} {:<6} {}",
            r.stats.algorithm.map_or("?", Algorithm::name),
            r.elapsed.as_secs_f64(),
            r.cover_size(),
            r.stats.candidates_generated
        );
    }
    let auto = Algorithm::Auto.resolve(&g, &params);
    println!("auto selection: {}", auto.name());
    Ok(())
}

fn cmd_generate(opts: &Options) -> Result<(), CliError> {
    let Some(id) = opts.dataset else {
        return Err(CliError::Usage("generate requires --dataset".into()));
    };
    let Some(output) = &opts.output else {
        return Err(CliError::Usage("generate requires --output".into()));
    };
    let ds = generate(id, opts.scale);
    let file = std::fs::File::create(output)
        .map_err(|e| CliError::Runtime(format!("cannot create `{output}`: {e}")))?;
    mlgraph::io::write_edge_list(&ds.graph, std::io::BufWriter::new(file))
        .map_err(|e| CliError::Runtime(format!("failed to write `{output}`: {e}")))?;
    println!(
        "wrote {} ({} vertices, {} layers, {} edges) to {output}",
        ds.spec.name,
        ds.graph.num_vertices(),
        ds.graph.num_layers(),
        ds.graph.total_edges()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, CliError> {
        parse_options(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn run_args(args: &[&str]) -> Result<(), CliError> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_defaults() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.d(), 4);
        assert_eq!(o.k, 10);
        assert!(o.s.is_none());
        assert_eq!(o.algorithm, Algorithm::Auto);
        assert_eq!(o.scale, Scale::Small);
    }

    #[test]
    fn parses_flags() {
        let o = opts(&[
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "3",
            "-s",
            "2",
            "-k",
            "5",
            "--algorithm",
            "td",
            "--threads",
            "4",
            "--no-vd",
        ])
        .unwrap();
        assert_eq!(o.dataset, Some(DatasetId::Ppi));
        assert_eq!(o.scale, Scale::Tiny);
        assert_eq!(o.d(), 3);
        assert_eq!(o.s, Some(2));
        assert_eq!(o.k, 5);
        assert_eq!(o.algorithm, Algorithm::TopDown);
        assert_eq!(o.opts.threads, 4);
        assert!(!o.opts.vertex_deletion);
        assert!(o.opts.sort_layers);
    }

    #[test]
    fn parses_every_algorithm_alias() {
        assert_eq!(opts(&["--algorithm", "auto"]).unwrap().algorithm, Algorithm::Auto);
        assert_eq!(opts(&["--algorithm", "gd"]).unwrap().algorithm, Algorithm::Greedy);
        assert_eq!(opts(&["--algorithm", "bu"]).unwrap().algorithm, Algorithm::BottomUp);
        assert_eq!(opts(&["--algorithm", "exact"]).unwrap().algorithm, Algorithm::Exact);
        assert!(opts(&["--algorithm", "quantum"]).is_err());
    }

    #[test]
    fn parses_index_override_and_rejects_garbage() {
        assert_eq!(opts(&[]).unwrap().opts.index, IndexChoice::Auto);
        assert_eq!(opts(&["--index", "csr"]).unwrap().opts.index, IndexChoice::Csr);
        assert_eq!(opts(&["--index", "dense"]).unwrap().opts.index, IndexChoice::Dense);
        assert_eq!(opts(&["--index", "auto"]).unwrap().opts.index, IndexChoice::Auto);
        assert_eq!(opts(&["--index", "compressed"]).unwrap().opts.index, IndexChoice::Compressed);
        // The usage-error path: unknown value and missing value.
        assert!(matches!(opts(&["--index", "btree"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--index"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn end_to_end_run_with_forced_index() {
        for index in ["csr", "dense", "compressed"] {
            assert!(
                run_args(&[
                    "run",
                    "--dataset",
                    "ppi",
                    "--scale",
                    "tiny",
                    "-d",
                    "2",
                    "-s",
                    "2",
                    "--algorithm",
                    "gd",
                    "--index",
                    index,
                ])
                .is_ok(),
                "--index {index} failed"
            );
        }
    }

    #[test]
    fn threads_defaults_to_sequential_and_rejects_garbage() {
        assert_eq!(opts(&[]).unwrap().opts.threads, 1);
        assert!(opts(&["--threads", "x"]).is_err());
        assert!(opts(&["--threads"]).is_err());
    }

    #[test]
    fn end_to_end_threaded_run() {
        assert!(run_args(&[
            "run",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "2",
            "-s",
            "2",
            "--threads",
            "2"
        ])
        .is_ok());
    }

    #[test]
    fn end_to_end_auto_and_exact_runs() {
        for algorithm in ["auto", "exact"] {
            assert!(
                run_args(&[
                    "run",
                    "--dataset",
                    "ppi",
                    "--scale",
                    "tiny",
                    "-d",
                    "3",
                    "-s",
                    "4",
                    "-k",
                    "2",
                    "--algorithm",
                    algorithm,
                ])
                .is_ok(),
                "algorithm {algorithm} failed"
            );
        }
    }

    #[test]
    fn exact_budget_overflow_is_a_limit_error_not_a_panic() {
        // PPI tiny at (d=3, s=3) has 26 non-empty candidates — over the
        // exact solver's 24-candidate budget. Limit errors get their own
        // class (exit code 3), distinct from usage and runtime errors.
        let err = run_args(&[
            "run",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "3",
            "-s",
            "3",
            "--algorithm",
            "exact",
        ])
        .unwrap_err();
        match err {
            CliError::Limit(msg) => assert!(msg.contains("budget"), "got: {msg}"),
            other => panic!("expected a limit error, got: {other:?}"),
        }
    }

    #[test]
    fn parses_limit_flags_and_rejects_garbage() {
        let o = opts(&["--timeout-ms", "250", "--budget", "40", "--degrade"]).unwrap();
        assert_eq!(o.opts.limits.deadline, Some(Duration::from_millis(250)));
        assert_eq!(o.opts.limits.candidate_budget, Some(40));
        assert!(o.opts.limits.degrade);
        // Off by default: unlimited queries skip the monitor entirely.
        let o = opts(&[]).unwrap();
        assert!(o.opts.limits.is_unlimited());
        assert!(!o.opts.limits.degrade);
        assert!(matches!(opts(&["--timeout-ms", "soon"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--timeout-ms"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--budget", "-3"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--budget"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn expired_deadline_is_a_limit_error() {
        // A zero deadline has already passed when the first checkpoint
        // fires; the partial best-so-far is summarized in the message.
        let err = run_args(&[
            "run",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "2",
            "-s",
            "2",
            "--timeout-ms",
            "0",
        ])
        .unwrap_err();
        match err {
            CliError::Limit(msg) => assert!(msg.contains("deadline"), "got: {msg}"),
            other => panic!("expected a limit error, got: {other:?}"),
        }
    }

    #[test]
    fn candidate_budget_flag_is_a_limit_error() {
        let err = run_args(&[
            "run",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "2",
            "-s",
            "2",
            "--budget",
            "1",
        ])
        .unwrap_err();
        match err {
            CliError::Limit(msg) => assert!(msg.contains("budget"), "got: {msg}"),
            other => panic!("expected a limit error, got: {other:?}"),
        }
    }

    #[test]
    fn degrade_flag_recovers_an_over_budget_exact_query() {
        // The same over-budget exact query as above, but with --degrade:
        // the session reruns it as greedy and the CLI exits cleanly.
        assert!(run_args(&[
            "run",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "3",
            "-s",
            "3",
            "--algorithm",
            "exact",
            "--degrade",
        ])
        .is_ok());
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(opts(&["--dataset", "unknown"]).is_err());
        assert!(opts(&["--scale", "huge"]).is_err());
        assert!(opts(&["-d", "x"]).is_err());
        assert!(opts(&["--mystery"]).is_err());
        assert!(opts(&["--input"]).is_err());
    }

    #[test]
    fn run_requires_a_command_and_input() {
        assert!(run_args(&[]).is_err());
        assert!(run_args(&["run"]).is_err());
        assert!(run_args(&["bogus"]).is_err());
    }

    #[test]
    fn invalid_parameters_are_a_runtime_error_not_a_panic() {
        // s far beyond the layer count: must come back as Err, not unwind.
        let err =
            run_args(&["run", "--dataset", "ppi", "--scale", "tiny", "-s", "99"]).unwrap_err();
        match err {
            CliError::Runtime(msg) => {
                assert!(msg.contains("s=99"), "unexpected message: {msg}")
            }
            other => panic!("expected a runtime error, got: {other:?}"),
        }
        // k = 0 likewise.
        let err = run_args(&["run", "--dataset", "ppi", "--scale", "tiny", "-k", "0"]).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
    }

    #[test]
    fn malformed_graph_file_is_a_runtime_error_not_a_panic() {
        let dir = std::env::temp_dir().join("dccs_cli_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.edges");
        std::fs::write(&path, "this is not\nan edge list at all\n").unwrap();
        let path_str = path.to_string_lossy().to_string();
        let err = run_args(&["run", "--input", &path_str]).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "got: {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn end_to_end_run_on_tiny_dataset() {
        assert!(
            run_args(&["run", "--dataset", "ppi", "--scale", "tiny", "-d", "2", "-s", "2"]).is_ok()
        );
    }

    #[test]
    fn end_to_end_compare_and_stats() {
        for cmd in ["compare", "stats"] {
            assert!(
                run_args(&[cmd, "--dataset", "ppi", "--scale", "tiny", "-d", "2", "-s", "2"])
                    .is_ok(),
                "command {cmd} failed"
            );
        }
    }

    #[test]
    fn parses_serve_and_index_flags_and_rejects_garbage() {
        let o =
            opts(&["--serve", "index", "--load-index", "a.dcx", "--save-index", "b.dcx"]).unwrap();
        assert_eq!(o.opts.serve, Serve::Index);
        assert_eq!(o.load_index.as_deref(), Some("a.dcx"));
        assert_eq!(o.save_index.as_deref(), Some("b.dcx"));
        assert_eq!(opts(&["--serve", "peel"]).unwrap().opts.serve, Serve::Peel);
        assert_eq!(opts(&[]).unwrap().opts.serve, Serve::Auto);
        assert!(matches!(opts(&["--serve", "cache"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--serve"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--load-index"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--max-s", "lots"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn parses_degree_lists() {
        assert_eq!(opts(&["-d", "2,3,4"]).unwrap().ds, vec![2, 3, 4]);
        assert_eq!(opts(&["-d", "2, 3"]).unwrap().ds, vec![2, 3]);
        assert_eq!(opts(&["-d", "5"]).unwrap().d(), 5);
        assert!(matches!(opts(&["-d", "2,x"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["-d", ""]), Err(CliError::Usage(_))));
    }

    #[test]
    fn index_build_info_and_serve_roundtrip() {
        let dir = std::env::temp_dir().join("dccs_cli_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ppi_tiny.dcx");
        let path_str = path.to_string_lossy().to_string();
        let base = ["--dataset", "ppi", "--scale", "tiny"];

        let mut build = vec!["index", "build"];
        build.extend_from_slice(&base);
        build.extend_from_slice(&["-d", "2,3", "--output", &path_str]);
        assert!(run_args(&build).is_ok());
        assert!(run_args(&["index", "info", &path_str]).is_ok());

        // Serving from the loaded artifact answers without re-peeling.
        for serve in ["auto", "index"] {
            let mut run = vec!["run"];
            run.extend_from_slice(&base);
            run.extend_from_slice(&[
                "-d",
                "2",
                "-s",
                "2",
                "--algorithm",
                "gd",
                "--load-index",
                &path_str,
                "--serve",
                serve,
            ]);
            assert!(run_args(&run).is_ok(), "--serve {serve} failed");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_index_writes_a_loadable_artifact() {
        let dir = std::env::temp_dir().join("dccs_cli_save_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saved.dcx");
        let path_str = path.to_string_lossy().to_string();
        assert!(run_args(&[
            "run",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "2",
            "-s",
            "2",
            "--save-index",
            &path_str,
        ])
        .is_ok());
        assert!(run_args(&["index", "info", &path_str]).is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_or_mismatched_index_is_a_one_line_runtime_error() {
        let dir = std::env::temp_dir().join("dccs_cli_bad_index_test");
        std::fs::create_dir_all(&dir).unwrap();

        // Not an index at all.
        let garbage = dir.join("garbage.dcx");
        std::fs::write(&garbage, b"not an index").unwrap();
        let garbage_str = garbage.to_string_lossy().to_string();
        let err =
            run_args(&["run", "--dataset", "ppi", "--scale", "tiny", "--load-index", &garbage_str])
                .unwrap_err();
        match err {
            CliError::Runtime(msg) => assert!(!msg.contains('\n'), "one line: {msg}"),
            other => panic!("expected a runtime error, got: {other:?}"),
        }

        // Built for a different graph: the fingerprint check rejects it.
        let foreign = dir.join("foreign.dcx");
        let foreign_str = foreign.to_string_lossy().to_string();
        let mut build = vec!["index", "build", "--dataset", "author", "--scale", "tiny"];
        build.extend_from_slice(&["-d", "2", "--output", &foreign_str]);
        assert!(run_args(&build).is_ok());
        let err =
            run_args(&["run", "--dataset", "ppi", "--scale", "tiny", "--load-index", &foreign_str])
                .unwrap_err();
        match err {
            CliError::Runtime(msg) => {
                assert!(msg.contains("mismatch"), "got: {msg}");
                assert!(!msg.contains('\n'), "one line: {msg}");
            }
            other => panic!("expected a runtime error, got: {other:?}"),
        }

        std::fs::remove_file(garbage).ok();
        std::fs::remove_file(foreign).ok();
    }

    #[test]
    fn forced_index_serving_without_an_index_is_a_runtime_error() {
        let err = run_args(&[
            "run",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "2",
            "-s",
            "2",
            "--serve",
            "index",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "got: {err:?}");
    }

    #[test]
    fn index_subcommand_usage_errors() {
        assert!(matches!(run_args(&["index"]), Err(CliError::Usage(_))));
        assert!(matches!(run_args(&["index", "rebuild"]), Err(CliError::Usage(_))));
        assert!(matches!(run_args(&["index", "info"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_args(&["index", "build", "--dataset", "ppi", "--scale", "tiny"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_mix_flag_and_rejects_garbage() {
        assert_eq!(opts(&["--mix", "12"]).unwrap().mix, Some(12));
        assert_eq!(opts(&[]).unwrap().mix, None);
        assert!(matches!(opts(&["--mix", "lots"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--mix"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn end_to_end_serve_with_synthetic_mix() {
        // The --mix driver bypasses stdin, so serve runs hermetically; 9
        // requests over 4 shapes guarantee repeats, i.e. cache hits, and
        // exercise the full decode → batch → respond path. Worker widths 1
        // and 2 must both succeed (answers are checked bit-identical across
        // widths in the core service tests).
        for threads in ["1", "2"] {
            assert!(
                run_args(&[
                    "serve",
                    "--dataset",
                    "ppi",
                    "--scale",
                    "tiny",
                    "-d",
                    "2",
                    "-s",
                    "2",
                    "--mix",
                    "9",
                    "--threads",
                    threads,
                ])
                .is_ok(),
                "--threads {threads} failed"
            );
        }
    }

    #[test]
    fn serve_with_an_attached_index_answers_the_mix() {
        let dir = std::env::temp_dir().join("dccs_cli_serve_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.dcx");
        let path_str = path.to_string_lossy().to_string();
        let mut build = vec!["index", "build", "--dataset", "ppi", "--scale", "tiny"];
        build.extend_from_slice(&["-d", "1,2", "--output", &path_str]);
        assert!(run_args(&build).is_ok());
        assert!(run_args(&[
            "serve",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "2",
            "-s",
            "2",
            "--algorithm",
            "gd",
            "--mix",
            "8",
            "--load-index",
            &path_str,
        ])
        .is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn serve_keeps_going_past_limit_tripped_requests() {
        // A zero deadline trips every mixed-in request, but limit trips are
        // per-request responses, not process failures: serve still exits
        // cleanly after answering the stream.
        assert!(run_args(&[
            "serve",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "2",
            "-s",
            "2",
            "--mix",
            "4",
            "--timeout-ms",
            "0",
        ])
        .is_ok());
    }

    #[test]
    fn parses_apply_flags_and_rejects_garbage() {
        assert_eq!(opts(&["--batch", "ops.txt"]).unwrap().batch.as_deref(), Some("ops.txt"));
        assert_eq!(opts(&["--stream", "4"]).unwrap().stream, Some(4));
        let o = opts(&[]).unwrap();
        assert!(o.batch.is_none() && o.stream.is_none());
        assert!(matches!(opts(&["--batch"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--stream", "many"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&["--stream"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn apply_subcommand_usage_errors() {
        // Needs exactly one mutation source.
        let base = ["apply", "--dataset", "ppi", "--scale", "tiny"];
        assert!(matches!(run_args(&base), Err(CliError::Usage(_))));
        let mut both = base.to_vec();
        both.extend_from_slice(&["--batch", "x", "--stream", "2"]);
        assert!(matches!(run_args(&both), Err(CliError::Usage(_))));
        // --stream brings its own graph.
        let mut stream_with_dataset = base.to_vec();
        stream_with_dataset.extend_from_slice(&["--stream", "2"]);
        assert!(matches!(run_args(&stream_with_dataset), Err(CliError::Usage(_))));
    }

    #[test]
    fn end_to_end_apply_with_a_batch_file() {
        let dir = std::env::temp_dir().join("dccs_cli_apply_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.txt");
        std::fs::write(&path, "# demo\nadd 0 0 2\nadd 1 0 3\ndel 0 0 3\n").unwrap();
        let path_str = path.to_string_lossy().to_string();
        assert!(run_args(&[
            "apply",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "2",
            "-s",
            "2",
            "--batch",
            &path_str,
        ])
        .is_ok());
        // A malformed batch file is a one-line runtime error.
        std::fs::write(&path, "frob 0 1 2\n").unwrap();
        let err = run_args(&["apply", "--dataset", "ppi", "--scale", "tiny", "--batch", &path_str])
            .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "got: {err:?}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn end_to_end_apply_stream_commits_generated_batches() {
        assert!(run_args(&[
            "apply", "--stream", "2", "--scale", "tiny", "-d", "2", "-s", "2", "-k", "3",
        ])
        .is_ok());
    }

    #[test]
    fn serve_stream_commits_applies_in_order() {
        // Triangle {0,1,2} on both layers; the apply line grows it to a K4.
        let mut b = mlgraph::MultiLayerGraphBuilder::new(6, 2);
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            b.add_edge(0, u, v).unwrap();
            b.add_edge(1, u, v).unwrap();
        }
        let g = b.build();
        let service = QueryService::new(&g, DccsOptions::default());
        let defaults = ndjson::RequestDefaults {
            d: 2,
            s: 2,
            k: 1,
            algorithm: Algorithm::Auto,
            serve: Serve::Auto,
            limits: dccs::QueryLimits::none(),
        };
        let lines: Vec<String> = [
            r#"{"id":1}"#,
            r#"{"id":2,"op":"apply","insert":[[0,0,3],[0,1,3],[0,2,3],[1,0,3],[1,1,3],[1,2,3]]}"#,
            r#"{"id":3}"#,
            "not json",
            r#"{"id":5,"op":"apply","insert":[[9,0,1]]}"#,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let responses = serve_stream(&service, &defaults, &lines).unwrap();
        assert_eq!(responses.len(), 5);

        let field = |i: usize, name: &str| -> Option<serde_json::Value> {
            let serde_json::Value::Object(pairs) = ndjson::parse(&responses[i]).unwrap() else {
                panic!("response {i} is not an object: {}", responses[i]);
            };
            pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
        };
        // Responses come back in input order.
        for (i, id) in [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().enumerate() {
            assert_eq!(field(i, "id"), Some(serde_json::Value::Number(id)));
        }
        // The pre-apply query sees the triangle, the post-apply one the K4.
        assert_eq!(field(0, "cover"), Some(serde_json::Value::Number(3.0)));
        assert_eq!(field(2, "cover"), Some(serde_json::Value::Number(4.0)));
        // The post-commit query answers on exactly the epoch the apply
        // published, which is newer than the pre-commit one.
        let epoch = |i: usize| match field(i, "epoch") {
            Some(serde_json::Value::Number(e)) => e,
            other => panic!("response {i} has no numeric epoch: {other:?}"),
        };
        assert_eq!(field(1, "op"), Some(serde_json::Value::String("apply".into())));
        assert_eq!(epoch(1), epoch(2));
        assert!(epoch(0) < epoch(1), "epochs: {} vs {}", epoch(0), epoch(1));
        assert_eq!(field(1, "inserted"), Some(serde_json::Value::Number(6.0)));
        // The malformed line and the out-of-range batch fail their slots
        // only; the stream still answered everything.
        assert_eq!(field(3, "ok"), Some(serde_json::Value::Bool(false)));
        assert_eq!(field(4, "ok"), Some(serde_json::Value::Bool(false)));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let ms: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&ms, 0.50), 50.0);
        assert_eq!(percentile(&ms, 0.95), 95.0);
        assert_eq!(percentile(&ms, 0.99), 99.0);
    }

    #[test]
    fn generate_then_reload_roundtrip() {
        let dir = std::env::temp_dir().join("dccs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ppi_tiny.edges");
        let path_str = path.to_string_lossy().to_string();
        assert!(run_args(&[
            "generate",
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "--output",
            &path_str
        ])
        .is_ok());
        assert!(run_args(&["run", "--input", &path_str, "-d", "2", "-s", "2"]).is_ok());
        std::fs::remove_file(path).ok();
    }
}
