//! `dccs` — command-line diversified coherent core search.
//!
//! ```text
//! dccs stats   (--input FILE | --dataset NAME [--scale S])
//! dccs run     (--input FILE | --dataset NAME [--scale S]) [--algorithm gd|bu|td]
//!              [-d N] [-s N] [-k N] [--threads N] [--no-vd] [--no-sl] [--no-ir]
//! dccs compare (--input FILE | --dataset NAME [--scale S]) [-d N] [-s N] [-k N]
//!              [--threads N]
//! dccs generate --dataset NAME [--scale S] --output FILE
//! ```
//!
//! `--input` accepts the text edge-list format (`src dst layer`, `#`
//! comments); `--dataset` generates one of the built-in synthetic analogues
//! (PPI, Author, German, Wiki, English, Stack).

use datasets::{generate, DatasetId, Scale};
use dccs::{DccsOptions, DccsParams};
use mlgraph::{GraphStats, MultiLayerGraph};
use std::process::ExitCode;

const USAGE: &str = "\
dccs — diversified coherent core search on multi-layer graphs

USAGE:
    dccs stats    (--input FILE | --dataset NAME [--scale tiny|small|full])
    dccs run      (--input FILE | --dataset NAME [--scale SCALE])
                  [--algorithm gd|bu|td] [-d N] [-s N] [-k N] [--threads N]
                  [--no-vd] [--no-sl] [--no-ir]
    dccs compare  (--input FILE | --dataset NAME [--scale SCALE]) [-d N] [-s N] [-k N]
                  [--threads N]
    dccs generate --dataset NAME [--scale SCALE] --output FILE

DEFAULTS: -d 4, -s 3, -k 10, --algorithm bu, --scale small, --threads 1

--threads N spreads every algorithm's search over N executor workers
(GD fans out the lattice's depth-1 branches; BU/TD peel search-tree
children in parallel). Results are identical at any thread count.
";

#[derive(Debug)]
struct CliError(String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    input: Option<String>,
    dataset: Option<DatasetId>,
    scale: Scale,
    output: Option<String>,
    algorithm: String,
    d: u32,
    s: Option<usize>,
    k: usize,
    opts: DccsOptions,
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut out = Options {
        input: None,
        dataset: None,
        scale: Scale::Small,
        output: None,
        algorithm: "bu".to_string(),
        d: 4,
        s: None,
        k: 10,
        opts: DccsOptions::default(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            iter.next().cloned().ok_or_else(|| CliError(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--input" => out.input = Some(value("--input")?),
            "--output" => out.output = Some(value("--output")?),
            "--dataset" => {
                let name = value("--dataset")?;
                out.dataset = Some(
                    DatasetId::parse(&name)
                        .ok_or_else(|| CliError(format!("unknown dataset `{name}`")))?,
                );
            }
            "--scale" => {
                let name = value("--scale")?;
                out.scale = Scale::parse(&name)
                    .ok_or_else(|| CliError(format!("unknown scale `{name}`")))?;
            }
            "--algorithm" => out.algorithm = value("--algorithm")?,
            "-d" => {
                out.d = value("-d")?.parse().map_err(|_| CliError("-d must be a number".into()))?
            }
            "-s" => {
                out.s =
                    Some(value("-s")?.parse().map_err(|_| CliError("-s must be a number".into()))?)
            }
            "-k" => {
                out.k = value("-k")?.parse().map_err(|_| CliError("-k must be a number".into()))?
            }
            "--threads" => {
                out.opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| CliError("--threads must be a number".into()))?
            }
            "--no-vd" => out.opts.vertex_deletion = false,
            "--no-sl" => out.opts.sort_layers = false,
            "--no-ir" => out.opts.init_topk = false,
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
    }
    Ok(out)
}

fn load_graph(opts: &Options) -> Result<MultiLayerGraph, CliError> {
    match (&opts.input, opts.dataset) {
        (Some(path), None) => mlgraph::io::read_edge_list(path)
            .map_err(|e| CliError(format!("failed to load `{path}`: {e}"))),
        (None, Some(id)) => Ok(generate(id, opts.scale).graph),
        (Some(_), Some(_)) => Err(CliError("use either --input or --dataset, not both".into())),
        (None, None) => Err(CliError("one of --input or --dataset is required".into())),
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError("a command is required".into()));
    };
    if command == "--help" || command == "-h" {
        println!("{USAGE}");
        return Ok(());
    }
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "stats" => cmd_stats(&opts),
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        "generate" => cmd_generate(&opts),
        other => Err(CliError(format!("unknown command `{other}`"))),
    }
}

fn cmd_stats(opts: &Options) -> Result<(), CliError> {
    let g = load_graph(opts)?;
    let stats = GraphStats::compute(&g);
    println!("vertices        : {}", stats.num_vertices);
    println!("layers          : {}", stats.num_layers);
    println!("total edges     : {}", stats.total_edges);
    println!("union edges     : {}", stats.union_edges);
    for layer in &stats.layers {
        println!(
            "  layer {:>3} ({}): edges={} active={} max_deg={} avg_deg={:.2}",
            layer.layer,
            layer.name,
            layer.num_edges,
            layer.active_vertices,
            layer.max_degree,
            layer.avg_degree
        );
    }
    Ok(())
}

fn params_for(opts: &Options, g: &MultiLayerGraph) -> Result<DccsParams, CliError> {
    let s = opts.s.unwrap_or_else(|| 3.min(g.num_layers()));
    let params = DccsParams::new(opts.d, s, opts.k);
    params.validate(g.num_layers()).map_err(CliError)?;
    Ok(params)
}

fn print_result(name: &str, g: &MultiLayerGraph, result: &dccs::DccsResult) {
    println!("== {name} ==");
    println!("time            : {:.4}s", result.elapsed.as_secs_f64());
    println!("cover size      : {}", result.cover_size());
    println!("cores reported  : {}", result.num_cores());
    println!("candidates      : {}", result.stats.candidates_generated);
    println!("dCC calls       : {}", result.stats.dcc_calls);
    println!("subtrees pruned : {}", result.stats.subtrees_pruned);
    println!("vertices deleted: {}", result.stats.vertices_deleted);
    for (i, core) in result.cores.iter().enumerate() {
        let layer_names: Vec<&str> = core.layers.iter().map(|&l| g.layer_name(l)).collect();
        println!("  core {:>2}: {} vertices on layers {:?}", i + 1, core.len(), layer_names);
    }
}

fn cmd_run(opts: &Options) -> Result<(), CliError> {
    let g = load_graph(opts)?;
    let params = params_for(opts, &g)?;
    let result = match opts.algorithm.to_ascii_lowercase().as_str() {
        "gd" | "greedy" => dccs::greedy_dccs_with_options(&g, &params, &opts.opts),
        "bu" | "bottom-up" => dccs::bottom_up_dccs_with_options(&g, &params, &opts.opts),
        "td" | "top-down" => dccs::top_down_dccs_with_options(&g, &params, &opts.opts),
        other => return Err(CliError(format!("unknown algorithm `{other}`"))),
    };
    print_result(
        &format!("{} (d={}, s={}, k={})", opts.algorithm, params.d, params.s, params.k),
        &g,
        &result,
    );
    Ok(())
}

fn cmd_compare(opts: &Options) -> Result<(), CliError> {
    let g = load_graph(opts)?;
    let params = params_for(opts, &g)?;
    let gd = dccs::greedy_dccs_with_options(&g, &params, &opts.opts);
    let bu = dccs::bottom_up_dccs_with_options(&g, &params, &opts.opts);
    let td = dccs::top_down_dccs_with_options(&g, &params, &opts.opts);
    println!("algorithm  time(s)    cover  candidates");
    for (name, r) in [("GD-DCCS", &gd), ("BU-DCCS", &bu), ("TD-DCCS", &td)] {
        println!(
            "{name:<10} {:<10.4} {:<6} {}",
            r.elapsed.as_secs_f64(),
            r.cover_size(),
            r.stats.candidates_generated
        );
    }
    Ok(())
}

fn cmd_generate(opts: &Options) -> Result<(), CliError> {
    let Some(id) = opts.dataset else {
        return Err(CliError("generate requires --dataset".into()));
    };
    let Some(output) = &opts.output else {
        return Err(CliError("generate requires --output".into()));
    };
    let ds = generate(id, opts.scale);
    let file = std::fs::File::create(output)
        .map_err(|e| CliError(format!("cannot create `{output}`: {e}")))?;
    mlgraph::io::write_edge_list(&ds.graph, std::io::BufWriter::new(file))
        .map_err(|e| CliError(format!("failed to write `{output}`: {e}")))?;
    println!(
        "wrote {} ({} vertices, {} layers, {} edges) to {output}",
        ds.spec.name,
        ds.graph.num_vertices(),
        ds.graph.num_layers(),
        ds.graph.total_edges()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, CliError> {
        parse_options(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_defaults() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.d, 4);
        assert_eq!(o.k, 10);
        assert!(o.s.is_none());
        assert_eq!(o.algorithm, "bu");
        assert_eq!(o.scale, Scale::Small);
    }

    #[test]
    fn parses_flags() {
        let o = opts(&[
            "--dataset",
            "ppi",
            "--scale",
            "tiny",
            "-d",
            "3",
            "-s",
            "2",
            "-k",
            "5",
            "--algorithm",
            "td",
            "--threads",
            "4",
            "--no-vd",
        ])
        .unwrap();
        assert_eq!(o.dataset, Some(DatasetId::Ppi));
        assert_eq!(o.scale, Scale::Tiny);
        assert_eq!(o.d, 3);
        assert_eq!(o.s, Some(2));
        assert_eq!(o.k, 5);
        assert_eq!(o.algorithm, "td");
        assert_eq!(o.opts.threads, 4);
        assert!(!o.opts.vertex_deletion);
        assert!(o.opts.sort_layers);
    }

    #[test]
    fn threads_defaults_to_sequential_and_rejects_garbage() {
        assert_eq!(opts(&[]).unwrap().opts.threads, 1);
        assert!(opts(&["--threads", "x"]).is_err());
        assert!(opts(&["--threads"]).is_err());
    }

    #[test]
    fn end_to_end_threaded_run() {
        let args: Vec<String> =
            ["run", "--dataset", "ppi", "--scale", "tiny", "-d", "2", "-s", "2", "--threads", "2"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert!(run(&args).is_ok());
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(opts(&["--dataset", "unknown"]).is_err());
        assert!(opts(&["--scale", "huge"]).is_err());
        assert!(opts(&["-d", "x"]).is_err());
        assert!(opts(&["--mystery"]).is_err());
        assert!(opts(&["--input"]).is_err());
    }

    #[test]
    fn run_requires_a_command_and_input() {
        assert!(run(&[]).is_err());
        assert!(run(&["run".to_string()]).is_err());
        assert!(run(&["bogus".to_string()]).is_err());
    }

    #[test]
    fn end_to_end_run_on_tiny_dataset() {
        let args: Vec<String> =
            ["run", "--dataset", "ppi", "--scale", "tiny", "-d", "2", "-s", "2"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert!(run(&args).is_ok());
    }

    #[test]
    fn end_to_end_compare_and_stats() {
        for cmd in ["compare", "stats"] {
            let args: Vec<String> =
                [cmd, "--dataset", "ppi", "--scale", "tiny", "-d", "2", "-s", "2"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            assert!(run(&args).is_ok(), "command {cmd} failed");
        }
    }

    #[test]
    fn generate_then_reload_roundtrip() {
        let dir = std::env::temp_dir().join("dccs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ppi_tiny.edges");
        let path_str = path.to_string_lossy().to_string();
        let args: Vec<String> =
            ["generate", "--dataset", "ppi", "--scale", "tiny", "--output", &path_str]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert!(run(&args).is_ok());
        let args: Vec<String> = ["run", "--input", &path_str, "-d", "2", "-s", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).is_ok());
        std::fs::remove_file(path).ok();
    }
}
