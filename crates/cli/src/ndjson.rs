//! Newline-delimited JSON codec for `dccs serve`.
//!
//! The vendored `serde_json` stand-in is emit-only, so the request side is
//! a small hand-written recursive-descent parser producing the same
//! [`Value`] tree the emitter consumes. It accepts one JSON document per
//! line and is deliberately lenient about number grammar edge cases
//! (`.5`, `1.` parse like `f64::from_str` does) — every number is an `f64`,
//! matching the vendored `Value::Number`.
//!
//! Wire format (one request object per line; every field optional, defaults
//! come from the command line):
//!
//! ```text
//! {"id":7,"d":2,"s":2,"k":5,"algorithm":"bu","serve":"peel",
//!  "timeout_ms":250,"budget":40,"degrade":true}
//! ```
//!
//! A line carrying `"op":"apply"` is a mutation batch instead of a query:
//! its `insert`/`delete` arrays hold `[layer, u, v]` triples, committed
//! atomically when the line's turn in the stream comes up:
//!
//! ```text
//! {"id":9,"op":"apply","insert":[[0,1,2],[1,3,4]],"delete":[[0,5,6]]}
//! ```
//!
//! Responses are emitted one per line, in input order:
//!
//! ```text
//! {"id":7,"ok":true,"cover":12,"cores":3,"candidates":9,
//!  "algorithm":"BU-DCCS","serve":"peel","cache":false,"epoch":1,"ms":0.42}
//! {"id":8,"ok":false,"error":"...","limit":true}
//! {"id":9,"ok":true,"op":"apply","epoch":2,"inserted":2,"deleted":1,
//!  "layers":2,"detached":false,"ms":0.31}
//! ```
//!
//! A malformed line produces an `ok:false` response for that line only; the
//! stream continues.

use dccs::{
    Algorithm, CommitReceipt, DccsError, DccsParams, DccsResult, QueryLimits, Serve, ServePath,
};
use mlgraph::{EdgeBatch, Layer, Vertex};
use serde_json::Value;
use std::time::Duration;

/// Parses one JSON document from `line`, rejecting trailing garbage.
pub fn parse(line: &str) -> Result<Value, String> {
    let mut p = Parser { src: line, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != line.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => {
                Err(format!("expected `{want}` at byte {}, found `{c}`", self.pos - c.len_utf8()))
            }
            None => Err(format!("expected `{want}`, found end of line")),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string().map(Value::String),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{c}` at byte {}", self.pos)),
            None => Err("unexpected end of line".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Object(pairs)),
                Some(c) => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found `{c}`",
                        self.pos - c.len_utf8()
                    ))
                }
                None => return Err("unterminated object".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Array(items)),
                Some(c) => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found `{c}`",
                        self.pos - c.len_utf8()
                    ))
                }
                None => return Err("unterminated array".into()),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000C}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => out.push(self.unicode_escape()?),
                    Some(c) => return Err(format!("invalid escape `\\{c}`")),
                    None => return Err("unterminated string".into()),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err("unescaped control character in string".into())
                }
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // A UTF-16 surrogate pair: the low half must follow immediately.
            if self.bump() != Some('\\') || self.bump() != Some('u') {
                return Err("lone high surrogate in \\u escape".into());
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err("invalid low surrogate in \\u escape".into());
            }
            let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(code).ok_or_else(|| "invalid \\u escape".into());
        }
        char::from_u32(high).ok_or_else(|| "invalid \\u escape".into())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|c| c.to_digit(16))
                .ok_or_else(|| "\\u needs four hex digits".to_string())?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || "-+.eE".contains(c)) {
            self.bump();
        }
        self.src[start..self.pos]
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number `{}`", &self.src[start..self.pos]))
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.src[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("unexpected token at byte {}", self.pos))
        }
    }
}

/// Per-request fallbacks, taken from the `dccs serve` command line: a
/// request object only overrides the fields it carries.
pub struct RequestDefaults {
    /// Degree threshold (`-d`).
    pub d: u32,
    /// Layer-subset size (`-s`, resolved against the graph).
    pub s: usize,
    /// Cover budget (`-k`).
    pub k: usize,
    /// Algorithm (`--algorithm`).
    pub algorithm: Algorithm,
    /// Serve mode (`--serve`).
    pub serve: Serve,
    /// Resource limits (`--timeout-ms`, `--budget`, `--degrade`).
    pub limits: QueryLimits,
}

/// One decoded request line: the caller-visible `id` (defaults to the
/// 1-based line number) and the service query to run.
#[derive(Debug)]
pub struct Request {
    /// Echoed verbatim in the response line.
    pub id: u64,
    /// The query, with every unspecified field filled from the defaults.
    pub query: dccs::ServiceQuery,
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9.0e15 => Some(*n as u64),
        _ => None,
    }
}

fn as_usize(v: &Value) -> Option<usize> {
    as_u64(v).and_then(|n| usize::try_from(n).ok())
}

/// One decoded `"op":"apply"` line: a mutation batch to commit when its
/// turn in the stream comes up.
#[derive(Debug)]
pub struct ApplyRequest {
    /// Echoed verbatim in the response line.
    pub id: u64,
    /// The edge mutations to commit atomically.
    pub batch: EdgeBatch,
}

/// One decoded line of the serve stream: a query to answer or a mutation
/// batch to commit.
#[derive(Debug)]
pub enum Line {
    /// An ordinary query request.
    Query(Request),
    /// An `"op":"apply"` mutation batch.
    Apply(ApplyRequest),
}

/// Decodes one stream line, routing on the presence of an `op` field:
/// objects carrying one are mutation batches, everything else decodes as a
/// query against `defaults`. Errors carry the id to answer with.
pub fn parse_line(
    line: &str,
    lineno: usize,
    defaults: &RequestDefaults,
) -> Result<Line, (u64, String)> {
    let fallback = lineno as u64;
    let value = parse(line).map_err(|e| (fallback, e))?;
    let Value::Object(pairs) = value else {
        return Err((fallback, "request must be a JSON object".into()));
    };
    let id = request_id(&pairs, fallback)?;
    if pairs.iter().any(|(k, _)| k == "op") {
        apply_from_pairs(&pairs, id).map(Line::Apply)
    } else {
        request_from_pairs(&pairs, id, defaults).map(Line::Query)
    }
}

/// Decodes one query line against `defaults`. Errors carry the id to
/// answer with — the request's own `id` when it parsed that far, the
/// 1-based `lineno` otherwise. The serve loop goes through [`parse_line`];
/// this query-only entry remains for the tests.
#[cfg(test)]
pub fn parse_request(
    line: &str,
    lineno: usize,
    defaults: &RequestDefaults,
) -> Result<Request, (u64, String)> {
    let fallback = lineno as u64;
    let value = parse(line).map_err(|e| (fallback, e))?;
    let Value::Object(pairs) = value else {
        return Err((fallback, "request must be a JSON object".into()));
    };
    let id = request_id(&pairs, fallback)?;
    request_from_pairs(&pairs, id, defaults)
}

/// Resolves the `id` to answer with: the object's own `id` field when
/// present and well-formed, the caller's fallback (1-based line number)
/// otherwise.
fn request_id(pairs: &[(String, Value)], fallback: u64) -> Result<u64, (u64, String)> {
    match pairs.iter().find(|(k, _)| k == "id") {
        Some((_, v)) => {
            as_u64(v).ok_or((fallback, "`id` must be a non-negative integer".to_string()))
        }
        None => Ok(fallback),
    }
}

fn request_from_pairs(
    pairs: &[(String, Value)],
    id: u64,
    defaults: &RequestDefaults,
) -> Result<Request, (u64, String)> {
    let field = |name: &str, msg: &str| (id, format!("`{name}` {msg}"));
    let mut d = defaults.d;
    let mut s = defaults.s;
    let mut k = defaults.k;
    let mut algorithm = defaults.algorithm;
    let mut serve = defaults.serve;
    let mut limits = defaults.limits;
    for (key, v) in pairs {
        match key.as_str() {
            "id" => {}
            "d" => {
                d = as_u64(v)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| field("d", "must be a non-negative integer"))?
            }
            "s" => s = as_usize(v).ok_or_else(|| field("s", "must be a non-negative integer"))?,
            "k" => k = as_usize(v).ok_or_else(|| field("k", "must be a non-negative integer"))?,
            "algorithm" => {
                let Value::String(name) = v else {
                    return Err(field("algorithm", "must be a string"));
                };
                algorithm = Algorithm::parse(name)
                    .ok_or_else(|| (id, format!("unknown algorithm `{name}`")))?;
            }
            "serve" => {
                let Value::String(name) = v else {
                    return Err(field("serve", "must be a string"));
                };
                serve = Serve::parse(name)
                    .ok_or_else(|| (id, format!("unknown serve mode `{name}`")))?;
            }
            "timeout_ms" => {
                let ms = as_u64(v)
                    .ok_or_else(|| field("timeout_ms", "must be a non-negative integer"))?;
                limits.deadline = Some(Duration::from_millis(ms));
            }
            "budget" => {
                limits.candidate_budget = Some(
                    as_usize(v).ok_or_else(|| field("budget", "must be a non-negative integer"))?,
                );
            }
            "degrade" => {
                let Value::Bool(flag) = v else {
                    return Err(field("degrade", "must be a boolean"));
                };
                limits.degrade = *flag;
            }
            other => return Err((id, format!("unknown field `{other}`"))),
        }
    }
    let query = dccs::ServiceQuery::new(DccsParams::new(d, s, k))
        .with_algorithm(algorithm)
        .with_serve(serve)
        .with_limits(limits);
    Ok(Request { id, query })
}

fn apply_from_pairs(pairs: &[(String, Value)], id: u64) -> Result<ApplyRequest, (u64, String)> {
    let mut batch = EdgeBatch::new();
    for (key, v) in pairs {
        match key.as_str() {
            "id" => {}
            "op" => {
                let Value::String(name) = v else {
                    return Err((id, "`op` must be a string".into()));
                };
                if name != "apply" {
                    return Err((id, format!("unknown op `{name}`")));
                }
            }
            "insert" => edges_into(v, "insert", &mut batch, true).map_err(|m| (id, m))?,
            "delete" => edges_into(v, "delete", &mut batch, false).map_err(|m| (id, m))?,
            other => return Err((id, format!("unknown field `{other}` in apply request"))),
        }
    }
    Ok(ApplyRequest { id, batch })
}

/// Decodes an array of `[layer, u, v]` triples into `batch` as insertions
/// or deletions.
fn edges_into(v: &Value, name: &str, batch: &mut EdgeBatch, insert: bool) -> Result<(), String> {
    let bad = || format!("`{name}` must be an array of [layer, u, v] integer triples");
    let Value::Array(items) = v else {
        return Err(bad());
    };
    for item in items {
        let Value::Array(triple) = item else {
            return Err(bad());
        };
        let [layer, u, w] = triple.as_slice() else {
            return Err(bad());
        };
        let layer = as_usize(layer).ok_or_else(bad)? as Layer;
        let u = as_u64(u).ok_or_else(bad)? as Vertex;
        let w = as_u64(w).ok_or_else(bad)? as Vertex;
        if insert {
            batch.insert(layer, u, w);
        } else {
            batch.delete(layer, u, w);
        }
    }
    Ok(())
}

/// The response line for a committed (or no-op) mutation batch: the epoch
/// now serving and the effective edge counts.
pub fn apply_response(id: u64, receipt: &CommitReceipt, ms: f64) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("id".to_string(), Value::from(id)),
        ("ok".to_string(), Value::from(true)),
        ("op".to_string(), Value::from("apply")),
        ("epoch".to_string(), Value::from(receipt.epoch)),
        ("inserted".to_string(), Value::from(receipt.inserted)),
        ("deleted".to_string(), Value::from(receipt.deleted)),
        ("layers".to_string(), Value::from(receipt.layers_touched)),
        ("detached".to_string(), Value::from(receipt.index_detached)),
        ("ms".to_string(), Value::from(ms)),
    ]))
}

/// The response line for a successfully answered query.
pub fn ok_response(id: u64, result: &DccsResult, ms: f64) -> String {
    let mut pairs = vec![
        ("id".to_string(), Value::from(id)),
        ("ok".to_string(), Value::from(true)),
        ("cover".to_string(), Value::from(result.cover_size())),
        ("cores".to_string(), Value::from(result.num_cores())),
        ("candidates".to_string(), Value::from(result.stats.candidates_generated)),
    ];
    if let Some(algorithm) = result.stats.algorithm {
        pairs.push(("algorithm".to_string(), Value::from(algorithm.name())));
    }
    if let Some(serve) = result.stats.serve {
        let name = match serve {
            ServePath::Index => "index",
            ServePath::Peel => "peel",
        };
        pairs.push(("serve".to_string(), Value::from(name)));
    }
    pairs.push(("cache".to_string(), Value::from(result.stats.served_from_cache)));
    if let Some(epoch) = result.stats.graph_epoch {
        pairs.push(("epoch".to_string(), Value::from(epoch)));
    }
    pairs.push(("ms".to_string(), Value::from(ms)));
    serde_json::to_string(&Value::Object(pairs))
}

/// The response line for a failed query or an undecodable request line.
/// `limit` marks queries that ran out of their allowance (the serve stream
/// keeps going, so the per-invocation exit code cannot carry this).
pub fn error_response(id: u64, message: &str, limit: bool) -> String {
    let mut pairs = vec![
        ("id".to_string(), Value::from(id)),
        ("ok".to_string(), Value::from(false)),
        ("error".to_string(), Value::from(message)),
    ];
    if limit {
        pairs.push(("limit".to_string(), Value::from(true)));
    }
    serde_json::to_string(&Value::Object(pairs))
}

/// Maps a [`DccsError`] to its response line.
pub fn dccs_error_response(id: u64, err: &DccsError) -> String {
    error_response(id, &err.to_string(), err.is_limit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> RequestDefaults {
        RequestDefaults {
            d: 4,
            s: 3,
            k: 10,
            algorithm: Algorithm::Auto,
            serve: Serve::Auto,
            limits: QueryLimits::none(),
        }
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Value::Number(-25.0));
        assert_eq!(parse(r#""a\"b\nA""#).unwrap(), Value::String("a\"b\nA".into()));
        assert_eq!(
            parse(r#"{"xs":[1,2],"o":{"k":null}}"#).unwrap(),
            Value::Object(vec![
                ("xs".into(), Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])),
                ("o".into(), Value::Object(vec![("k".into(), Value::Null)])),
            ])
        );
        // Surrogate pairs decode to one scalar value.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
    }

    #[test]
    fn parse_round_trips_the_emitter() {
        let v = Value::object(vec![
            ("name", Value::from("dcc \"quoted\"\n")),
            ("runs", Value::from(vec![1usize, 2, 3])),
            ("ok", Value::from(true)),
        ]);
        assert_eq!(parse(&serde_json::to_string(&v)).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{\"a\":1} extra", "{'a':1}"]
        {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn requests_default_missing_fields_and_override_present_ones() {
        let req = parse_request("{}", 7, &defaults()).unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.query.spec.params, DccsParams::new(4, 3, 10));
        assert_eq!(req.query.spec.algorithm, Algorithm::Auto);
        assert!(req.query.limits.is_unlimited());

        let line = r#"{"id":99,"d":2,"s":2,"k":5,"algorithm":"bu","serve":"peel","timeout_ms":250,"budget":40,"degrade":true}"#;
        let req = parse_request(line, 1, &defaults()).unwrap();
        assert_eq!(req.id, 99);
        assert_eq!(req.query.spec.params, DccsParams::new(2, 2, 5));
        assert_eq!(req.query.spec.algorithm, Algorithm::BottomUp);
        assert_eq!(req.query.serve, Serve::Peel);
        assert_eq!(req.query.limits.deadline, Some(Duration::from_millis(250)));
        assert_eq!(req.query.limits.candidate_budget, Some(40));
        assert!(req.query.limits.degrade);
    }

    #[test]
    fn request_errors_carry_the_best_available_id() {
        // Undecodable line: the 1-based line number stands in.
        let (id, msg) = parse_request("not json", 3, &defaults()).unwrap_err();
        assert_eq!(id, 3);
        assert!(!msg.is_empty());
        // Parsed object with a bad field: the request's own id is used.
        let (id, msg) = parse_request(r#"{"id":42,"d":"two"}"#, 3, &defaults()).unwrap_err();
        assert_eq!(id, 42);
        assert!(msg.contains("`d`"), "got: {msg}");
        // Unknown fields are rejected, not ignored — typos must not
        // silently fall back to defaults.
        let (_, msg) = parse_request(r#"{"dd":2}"#, 1, &defaults()).unwrap_err();
        assert!(msg.contains("unknown field"), "got: {msg}");
        for bad in [r#"[1]"#, r#"{"algorithm":"quantum"}"#, r#"{"serve":7}"#] {
            assert!(parse_request(bad, 1, &defaults()).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn parse_line_routes_queries_and_applies() {
        // No `op` field: an ordinary query, identical to `parse_request`.
        match parse_line(r#"{"id":3,"d":2}"#, 1, &defaults()).unwrap() {
            Line::Query(req) => {
                assert_eq!(req.id, 3);
                assert_eq!(req.query.spec.params.d, 2);
            }
            other => panic!("expected a query, got {other:?}"),
        }
        // `op:"apply"` with triples on both lists.
        let line = r#"{"id":9,"op":"apply","insert":[[0,1,2],[1,3,4]],"delete":[[0,5,6]]}"#;
        match parse_line(line, 1, &defaults()).unwrap() {
            Line::Apply(apply) => {
                assert_eq!(apply.id, 9);
                assert_eq!(apply.batch.inserts(), &[(0, 1, 2), (1, 3, 4)]);
                assert_eq!(apply.batch.deletes(), &[(0, 5, 6)]);
            }
            other => panic!("expected an apply, got {other:?}"),
        }
        // An apply with no edge lists is a (legal) no-op batch.
        match parse_line(r#"{"op":"apply"}"#, 4, &defaults()).unwrap() {
            Line::Apply(apply) => {
                assert_eq!(apply.id, 4);
                assert!(apply.batch.is_empty());
            }
            other => panic!("expected an apply, got {other:?}"),
        }
    }

    #[test]
    fn malformed_apply_lines_carry_the_id_and_a_reason() {
        for (bad, needle) in [
            (r#"{"op":"revert"}"#, "unknown op"),
            (r#"{"op":7}"#, "`op` must be a string"),
            (r#"{"op":"apply","insert":7}"#, "integer triples"),
            (r#"{"op":"apply","insert":[[0,1]]}"#, "integer triples"),
            (r#"{"op":"apply","delete":[[0,1,"x"]]}"#, "integer triples"),
            (r#"{"op":"apply","d":2}"#, "unknown field"),
        ] {
            let (id, msg) = parse_line(bad, 6, &defaults()).unwrap_err();
            assert_eq!(id, 6, "line `{bad}`");
            assert!(msg.contains(needle), "line `{bad}`: got `{msg}`");
        }
        let (id, _) =
            parse_line(r#"{"id":11,"op":"apply","insert":0}"#, 6, &defaults()).unwrap_err();
        assert_eq!(id, 11);
    }

    #[test]
    fn apply_responses_report_the_receipt() {
        let receipt = dccs::CommitReceipt {
            epoch: 5,
            inserted: 2,
            deleted: 1,
            layers_touched: 2,
            repaired_ds: 1,
            index_detached: true,
        };
        let line = apply_response(9, &receipt, 0.5);
        assert!(!line.contains('\n'));
        let Value::Object(pairs) = parse(&line).unwrap() else { panic!("not an object") };
        let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone());
        assert_eq!(get("id"), Some(Value::Number(9.0)));
        assert_eq!(get("ok"), Some(Value::Bool(true)));
        assert_eq!(get("op"), Some(Value::String("apply".into())));
        assert_eq!(get("epoch"), Some(Value::Number(5.0)));
        assert_eq!(get("inserted"), Some(Value::Number(2.0)));
        assert_eq!(get("deleted"), Some(Value::Number(1.0)));
        assert_eq!(get("layers"), Some(Value::Number(2.0)));
        assert_eq!(get("detached"), Some(Value::Bool(true)));
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let err = error_response(5, "bad \"input\"\nline", true);
        assert!(!err.contains('\n'), "got: {err}");
        let v = parse(&err).unwrap();
        let Value::Object(pairs) = v else { panic!("not an object") };
        assert!(pairs.iter().any(|(k, v)| k == "ok" && *v == Value::Bool(false)));
        assert!(pairs.iter().any(|(k, v)| k == "limit" && *v == Value::Bool(true)));
        assert!(!error_response(5, "plain", false).contains("limit"));
    }
}
