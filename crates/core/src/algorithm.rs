//! Algorithm selection: the [`Algorithm`] enum and the `Auto` policy.
//!
//! The paper evaluates three approximation algorithms and recommends them by
//! regime: `GD-DCCS` when every candidate must be enumerated anyway,
//! `BU-DCCS` for small support thresholds, `TD-DCCS` when `s ≥ l/2`
//! (Section V). [`Algorithm::Auto`] encodes that guidance — plus the
//! [`crate::engine::plan_index`] cost model as a cheap density probe — so
//! callers of the session API ([`crate::DccsSession`]) don't have to be
//! experts to get the right search strategy per query. The resolved choice
//! is recorded in [`crate::SearchStats::algorithm`].

use crate::config::DccsParams;
use crate::engine::{plan_index, IndexPath};
use crate::layer_subsets::binomial;
use mlgraph::MultiLayerGraph;

/// Candidate-count ceiling under which a dense-indexed graph favors the
/// greedy lattice walk over the search trees: with few subsets to peel and
/// word-level rows, full enumeration is cheaper than maintaining top-k
/// bounds. Calibrated on the tiny analogues (`l ≤ 10`, so `C(l, 3) ≤ 120`).
const DENSE_GREEDY_CANDIDATE_CAP: u128 = 64;

/// Candidate-count ceiling, as a multiple of the layer count, under which a
/// **large-support** query (`s ≥ l/2`) runs the greedy lattice walk instead
/// of `TD-DCCS`. Near the top of the lattice (`s` close to `l`) there are
/// only `C(l, l−s)` candidates — `l` of them at `s = l − 1` — and the
/// lattice enumerates them with Lemma-1 prefix-seeded peels, while the
/// top-down tree still pays `RefineU` over near-full layer sets at every
/// node. The `bench_dcc` `auto_selection` group measured the old TD pick at
/// ~0.45 efficiency on the tiny Wiki analogue at `s = l − 1`; capping at
/// `2·l` candidates flips exactly those degenerate-tree cases to GD while
/// leaving mid-range `s` (e.g. `C(6, 4) = 15 > 12`) with the paper's TD
/// recommendation.
const LARGE_S_GREEDY_CANDIDATE_FACTOR: u128 = 2;

/// Which DCCS algorithm a query runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// `GD-DCCS` (Fig. 2): enumerate every candidate, greedy max-k-cover.
    Greedy,
    /// `BU-DCCS` (Fig. 7): bottom-up search tree, recommended for small `s`.
    BottomUp,
    /// `TD-DCCS` (Fig. 11): top-down search tree, recommended for `s ≥ l/2`.
    TopDown,
    /// Brute-force exact solver — a test oracle for tiny inputs only; fails
    /// with [`crate::DccsError::BudgetExceeded`] beyond its candidate budget.
    Exact,
    /// Pick between the approximation algorithms per query from the
    /// `(s, l, k)` regime heuristics and the dense-vs-CSR cost model (see
    /// [`Algorithm::resolve`]). Never resolves to [`Algorithm::Exact`].
    Auto,
}

impl Algorithm {
    /// The paper's name for the algorithm (`AUTO` for the meta-selector).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Greedy => "GD-DCCS",
            Algorithm::BottomUp => "BU-DCCS",
            Algorithm::TopDown => "TD-DCCS",
            Algorithm::Exact => "EXACT",
            Algorithm::Auto => "AUTO",
        }
    }

    /// Parses an algorithm name (several aliases accepted, case-insensitive):
    /// `gd`/`greedy`, `bu`/`bottom-up`, `td`/`top-down`, `exact`, `auto`.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "gd" | "greedy" | "gd-dccs" => Some(Algorithm::Greedy),
            "bu" | "bottom-up" | "bottomup" | "bu-dccs" => Some(Algorithm::BottomUp),
            "td" | "top-down" | "topdown" | "td-dccs" => Some(Algorithm::TopDown),
            "exact" | "brute-force" | "oracle" => Some(Algorithm::Exact),
            "auto" => Some(Algorithm::Auto),
            _ => None,
        }
    }

    /// Resolves `Auto` to a concrete approximation algorithm for `(g,
    /// params)`; any other variant resolves to itself.
    ///
    /// The policy, in order:
    ///
    /// 1. **`k ≥ C(l, s)`** → [`Algorithm::Greedy`]. The top-k result set
    ///    keeps every candidate, so the search trees' pruning rules (which
    ///    all compare against the `k`-th best) can never fire — full
    ///    enumeration over the lattice, with its prefix-seeded peels, is the
    ///    cheapest way to visit every subset.
    /// 2. **Dense index + few candidates** → [`Algorithm::Greedy`]. When the
    ///    [`plan_index`] cost model picks the word-level dense path on the
    ///    full vertex set (a small, dense graph) and `C(l, s)` is tiny,
    ///    lattice enumeration beats tree bookkeeping.
    /// 3. **Large `s`, few candidates** → [`Algorithm::Greedy`]. At
    ///    `s ≥ l/2` with `C(l, s) ≤ 2·l` (e.g. `s = l − 1`, where only `l`
    ///    candidates exist) the search trees degenerate — every pruning
    ///    bound is paid but almost nothing can be pruned — and the lattice
    ///    enumerates the handful of subsets directly, regardless of the
    ///    index representation. This closes the policy gap recorded by the
    ///    `auto_selection` bench group (TD at ~0.45 efficiency on the tiny
    ///    Wiki analogue at `s = l − 1`).
    /// 4. **`s ≥ l/2`** → [`Algorithm::TopDown`], the paper's Section V
    ///    recommendation: near the full layer set, the top-down tree reaches
    ///    level `s` in few steps and `RefineU` keeps potential sets small.
    /// 5. Otherwise → [`Algorithm::BottomUp`], the paper's default for small
    ///    support thresholds.
    pub fn resolve(self, g: &MultiLayerGraph, params: &DccsParams) -> Algorithm {
        if self != Algorithm::Auto {
            return self;
        }
        let l = g.num_layers();
        let candidates = binomial(l, params.s);
        if params.k as u128 >= candidates {
            return Algorithm::Greedy;
        }
        if candidates <= DENSE_GREEDY_CANDIDATE_CAP {
            let plan = plan_index(g, &g.full_vertex_set());
            if plan.path == IndexPath::Dense {
                return Algorithm::Greedy;
            }
        }
        if 2 * params.s >= l {
            if candidates <= LARGE_S_GREEDY_CANDIDATE_FACTOR * l as u128 {
                return Algorithm::Greedy;
            }
            Algorithm::TopDown
        } else {
            Algorithm::BottomUp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Six layers over a sparse wide graph: cycles, so the CSR path wins the
    /// cost model and the regime heuristics decide.
    fn wide_sparse(layers: usize) -> mlgraph::MultiLayerGraph {
        let n = 600;
        let mut b = MultiLayerGraphBuilder::new(n, layers);
        for layer in 0..layers {
            for v in 0..n as u32 {
                b.add_edge(layer, v, (v + 1) % n as u32).unwrap();
            }
        }
        b.build()
    }

    /// A tiny dense graph: cliques on every layer, dense path wins.
    fn tiny_dense(layers: usize) -> mlgraph::MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(8, layers);
        for layer in 0..layers {
            clique(&mut b, layer, &[0, 1, 2, 3, 4, 5, 6, 7]);
        }
        b.build()
    }

    #[test]
    fn names_and_parsing_round_trip() {
        for algo in [
            Algorithm::Greedy,
            Algorithm::BottomUp,
            Algorithm::TopDown,
            Algorithm::Exact,
            Algorithm::Auto,
        ] {
            assert_eq!(Algorithm::parse(algo.name()), Some(algo), "{}", algo.name());
        }
        assert_eq!(Algorithm::parse("auto"), Some(Algorithm::Auto));
        assert_eq!(Algorithm::parse("exact"), Some(Algorithm::Exact));
        assert_eq!(Algorithm::parse("gibberish"), None);
    }

    #[test]
    fn explicit_algorithms_resolve_to_themselves() {
        let g = wide_sparse(6);
        let params = DccsParams::new(2, 2, 3);
        for algo in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown, Algorithm::Exact] {
            assert_eq!(algo.resolve(&g, &params), algo);
        }
    }

    #[test]
    fn auto_picks_greedy_when_k_covers_all_candidates() {
        let g = wide_sparse(6);
        // C(6, 2) = 15 candidates, k = 20 keeps them all.
        let params = DccsParams::new(2, 2, 20);
        assert_eq!(Algorithm::Auto.resolve(&g, &params), Algorithm::Greedy);
    }

    #[test]
    fn auto_picks_top_down_for_large_support() {
        let g = wide_sparse(6);
        // s = 4 ≥ l/2 = 3, k small, C(6, 4) = 15 > 2·6 candidates — enough
        // tree for TD's pruning to pay off.
        let params = DccsParams::new(2, 4, 2);
        assert_eq!(Algorithm::Auto.resolve(&g, &params), Algorithm::TopDown);
    }

    #[test]
    fn auto_picks_greedy_for_large_support_with_few_candidates() {
        // s = l − 1 leaves only l candidates: the top-down tree degenerates
        // and lattice enumeration must win even on a CSR-bound graph.
        let g = wide_sparse(8);
        let params = DccsParams::new(2, 7, 2);
        assert_eq!(Algorithm::Auto.resolve(&g, &params), Algorithm::Greedy);
        // C(8, 6) = 28 > 2·8: back in TD territory.
        let params = DccsParams::new(2, 6, 2);
        assert_eq!(Algorithm::Auto.resolve(&g, &params), Algorithm::TopDown);
    }

    #[test]
    fn auto_picks_bottom_up_for_small_support() {
        let g = wide_sparse(8);
        // s = 2 < l/2 = 4, k = 3 < C(8, 2) = 28.
        let params = DccsParams::new(2, 2, 3);
        assert_eq!(Algorithm::Auto.resolve(&g, &params), Algorithm::BottomUp);
    }

    #[test]
    fn auto_prefers_greedy_on_tiny_dense_graphs() {
        let g = tiny_dense(8);
        // s = 2 < l/2 would pick BU on a sparse graph, but the dense index
        // with C(8, 2) = 28 ≤ 64 candidates favors lattice enumeration.
        let params = DccsParams::new(2, 2, 3);
        assert_eq!(Algorithm::Auto.resolve(&g, &params), Algorithm::Greedy);
    }
}
