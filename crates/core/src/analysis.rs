//! Post-hoc analysis of DCCS results.
//!
//! Section VI of the paper motivates diversification by observing that
//! "there exist substantial overlaps among d-CCs" (the discussion around
//! Figs. 24–25). This module quantifies that: pairwise Jaccard overlaps
//! between the reported cores, the redundancy of a result set (how much
//! smaller the cover is than the sum of core sizes), and per-core
//! contribution summaries used by the examples and the CLI.

use crate::result::{CoherentCore, DccsResult};
use mlgraph::VertexSet;

/// Overlap and contribution statistics of a set of coherent cores.
#[derive(Clone, Debug, PartialEq)]
pub struct OverlapReport {
    /// Number of cores analysed.
    pub num_cores: usize,
    /// Sum of the individual core sizes.
    pub total_core_size: usize,
    /// Size of the union of all cores.
    pub cover_size: usize,
    /// `1 − cover / total`: 0 means pairwise disjoint cores, values close to
    /// 1 mean the cores are nearly identical.
    pub redundancy: f64,
    /// Pairwise Jaccard similarities, row-major upper triangle
    /// (`pairs[i][j]` for `j > i` stored as a flat list of `(i, j, jaccard)`).
    pub pairwise_jaccard: Vec<(usize, usize, f64)>,
    /// For each core, the number of vertices no other core covers.
    pub exclusive_counts: Vec<usize>,
}

impl OverlapReport {
    /// The largest pairwise Jaccard similarity, or 0 for fewer than 2 cores.
    pub fn max_jaccard(&self) -> f64 {
        self.pairwise_jaccard.iter().map(|&(_, _, j)| j).fold(0.0, f64::max)
    }

    /// The mean pairwise Jaccard similarity, or 0 for fewer than 2 cores.
    pub fn mean_jaccard(&self) -> f64 {
        if self.pairwise_jaccard.is_empty() {
            0.0
        } else {
            self.pairwise_jaccard.iter().map(|&(_, _, j)| j).sum::<f64>()
                / self.pairwise_jaccard.len() as f64
        }
    }
}

/// Jaccard similarity of two vertex sets (1.0 for two empty sets).
pub fn jaccard(a: &VertexSet, b: &VertexSet) -> f64 {
    let intersection = a.intersection_len(b);
    let union = a.len() + b.len() - intersection;
    if union == 0 {
        1.0
    } else {
        intersection as f64 / union as f64
    }
}

/// Computes the overlap report for a list of cores over a universe of
/// `num_vertices` vertices.
pub fn analyze_cores(num_vertices: usize, cores: &[CoherentCore]) -> OverlapReport {
    let mut cover = VertexSet::new(num_vertices);
    let mut total = 0usize;
    for core in cores {
        total += core.len();
        cover.union_with(&core.vertices);
    }
    let mut pairwise = Vec::new();
    for i in 0..cores.len() {
        for j in (i + 1)..cores.len() {
            pairwise.push((i, j, jaccard(&cores[i].vertices, &cores[j].vertices)));
        }
    }
    let exclusive_counts = cores
        .iter()
        .enumerate()
        .map(|(i, core)| {
            core.vertices
                .iter()
                .filter(|&v| {
                    cores.iter().enumerate().all(|(j, other)| j == i || !other.vertices.contains(v))
                })
                .count()
        })
        .collect();
    let redundancy = if total == 0 { 0.0 } else { 1.0 - cover.len() as f64 / total as f64 };
    OverlapReport {
        num_cores: cores.len(),
        total_core_size: total,
        cover_size: cover.len(),
        redundancy,
        pairwise_jaccard: pairwise,
        exclusive_counts,
    }
}

/// Convenience wrapper over a [`DccsResult`].
pub fn analyze_result(num_vertices: usize, result: &DccsResult) -> OverlapReport {
    analyze_cores(num_vertices, &result.cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::Layer;

    fn core(layers: Vec<Layer>, vertices: &[u32]) -> CoherentCore {
        CoherentCore::new(layers, VertexSet::from_iter(20, vertices.iter().copied()))
    }

    #[test]
    fn jaccard_basics() {
        let a = VertexSet::from_iter(10, [1, 2, 3]);
        let b = VertexSet::from_iter(10, [2, 3, 4]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        let empty = VertexSet::new(10);
        assert_eq!(jaccard(&a, &empty), 0.0);
        assert_eq!(jaccard(&empty, &empty), 1.0);
    }

    #[test]
    fn disjoint_cores_have_zero_redundancy() {
        let cores = vec![core(vec![0], &[0, 1, 2]), core(vec![1], &[3, 4])];
        let report = analyze_cores(20, &cores);
        assert_eq!(report.num_cores, 2);
        assert_eq!(report.total_core_size, 5);
        assert_eq!(report.cover_size, 5);
        assert_eq!(report.redundancy, 0.0);
        assert_eq!(report.exclusive_counts, vec![3, 2]);
        assert_eq!(report.max_jaccard(), 0.0);
    }

    #[test]
    fn identical_cores_are_fully_redundant() {
        let cores = vec![core(vec![0], &[0, 1, 2]), core(vec![1], &[0, 1, 2])];
        let report = analyze_cores(20, &cores);
        assert_eq!(report.cover_size, 3);
        assert!((report.redundancy - 0.5).abs() < 1e-12);
        assert_eq!(report.exclusive_counts, vec![0, 0]);
        assert_eq!(report.max_jaccard(), 1.0);
        assert_eq!(report.mean_jaccard(), 1.0);
    }

    #[test]
    fn partial_overlap_is_quantified() {
        let cores = vec![
            core(vec![0], &[0, 1, 2, 3]),
            core(vec![1], &[2, 3, 4, 5]),
            core(vec![2], &[10, 11]),
        ];
        let report = analyze_cores(20, &cores);
        assert_eq!(report.cover_size, 8);
        assert_eq!(report.total_core_size, 10);
        assert_eq!(report.pairwise_jaccard.len(), 3);
        // Jaccard(0, 1) = 2/6.
        let (_, _, j01) = report.pairwise_jaccard[0];
        assert!((j01 - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.exclusive_counts, vec![2, 2, 2]);
        assert!(report.mean_jaccard() > 0.0 && report.mean_jaccard() < 0.2);
    }

    #[test]
    fn empty_input() {
        let report = analyze_cores(20, &[]);
        assert_eq!(report.num_cores, 0);
        assert_eq!(report.cover_size, 0);
        assert_eq!(report.redundancy, 0.0);
        assert_eq!(report.mean_jaccard(), 0.0);
    }
}
