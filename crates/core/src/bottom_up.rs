//! `BU-DCCS` — the bottom-up search algorithm of Section IV (Figs. 3 and 7).
//!
//! Candidate d-CCs are organized in a search tree over layer subsets: the
//! node for layer subset `L` has one child per layer index `j > max(L)`.
//! The tree is explored depth-first from the empty subset down to level `s`,
//! and the temporary top-k result set is updated by every candidate reached
//! at level `s`. Three pruning rules cut subtrees:
//!
//! * **Lemma 2** (search-tree pruning) — a node failing Eq. (1) has no
//!   descendant that can update `R`.
//! * **Lemma 3** (order-based pruning) — children are visited in decreasing
//!   order of `|C_L ∩ C^d(G_j)|`; once that intersection drops below
//!   `|Cov(R)|/k + |Δ(R, C*(R))|` the remaining children can be skipped.
//! * **Lemma 4** (layer pruning) — a layer `j` whose child fails Eq. (1) is
//!   excluded from every deeper subset containing `L`.
//!
//! The approximation ratio is 1/4 (Theorem 3).
//!
//! # Execution model
//!
//! The search tree runs as a deterministic subtree-level task graph on the
//! shared executor ([`crate::engine::drive_task_graph`]): every node is one
//! task that peels its surviving children on whichever worker grabs it,
//! and the results are committed on the driver in the tree's pre-order.
//! The Lemma-3 child selection inside a task is evaluated against a
//! [`crate::coverage::PruneBounds`] snapshot captured when the task was
//! spawned (its parent's commit — a deterministic pre-order moment), so
//! evaluation never reads scheduling-dependent state; the Lemma-2 subtree
//! check, the Lemma-4 exclusions, and every `Update` run at commit time
//! against the live result set. The snapshot bound can be staler than the
//! sequential in-loop bound — a node spawned at its parent's commit misses
//! every update accepted in its earlier siblings' subtrees, so its
//! Lemma-3 cut may let extra children through — but each extra candidate
//! is still gated by Eq. (1) inside `Update`, so the search stays
//! bit-identical at any thread count and the 1/4 guarantee is untouched,
//! while sibling subtrees peel concurrently.

use crate::algorithm::Algorithm;
use crate::config::{DccsOptions, DccsParams};
use crate::coverage::{PruneBounds, TopKDiversified};
use crate::engine::{drive_task_graph, with_pool, PoolRef, SearchContext};
use crate::fault::{self, site};
use crate::limits::QueryMonitor;
use crate::preprocess::init_topk_in;
use crate::result::{CoherentCore, DccsResult, SearchStats};
use coreness::PeelWorkspace;
use mlgraph::{Layer, MultiLayerGraph, VertexSet};
use std::time::Instant;

/// Runs `BU-DCCS` with default options.
///
/// A one-shot wrapper over the engine state [`crate::DccsSession`] keeps
/// alive between queries; it retains the historical panic on invalid
/// parameters. Prefer the session API for repeated queries.
pub fn bottom_up_dccs(g: &MultiLayerGraph, params: &DccsParams) -> DccsResult {
    bottom_up_dccs_with_options(g, params, &DccsOptions::default())
}

/// Runs `BU-DCCS` with explicit options (used by the Fig. 28 ablation and
/// to set the executor width via `opts.threads`) — a one-shot wrapper over
/// the context the session API reuses.
pub fn bottom_up_dccs_with_options(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    let mut ctx = SearchContext::from_options(opts);
    bottom_up_dccs_in(&mut ctx, g, params, opts)
}

/// Runs `BU-DCCS` on an existing [`SearchContext`], reusing its scratch
/// across a parameter sweep. Spins up one scoped crew for the whole query;
/// session callers with a persistent crew go through [`bottom_up_dccs_on`].
pub fn bottom_up_dccs_in(
    ctx: &mut SearchContext,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    with_pool(ctx.threads(), |pool| bottom_up_dccs_on(ctx, pool, g, params, opts))
}

/// [`bottom_up_dccs_in`] on an existing executor crew — the single-crew
/// query path: preprocessing and the subtree task graph share `pool`, so
/// neither phase pays its own worker spawn/join.
pub fn bottom_up_dccs_on(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    params.validate(g.num_layers()).expect("invalid DCCS parameters");
    let start = Instant::now();
    let mut stats = SearchStats { algorithm: Some(Algorithm::BottomUp), ..SearchStats::default() };

    let pre = ctx.preprocess_on(pool, g, params, opts);
    stats.vertices_deleted = pre.vertices_deleted;
    stats.phase.preprocess = start.elapsed();

    let mut topk = TopKDiversified::new(g.num_vertices(), params.k);
    if opts.init_topk {
        let (ws, running, seed) = ctx.init_scratch();
        init_topk_in(ws, running, seed, g, params, &pre, &mut topk);
    }

    // Positions in the search tree follow the sorted layer order.
    let order = pre.bottom_up_layer_order(opts);
    let cores_by_pos: Vec<VertexSet> = order.iter().map(|&i| pre.layer_cores[i].clone()).collect();
    let l = g.num_layers();
    let d = params.d;
    let s = params.s;
    let order_pruning = opts.order_pruning;

    // Evaluating one `BU-Gen` node (Fig. 3, lines 2–22 minus the commit):
    // Lemma-3 child selection against the task's spawn-time bound snapshot,
    // then one Lemma-1-seeded peel per surviving child. Runs on any worker;
    // reads nothing but the task payload and the immutable search inputs.
    let monitor = ctx.monitor().cloned();
    let mon = monitor.as_deref();
    let order_ref = &order;
    let cores_ref = &cores_by_pos;
    let eval = move |task: BuTask, ws: &mut PeelWorkspace| -> BuNodeEval {
        fault::check(site::BU_EVAL);
        let BuTask { positions, core: c_l, excluded, bounds } = task;
        // A tripped limit: skip the peels entirely. The commit sees no
        // children and spawns nothing, so the outstanding subtree drains.
        if mon.is_some_and(|m| m.check().is_some()) {
            return BuNodeEval { positions, excluded, children: Vec::new(), order_pruned: 0 };
        }
        let next_start = positions.last().map(|&p| p + 1).unwrap_or(0);
        let lp: Vec<usize> = (next_start..l).filter(|&j| !excluded[j]).collect();
        // While |R| < k no pruning is possible; once full, order children by
        // |C_L ∩ C^d(G_j)| and cut at the Lemma-3 bound.
        let mut order_pruned = 0usize;
        let eval_positions: Vec<usize> = if !bounds.is_full() {
            lp
        } else {
            let mut ordered: Vec<(usize, usize)> =
                lp.iter().map(|&j| (j, c_l.intersection_len(&cores_ref[j]))).collect();
            ordered.sort_by_key(|&(j, size)| (std::cmp::Reverse(size), j));
            let mut cut = ordered.len();
            if order_pruning {
                if let Some(rank) = ordered.iter().position(|&(_, ub)| bounds.fails_size_bound(ub))
                {
                    // Lemma 3: this child and all following ones are pruned.
                    order_pruned = ordered.len() - rank;
                    cut = rank;
                }
            }
            ordered.truncate(cut);
            ordered.into_iter().map(|(j, _)| j).collect()
        };
        // Peels run under the query's probe so a deadline or cancellation
        // aborts the cascade mid-word-batch; an aborted peel leaves the
        // candidate a *superset* of the true core, which the commit-side
        // limit check keeps out of the result set.
        ws.set_probe(mon.map(QueryMonitor::probe));
        let mut children = Vec::with_capacity(eval_positions.len());
        for &j in &eval_positions {
            let mut candidate = c_l.intersection(&cores_ref[j]);
            if !candidate.is_empty() {
                let mut layers: Vec<Layer> = positions.iter().map(|&p| order_ref[p]).collect();
                layers.push(order_ref[j]);
                ws.peel_in_place(g, &layers, d, &mut candidate);
            }
            children.push((j, candidate));
        }
        ws.set_probe(None);
        BuNodeEval { positions, excluded, children, order_pruned }
    };

    let search_start = Instant::now();
    {
        let root = BuTask {
            positions: Vec::new(),
            core: pre.active.clone(),
            excluded: vec![false; l],
            bounds: topk.bounds(),
        };
        let topk = &mut topk;
        let stats = &mut stats;
        // Committing one node, in pre-order on the driver: leaves update R
        // (Rule 1/2), internal children pass Lemma 2 against the live result
        // set, Lemma-4 exclusions are derived from the kept set, and the
        // survivors are spawned as new tasks under the current bounds.
        drive_task_graph(pool, &mut ctx.ws, vec![root], &eval, |ev: BuNodeEval, _ws, spawn| {
            fault::check(site::GRAPH_COMMIT);
            // Once a limit trips, commit nothing more: children evaluated
            // after the hit may be probe-aborted supersets, and `topk`
            // already holds the best-so-far partial the caller gets back.
            if mon.is_some_and(|m| m.check().is_some()) {
                return;
            }
            stats.dcc_calls += ev.children.len();
            stats.subtrees_pruned += ev.order_pruned;
            let is_leaf = ev.positions.len() + 1 == s;
            let mut kept: Vec<(usize, VertexSet)> = Vec::new();
            let mut visited: Vec<usize> = Vec::new();
            for (j, core) in ev.children {
                if is_leaf {
                    stats.candidates_generated += 1;
                    if let Some(m) = mon {
                        m.charge_candidates(1);
                    }
                    let mut layers: Vec<Layer> = ev.positions.iter().map(|&p| order[p]).collect();
                    layers.push(order[j]);
                    topk.try_update(CoherentCore::new(layers, core));
                } else if topk.satisfies_eq1(&core) {
                    visited.push(j);
                    kept.push((j, core));
                } else {
                    // Lemma 2: the whole subtree below this child is pruned.
                    visited.push(j);
                    stats.subtrees_pruned += 1;
                }
            }
            if ev.positions.len() + 1 >= s {
                return;
            }
            // Layers that were visited but not kept are excluded from every
            // descendant (Lemma 4).
            let mut child_excluded = ev.excluded;
            if opts.layer_pruning {
                for &j in &visited {
                    if !kept.iter().any(|&(kj, _)| kj == j) {
                        child_excluded[j] = true;
                    }
                }
            }
            for (j, core) in kept {
                let mut positions = ev.positions.clone();
                positions.push(j);
                spawn.push(BuTask {
                    positions,
                    core,
                    excluded: child_excluded.clone(),
                    bounds: topk.bounds(),
                });
            }
        });
    }

    stats.phase.search = search_start.elapsed();
    if let Some(kind) = mon.and_then(QueryMonitor::hit) {
        stats.limit_hit = Some(kind);
        stats.complete = false;
    }
    stats.updates_accepted = topk.accepted_updates();
    DccsResult::from_topk(g.num_vertices(), topk, stats, start.elapsed())
}

/// One `BU-Gen` search-tree node, scheduled as a task on the executor's
/// task graph. Everything evaluation needs travels in the payload — most
/// importantly the [`PruneBounds`] snapshot captured when the task was
/// spawned, which keeps the Lemma-3 selection scheduling-independent.
struct BuTask {
    /// Tree positions of the node's layer subset `L` (ascending).
    positions: Vec<usize>,
    /// The node's d-CC `C_L`, peeled by the parent's task.
    core: VertexSet,
    /// Lemma-4 layer exclusions inherited from the ancestors.
    excluded: Vec<bool>,
    /// Result-set bounds at spawn time (the parent's commit).
    bounds: PruneBounds,
}

/// The outcome of evaluating one [`BuTask`], committed on the driver in
/// pre-order.
struct BuNodeEval {
    positions: Vec<usize>,
    excluded: Vec<bool>,
    /// Evaluated children in Lemma-3 order: `(position, peeled core)`.
    children: Vec<(usize, VertexSet)>,
    /// Children cut by the Lemma-3 bound (never peeled).
    order_pruned: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_dccs;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Four layers over 12 vertices with two planted coherent cliques and a
    /// single-layer clique that must not count for s = 2.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 4);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 3, &[4, 5, 6, 7]);
        clique(&mut b, 1, &[8, 9, 10, 11]); // only on one layer
        b.build()
    }

    #[test]
    fn finds_both_planted_cores() {
        let g = graph();
        let result = bottom_up_dccs(&g, &DccsParams::new(3, 2, 2));
        assert_eq!(result.num_cores(), 2);
        assert_eq!(result.cover.to_vec(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn matches_greedy_cover_on_small_graphs() {
        let g = graph();
        for (d, s, k) in [(2, 1, 2), (2, 2, 2), (3, 2, 1), (3, 2, 3), (2, 3, 2)] {
            let params = DccsParams::new(d, s, k);
            let bu = bottom_up_dccs(&g, &params);
            let gd = greedy_dccs(&g, &params);
            // Both are approximations; on these tiny inputs they find the
            // same cover size.
            assert_eq!(bu.cover_size(), gd.cover_size(), "d={d} s={s} k={k}");
        }
    }

    #[test]
    fn multithreaded_run_is_identical_to_sequential() {
        let g = graph();
        for (d, s, k) in [(2, 2, 2), (3, 2, 1), (2, 3, 2), (2, 4, 2)] {
            let params = DccsParams::new(d, s, k);
            let seq = bottom_up_dccs(&g, &params);
            for threads in [2, 4] {
                let par =
                    bottom_up_dccs_with_options(&g, &params, &DccsOptions::with_threads(threads));
                assert_eq!(par.cores, seq.cores, "threads={threads} d={d} s={s} k={k}");
                assert_eq!(par.stats, seq.stats, "threads={threads} d={d} s={s} k={k}");
            }
        }
    }

    #[test]
    fn reported_cores_are_d_dense_with_s_layers() {
        let g = graph();
        let params = DccsParams::new(2, 2, 3);
        let result = bottom_up_dccs(&g, &params);
        for core in &result.cores {
            assert_eq!(core.layers.len(), params.s);
            assert!(coreness::is_d_dense_multilayer(&g, &core.layers, &core.vertices, params.d));
        }
    }

    #[test]
    fn pruning_reduces_work_without_changing_the_answer() {
        let g = graph();
        let params = DccsParams::new(2, 2, 1);
        let pruned = bottom_up_dccs(&g, &params);
        let opts = DccsOptions {
            order_pruning: false,
            layer_pruning: false,
            init_topk: false,
            ..DccsOptions::default()
        };
        let unpruned = bottom_up_dccs_with_options(&g, &params, &opts);
        assert_eq!(pruned.cover_size(), unpruned.cover_size());
        assert!(pruned.stats.dcc_calls <= unpruned.stats.dcc_calls);
    }

    #[test]
    fn ablation_options_do_not_change_cover_size() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let reference = bottom_up_dccs(&g, &params).cover_size();
        for opts in [
            DccsOptions::no_vertex_deletion(),
            DccsOptions::no_sort_layers(),
            DccsOptions::no_init_topk(),
            DccsOptions::no_preprocessing(),
        ] {
            let r = bottom_up_dccs_with_options(&g, &params, &opts);
            assert_eq!(r.cover_size(), reference);
        }
    }

    #[test]
    fn large_s_equal_to_layer_count() {
        let mut b = MultiLayerGraphBuilder::new(5, 3);
        for layer in 0..3 {
            clique(&mut b, layer, &[0, 1, 2, 3]);
        }
        let g = b.build();
        let result = bottom_up_dccs(&g, &DccsParams::new(2, 3, 1));
        assert_eq!(result.cover.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(result.cores[0].layers, vec![0, 1, 2]);
    }

    #[test]
    fn empty_result_when_no_core_exists() {
        let mut b = MultiLayerGraphBuilder::new(6, 2);
        // Only a path on each layer: no 2-core anywhere.
        for layer in 0..2 {
            for v in 0..5u32 {
                b.add_edge(layer, v, v + 1).unwrap();
            }
        }
        let g = b.build();
        let result = bottom_up_dccs(&g, &DccsParams::new(2, 2, 2));
        assert_eq!(result.cover_size(), 0);
    }

    #[test]
    fn stats_are_populated() {
        let g = graph();
        let result = bottom_up_dccs(&g, &DccsParams::new(3, 2, 2));
        // With InitTopK finding the optimal cover up front, the whole search
        // tree may be pruned — work shows up either as dCC calls or prunes.
        assert!(result.stats.dcc_calls + result.stats.subtrees_pruned > 0);
        assert!(result.stats.updates_accepted >= result.num_cores());
        assert!(result.stats.vertices_deleted > 0); // the single-layer clique
    }
}
