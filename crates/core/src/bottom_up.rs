//! `BU-DCCS` — the bottom-up search algorithm of Section IV (Figs. 3 and 7).
//!
//! Candidate d-CCs are organized in a search tree over layer subsets: the
//! node for layer subset `L` has one child per layer index `j > max(L)`.
//! The tree is explored depth-first from the empty subset down to level `s`,
//! and the temporary top-k result set is updated by every candidate reached
//! at level `s`. Three pruning rules cut subtrees:
//!
//! * **Lemma 2** (search-tree pruning) — a node failing Eq. (1) has no
//!   descendant that can update `R`.
//! * **Lemma 3** (order-based pruning) — children are visited in decreasing
//!   order of `|C_L ∩ C^d(G_j)|`; once that intersection drops below
//!   `|Cov(R)|/k + |Δ(R, C*(R))|` the remaining children can be skipped.
//! * **Lemma 4** (layer pruning) — a layer `j` whose child fails Eq. (1) is
//!   excluded from every deeper subset containing `L`.
//!
//! The approximation ratio is 1/4 (Theorem 3).
//!
//! # Execution model
//!
//! Each node's surviving children are peeled as one fork-join batch on the
//! shared executor ([`crate::engine`]) and committed to the result set
//! sequentially in child order, so the search — including every pruning
//! decision and work counter — is identical at any thread count. To make
//! that possible the Lemma-3 cutoff is evaluated against the result-set
//! state *at node entry* (the upper bounds `|C_L ∩ C^d(G_j)|` are known
//! before any peel): at nodes whose children are internal this matches the
//! in-loop bound exactly (no update can occur mid-node), and at leaf nodes
//! it is at most one node's worth of extra peels — every extra candidate is
//! still gated by Eq. (1) inside `Update`, so the 1/4 guarantee is
//! untouched.

use crate::algorithm::Algorithm;
use crate::config::{DccsOptions, DccsParams};
use crate::coverage::TopKDiversified;
use crate::engine::{with_pool, PoolRef, SearchContext};
use crate::preprocess::init_topk_in;
use crate::result::{CoherentCore, DccsResult, SearchStats};
use coreness::PeelWorkspace;
use mlgraph::{Layer, MultiLayerGraph, VertexSet};
use std::time::Instant;

/// Runs `BU-DCCS` with default options.
///
/// A one-shot wrapper over the engine state [`crate::DccsSession`] keeps
/// alive between queries; it retains the historical panic on invalid
/// parameters. Prefer the session API for repeated queries.
pub fn bottom_up_dccs(g: &MultiLayerGraph, params: &DccsParams) -> DccsResult {
    bottom_up_dccs_with_options(g, params, &DccsOptions::default())
}

/// Runs `BU-DCCS` with explicit options (used by the Fig. 28 ablation and
/// to set the executor width via `opts.threads`) — a one-shot wrapper over
/// the context the session API reuses.
pub fn bottom_up_dccs_with_options(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    let mut ctx = SearchContext::from_options(opts);
    bottom_up_dccs_in(&mut ctx, g, params, opts)
}

/// Runs `BU-DCCS` on an existing [`SearchContext`], reusing its scratch
/// across a parameter sweep.
pub fn bottom_up_dccs_in(
    ctx: &mut SearchContext,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    params.validate(g.num_layers()).expect("invalid DCCS parameters");
    let start = Instant::now();
    let mut stats = SearchStats { algorithm: Some(Algorithm::BottomUp), ..SearchStats::default() };

    let pre = ctx.preprocess(g, params, opts);
    stats.vertices_deleted = pre.vertices_deleted;

    let mut topk = TopKDiversified::new(g.num_vertices(), params.k);
    if opts.init_topk {
        let (ws, running, seed) = ctx.init_scratch();
        init_topk_in(ws, running, seed, g, params, &pre, &mut topk);
    }

    // Positions in the search tree follow the sorted layer order.
    let order = pre.bottom_up_layer_order(opts);
    let cores_by_pos: Vec<VertexSet> = order.iter().map(|&i| pre.layer_cores[i].clone()).collect();
    let threads = ctx.threads();

    with_pool(threads, |pool| {
        let mut bu = BuContext {
            g,
            params,
            opts,
            order: &order,
            cores_by_pos: &cores_by_pos,
            ws: &mut ctx.ws,
            pool,
            topk: &mut topk,
            stats: &mut stats,
        };
        let excluded = vec![false; g.num_layers()];
        bu.bu_gen(&[], &pre.active, &excluded);
    });

    stats.updates_accepted = topk.accepted_updates();
    DccsResult::from_topk(g.num_vertices(), topk, stats, start.elapsed())
}

struct BuContext<'a, 'env> {
    g: &'env MultiLayerGraph,
    params: &'a DccsParams,
    opts: &'a DccsOptions,
    /// Position → original layer index (sorted by decreasing d-core size).
    order: &'a [Layer],
    /// Position → per-layer d-core (restricted to the active vertex set).
    cores_by_pos: &'a [VertexSet],
    /// Driver-thread peeling scratch (each worker owns its own).
    ws: &'a mut PeelWorkspace,
    pool: &'a PoolRef<'a, 'env>,
    topk: &'a mut TopKDiversified,
    stats: &'a mut SearchStats,
}

impl<'env> BuContext<'_, 'env> {
    /// Maps tree positions to original layer indices.
    fn layers_of(&self, positions: &[usize]) -> Vec<Layer> {
        positions.iter().map(|&p| self.order[p]).collect()
    }

    /// The recursive `BU-Gen` procedure (Fig. 3), executor-driven: child
    /// selection (Lemma 3), one fork-join peel batch, sequential commit
    /// (Rule 1/2 updates, Lemma 2), then Lemma-4 exclusion and recursion.
    fn bu_gen(&mut self, positions: &[usize], c_l: &VertexSet, excluded: &[bool]) {
        let l = self.g.num_layers();
        let next_start = positions.last().map(|&p| p + 1).unwrap_or(0);
        let lp: Vec<usize> = (next_start..l).filter(|&j| !excluded[j]).collect();
        let is_leaf = positions.len() + 1 == self.params.s;

        // Children to evaluate, in deterministic order. While |R| < k no
        // pruning is possible (lines 2–9); once full, order by
        // |C_L ∩ C^d(G_j)| and cut at the Lemma-3 bound (lines 10–22).
        let eval: Vec<usize> = if !self.topk.is_full() {
            lp
        } else {
            let mut ordered: Vec<(usize, usize)> =
                lp.iter().map(|&j| (j, c_l.intersection_len(&self.cores_by_pos[j]))).collect();
            ordered.sort_by_key(|&(j, size)| (std::cmp::Reverse(size), j));
            let mut cut = ordered.len();
            if self.opts.order_pruning {
                if let Some(rank) =
                    ordered.iter().position(|&(_, ub)| self.topk.fails_size_bound(ub))
                {
                    // Lemma 3: this child and all following ones are pruned.
                    self.stats.subtrees_pruned += ordered.len() - rank;
                    cut = rank;
                }
            }
            ordered.truncate(cut);
            ordered.into_iter().map(|(j, _)| j).collect()
        };

        // One peel job per evaluated child (Lemma 1: seeded from C_L). The
        // batch runs across the worker crew; outputs come back in child
        // order, so the commit below is scheduling-independent.
        let g = self.g;
        let d = self.params.d;
        let jobs: Vec<_> = eval
            .iter()
            .map(|&j| {
                let mut candidate = c_l.intersection(&self.cores_by_pos[j]);
                let mut layers = self.layers_of(positions);
                layers.push(self.order[j]);
                move |ws: &mut PeelWorkspace| {
                    if !candidate.is_empty() {
                        ws.peel_in_place(g, &layers, d, &mut candidate);
                    }
                    candidate
                }
            })
            .collect();
        self.stats.dcc_calls += jobs.len();
        let cores = self.pool.map(self.ws, jobs);

        // Sequential commit in child order: leaves update R, internal
        // children surviving Eq. (1) (Lemma 2) are kept for recursion.
        let mut lr: Vec<(usize, VertexSet)> = Vec::new();
        for (&j, core) in eval.iter().zip(cores) {
            if is_leaf {
                let mut child_positions = positions.to_vec();
                child_positions.push(j);
                self.stats.candidates_generated += 1;
                self.topk.try_update(CoherentCore::new(self.layers_of(&child_positions), core));
            } else if self.topk.satisfies_eq1(&core) {
                lr.push((j, core));
            } else {
                // Lemma 2: the whole subtree below this child is pruned.
                self.stats.subtrees_pruned += 1;
            }
        }

        if positions.len() + 1 >= self.params.s {
            return;
        }
        // Lines 23–26: recurse into the surviving children. Layers that were
        // visited but not kept are excluded from the descendants (Lemma 4).
        let mut child_excluded = excluded.to_vec();
        if self.opts.layer_pruning {
            let kept: Vec<usize> = lr.iter().map(|&(j, _)| j).collect();
            for &j in &eval {
                if !kept.contains(&j) {
                    child_excluded[j] = true;
                }
            }
        }
        for (j, child_core) in lr {
            let mut child_positions = positions.to_vec();
            child_positions.push(j);
            self.bu_gen(&child_positions, &child_core, &child_excluded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_dccs;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Four layers over 12 vertices with two planted coherent cliques and a
    /// single-layer clique that must not count for s = 2.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 4);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 3, &[4, 5, 6, 7]);
        clique(&mut b, 1, &[8, 9, 10, 11]); // only on one layer
        b.build()
    }

    #[test]
    fn finds_both_planted_cores() {
        let g = graph();
        let result = bottom_up_dccs(&g, &DccsParams::new(3, 2, 2));
        assert_eq!(result.num_cores(), 2);
        assert_eq!(result.cover.to_vec(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn matches_greedy_cover_on_small_graphs() {
        let g = graph();
        for (d, s, k) in [(2, 1, 2), (2, 2, 2), (3, 2, 1), (3, 2, 3), (2, 3, 2)] {
            let params = DccsParams::new(d, s, k);
            let bu = bottom_up_dccs(&g, &params);
            let gd = greedy_dccs(&g, &params);
            // Both are approximations; on these tiny inputs they find the
            // same cover size.
            assert_eq!(bu.cover_size(), gd.cover_size(), "d={d} s={s} k={k}");
        }
    }

    #[test]
    fn multithreaded_run_is_identical_to_sequential() {
        let g = graph();
        for (d, s, k) in [(2, 2, 2), (3, 2, 1), (2, 3, 2), (2, 4, 2)] {
            let params = DccsParams::new(d, s, k);
            let seq = bottom_up_dccs(&g, &params);
            for threads in [2, 4] {
                let par =
                    bottom_up_dccs_with_options(&g, &params, &DccsOptions::with_threads(threads));
                assert_eq!(par.cores, seq.cores, "threads={threads} d={d} s={s} k={k}");
                assert_eq!(par.stats, seq.stats, "threads={threads} d={d} s={s} k={k}");
            }
        }
    }

    #[test]
    fn reported_cores_are_d_dense_with_s_layers() {
        let g = graph();
        let params = DccsParams::new(2, 2, 3);
        let result = bottom_up_dccs(&g, &params);
        for core in &result.cores {
            assert_eq!(core.layers.len(), params.s);
            assert!(coreness::is_d_dense_multilayer(&g, &core.layers, &core.vertices, params.d));
        }
    }

    #[test]
    fn pruning_reduces_work_without_changing_the_answer() {
        let g = graph();
        let params = DccsParams::new(2, 2, 1);
        let pruned = bottom_up_dccs(&g, &params);
        let opts = DccsOptions {
            order_pruning: false,
            layer_pruning: false,
            init_topk: false,
            ..DccsOptions::default()
        };
        let unpruned = bottom_up_dccs_with_options(&g, &params, &opts);
        assert_eq!(pruned.cover_size(), unpruned.cover_size());
        assert!(pruned.stats.dcc_calls <= unpruned.stats.dcc_calls);
    }

    #[test]
    fn ablation_options_do_not_change_cover_size() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let reference = bottom_up_dccs(&g, &params).cover_size();
        for opts in [
            DccsOptions::no_vertex_deletion(),
            DccsOptions::no_sort_layers(),
            DccsOptions::no_init_topk(),
            DccsOptions::no_preprocessing(),
        ] {
            let r = bottom_up_dccs_with_options(&g, &params, &opts);
            assert_eq!(r.cover_size(), reference);
        }
    }

    #[test]
    fn large_s_equal_to_layer_count() {
        let mut b = MultiLayerGraphBuilder::new(5, 3);
        for layer in 0..3 {
            clique(&mut b, layer, &[0, 1, 2, 3]);
        }
        let g = b.build();
        let result = bottom_up_dccs(&g, &DccsParams::new(2, 3, 1));
        assert_eq!(result.cover.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(result.cores[0].layers, vec![0, 1, 2]);
    }

    #[test]
    fn empty_result_when_no_core_exists() {
        let mut b = MultiLayerGraphBuilder::new(6, 2);
        // Only a path on each layer: no 2-core anywhere.
        for layer in 0..2 {
            for v in 0..5u32 {
                b.add_edge(layer, v, v + 1).unwrap();
            }
        }
        let g = b.build();
        let result = bottom_up_dccs(&g, &DccsParams::new(2, 2, 2));
        assert_eq!(result.cover_size(), 0);
    }

    #[test]
    fn stats_are_populated() {
        let g = graph();
        let result = bottom_up_dccs(&g, &DccsParams::new(3, 2, 2));
        // With InitTopK finding the optimal cover up front, the whole search
        // tree may be pruned — work shows up either as dCC calls or prunes.
        assert!(result.stats.dcc_calls + result.stats.subtrees_pruned > 0);
        assert!(result.stats.updates_accepted >= result.num_cores());
        assert!(result.stats.vertices_deleted > 0); // the single-layer clique
    }
}
