//! Problem parameters and algorithm options.

use crate::engine::IndexChoice;
use crate::error::DccsError;
use crate::limits::QueryLimits;
use crate::serve::Serve;

/// The three parameters of the DCCS problem (Section II of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DccsParams {
    /// Minimum degree threshold `d`: every vertex of a d-CC must have at
    /// least `d` neighbors inside the core on every chosen layer.
    pub d: u32,
    /// Minimum support threshold `s`: d-CCs are taken over layer subsets of
    /// size exactly `s`.
    pub s: usize,
    /// Number of diversified d-CCs to report.
    pub k: usize,
}

impl DccsParams {
    /// Creates a parameter set, the same way the paper writes `(d, s, k)`.
    pub fn new(d: u32, s: usize, k: usize) -> Self {
        DccsParams { d, s, k }
    }

    /// Validates the parameters against a graph with `num_layers` layers.
    /// Returns the typed [`DccsError`] describing why the combination is
    /// unusable (its `Display` form is the human-readable message).
    pub fn validate(&self, num_layers: usize) -> Result<(), DccsError> {
        if self.s == 0 {
            return Err(DccsError::SupportZero);
        }
        if self.s > num_layers {
            return Err(DccsError::SupportExceedsLayers { s: self.s, num_layers });
        }
        if self.k == 0 {
            return Err(DccsError::ResultSizeZero);
        }
        Ok(())
    }
}

/// Toggles for the preprocessing steps and pruning rules.
///
/// All options default to `true`; the Fig. 28 ablation experiment disables
/// them one at a time (`No-VD`, `No-SL`, `No-IR`, `No-Pre`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DccsOptions {
    /// Vertex deletion preprocessing (Section IV-C): iteratively drop
    /// vertices supported by fewer than `s` per-layer d-cores.
    pub vertex_deletion: bool,
    /// Layer sorting preprocessing: explore layers in decreasing (BU) or
    /// increasing (TD) order of per-layer d-core size.
    pub sort_layers: bool,
    /// `InitTopK` preprocessing: seed the temporary result set greedily so
    /// the pruning rules activate immediately.
    pub init_topk: bool,
    /// Order-based pruning (Lemma 3 for BU, Lemma 6 for TD).
    pub order_pruning: bool,
    /// Layer pruning (Lemma 4, BU only).
    pub layer_pruning: bool,
    /// Potential-set pruning (Lemma 7, TD only).
    pub potential_pruning: bool,
    /// Use the index-based `RefineC` procedure in TD-DCCS; when `false` the
    /// plain `dCC` peeling is used instead (same output, different cost).
    pub use_refine_c: bool,
    /// Worker threads for the shared search executor (`crate::engine`).
    ///
    /// `1` means sequential (the driver thread does all the work). `0` means
    /// **auto** in the session API ([`crate::DccsSession`] resolves it to
    /// `std::thread::available_parallelism()`); the direct entry points
    /// (`*_with_options`, [`crate::engine::SearchContext::new`]) treat `0`
    /// as `1` for backward compatibility. Results — cores, cover, and work
    /// counters — are identical at every thread count; only the wall-clock
    /// time changes.
    pub threads: usize,
    /// Dense-vs-CSR peeling representation override
    /// ([`crate::engine::IndexChoice`]; the CLI's `--index csr|dense|auto`).
    /// `Auto` (the default) runs the [`crate::engine::plan_index`] cost
    /// model; forcing a representation changes wall-clock time only — both
    /// paths are bit-identical — and the per-run decision is recorded in
    /// [`crate::SearchStats::index_path`] either way.
    pub index: IndexChoice,
    /// Resource limits for the query: wall-clock deadline, candidate budget,
    /// dense-index memory ceiling, and the degradation ladder. Defaults to
    /// [`QueryLimits::none`] — unlimited queries skip the monitor entirely
    /// and pay no cancellation tax.
    pub limits: QueryLimits,
    /// How session queries derive candidate cores ([`Serve`]): `Auto` (the
    /// default) answers from an attached [`crate::DccIndex`] when it covers
    /// the query and falls back to peeling, `Peel` never consults the
    /// index, `Index` fails with a typed error instead of re-peeling. Only
    /// the session API consults this knob — the one-shot free functions
    /// have no index to serve from.
    pub serve: Serve,
}

impl Default for DccsOptions {
    fn default() -> Self {
        DccsOptions {
            vertex_deletion: true,
            sort_layers: true,
            init_topk: true,
            order_pruning: true,
            layer_pruning: true,
            potential_pruning: true,
            use_refine_c: true,
            threads: 1,
            index: IndexChoice::Auto,
            limits: QueryLimits::none(),
            serve: Serve::Auto,
        }
    }
}

impl DccsOptions {
    /// The `No-Pre` configuration of Fig. 28: every preprocessing method
    /// disabled, pruning rules left on.
    pub fn no_preprocessing() -> Self {
        DccsOptions {
            vertex_deletion: false,
            sort_layers: false,
            init_topk: false,
            ..DccsOptions::default()
        }
    }

    /// The `No-VD` configuration: vertex deletion disabled.
    pub fn no_vertex_deletion() -> Self {
        DccsOptions { vertex_deletion: false, ..DccsOptions::default() }
    }

    /// The `No-SL` configuration: layer sorting disabled.
    pub fn no_sort_layers() -> Self {
        DccsOptions { sort_layers: false, ..DccsOptions::default() }
    }

    /// The `No-IR` configuration: result initialization disabled.
    pub fn no_init_topk() -> Self {
        DccsOptions { init_topk: false, ..DccsOptions::default() }
    }

    /// Default options with the executor spread over `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        DccsOptions { threads, ..DccsOptions::default() }
    }

    /// Default options with the dense-vs-CSR cost model overridden.
    pub fn with_index(index: IndexChoice) -> Self {
        DccsOptions { index, ..DccsOptions::default() }
    }

    /// Default options with query limits attached.
    pub fn with_limits(limits: QueryLimits) -> Self {
        DccsOptions { limits, ..DccsOptions::default() }
    }

    /// Default options with the serve mode overridden.
    pub fn with_serve(serve: Serve) -> Self {
        DccsOptions { serve, ..DccsOptions::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validate_ranges() {
        let p = DccsParams::new(3, 2, 5);
        assert!(p.validate(4).is_ok());
        assert!(p.validate(1).is_err());
        assert!(DccsParams::new(3, 0, 5).validate(4).is_err());
        assert!(DccsParams::new(3, 2, 0).validate(4).is_err());
    }

    #[test]
    fn default_options_enable_everything() {
        let o = DccsOptions::default();
        assert!(o.vertex_deletion && o.sort_layers && o.init_topk);
        assert!(o.order_pruning && o.layer_pruning && o.potential_pruning);
        assert!(o.use_refine_c);
    }

    #[test]
    fn with_threads_sets_only_the_executor_width() {
        let o = DccsOptions::with_threads(4);
        assert_eq!(o.threads, 4);
        assert!(o.vertex_deletion && o.order_pruning && o.use_refine_c);
        assert_eq!(DccsOptions::default().threads, 1);
    }

    #[test]
    fn default_limits_are_unlimited() {
        assert!(DccsOptions::default().limits.is_unlimited());
        let limited = DccsOptions::with_limits(QueryLimits::none().with_candidate_budget(100));
        assert!(!limited.limits.is_unlimited());
        assert_eq!(limited.limits.candidate_budget, Some(100));
        assert!(limited.vertex_deletion);
    }

    #[test]
    fn default_serve_mode_is_auto() {
        assert_eq!(DccsOptions::default().serve, Serve::Auto);
        let forced = DccsOptions::with_serve(Serve::Index);
        assert_eq!(forced.serve, Serve::Index);
        assert!(forced.vertex_deletion);
        assert_eq!(Serve::parse("peel"), Some(Serve::Peel));
        assert_eq!(Serve::parse("bogus"), None);
        assert_eq!(Serve::Index.name(), "index");
    }

    #[test]
    fn ablation_presets_disable_the_right_knob() {
        assert!(!DccsOptions::no_vertex_deletion().vertex_deletion);
        assert!(DccsOptions::no_vertex_deletion().sort_layers);
        assert!(!DccsOptions::no_sort_layers().sort_layers);
        assert!(!DccsOptions::no_init_topk().init_topk);
        let none = DccsOptions::no_preprocessing();
        assert!(!none.vertex_deletion && !none.sort_layers && !none.init_topk);
        assert!(none.order_pruning);
    }
}
