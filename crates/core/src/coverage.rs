//! Maintenance of the temporary top-k diversified d-CC set `R` — the
//! `Update` procedure of Section IV-A / Appendix C.
//!
//! The paper maintains two hash tables: `M[v]` (which result cores contain
//! vertex `v`) and `H[i]` (which cores exclusively cover exactly `i`
//! vertices). Because `k ≤ a few dozen`, we store `M` as a per-vertex owner
//! bitmap over the `k` result slots and `Δ(R, C')` as a per-slot counter,
//! which gives the same O(|C|) update cost with dense arrays instead of hash
//! tables.
//!
//! Update rules (Section IV-A):
//!
//! * **Rule 1** — while `|R| < k`, every candidate is inserted.
//! * **Rule 2** — once `|R| = k`, a candidate `C` replaces the core `C*(R)`
//!   with the fewest exclusively-covered vertices iff
//!   `|Cov((R − {C*}) ∪ {C})| ≥ (1 + 1/k)·|Cov(R)|` (Eq. (1)).

use crate::result::CoherentCore;
use mlgraph::{Vertex, VertexSet};

const WORD_BITS: usize = 64;

/// A frozen snapshot of the pruning-relevant state of a [`TopKDiversified`]
/// set, taken when a search-tree task is spawned onto the executor's task
/// graph (see [`crate::engine::drive_task_graph`]).
///
/// A task evaluated on a worker must not read the live result set — its
/// contents depend on which other subtrees have committed, which would make
/// the search scheduling-dependent. Instead the spawning commit captures
/// the three scalars the order-based bound (Lemmas 3 and 6) needs; because
/// tasks are spawned at deterministic pre-order moments, the snapshot — and
/// therefore every decision derived from it — is identical at any thread
/// count. Candidate acceptance itself always goes through the live set's
/// [`TopKDiversified::try_update`] on the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruneBounds {
    k: usize,
    full: bool,
    cover_size: usize,
    delta_cstar: usize,
}

impl PruneBounds {
    /// Whether all `k` result slots were occupied at snapshot time (no
    /// order-based pruning is possible before that).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Snapshot of [`TopKDiversified::fails_size_bound`]: `true` when a
    /// candidate (or upper bound) of `candidate_size` vertices was already
    /// too small to satisfy Eq. (1) when the task was spawned.
    pub fn fails_size_bound(&self, candidate_size: usize) -> bool {
        if !self.full {
            return false;
        }
        candidate_size * self.k < self.cover_size + self.k * self.delta_cstar
    }
}

/// The temporary top-k diversified result set `R` with incremental coverage
/// bookkeeping.
#[derive(Clone, Debug)]
pub struct TopKDiversified {
    k: usize,
    num_vertices: usize,
    words_per_vertex: usize,
    /// Owner bitmap: `owners[v * words_per_vertex ..]` has bit `j` set iff
    /// result slot `j` contains vertex `v` (the table `M`).
    owners: Vec<u64>,
    /// The cores currently held by each slot (`None` = free slot).
    slots: Vec<Option<CoherentCore>>,
    /// `exclusive[j] = |Δ(R, slot j)|`: vertices covered only by slot `j`
    /// (the table `H`).
    exclusive: Vec<usize>,
    /// `|Cov(R)|`.
    cover_size: usize,
    /// Number of occupied slots.
    num_filled: usize,
    /// Number of accepted updates (Rule 1 insertions + Rule 2 replacements).
    accepted: usize,
}

impl TopKDiversified {
    /// Creates an empty result set with `k` slots over a universe of
    /// `num_vertices` vertices.
    pub fn new(num_vertices: usize, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        let words_per_vertex = k.div_ceil(WORD_BITS);
        TopKDiversified {
            k,
            num_vertices,
            words_per_vertex,
            owners: vec![0; num_vertices * words_per_vertex],
            slots: vec![None; k],
            exclusive: vec![0; k],
            cover_size: 0,
            num_filled: 0,
            accepted: 0,
        }
    }

    /// Number of cores currently held (`|R|`).
    pub fn len(&self) -> usize {
        self.num_filled
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.num_filled == 0
    }

    /// Whether all `k` slots are occupied.
    pub fn is_full(&self) -> bool {
        self.num_filled == self.k
    }

    /// The result budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `|Cov(R)|`.
    pub fn cover_size(&self) -> usize {
        self.cover_size
    }

    /// Number of accepted updates so far.
    pub fn accepted_updates(&self) -> usize {
        self.accepted
    }

    /// Materializes `Cov(R)` as a vertex set.
    pub fn cover_set(&self) -> VertexSet {
        let mut cover = VertexSet::new(self.num_vertices);
        self.cover_set_into(&mut cover);
        cover
    }

    /// Writes `Cov(R)` into `out` without allocating (steady state): callers
    /// polling the cover repeatedly reuse one buffer.
    pub fn cover_set_into(&self, out: &mut VertexSet) {
        if out.capacity() != self.num_vertices {
            *out = VertexSet::new(self.num_vertices);
        } else {
            out.clear();
        }
        for slot in self.slots.iter().flatten() {
            out.union_with(&slot.vertices);
        }
    }

    /// Iterates over the currently held cores.
    pub fn cores(&self) -> impl Iterator<Item = &CoherentCore> {
        self.slots.iter().flatten()
    }

    /// Consumes the set and returns the held cores.
    pub fn into_cores(self) -> Vec<CoherentCore> {
        self.slots.into_iter().flatten().collect()
    }

    #[inline]
    fn owner_slice(&self, v: Vertex) -> &[u64] {
        let base = v as usize * self.words_per_vertex;
        &self.owners[base..base + self.words_per_vertex]
    }

    #[inline]
    fn owner_popcount(&self, v: Vertex) -> u32 {
        self.owner_slice(v).iter().map(|w| w.count_ones()).sum()
    }

    #[inline]
    fn owner_single(&self, v: Vertex) -> Option<usize> {
        // Returns the slot index when exactly one bit is set.
        let mut found: Option<usize> = None;
        for (wi, &w) in self.owner_slice(v).iter().enumerate() {
            let ones = w.count_ones();
            if ones == 0 {
                continue;
            }
            if ones > 1 || found.is_some() {
                return None;
            }
            found = Some(wi * WORD_BITS + w.trailing_zeros() as usize);
        }
        found
    }

    #[inline]
    fn set_owner_bit(&mut self, v: Vertex, slot: usize) {
        let base = v as usize * self.words_per_vertex;
        self.owners[base + slot / WORD_BITS] |= 1u64 << (slot % WORD_BITS);
    }

    #[inline]
    fn clear_owner_bit(&mut self, v: Vertex, slot: usize) {
        let base = v as usize * self.words_per_vertex;
        self.owners[base + slot / WORD_BITS] &= !(1u64 << (slot % WORD_BITS));
    }

    /// The slot of `C*(R)` — the core exclusively covering the fewest
    /// vertices — together with `|Δ(R, C*(R))|`. `None` while `R` is empty.
    pub fn min_exclusive_slot(&self) -> Option<(usize, usize)> {
        (0..self.k)
            .filter(|&j| self.slots[j].is_some())
            .map(|j| (j, self.exclusive[j]))
            .min_by_key(|&(j, e)| (e, j))
    }

    /// `|Δ(R, C*(R))|`, or 0 while `R` is empty.
    pub fn delta_cstar(&self) -> usize {
        self.min_exclusive_slot().map(|(_, e)| e).unwrap_or(0)
    }

    /// `|Cov(R ∪ {C}) | − |Cov(R)|`: how many new vertices `set` would add.
    pub fn marginal_gain(&self, set: &VertexSet) -> usize {
        set.iter().filter(|&v| self.owner_popcount(v) == 0).count()
    }

    /// `|Cov((R − {C*(R)}) ∪ {C})|` — the `Size` operation of Appendix C.
    /// When `R` is empty this is simply `|C|`.
    pub fn replacement_cover_size(&self, set: &VertexSet) -> usize {
        let Some((cstar, delta)) = self.min_exclusive_slot() else {
            return set.len();
        };
        let base = self.cover_size - delta;
        let cstar_core = self.slots[cstar].as_ref().expect("occupied slot");
        let mut extra = 0usize;
        for v in set.iter() {
            let pop = self.owner_popcount(v);
            if pop == 0 {
                extra += 1;
            } else if pop == 1 && cstar_core.vertices.contains(v) {
                // Covered only by C*, which is being evicted; C re-covers it.
                extra += 1;
            }
        }
        base + extra
    }

    /// Whether a candidate with vertex set `set` satisfies Eq. (1):
    /// `|Cov((R − {C*}) ∪ {C})| ≥ (1 + 1/k)·|Cov(R)|`.
    ///
    /// While `|R| < k` this returns `true` (Rule 1 applies unconditionally).
    pub fn satisfies_eq1(&self, set: &VertexSet) -> bool {
        if !self.is_full() {
            return true;
        }
        let replacement = self.replacement_cover_size(set);
        replacement * self.k >= (self.k + 1) * self.cover_size
    }

    /// Order-based pruning bound (Lemmas 3 and 6): returns `true` when a
    /// candidate (or potential set) of size `candidate_size` is too small to
    /// ever satisfy Eq. (1), i.e. when
    /// `candidate_size < |Cov(R)|/k + |Δ(R, C*(R))|`.
    ///
    /// Always `false` while `|R| < k` (the pruning rules only apply to a full
    /// result set). Delegates to a fresh [`PruneBounds`] snapshot so the
    /// live bound and the spawn-time snapshot share one formula.
    pub fn fails_size_bound(&self, candidate_size: usize) -> bool {
        self.bounds().fails_size_bound(candidate_size)
    }

    /// Captures the scalars the order-based pruning bound depends on, for
    /// handing to a search-tree task at spawn time (see [`PruneBounds`]).
    pub fn bounds(&self) -> PruneBounds {
        PruneBounds {
            k: self.k,
            full: self.is_full(),
            cover_size: self.cover_size,
            delta_cstar: self.delta_cstar(),
        }
    }

    /// Potential-set pruning bound (Lemma 7, Eq. (2)): returns `true` when
    /// `potential_size < (1/k + 1/k²)·|Cov(R)| + (1 + 1/k)·|Δ(R, C*(R))|`,
    /// meaning at most one descendant of the node can ever update `R`.
    pub fn satisfies_eq2(&self, potential_size: usize) -> bool {
        if !self.is_full() {
            return false;
        }
        let k = self.k;
        // potential_size < (k + 1)/k² · cover + (k + 1)/k · delta
        // ⇔ potential_size · k² < (k + 1)·cover + k·(k + 1)·delta
        potential_size * k * k < (k + 1) * self.cover_size + k * (k + 1) * self.delta_cstar()
    }

    fn insert_into_slot(&mut self, slot: usize, core: CoherentCore) {
        debug_assert!(self.slots[slot].is_none());
        for v in core.vertices.iter() {
            let pop = self.owner_popcount(v);
            if pop == 0 {
                self.cover_size += 1;
                self.exclusive[slot] += 1;
            } else if pop == 1 {
                let owner = self.owner_single(v).expect("single owner");
                self.exclusive[owner] -= 1;
            }
            self.set_owner_bit(v, slot);
        }
        self.slots[slot] = Some(core);
        self.num_filled += 1;
    }

    fn remove_slot(&mut self, slot: usize) -> CoherentCore {
        let core = self.slots[slot].take().expect("removing an empty slot");
        for v in core.vertices.iter() {
            self.clear_owner_bit(v, slot);
            let pop = self.owner_popcount(v);
            if pop == 0 {
                self.cover_size -= 1;
                self.exclusive[slot] -= 1;
            } else if pop == 1 {
                let owner = self.owner_single(v).expect("single owner");
                self.exclusive[owner] += 1;
            }
        }
        debug_assert_eq!(self.exclusive[slot], 0);
        self.num_filled -= 1;
        core
    }

    /// The `Update` procedure: tries to improve `R` with the candidate core,
    /// applying Rule 1 or Rule 2. Returns `true` when `R` changed.
    pub fn try_update(&mut self, core: CoherentCore) -> bool {
        if self.num_filled < self.k {
            let slot = self.slots.iter().position(|s| s.is_none()).expect("free slot exists");
            self.insert_into_slot(slot, core);
            self.accepted += 1;
            return true;
        }
        if !self.satisfies_eq1(&core.vertices) {
            return false;
        }
        let (cstar, _) = self.min_exclusive_slot().expect("full set has a minimum");
        self.remove_slot(cstar);
        self.insert_into_slot(cstar, core);
        self.accepted += 1;
        true
    }

    /// Debug helper: recomputes the coverage bookkeeping from scratch and
    /// checks it against the incremental state. Used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let cover = self.cover_set();
        if cover.len() != self.cover_size {
            return false;
        }
        for j in 0..self.k {
            let expected = match &self.slots[j] {
                None => 0,
                Some(core) => core
                    .vertices
                    .iter()
                    .filter(|&v| {
                        self.slots.iter().enumerate().all(|(i, s)| {
                            i == j || s.as_ref().is_none_or(|c| !c.vertices.contains(v))
                        })
                    })
                    .count(),
            };
            if expected != self.exclusive[j] {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::Layer;

    fn core(layers: Vec<Layer>, vertices: &[Vertex]) -> CoherentCore {
        CoherentCore::new(layers, VertexSet::from_iter(32, vertices.iter().copied()))
    }

    #[test]
    fn rule1_fills_free_slots() {
        let mut r = TopKDiversified::new(32, 2);
        assert!(r.is_empty());
        assert!(r.try_update(core(vec![0], &[0, 1, 2])));
        assert!(r.try_update(core(vec![1], &[2, 3])));
        assert!(r.is_full());
        assert_eq!(r.cover_size(), 4);
        assert_eq!(r.cover_set().to_vec(), vec![0, 1, 2, 3]);
        assert!(r.check_invariants());
    }

    #[test]
    fn exclusive_counts_are_maintained() {
        let mut r = TopKDiversified::new(32, 2);
        r.try_update(core(vec![0], &[0, 1, 2]));
        r.try_update(core(vec![1], &[2, 3]));
        // Slot 0 exclusively covers {0,1}; slot 1 exclusively covers {3}.
        let (cstar, delta) = r.min_exclusive_slot().unwrap();
        assert_eq!(cstar, 1);
        assert_eq!(delta, 1);
        assert_eq!(r.delta_cstar(), 1);
        assert!(r.check_invariants());
    }

    #[test]
    fn rule2_replaces_only_on_sufficient_gain() {
        let mut r = TopKDiversified::new(32, 2);
        r.try_update(core(vec![0], &[0, 1, 2]));
        r.try_update(core(vec![1], &[2, 3]));
        assert_eq!(r.cover_size(), 4);
        // Candidate {4,5}: replacing C* (={2,3}) gives cover {0,1,2,4,5} = 5
        // which is < (1 + 1/2)·4 = 6 → rejected.
        assert!(!r.try_update(core(vec![2], &[4, 5])));
        assert_eq!(r.cover_size(), 4);
        // Candidate {3,4,5,6}: replacing C* gives {0,1,2,3,4,5,6} = 7 ≥ 6 → accepted.
        assert!(r.try_update(core(vec![2], &[3, 4, 5, 6])));
        assert_eq!(r.cover_size(), 7);
        assert_eq!(r.len(), 2);
        assert!(r.check_invariants());
    }

    #[test]
    fn replacement_cover_size_matches_manual_computation() {
        let mut r = TopKDiversified::new(32, 2);
        r.try_update(core(vec![0], &[0, 1, 2, 3]));
        r.try_update(core(vec![1], &[3, 4]));
        // C* is slot 1 (exclusive {4}). Replacing it with {4, 5, 6}:
        // Cov = {0,1,2,3} ∪ {4,5,6} = 7.
        let candidate = VertexSet::from_iter(32, [4, 5, 6]);
        assert_eq!(r.replacement_cover_size(&candidate), 7);
        // Replacing with {0, 1}: Cov = {0,1,2,3} = 4.
        let candidate = VertexSet::from_iter(32, [0, 1]);
        assert_eq!(r.replacement_cover_size(&candidate), 4);
    }

    #[test]
    fn replacement_cover_size_on_empty_set_is_candidate_size() {
        let r = TopKDiversified::new(32, 3);
        let candidate = VertexSet::from_iter(32, [1, 2, 3]);
        assert_eq!(r.replacement_cover_size(&candidate), 3);
        assert!(r.satisfies_eq1(&candidate));
    }

    #[test]
    fn size_bound_pruning_behaviour() {
        let mut r = TopKDiversified::new(32, 2);
        // Not full: never prune.
        assert!(!r.fails_size_bound(0));
        r.try_update(core(vec![0], &[0, 1, 2, 3]));
        r.try_update(core(vec![1], &[4, 5]));
        // cover = 6, delta(C*) = 2 → bound = 6/2 + 2 = 5.
        assert!(r.fails_size_bound(4));
        assert!(!r.fails_size_bound(5));
        assert!(!r.fails_size_bound(10));
    }

    /// A snapshot must answer the size bound exactly as the live set did at
    /// capture time, and stay frozen while the live set moves on.
    #[test]
    fn bounds_snapshot_matches_live_set_at_capture_time() {
        let mut r = TopKDiversified::new(32, 2);
        let empty_snapshot = r.bounds();
        assert!(!empty_snapshot.is_full());
        assert!(!empty_snapshot.fails_size_bound(0));
        r.try_update(core(vec![0], &[0, 1, 2, 3]));
        r.try_update(core(vec![1], &[4, 5]));
        let snapshot = r.bounds();
        assert!(snapshot.is_full());
        for size in 0..12 {
            assert_eq!(snapshot.fails_size_bound(size), r.fails_size_bound(size), "size={size}");
        }
        // The live set accepts a better core; the snapshot must not move.
        assert!(r.try_update(core(vec![2], &[3, 4, 5, 6, 7, 8])));
        assert!(snapshot.fails_size_bound(4));
        assert_ne!(snapshot.fails_size_bound(5), r.fails_size_bound(5));
    }

    #[test]
    fn eq2_bound_behaviour() {
        let mut r = TopKDiversified::new(32, 2);
        assert!(!r.satisfies_eq2(100));
        r.try_update(core(vec![0], &[0, 1, 2, 3]));
        r.try_update(core(vec![1], &[4, 5]));
        // cover = 6, delta = 2, k = 2:
        // bound = (1/2 + 1/4)·6 + (1 + 1/2)·2 = 4.5 + 3 = 7.5.
        assert!(r.satisfies_eq2(7));
        assert!(!r.satisfies_eq2(8));
    }

    #[test]
    fn duplicate_candidate_does_not_grow_cover() {
        let mut r = TopKDiversified::new(32, 2);
        r.try_update(core(vec![0], &[0, 1, 2]));
        r.try_update(core(vec![1], &[0, 1, 2]));
        assert_eq!(r.cover_size(), 3);
        // Both slots exclusively cover nothing.
        assert_eq!(r.delta_cstar(), 0);
        // A third identical candidate fails Eq. (1) because
        // (1 + 1/2)·3 = 4.5 > 3.
        assert!(!r.try_update(core(vec![2], &[0, 1, 2])));
        assert!(r.check_invariants());
    }

    #[test]
    fn marginal_gain_counts_new_vertices_only() {
        let mut r = TopKDiversified::new(32, 2);
        r.try_update(core(vec![0], &[0, 1, 2]));
        let s = VertexSet::from_iter(32, [2, 3, 4]);
        assert_eq!(r.marginal_gain(&s), 2);
        assert_eq!(r.marginal_gain(&VertexSet::new(32)), 0);
    }

    #[test]
    fn large_k_uses_multiple_owner_words() {
        let mut r = TopKDiversified::new(32, 70);
        for j in 0..70u32 {
            assert!(r.try_update(core(vec![j as Layer], &[j % 16])));
        }
        assert_eq!(r.len(), 70);
        assert_eq!(r.cover_size(), 16);
        assert!(r.check_invariants());
    }

    #[test]
    fn into_cores_returns_held_cores() {
        let mut r = TopKDiversified::new(32, 3);
        r.try_update(core(vec![0], &[0, 1]));
        r.try_update(core(vec![1], &[2]));
        let cores = r.into_cores();
        assert_eq!(cores.len(), 2);
    }

    #[test]
    fn accepted_updates_counter() {
        let mut r = TopKDiversified::new(32, 1);
        assert_eq!(r.accepted_updates(), 0);
        r.try_update(core(vec![0], &[0]));
        assert_eq!(r.accepted_updates(), 1);
        // Rejected update does not count.
        r.try_update(core(vec![1], &[1]));
        assert_eq!(r.accepted_updates(), 1);
        // {0,1} replaces {0}: 2 ≥ (1 + 1)·1.
        assert!(r.try_update(core(vec![2], &[0, 1])));
        assert_eq!(r.accepted_updates(), 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopKDiversified::new(10, 0);
    }
}
