//! `SearchContext` + the shared parallel search executor — the execution
//! layer every DCCS algorithm drives its peels through.
//!
//! The three search algorithms (GD, BU, TD) all reduce to peeling d-CCs over
//! nodes of a layer-subset search tree. This module centralizes the three
//! resources those peels share:
//!
//! * **Scratch** — a [`SearchContext`] owns the driver-thread
//!   [`PeelWorkspace`] plus the reusable cover/seed buffers threaded through
//!   greedy selection and `InitTopK`, so a context reused across a parameter
//!   sweep performs no steady-state allocation.
//! * **Indexing policy** — a cost model ([`plan_index`]) decides per run
//!   whether candidate generation peels over the word-level
//!   [`DenseSubgraph`] rows or the CSR adjacency, comparing the dense
//!   per-query cost (`⌈m/64⌉` words per row) against the average CSR
//!   adjacency length. The built dense index is cached on the context,
//!   keyed on the candidate universe, so a sweep over `s` (whose universe
//!   is unchanged) re-indexes the graph once.
//! * **Worker scheduling** — [`with_pool`] spins up a scoped worker crew
//!   with one [`PeelWorkspace`] per worker and a shared job queue. Two
//!   scheduling shapes run on the same crew:
//!
//!   1. *Fork-join batches* ([`PoolRef::map`]) — a fixed job list whose
//!      outputs come back in submission order. The lattice's depth-1
//!      branches, the per-layer preprocessing peels, and `run_batch` query
//!      fan-out all use this shape.
//!   2. *Subtree task graphs* ([`drive_task_graph`]) — BU/TD search-tree
//!      nodes become individual tasks on the shared queue. Each task is
//!      evaluated on whichever worker grabs it first, carrying a snapshot
//!      of the pruning bounds it was spawned under, and its result is
//!      *committed* on the driver strictly in the tree's pre-order. A
//!      commit may spawn the node's surviving children as new tasks, which
//!      take the next pre-order commit slots — so sibling subtrees peel
//!      concurrently while the result set, the statistics, and every
//!      pruning decision evolve in one deterministic order.
//!
//! Determinism contract: the executor never lets scheduling influence an
//! algorithm's decisions. Fork-join batches fix their job set before any
//! job runs and commit outputs sequentially in submission order; task
//! graphs evaluate each task as a pure function of its payload (including
//! the spawn-time bound snapshot) and commit results in pre-order, with all
//! live pruning bounds read only at commit time on the driver. The
//! thread-equivalence property tests
//! (`crates/core/tests/engine_threads.rs`) enforce that BU, TD, and the
//! lattice produce bit-identical results and statistics at 1, 2, 4, and 8
//! threads.

use crate::config::{DccsOptions, DccsParams};
use crate::limits::QueryMonitor;
use crate::preprocess::{initial_layer_cores_on, preprocess_from_monitored, Preprocessed};
use coreness::PeelWorkspace;
use mlgraph::{CompressedSubgraph, DenseSubgraph, Layer, MultiLayerGraph, Vertex, VertexSet};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Which adjacency representation a candidate-generation run peeled over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexPath {
    /// CSR adjacency scans with per-neighbor membership tests.
    #[default]
    Csr,
    /// Re-indexed [`DenseSubgraph`] bitset rows (word-level AND+popcount).
    Dense,
    /// Re-indexed [`CompressedSubgraph`] rows — roaring-style array/bitmap
    /// containers holding only the blocks a row actually touches, so a
    /// sparse million-vertex universe indexes in `O(edges)` memory instead
    /// of the flat `O(layers · m²/64)` words the dense path needs.
    CompressedDense,
}

/// Word budget for the dense re-indexed adjacency (64 MiB of `u64` rows).
/// Universes needing more always fall back to the CSR engine regardless of
/// what the per-query cost model prefers.
pub const DENSE_WORD_BUDGET: usize = 8 << 20;

/// Crossover factor of the dense-vs-CSR cost model: the dense path is chosen
/// only when scanning one `⌈m/64⌉`-word adjacency row costs no more than
/// `DENSE_CROSSOVER ×` the average CSR adjacency scan. Word-level AND+popcount
/// streams sequentially while CSR neighbor tests are dependent random loads,
/// so a row word is cheaper than a neighbor test.
///
/// Calibrated on the `bench_dcc` suite: every configuration where dense wins
/// has `words_per_row / avg_degree ≤ 0.5` or thereabouts, the tiny German
/// analogue at `d = 2` (near-complete universe, ratio ≈ 2) still peels
/// fastest dense (the CSR engine measured 0.89× there), and the small-scale
/// German analogue at `d = 2` (ratio ≈ 10) is where dense collapses to
/// 0.48× — the old budget-only gate picked dense there; this factor puts the
/// cut between those regimes.
pub const DENSE_CROSSOVER: f64 = 4.0;

/// Minimum universe size before the **compressed-dense** regime is worth
/// considering under [`IndexChoice::Auto`]. Below this the flat dense rows
/// either fit the [`DENSE_WORD_BUDGET`] (so the flat-vs-CSR crossover
/// decides) or the universe is small enough that CSR scans are already
/// cheap; the compressed directory only pays for itself once rows span many
/// 4096-bit blocks.
pub const COMPRESSED_MIN_UNIVERSE: usize = 16_384;

/// Byte budget for the compressed re-indexed adjacency (1 GiB). The
/// estimate checked against it ([`CompressedSubgraph::estimate_bytes`]) is
/// an upper bound on the built index, so staying under the budget is a real
/// memory guarantee, not a guess.
pub const COMPRESSED_BYTE_BUDGET: usize = 1 << 30;

/// The cost-model decision for one candidate universe, with the quantities
/// that produced it (recorded for diagnostics and the crossover unit tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexPlan {
    /// Chosen representation.
    pub path: IndexPath,
    /// Universe size `m`.
    pub universe: usize,
    /// Dense row length in words, `⌈m/64⌉`.
    pub words_per_row: usize,
    /// Average CSR adjacency length of a universe member over all layers.
    pub avg_degree: f64,
}

/// Caller override of the dense-vs-CSR cost model, carried on
/// [`crate::DccsOptions::index`] and the CLI's `--index csr|dense|auto`
/// flag so the model can be A/B'd without recompiling. The override only
/// selects the *representation* — both paths are bit-identical — and the
/// actual decision is still recorded in
/// [`crate::SearchStats::index_path`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IndexChoice {
    /// Let the [`plan_index`] cost model decide (the default).
    #[default]
    Auto,
    /// Always peel over the CSR adjacency.
    Csr,
    /// Peel over the dense re-indexed rows whenever the universe fits the
    /// [`DENSE_WORD_BUDGET`] (the memory gate is a safety bound, not part
    /// of the cost model, so it still applies).
    Dense,
    /// Peel over the compressed re-indexed rows whenever the estimated
    /// index stays under the [`COMPRESSED_BYTE_BUDGET`] (like `Dense`, only
    /// the memory gate still applies — the `Auto` cost model's
    /// [`COMPRESSED_MIN_UNIVERSE`] floor does not).
    Compressed,
}

impl IndexChoice {
    /// The CLI spelling (`auto`, `csr`, `dense`, `compressed`).
    pub fn name(self) -> &'static str {
        match self {
            IndexChoice::Auto => "auto",
            IndexChoice::Csr => "csr",
            IndexChoice::Dense => "dense",
            IndexChoice::Compressed => "compressed",
        }
    }

    /// Parses a CLI value (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Some(IndexChoice::Auto),
            "csr" => Some(IndexChoice::Csr),
            "dense" => Some(IndexChoice::Dense),
            "compressed" => Some(IndexChoice::Compressed),
            _ => None,
        }
    }
}

/// Decides among the three peeling representations for a candidate
/// `universe` of `g`: flat dense rows, compressed-dense rows, or CSR.
///
/// The dense path re-indexes the universe to `0..m` and answers every
/// degree-within query by scanning a `⌈m/64⌉`-word row; the CSR path scans
/// the vertex's full adjacency list with membership tests, costing one
/// dependent load per neighbor. Dense wins when its row is short relative to
/// the average adjacency ([`DENSE_CROSSOVER`]) and the total index fits the
/// [`DENSE_WORD_BUDGET`]; at low degree thresholds on near-complete
/// universes (many vertices, sparse rows) CSR wins and is chosen. The third
/// regime targets universes too large for the flat rows entirely
/// (`≥` [`COMPRESSED_MIN_UNIVERSE`], over the word budget): there the
/// [`CompressedSubgraph`] keeps word-level peeling at `O(edges)` memory, as
/// long as its estimated footprint stays under
/// [`COMPRESSED_BYTE_BUDGET`].
pub fn plan_index(g: &MultiLayerGraph, universe: &VertexSet) -> IndexPlan {
    plan_index_with(g, universe, IndexChoice::Auto)
}

/// [`plan_index`] with an explicit [`IndexChoice`] override: `Csr` and
/// `Dense` force the representation (dense still subject to the memory
/// budget), `Auto` runs the cost model. The plan's diagnostic quantities
/// are computed either way, so an overridden run records the same
/// `words_per_row`/`avg_degree` the model would have seen.
pub fn plan_index_with(
    g: &MultiLayerGraph,
    universe: &VertexSet,
    choice: IndexChoice,
) -> IndexPlan {
    let m = universe.len();
    let l = g.num_layers();
    let words_per_row = m.div_ceil(64);
    let mut total_degree = 0usize;
    for layer in 0..l {
        let csr = g.layer(layer);
        for v in universe.iter() {
            total_degree += csr.neighbors(v).len();
        }
    }
    let avg_degree = if m == 0 { 0.0 } else { total_degree as f64 / (l * m) as f64 };
    let fits_flat = m > 0 && DenseSubgraph::words_required(m, l) <= DENSE_WORD_BUDGET;
    let fits_compressed =
        m > 0 && CompressedSubgraph::estimate_bytes(m, l, total_degree) <= COMPRESSED_BYTE_BUDGET;
    let path = match choice {
        IndexChoice::Auto => {
            if fits_flat && (words_per_row as f64) <= DENSE_CROSSOVER * avg_degree {
                IndexPath::Dense
            } else if !fits_flat && m >= COMPRESSED_MIN_UNIVERSE && fits_compressed {
                // The flat rows blew the word budget but the universe is
                // huge and sparse: compressed rows keep the word-level
                // peel at O(edges) memory instead of falling back to CSR.
                IndexPath::CompressedDense
            } else {
                IndexPath::Csr
            }
        }
        IndexChoice::Csr => IndexPath::Csr,
        IndexChoice::Dense => {
            if fits_flat {
                IndexPath::Dense
            } else {
                IndexPath::Csr
            }
        }
        IndexChoice::Compressed => {
            if fits_compressed {
                IndexPath::CompressedDense
            } else {
                IndexPath::Csr
            }
        }
    };
    IndexPlan { path, universe: m, words_per_row, avg_degree }
}

/// One cached dense index, keyed on the universe it was built for.
#[derive(Debug)]
struct DenseCacheEntry {
    /// Identity guard: the graph address + shape the index was built from.
    /// The address alone could be reused by a different graph after a
    /// drop-and-rebuild, so the vertex/layer/edge counts are part of the
    /// key too. This is a best-effort tripwire, not a proof: a rebuilt
    /// graph matching on all four fields with different edges would still
    /// hit stale — the binding contract ("one context per graph", see
    /// [`SearchContext`]) is what callers must uphold; call
    /// [`SearchContext::clear_cache`] when repointing a context.
    graph_key: (usize, usize, usize, usize),
    universe: VertexSet,
    dense: DenseSubgraph,
}

/// One cached compressed index, keyed exactly like [`DenseCacheEntry`].
#[derive(Debug)]
struct CompressedCacheEntry {
    graph_key: (usize, usize, usize, usize),
    universe: VertexSet,
    compressed: CompressedSubgraph,
}

fn graph_key(g: &MultiLayerGraph) -> (usize, usize, usize, usize) {
    (std::ptr::from_ref(g) as usize, g.num_vertices(), g.num_layers(), g.total_edges())
}

/// Bound on how many distinct `(universe, choice)` cost-model decisions the
/// shared tier memoizes. Universes come from preprocessing, so one per
/// distinct `(d, s)` with vertex deletion on (far fewer in practice: an `s`
/// sweep at fixed `d` shares one), and each entry stores a universe clone —
/// the cap keeps a pathological sweep from accumulating them without bound.
const SHARED_PLAN_CAP: usize = 32;

/// The **shared immutable tier** of session state: everything about a graph
/// that is expensive to derive, deterministic, and reusable by any number of
/// concurrent queries — today the per-`d` initial layer cores (the peel of
/// every layer at threshold `d`, the `d`-only-dependent first step of
/// preprocessing) and the dense-vs-CSR cost-model decisions per candidate
/// universe.
///
/// One instance is bound to one graph (identity-checked with the same
/// best-effort key as the context-local caches) and published behind an
/// `Arc` — typically inside a [`crate::service::GraphSnapshot`] — so N
/// worker contexts answering N queries share one copy of the preprocessing
/// work instead of each recomputing it. Entries are built **once under a
/// once-style guard**: concurrent first queries for the same `d` block on
/// one computation ([`OnceLock::get_or_init`]), and a computation that
/// panics (e.g. under fault injection) leaves the cell empty, so a poisoned
/// query never voids the tier for its siblings — the next query simply
/// recomputes.
///
/// Bit-identity is preserved by construction: both memoized quantities are
/// deterministic pure functions of the graph (layer peels are
/// thread-invariant, and [`plan_index_with`] is a pure cost model), so a
/// context with the tier installed returns exactly what it would have
/// computed locally.
#[derive(Debug)]
pub struct SharedSearchState {
    /// Identity guard (same contract as the context-local caches): contexts
    /// consult the tier only while this matches their graph.
    graph_key: (usize, usize, usize, usize),
    /// Per-`d` initial layer cores. The map lock covers only cell lookup;
    /// the per-`d` [`OnceLock`] serializes the actual peel so the map is
    /// never held across a computation.
    #[allow(clippy::type_complexity)]
    layer_cores: Mutex<HashMap<u32, Arc<OnceLock<Arc<Vec<VertexSet>>>>>>,
    /// Memoized [`plan_index_with`] decisions keyed by exact universe
    /// equality (deliberately not a hash: a collision could flip
    /// `stats.index_path`, which *is* part of stats equality).
    plans: Mutex<Vec<(VertexSet, IndexChoice, IndexPlan)>>,
}

impl SharedSearchState {
    /// A fresh shared tier bound to `g`. Nothing is computed eagerly; every
    /// entry is filled on first use by whichever query needs it.
    pub fn for_graph(g: &MultiLayerGraph) -> Arc<Self> {
        Arc::new(SharedSearchState {
            graph_key: graph_key(g),
            layer_cores: Mutex::new(HashMap::new()),
            plans: Mutex::new(Vec::new()),
        })
    }

    /// A tier bound to `g` whose per-`d` layer-core cells arrive already
    /// filled — the mutation-commit path
    /// ([`crate::QueryService::commit`]) repairs the previous epoch's
    /// entries against the edge delta instead of letting the next epoch's
    /// queries recompute them from scratch. Plans start empty: the
    /// cost-model memo is keyed on candidate universes, which the delta can
    /// change arbitrarily, and recomputing a plan is cheap.
    pub(crate) fn preloaded(g: &MultiLayerGraph, entries: Vec<(u32, Vec<VertexSet>)>) -> Arc<Self> {
        let map = entries
            .into_iter()
            .map(|(d, cores)| {
                let cell: Arc<OnceLock<Arc<Vec<VertexSet>>>> = Arc::default();
                let _ = cell.set(Arc::new(cores));
                (d, cell)
            })
            .collect();
        Arc::new(SharedSearchState {
            graph_key: graph_key(g),
            layer_cores: Mutex::new(map),
            plans: Mutex::new(Vec::new()),
        })
    }

    /// Every **filled** per-`d` layer-core entry, for the commit path to
    /// repair into the next epoch's tier. Cells still in flight are skipped:
    /// their computation belongs to the old snapshot and will finish there.
    pub(crate) fn snapshot_cores(&self) -> Vec<(u32, Arc<Vec<VertexSet>>)> {
        let mut entries: Vec<_> = lock(&self.layer_cores)
            .iter()
            .filter_map(|(&d, cell)| cell.get().map(|cores| (d, cores.clone())))
            .collect();
        entries.sort_by_key(|&(d, _)| d);
        entries
    }

    /// Whether this tier was built for `g` (the same best-effort identity
    /// check the context-local caches use).
    pub fn bound_to(&self, g: &MultiLayerGraph) -> bool {
        self.graph_key == graph_key(g)
    }

    /// Number of distinct `d` values whose layer cores have a cell (filled
    /// or in flight) — a diagnostic for tests and stats reporting.
    pub fn memoized_ds(&self) -> usize {
        lock(&self.layer_cores).len()
    }

    /// The initial layer cores for `d`, computing them via `compute` if no
    /// query has needed this `d` yet. Concurrent first callers block on one
    /// computation; a panicking `compute` leaves the cell empty for the
    /// next caller to retry.
    pub(crate) fn layer_cores(
        &self,
        d: u32,
        compute: impl FnOnce() -> Vec<VertexSet>,
    ) -> Arc<Vec<VertexSet>> {
        let cell = lock(&self.layer_cores).entry(d).or_default().clone();
        cell.get_or_init(|| Arc::new(compute())).clone()
    }

    /// The cost-model decision for `universe` under `choice`, memoized.
    pub(crate) fn plan(
        &self,
        g: &MultiLayerGraph,
        universe: &VertexSet,
        choice: IndexChoice,
    ) -> IndexPlan {
        if let Some((_, _, plan)) =
            lock(&self.plans).iter().find(|(u, c, _)| *c == choice && u == universe)
        {
            return *plan;
        }
        let plan = plan_index_with(g, universe, choice);
        let mut plans = lock(&self.plans);
        if !plans.iter().any(|(u, c, _)| *c == choice && u == universe) {
            if plans.len() >= SHARED_PLAN_CAP {
                plans.remove(0);
            }
            plans.push((universe.clone(), choice, plan));
        }
        plan
    }
}

/// Locks a mutex, recovering the data from a poisoned lock: every critical
/// section in [`SharedSearchState`] (and the service tier built on it) is a
/// short map/vec operation that cannot leave the data half-updated, so a
/// panic elsewhere (fault injection, a dying sibling query) must not void
/// the shared state.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shared execution state for a sequence of DCCS runs over one graph:
/// worker count, the driver's peel scratch, reusable cover/seed buffers, and
/// the lazily built, sweep-reusable dense index.
///
/// A context is bound to one graph: reuse it freely across `(d, s, k)`
/// values and algorithms (that is what makes the dense index and the scratch
/// buffers pay off), but create a fresh context per graph.
#[derive(Debug)]
pub struct SearchContext {
    threads: usize,
    /// Caller override of the dense-vs-CSR cost model (CLI `--index`).
    index_choice: IndexChoice,
    dense_cache: Option<DenseCacheEntry>,
    compressed_cache: Option<CompressedCacheEntry>,
    /// Per-layer d-cores over the full vertex set, keyed by `d` — the
    /// `d`-only-dependent first step of preprocessing. An `s`/`k` sweep at
    /// fixed `d` re-peels no layer; a `d` sweep that revisits a value hits
    /// too. Guarded by the same graph-identity key as the dense cache.
    /// Values are `Arc`'d so a memo filled from the shared tier aliases the
    /// tier's copy instead of duplicating it per context.
    layer_core_memo: HashMap<u32, Arc<Vec<VertexSet>>>,
    memo_graph_key: Option<(usize, usize, usize, usize)>,
    /// The shared immutable tier this context consults before computing
    /// layer cores or index plans locally ([`SharedSearchState`]); `None`
    /// for standalone contexts, installed by sessions and the query
    /// service. Purely an optimization — results are bit-identical with or
    /// without it.
    shared: Option<Arc<SharedSearchState>>,
    /// Driver-thread peel scratch (workers own their own, see [`with_pool`]).
    pub(crate) ws: PeelWorkspace,
    /// Reused cover accumulator for the greedy max-k-cover selection.
    pub(crate) cover: VertexSet,
    /// Reused running-intersection buffer for `InitTopK`.
    pub(crate) running: VertexSet,
    /// Reused seed-core output buffer for `InitTopK`.
    pub(crate) seed: VertexSet,
    /// The active query's limit monitor, installed by the session for the
    /// duration of one dispatch. `None` (the default, and for every
    /// unlimited query without a cancel token) keeps all checkpoint sites
    /// on their no-monitor fast path.
    pub(crate) monitor: Option<Arc<QueryMonitor>>,
}

impl SearchContext {
    /// A context executing on `threads` workers (0 and 1 both mean
    /// sequential: the driver thread does all the work).
    pub fn new(threads: usize) -> Self {
        SearchContext {
            threads: threads.max(1),
            index_choice: IndexChoice::Auto,
            dense_cache: None,
            compressed_cache: None,
            layer_core_memo: HashMap::new(),
            memo_graph_key: None,
            shared: None,
            ws: PeelWorkspace::new(),
            cover: VertexSet::new(0),
            running: VertexSet::new(0),
            seed: VertexSet::new(0),
            monitor: None,
        }
    }

    /// A context configured from the options' `threads` and `index` knobs.
    pub fn from_options(opts: &DccsOptions) -> Self {
        let mut ctx = SearchContext::new(opts.threads);
        ctx.index_choice = opts.index;
        ctx
    }

    /// Number of workers (≥ 1) batches are spread over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the worker count for subsequent runs (0 and 1 both mean
    /// sequential). The scratch buffers and caches are thread-independent,
    /// so a session can re-point the executor width per query without
    /// losing sweep state.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The dense-vs-CSR override subsequent runs plan with.
    pub fn index_choice(&self) -> IndexChoice {
        self.index_choice
    }

    /// Overrides the dense-vs-CSR cost model for subsequent runs. Both
    /// representations are bit-identical, so this — like `set_threads` —
    /// changes the wall-clock only; the per-run decision still lands in
    /// [`crate::SearchStats::index_path`].
    pub fn set_index_choice(&mut self, choice: IndexChoice) {
        self.index_choice = choice;
    }

    /// Runs the Section IV-C preprocessing through the context's per-layer
    /// d-core memo: the initial full-universe d-cores (the only step that
    /// depends on `d` alone) are computed once per distinct `d` and reused
    /// across every later query on the same graph, so an `s` or `k` sweep at
    /// fixed `d` never re-peels the layers. With more than one thread both
    /// the memo fill and every round of the vertex-deletion fixpoint run
    /// the layers as fork-join batches over the executor crew. The result
    /// is bit-identical to [`crate::preprocess::preprocess`] — the memo and
    /// the batches only skip or parallelize recomputing deterministic
    /// intermediates.
    pub fn preprocess(
        &mut self,
        g: &MultiLayerGraph,
        params: &DccsParams,
        opts: &DccsOptions,
    ) -> Preprocessed {
        with_pool(self.threads, |pool| self.preprocess_on(pool, g, params, opts))
    }

    /// [`SearchContext::preprocess`] on an existing executor crew — the
    /// single-crew query path: the session spins up (or reuses) one crew
    /// per query and threads it through preprocessing and the search, so
    /// no phase pays its own worker spawn/join.
    pub fn preprocess_on(
        &mut self,
        pool: &PoolRef<'_>,
        g: &MultiLayerGraph,
        params: &DccsParams,
        opts: &DccsOptions,
    ) -> Preprocessed {
        let key = graph_key(g);
        if self.memo_graph_key != Some(key) {
            self.layer_core_memo.clear();
            self.memo_graph_key = Some(key);
        }
        if !self.layer_core_memo.contains_key(&params.d) {
            let shared = self.shared.clone();
            let cores = match shared.as_deref().filter(|tier| tier.graph_key == key) {
                Some(tier) => {
                    let ws = &mut self.ws;
                    tier.layer_cores(params.d, || initial_layer_cores_on(g, params.d, ws, pool))
                }
                None => Arc::new(initial_layer_cores_on(g, params.d, &mut self.ws, pool)),
            };
            self.layer_core_memo.insert(params.d, cores);
        }
        let initial = self.layer_core_memo[&params.d].as_ref().clone();
        preprocess_from_monitored(
            g,
            params,
            opts,
            &mut self.ws,
            initial,
            pool,
            self.monitor.as_deref(),
        )
    }

    /// Runs the cost model for `universe` and, when the dense path wins,
    /// returns the re-indexed subgraph — cached across calls, so a sweep
    /// whose preprocessed universe is unchanged (e.g. varying `s` at fixed
    /// `d`) builds it once. Returns the plan alongside so callers can record
    /// the chosen path in their statistics.
    pub fn dense_for<'a>(
        &'a mut self,
        g: &'a MultiLayerGraph,
        universe: &VertexSet,
    ) -> (IndexPlan, Option<&'a DenseSubgraph>) {
        let (index, _) = self.peel_index(g, universe);
        (index.plan, index.dense)
    }

    /// Drops the cached dense/compressed indexes and the per-layer d-core
    /// memo (e.g. before pointing the context at a different graph).
    pub fn clear_cache(&mut self) {
        self.dense_cache = None;
        self.compressed_cache = None;
        self.layer_core_memo.clear();
        self.memo_graph_key = None;
    }

    /// Split borrow of the `InitTopK` scratch: the driver workspace, the
    /// running-intersection buffer, and the seed-core buffer.
    pub(crate) fn init_scratch(&mut self) -> (&mut PeelWorkspace, &mut VertexSet, &mut VertexSet) {
        (&mut self.ws, &mut self.running, &mut self.seed)
    }

    /// Installs (or removes) the limit monitor for the next dispatch. The
    /// session sets it right before running a limited query and clears it
    /// after, so sweep reuse of the context never leaks one query's limits
    /// into the next.
    pub(crate) fn set_monitor(&mut self, monitor: Option<Arc<QueryMonitor>>) {
        self.monitor = monitor;
    }

    /// The active query's limit monitor, if one is installed.
    pub(crate) fn monitor(&self) -> Option<&Arc<QueryMonitor>> {
        self.monitor.as_ref()
    }

    /// Installs (or removes) the shared immutable tier this context
    /// consults before computing layer cores or index plans locally. The
    /// tier is identity-checked against the queried graph on every consult,
    /// so installing a tier built for a different graph is inert rather
    /// than wrong.
    pub fn set_shared(&mut self, shared: Option<Arc<SharedSearchState>>) {
        self.shared = shared;
    }

    /// The installed shared tier, if any.
    pub fn shared(&self) -> Option<&Arc<SharedSearchState>> {
        self.shared.as_ref()
    }

    /// Plans the peeling representation for `universe` (honoring the
    /// context's [`IndexChoice`] override) and hands back the unified
    /// [`PeelIndex`] plus the driver workspace as a split borrow, so
    /// candidate generation can peel on the driver while branch jobs share
    /// the index. The dense index is cached across calls keyed on the
    /// universe, so a sweep whose preprocessed universe is unchanged
    /// re-indexes the graph once.
    pub(crate) fn peel_index<'a>(
        &'a mut self,
        g: &'a MultiLayerGraph,
        universe: &VertexSet,
    ) -> (PeelIndex<'a>, &'a mut PeelWorkspace) {
        let mut plan = match self.shared.as_deref().filter(|tier| tier.bound_to(g)) {
            Some(tier) => tier.plan(g, universe, self.index_choice),
            None => plan_index_with(g, universe, self.index_choice),
        };
        if plan.path == IndexPath::Dense {
            if let Some(ceiling) =
                self.monitor.as_ref().and_then(|monitor| monitor.max_dense_words())
            {
                let required = DenseSubgraph::words_required(universe.len(), g.num_layers());
                if required > ceiling {
                    // Over the caller's memory ceiling: under `Auto` the CSR
                    // path is a bit-identical fallback, so just take it; a
                    // *forced* dense index is a contract the engine cannot
                    // honor, so the monitor trips and the session fails the
                    // query with `MemoryLimit`.
                    if self.index_choice == IndexChoice::Dense {
                        if let Some(monitor) = &self.monitor {
                            monitor.trip_dense_memory(required, ceiling);
                        }
                    }
                    plan.path = IndexPath::Csr;
                }
            }
        }
        let key = graph_key(g);
        let dense = if plan.path == IndexPath::Dense {
            let hit = self
                .dense_cache
                .as_ref()
                .is_some_and(|e| e.graph_key == key && e.universe == *universe);
            if !hit {
                self.dense_cache = Some(DenseCacheEntry {
                    graph_key: key,
                    universe: universe.clone(),
                    dense: DenseSubgraph::build(g, universe),
                });
            }
            self.dense_cache.as_ref().map(|e| &e.dense)
        } else {
            None
        };
        let compressed = if plan.path == IndexPath::CompressedDense {
            let hit = self
                .compressed_cache
                .as_ref()
                .is_some_and(|e| e.graph_key == key && e.universe == *universe);
            if !hit {
                self.compressed_cache = Some(CompressedCacheEntry {
                    graph_key: key,
                    universe: universe.clone(),
                    compressed: CompressedSubgraph::build(g, universe),
                });
            }
            self.compressed_cache.as_ref().map(|e| &e.compressed)
        } else {
            None
        };
        (PeelIndex { g, dense, compressed, plan, kernel: mlgraph::kernels::kernel() }, &mut self.ws)
    }
}

impl Default for SearchContext {
    fn default() -> Self {
        SearchContext::new(1)
    }
}

/// The unified peeling index [`plan_index`] hands back: one object wrapping
/// whichever adjacency representation the cost model (or the caller's
/// [`IndexChoice`] override) picked, consumed by the peeler and the lattice
/// walk through the same kernel-dispatched API instead of each call site
/// re-branching on [`IndexPath`].
///
/// On the CSR path the index space **is** the graph's vertex universe
/// (`compress`/`emit` are identity copies and degrees scan adjacency
/// lists); on the dense and compressed-dense paths it is the re-indexed
/// `0..m` universe and every degree is a `popcount(row ∧ set)` through the
/// selected bit kernel — against flat `⌈m/64⌉`-word rows (dense) or
/// block-compressed rows holding only the touched 4096-bit blocks
/// (compressed).
#[derive(Clone, Copy)]
pub struct PeelIndex<'a> {
    g: &'a MultiLayerGraph,
    dense: Option<&'a DenseSubgraph>,
    compressed: Option<&'a CompressedSubgraph>,
    plan: IndexPlan,
    /// The process-dispatched bit kernel, fetched once at construction so
    /// the per-vertex degree queries of a walk pay no repeated
    /// `OnceLock` lookup.
    kernel: &'static dyn mlgraph::kernels::BitKernel,
}

impl std::fmt::Debug for PeelIndex<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeelIndex")
            .field("plan", &self.plan)
            .field("kernel", &self.kernel.kind())
            .finish()
    }
}

/// How [`PeelIndex::inherit_prefix_degrees`] produced a child's
/// prefix-layer degrees — the observable half of the lattice's inheritance
/// diagnostics ([`crate::LatticeStats::inherited`] /
/// [`crate::LatticeStats::recount_fallbacks`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum InheritOutcome {
    /// Dense walk: word-restricted `popcount(row ∧ removed)` subtraction.
    DenseInherited,
    /// Dense walk: the removed set spanned full rows, so the degrees were
    /// recounted from scratch (the German-`d=2` failure mode).
    DenseRecount,
    /// CSR walk: parent counts patched by the removed vertices' edges.
    CsrPatched,
    /// CSR walk: the intersection dropped most of the parent, so the (now
    /// small) child was rescanned instead.
    CsrRecount,
    /// Compressed walk: per-survivor `popcount(row ∧ removed)` subtraction
    /// over the compressed row's touched blocks.
    CompressedPatched,
    /// Compressed walk: the removals outnumbered the survivors, so the
    /// (now small) child's degrees were recounted from scratch.
    CompressedRecount,
}

impl<'a> PeelIndex<'a> {
    /// Builds an index from an explicit plan and (for the re-indexed paths)
    /// a pre-built dense or compressed subgraph; the ctx-less lattice entry
    /// point uses this, the context path goes through
    /// [`SearchContext::peel_index`].
    pub(crate) fn new(
        g: &'a MultiLayerGraph,
        dense: Option<&'a DenseSubgraph>,
        compressed: Option<&'a CompressedSubgraph>,
        plan: IndexPlan,
    ) -> Self {
        debug_assert_eq!(plan.path == IndexPath::Dense, dense.is_some());
        debug_assert_eq!(plan.path == IndexPath::CompressedDense, compressed.is_some());
        PeelIndex { g, dense, compressed, plan, kernel: mlgraph::kernels::kernel() }
    }

    /// The representation this index peels over.
    pub fn path(&self) -> IndexPath {
        self.plan.path
    }

    /// The cost-model plan that produced this index.
    pub fn plan(&self) -> IndexPlan {
        self.plan
    }

    /// The dense re-indexed subgraph, when the dense path was chosen.
    pub fn dense_index(&self) -> Option<&'a DenseSubgraph> {
        self.dense
    }

    /// The compressed re-indexed subgraph, when the compressed-dense path
    /// was chosen.
    pub fn compressed_index(&self) -> Option<&'a CompressedSubgraph> {
        self.compressed
    }

    /// Heap footprint of the built adjacency index in bytes: the flat rows
    /// on the dense path, the measured container bytes on the compressed
    /// path, and 0 on CSR (no index is built — the graph is peeled in
    /// place).
    pub fn index_bytes(&self) -> usize {
        if let Some(dense) = self.dense {
            dense.words_per_row() * dense.len() * self.g.num_layers() * 8
        } else if let Some(sub) = self.compressed {
            sub.bytes()
        } else {
            0
        }
    }

    /// Universe size in index space: `m` on the re-indexed paths, `n` on
    /// CSR.
    pub fn universe_len(&self) -> usize {
        if let Some(dense) = self.dense {
            dense.len()
        } else if let Some(sub) = self.compressed {
            sub.len()
        } else {
            self.g.num_vertices()
        }
    }

    /// `|N_layer(v) ∩ set|` in index space — a kernel-dispatched
    /// `popcount(row ∧ set)` on the dense and compressed paths, an
    /// adjacency scan with membership tests on CSR.
    #[inline]
    pub fn degree_within(&self, layer: Layer, v: Vertex, set: &VertexSet) -> usize {
        if let Some(dense) = self.dense {
            self.kernel.and_count(set.words(), dense.row(layer, v))
        } else if let Some(sub) = self.compressed {
            sub.row(layer, v).and_count_words_with(self.kernel, set.words())
        } else {
            self.g.layer(layer).degree_within(v, set)
        }
    }

    /// Translates per-layer cores into index space: `None` on CSR (the
    /// caller keeps using the originals — index space is vertex space),
    /// re-indexed copies on the dense and compressed paths.
    pub fn compress_layer_cores(&self, layer_cores: &[VertexSet]) -> Option<Vec<VertexSet>> {
        if let Some(dense) = self.dense {
            Some(
                layer_cores
                    .iter()
                    .map(|core| {
                        let mut compressed = dense.new_set();
                        dense.compress_into(core, &mut compressed);
                        compressed
                    })
                    .collect(),
            )
        } else {
            self.compressed.map(|sub| {
                layer_cores
                    .iter()
                    .map(|core| {
                        let mut compressed = sub.new_set();
                        sub.compress_into(core, &mut compressed);
                        compressed
                    })
                    .collect()
            })
        }
    }

    /// Returns `core` in vertex space for emission: the core itself on CSR,
    /// the expansion written into `buf` on the re-indexed paths.
    pub fn emit<'s>(&self, core: &'s VertexSet, buf: &'s mut VertexSet) -> &'s VertexSet {
        if let Some(dense) = self.dense {
            dense.expand_into(core, buf);
            buf
        } else if let Some(sub) = self.compressed {
            sub.expand_into(core, buf);
            buf
        } else {
            core
        }
    }

    /// The cascading removal phase in index space — the peeler's side of
    /// the unified API: [`PeelWorkspace::cascade_dense`] (word-batched, bit
    /// kernels) on the dense path, [`PeelWorkspace::cascade_compressed`]
    /// (per-victim walks over compressed rows) on the compressed path,
    /// [`PeelWorkspace::cascade_in_place`]
    /// (CSR adjacency) otherwise. All three reach the same fixpoint — the
    /// d-core cascade is confluent. `degrees` must hold exact within-`alive`
    /// degrees per `layers[j]`, and is kept exact for the survivors.
    pub fn cascade(
        &self,
        ws: &mut PeelWorkspace,
        layers: &[Layer],
        d: u32,
        alive: &mut VertexSet,
        degrees: &mut [u32],
    ) {
        if let Some(dense) = self.dense {
            ws.cascade_dense(dense, layers, d, alive, degrees);
        } else if let Some(sub) = self.compressed {
            ws.cascade_compressed(sub, layers, d, alive, degrees);
        } else {
            ws.cascade_in_place(self.g, layers, d, alive, degrees);
        }
    }

    /// Builds a lattice child's prefix-layer degree rows from its parent's:
    /// the representation-specific inheritance strategy behind one API.
    ///
    /// Dense: each survivor's degree shrinks by exactly `|row ∧ removed|`,
    /// subtracted over **only the non-zero words of the removed set** —
    /// a strict win whenever the removals span fewer words than a full row,
    /// with a from-scratch recount fallback otherwise (the measured
    /// failure mode on the German `d = 2` shape, now counted in
    /// [`crate::LatticeStats::recount_fallbacks`]).
    ///
    /// CSR: when few vertices were lost, the parent's counts are patched by
    /// the removed vertices' edges; when the intersection dropped most of
    /// the parent, the (now small) child is rescanned.
    ///
    /// Compressed: like dense, each survivor's degree shrinks by exactly
    /// `|row ∧ removed|`, computed over only the blocks the compressed row
    /// actually holds; the recount fallback fires when the removals
    /// outnumber the survivors.
    ///
    /// `prefix` is the subset's first `depth` layers; `parent_deg` /
    /// `child_deg` are laid out `[t * len + v]` over the index-space
    /// universe; `nz_scratch` is reused to hold the removed set's non-zero
    /// word indices.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn inherit_prefix_degrees(
        &self,
        prefix: &[Layer],
        parent_deg: &[u32],
        child_deg: &mut [u32],
        child: &VertexSet,
        removed: &VertexSet,
        nz_scratch: &mut Vec<u32>,
    ) -> InheritOutcome {
        let len = self.universe_len();
        if let Some(sub) = self.compressed {
            // Compressed rows have no flat words to restrict, but each
            // row's AND against a word slice only visits the row's own
            // blocks — so patching by `|row ∧ removed|` is cheap whenever
            // the removals are the smaller side, mirroring the CSR
            // heuristic.
            return if removed.len() <= child.len() {
                for v in child.iter() {
                    let vi = v as usize;
                    for (t, &layer) in prefix.iter().enumerate() {
                        let delta =
                            sub.row(layer, v).and_count_words_with(self.kernel, removed.words());
                        child_deg[t * len + vi] = parent_deg[t * len + vi] - delta as u32;
                    }
                }
                InheritOutcome::CompressedPatched
            } else {
                for (t, &layer) in prefix.iter().enumerate() {
                    for v in child.iter() {
                        child_deg[t * len + v as usize] =
                            sub.row(layer, v).and_count_words_with(self.kernel, child.words())
                                as u32;
                    }
                }
                InheritOutcome::CompressedRecount
            };
        }
        match self.dense {
            Some(dense) => {
                let row_words = child.words().len();
                nz_scratch.clear();
                for (w, &word) in removed.words().iter().enumerate() {
                    if word != 0 {
                        nz_scratch.push(w as u32);
                    }
                }
                if nz_scratch.len() < row_words {
                    let rem = removed.words();
                    for v in child.iter() {
                        let vi = v as usize;
                        for (t, &layer) in prefix.iter().enumerate() {
                            let row = dense.row(layer, v);
                            let mut delta = 0u32;
                            for &w in nz_scratch.iter() {
                                delta += (row[w as usize] & rem[w as usize]).count_ones();
                            }
                            child_deg[t * len + vi] = parent_deg[t * len + vi] - delta;
                        }
                    }
                    InheritOutcome::DenseInherited
                } else {
                    for (t, &layer) in prefix.iter().enumerate() {
                        for v in child.iter() {
                            child_deg[t * len + v as usize] =
                                self.kernel.and_count(child.words(), dense.row(layer, v)) as u32;
                        }
                    }
                    InheritOutcome::DenseRecount
                }
            }
            None => {
                if removed.len() <= child.len() {
                    for v in child.iter() {
                        let vi = v as usize;
                        for t in 0..prefix.len() {
                            child_deg[t * len + vi] = parent_deg[t * len + vi];
                        }
                    }
                    for v in removed.iter() {
                        for (t, &layer) in prefix.iter().enumerate() {
                            for &u in self.g.layer(layer).neighbors(v) {
                                if child.contains(u) {
                                    child_deg[t * len + u as usize] -= 1;
                                }
                            }
                        }
                    }
                    InheritOutcome::CsrPatched
                } else {
                    for (t, &layer) in prefix.iter().enumerate() {
                        let csr = self.g.layer(layer);
                        for v in child.iter() {
                            child_deg[t * len + v as usize] = csr.degree_within(v, child) as u32;
                        }
                    }
                    InheritOutcome::CsrRecount
                }
            }
        }
    }
}

/// A unit of work: one search-tree child evaluation, run on any worker's
/// workspace.
///
/// Jobs are **lifetime-erased** at enqueue time (see [`erase_job`]): the
/// queue holds `'static`-typed boxes whose closures may in fact borrow the
/// enqueuing frame. That is what lets one crew — including a
/// session-persistent one — serve batches whose jobs borrow data created
/// long after the crew was spawned (the preprocessed layer cores, the
/// cached dense index, a lattice branch closure), which is the whole point
/// of the single-crew query path.
type Job = Box<dyn FnOnce(&mut PeelWorkspace) + Send>;

/// Erases the borrow lifetime of a job before it enters the shared queue.
///
/// # Safety argument
///
/// Sound because every enqueue site pairs the erased jobs with a
/// [`DrainGuard`] on the enqueuing stack frame: the guard runs on **every**
/// exit path (normal return or unwind), removes any still-queued jobs of
/// the batch, and blocks until the in-flight ones have finished. No erased
/// closure — queued, running, or dropped — can therefore outlive the frame
/// whose borrows it captures. The queue is strictly single-driver (one
/// batch or task graph in flight at a time), so a guard never waits on or
/// drops another batch's jobs.
#[allow(unsafe_code)]
fn erase_job<'env>(job: Box<dyn FnOnce(&mut PeelWorkspace) + Send + 'env>) -> Job {
    // SAFETY: per above — completion is enforced before the borrowed frame
    // can die, and a fat Box pointer's layout does not depend on the
    // trait object's lifetime bound.
    unsafe { std::mem::transmute(job) }
}

struct PoolState {
    queue: VecDeque<Job>,
    outstanding: usize,
    shutdown: bool,
}

/// Queue + signalling shared between the driver and the workers.
struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for jobs (or shutdown).
    work_cv: Condvar,
    /// The driver parks here waiting for the last job of a batch.
    done_cv: Condvar,
    /// Message of the most recent panicking job, recorded by the isolation
    /// layer in [`worker_loop`] before the driver is woken — so when the
    /// driver surfaces the failure (missing batch result / dead task slot)
    /// the session can report the *original* panic, not the generic
    /// missing-result message.
    last_panic: Mutex<Option<String>>,
}

impl PoolShared {
    fn new() -> Self {
        PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                outstanding: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            last_panic: Mutex::new(None),
        }
    }

    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        *self.last_panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(message);
    }

    fn take_last_panic(&self) -> Option<String> {
        self.last_panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
    }
}

fn lock_state<'a>(shared: &'a PoolShared) -> MutexGuard<'a, PoolState> {
    // A panicking job poisons nothing we cannot recover: the state is a
    // plain queue + counter, consistent at every lock release.
    shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The completion fence backing [`erase_job`]'s safety argument: dropped on
/// every exit path of a batch or task graph, it discards whatever the
/// current batch still has queued (decrementing the in-flight counter for
/// each discarded job) and then waits until every job already running on a
/// worker has finished. On the normal path the caller has already drained
/// everything and this is one cheap lock; on an unwinding path it is what
/// keeps erased borrows alive until no job can touch them.
struct DrainGuard<'a>(&'a PoolShared);

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        while let Some(job) = st.queue.pop_front() {
            st.outstanding -= 1;
            drop(job);
        }
        while st.outstanding > 0 {
            st = self.0.done_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Decrements the in-flight job counter even if the job panicked, so a
/// driver parked on `done_cv` is woken and the panic can propagate through
/// the scope join instead of deadlocking the batch. Every popped job —
/// fork-join batch job or task-graph task — is executed under this guard;
/// `outstanding` is incremented at enqueue time by both [`PoolRef::map`]
/// and [`PoolRef::submit`], so the counter uniformly means "enqueued but
/// not finished".
struct JobGuard<'a>(&'a PoolShared);

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.0.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut ws = PeelWorkspace::new();
    loop {
        let job = {
            let mut st = lock_state(shared);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let guard = JobGuard(shared);
        // Panic isolation: a panicking job must not take its worker down —
        // the crew outlives the query (a session's `PersistentPool` serves
        // every later query too). The panic is recorded for the driver,
        // which sees the job's missing result (batch) or dead slot (task
        // graph), and the workspace — whose scratch may be mid-cascade — is
        // replaced wholesale. Unwind safety: the job's borrows are fenced
        // by the batch's `DrainGuard` either way, and nothing of the
        // worker's state beyond `ws` crosses the boundary.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&mut ws)));
        if let Err(payload) = outcome {
            shared.record_panic(payload.as_ref());
            ws = PeelWorkspace::new();
        }
        drop(guard);
    }
}

/// Handle to a running worker crew: scoped ([`with_pool`]) or
/// session-persistent ([`PersistentPool::pool_ref`]).
pub struct PoolRef<'pool> {
    shared: &'pool PoolShared,
    workers: usize,
}

impl PoolRef<'_> {
    /// Number of workers draining the queue besides the driver.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Takes (and clears) the message of the most recent panicking job on
    /// this crew — the session reads it when converting a dispatch panic
    /// into [`crate::DccsError::TaskPanicked`].
    pub(crate) fn take_last_panic(&self) -> Option<String> {
        self.shared.take_last_panic()
    }

    /// Runs a batch of jobs — one search-tree child each — across the crew
    /// and returns their outputs **in submission order**.
    ///
    /// The driver participates: it drains the queue alongside the workers on
    /// `driver_ws`, then blocks until the stragglers finish. With no workers
    /// (sequential context) or a single job, everything runs inline on the
    /// driver, so a 1-thread run never touches the queue. The deterministic
    /// output order is what makes parallel search results bit-identical to
    /// sequential ones.
    ///
    /// Jobs may borrow anything alive across this call — including data
    /// created after the crew was spawned; the internal [`DrainGuard`]
    /// guarantees no job outlives the call (see [`erase_job`]).
    pub fn map<T, F>(&self, driver_ws: &mut PeelWorkspace, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce(&mut PeelWorkspace) -> T + Send,
    {
        if self.workers == 0 || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job(driver_ws)).collect();
        }
        let n = jobs.len();
        let results: Arc<Mutex<Vec<(usize, T)>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
        // From the first enqueue on, every exit path must fence on batch
        // completion before `results` (and the jobs' borrows) die.
        let _fence = DrainGuard(self.shared);
        {
            let mut st = lock_state(self.shared);
            st.outstanding += n;
            for (i, job) in jobs.into_iter().enumerate() {
                let slot = Arc::clone(&results);
                st.queue.push_back(erase_job(Box::new(move |ws: &mut PeelWorkspace| {
                    let out = job(ws);
                    slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push((i, out));
                })));
            }
        }
        self.shared.work_cv.notify_all();
        // Participate until the queue is drained…
        loop {
            let job = lock_state(self.shared).queue.pop_front();
            let Some(job) = job else { break };
            let guard = JobGuard(self.shared);
            job(driver_ws);
            drop(guard);
        }
        // …then wait for jobs still running on workers.
        {
            let mut st = lock_state(self.shared);
            while st.outstanding > 0 {
                st =
                    self.shared.done_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let results = Arc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("batch results still shared after completion"))
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut results = results;
        results.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(results.len(), n, "a batch job died without producing its result");
        results.into_iter().map(|(_, t)| t).collect()
    }

    /// Enqueues one task for any worker (or the waiting driver) to execute,
    /// returning a handle its result is later collected through. Unlike
    /// [`PoolRef::map`] this is not a barrier: tasks from many search-tree
    /// nodes coexist in the queue, which is what lets sibling subtrees
    /// evaluate concurrently.
    ///
    /// Crate-private: erased-lifetime tasks are only sound under
    /// [`drive_task_graph`]'s completion fence, so the submit/wait pair is
    /// not exposed raw.
    pub(crate) fn submit<R, F>(&self, job: F) -> TaskHandle<R>
    where
        R: Send,
        F: FnOnce(&mut PeelWorkspace) -> R + Send,
    {
        let slot =
            Arc::new(TaskSlot { state: Mutex::new(SlotState::Pending), filled: Condvar::new() });
        let task_slot = Arc::clone(&slot);
        {
            let mut st = lock_state(self.shared);
            st.outstanding += 1;
            st.queue.push_back(erase_job(Box::new(move |ws: &mut PeelWorkspace| {
                let mut guard = SlotGuard { slot: &task_slot, armed: true };
                let out = job(ws);
                guard.armed = false;
                *task_slot.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    SlotState::Done(out);
                task_slot.filled.notify_all();
            })));
        }
        self.shared.work_cv.notify_one();
        TaskHandle(slot)
    }

    /// Blocks until the given task's result is available and returns it.
    /// While waiting, the driver helps drain the shared queue on
    /// `driver_ws`, so a sequential context (no workers) executes every
    /// pending task itself and the task graph never stalls.
    pub(crate) fn wait_task<R: Send>(
        &self,
        driver_ws: &mut PeelWorkspace,
        handle: TaskHandle<R>,
    ) -> R {
        loop {
            if let Some(out) = handle.try_take() {
                return out;
            }
            let stolen = lock_state(self.shared).queue.pop_front();
            if let Some(job) = stolen {
                let guard = JobGuard(self.shared);
                job(driver_ws);
                drop(guard);
                continue;
            }
            if self.workers == 0 {
                // No workers and an empty queue: the awaited job can only
                // have run on the driver already, so the slot must be
                // filled — loop back and take it.
                continue;
            }
            // The task is running on a worker; park until its slot fills.
            let mut st = handle.0.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            while matches!(*st, SlotState::Pending) {
                st = handle.0.filled.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }
}

/// Runs a deterministic subtree-level task graph to completion.
///
/// Every task is one search-tree node. `eval` runs on whichever worker (or
/// the helping driver) grabs the task first and must be a pure function of
/// the task payload — any pruning bound it consults has to travel *inside*
/// the payload as a spawn-time snapshot (see
/// [`crate::coverage::PruneBounds`]). `commit` runs on the driver only,
/// strictly in the tree's **pre-order**: it may update live search state
/// (the top-k result set, the statistics) and pushes the node's surviving
/// children into its `Vec<T>` argument; those children take the commit
/// slots immediately after their parent, before the parent's later
/// siblings, and are snapshot under the bounds at that moment.
///
/// The combination — scheduling-independent evaluation plus pre-order
/// commits — makes the search's results and work counters bit-identical at
/// every thread count, while tasks from different subtrees peel
/// concurrently. With no workers the graph degenerates to a plain
/// depth-first traversal with zero queue overhead.
pub fn drive_task_graph<T, R, E, C>(
    pool: &PoolRef<'_>,
    driver_ws: &mut PeelWorkspace,
    roots: Vec<T>,
    eval: &E,
    mut commit: C,
) where
    T: Send,
    R: Send,
    E: Fn(T, &mut PeelWorkspace) -> R + Sync,
    C: FnMut(R, &mut PeelWorkspace, &mut Vec<T>),
{
    let mut children: Vec<T> = Vec::new();
    if pool.workers() == 0 {
        // Sequential fast path: evaluate-and-commit is exactly a pre-order
        // depth-first walk; no slots, no boxing.
        let mut pending: VecDeque<T> = roots.into_iter().collect();
        while let Some(task) = pending.pop_front() {
            let result = eval(task, driver_ws);
            commit(result, driver_ws, &mut children);
            for child in children.drain(..).rev() {
                pending.push_front(child);
            }
        }
        return;
    }
    // Tasks borrow `eval` and the payloads' environment; the fence keeps
    // every submitted (erased) task inside this frame — see `erase_job`.
    let _fence = DrainGuard(pool.shared);
    let mut pending: VecDeque<TaskHandle<R>> = VecDeque::new();
    for task in roots {
        pending.push_back(pool.submit(move |ws| eval(task, ws)));
    }
    while let Some(front) = pending.pop_front() {
        let result = pool.wait_task(driver_ws, front);
        commit(result, driver_ws, &mut children);
        for child in children.drain(..).rev() {
            pending.push_front(pool.submit(move |ws| eval(child, ws)));
        }
    }
}

/// State of one submitted task's result slot.
enum SlotState<R> {
    /// The task has not produced its result yet.
    Pending,
    /// The task finished; the result waits for the driver to take it.
    Done(R),
    /// The task panicked (or its result was already taken).
    Dead,
}

/// One submitted task's result mailbox. The executing worker fills it; the
/// driver takes it in commit order.
struct TaskSlot<R> {
    state: Mutex<SlotState<R>>,
    filled: Condvar,
}

/// Marks the slot [`SlotState::Dead`] unless disarmed — so a panicking task
/// job wakes a driver parked on the slot instead of deadlocking it; the
/// driver then panics on the dead slot, and the session reports the
/// worker's original message (parked by [`worker_loop`]'s isolation layer)
/// in its typed error.
struct SlotGuard<'a, R> {
    slot: &'a TaskSlot<R>,
    armed: bool,
}

impl<R> Drop for SlotGuard<'_, R> {
    fn drop(&mut self) {
        if self.armed {
            *self.slot.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                SlotState::Dead;
            self.slot.filled.notify_all();
        }
    }
}

/// Handle to one submitted task, returned by [`PoolRef::submit`] and
/// redeemed (in commit order) by [`PoolRef::wait_task`].
pub(crate) struct TaskHandle<R>(Arc<TaskSlot<R>>);

impl<R> TaskHandle<R> {
    /// Takes the result if the task has finished.
    ///
    /// # Panics
    ///
    /// Panics if the task died without producing a result.
    fn try_take(&self) -> Option<R> {
        let mut st = self.0.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*st {
            SlotState::Pending => None,
            SlotState::Done(_) => match std::mem::replace(&mut *st, SlotState::Dead) {
                SlotState::Done(r) => Some(r),
                _ => unreachable!(),
            },
            SlotState::Dead => panic!("a task-graph job died before producing its result"),
        }
    }
}

/// Signals shutdown when the driver closure exits — normally or by panic —
/// so parked workers always wake up and the scope join never hangs.
struct ShutdownGuard<'a>(&'a PoolShared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        lock_state(self.0).shutdown = true;
        self.0.work_cv.notify_all();
    }
}

/// CI escape hatch: `DCCS_FORCE_THREADS=N` raises every crew to at least
/// `N` workers (it never lowers an explicit wider setting). Because the
/// executor's results are thread-invariant, forcing a width changes no
/// output — it only makes single-core CI runners exercise the multi-worker
/// queue, slot, and merge paths that a `threads = 1` run would otherwise
/// skip. Read once per process.
fn forced_threads() -> Option<usize> {
    use std::sync::OnceLock;
    static FORCED: OnceLock<Option<usize>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("DCCS_FORCE_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&n| n >= 1)
    })
}

/// The crew width a `threads` request actually gets, after the
/// `DCCS_FORCE_THREADS` CI override (which only ever raises it).
pub(crate) fn effective_threads(threads: usize) -> usize {
    forced_threads().map_or(threads, |forced| threads.max(forced)).max(1)
}

/// Spins up `threads − 1` scoped workers (the driver is the remaining one),
/// runs `f` with a [`PoolRef`] handle, and joins everything before
/// returning. With `threads ≤ 1` no thread is spawned and every batch runs
/// inline on the driver (unless `DCCS_FORCE_THREADS` raises the width, see
/// [`forced_threads`]).
///
/// Jobs may borrow anything alive across the batch that enqueues them —
/// including data created *inside* `f`, long after the crew spawned: the
/// preprocessed layer cores, a cached [`DenseSubgraph`], a lattice branch
/// closure (see [`erase_job`] for why that is sound). Long-lived callers
/// that want to reuse one crew across many calls hold a [`PersistentPool`]
/// instead.
pub fn with_pool<R>(threads: usize, f: impl FnOnce(&PoolRef<'_>) -> R) -> R {
    let threads = effective_threads(threads);
    let shared = PoolShared::new();
    let workers = threads.saturating_sub(1);
    if workers == 0 {
        return f(&PoolRef { shared: &shared, workers: 0 });
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared));
        }
        // The guard wakes parked workers on every exit path (including a
        // panicking driver closure), so the scope join never hangs; a
        // panicking *job* is caught on its worker (see `worker_loop`) and
        // surfaces as a missing batch result on the driver (see
        // `PoolRef::map`), whose panic the session converts to a typed
        // error.
        let _guard = ShutdownGuard(&shared);
        f(&PoolRef { shared: &shared, workers })
    })
}

/// A worker crew that outlives any single `with_pool` scope: spawned once,
/// reused by every batch and task graph handed its [`PoolRef`], joined on
/// drop. This is what backs the session's **single-crew queries** — a
/// [`crate::DccsSession`] keeps one of these and threads it through
/// preprocessing and the search of every query (and through whole
/// [`crate::DccsSession::run_batch`] sweeps), so repeated small queries
/// stop paying a worker spawn/join per phase.
///
/// Determinism is untouched: a crew only changes *where* jobs run, and
/// every scheduling shape on it commits deterministically (see the module
/// docs). A job that panics is caught on its worker ([`worker_loop`]'s
/// isolation layer): the worker survives with a fresh workspace, the panic
/// message is parked for [`PoolRef::take_last_panic`], and the driver
/// surfaces the failure through the batch's missing result — so the crew
/// keeps its full width across faults and the session stays usable.
#[derive(Debug)]
pub struct PersistentPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock_state(self);
        f.debug_struct("PoolShared")
            .field("queued", &st.queue.len())
            .field("outstanding", &st.outstanding)
            .field("shutdown", &st.shutdown)
            .finish()
    }
}

impl PersistentPool {
    /// Spawns a crew of `threads − 1` workers (the driver participates as
    /// the remaining one). `DCCS_FORCE_THREADS` raises the width exactly as
    /// it does for [`with_pool`].
    pub fn new(threads: usize) -> Self {
        let threads = effective_threads(threads);
        let shared = Arc::new(PoolShared::new());
        let workers = threads.saturating_sub(1);
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        PersistentPool { shared, handles, threads }
    }

    /// The width this crew was created for (after any CI forcing).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A handle batches and task graphs run on, same as inside
    /// [`with_pool`]. Takes `&mut self`: the queue is strictly
    /// single-driver (the [`DrainGuard`] completion fence purges the whole
    /// queue on an unwinding batch), so the borrow checker must rule out
    /// two simultaneous drivers on one crew.
    pub fn pool_ref(&mut self) -> PoolRef<'_> {
        PoolRef { shared: &self.shared, workers: self.handles.len() }
    }
}

impl Drop for PersistentPool {
    fn drop(&mut self) {
        lock_state(&self.shared).shutdown = true;
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked mid-job already surfaced the failure
            // through its batch's missing result; the join result carries
            // nothing further worth propagating during drop.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    #[test]
    fn map_returns_results_in_submission_order() {
        for threads in [1, 2, 4] {
            let out: Vec<usize> = with_pool(threads, |pool| {
                let mut ws = PeelWorkspace::new();
                let jobs: Vec<_> =
                    (0..17usize).map(|i| move |_ws: &mut PeelWorkspace| i * i).collect();
                pool.map(&mut ws, jobs)
            });
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn repeated_batches_reuse_the_same_crew() {
        let sums: Vec<usize> = with_pool(3, |pool| {
            let mut ws = PeelWorkspace::new();
            (0..10)
                .map(|round| {
                    let jobs: Vec<_> = (0..8usize)
                        .map(|i| move |_ws: &mut PeelWorkspace| round * 100 + i)
                        .collect();
                    pool.map(&mut ws, jobs).into_iter().sum()
                })
                .collect()
        });
        let expected: Vec<usize> = (0..10).map(|round| round * 800 + 28).collect();
        assert_eq!(sums, expected);
    }

    /// The task graph must commit in pre-order — parents before children,
    /// children before their parent's later siblings — at every width, and
    /// evaluation must see only the task payload.
    #[test]
    fn task_graph_commits_in_pre_order_at_every_width() {
        // A ternary tree of depth 3, identified by paths; eval squares the
        // node id, commit records the order and spawns the children.
        fn reference(path: &[usize], depth: usize, out: &mut Vec<Vec<usize>>) {
            out.push(path.to_vec());
            if depth == 0 {
                return;
            }
            for c in 0..3 {
                let mut child = path.to_vec();
                child.push(c);
                reference(&child, depth - 1, out);
            }
        }
        let mut expected = Vec::new();
        reference(&[], 3, &mut expected);

        for threads in [1usize, 2, 4, 8] {
            let eval = |path: Vec<usize>, _ws: &mut PeelWorkspace| path;
            let mut committed: Vec<Vec<usize>> = Vec::new();
            with_pool(threads, |pool| {
                let mut ws = PeelWorkspace::new();
                drive_task_graph(
                    pool,
                    &mut ws,
                    vec![Vec::new()],
                    &eval,
                    |path: Vec<usize>, _ws, spawn| {
                        if path.len() < 3 {
                            for c in 0..3usize {
                                let mut child = path.clone();
                                child.push(c);
                                spawn.push(child);
                            }
                        }
                        committed.push(path);
                    },
                );
            });
            assert_eq!(committed, expected, "threads={threads}");
        }
    }

    /// Multiple roots are committed in order, each with its full subtree
    /// before the next root.
    #[test]
    fn task_graph_handles_multiple_roots() {
        for threads in [1usize, 3] {
            let eval = |v: u32, _ws: &mut PeelWorkspace| v;
            let mut committed = Vec::new();
            with_pool(threads, |pool| {
                let mut ws = PeelWorkspace::new();
                drive_task_graph(pool, &mut ws, vec![10u32, 20, 30], &eval, |v, _ws, spawn| {
                    if v % 10 == 0 {
                        spawn.push(v + 1);
                        spawn.push(v + 2);
                    }
                    committed.push(v);
                });
            });
            assert_eq!(committed, vec![10, 11, 12, 20, 21, 22, 30, 31, 32], "threads={threads}");
        }
    }

    #[test]
    fn jobs_borrow_the_environment() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = with_pool(4, |pool| {
            let mut ws = PeelWorkspace::new();
            let jobs: Vec<_> = data
                .chunks(7)
                .map(|chunk| move |_ws: &mut PeelWorkspace| chunk.iter().sum::<u64>())
                .collect();
            pool.map(&mut ws, jobs).into_iter().sum()
        });
        assert_eq!(total, 4950);
    }

    fn two_clique_graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(64, 3);
        for layer in 0..3 {
            for i in 0..8u32 {
                for j in (i + 1)..8 {
                    b.add_edge(layer, i, j).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn cost_model_prefers_dense_on_small_dense_universes() {
        let g = two_clique_graph();
        let universe = VertexSet::from_iter(64, 0..8);
        let plan = plan_index(&g, &universe);
        // m = 8 → one word per row; avg degree 7 → dense clearly wins.
        assert_eq!(plan.words_per_row, 1);
        assert_eq!(plan.path, IndexPath::Dense);
    }

    #[test]
    fn cost_model_prefers_csr_on_wide_sparse_universes() {
        // 4000 vertices in a cycle: avg degree 2, rows of ⌈4000/64⌉ = 63
        // words — scanning 63 words to count 2 neighbors loses to CSR.
        let mut b = MultiLayerGraphBuilder::new(4000, 1);
        for v in 0..4000u32 {
            b.add_edge(0, v, (v + 1) % 4000).unwrap();
        }
        let g = b.build();
        let universe = g.full_vertex_set();
        let plan = plan_index(&g, &universe);
        assert_eq!(plan.path, IndexPath::Csr);
        assert!(plan.words_per_row as f64 > DENSE_CROSSOVER * plan.avg_degree);
    }

    #[test]
    fn cost_model_rejects_empty_universe() {
        let g = two_clique_graph();
        let plan = plan_index(&g, &VertexSet::new(64));
        assert_eq!(plan.path, IndexPath::Csr);
    }

    #[test]
    fn index_choice_overrides_the_cost_model_within_the_budget() {
        let g = two_clique_graph();
        let universe = VertexSet::from_iter(64, 0..8);
        // Auto picks dense here; Csr must override it.
        assert_eq!(plan_index_with(&g, &universe, IndexChoice::Auto).path, IndexPath::Dense);
        assert_eq!(plan_index_with(&g, &universe, IndexChoice::Csr).path, IndexPath::Csr);
        assert_eq!(plan_index_with(&g, &universe, IndexChoice::Dense).path, IndexPath::Dense);
        // A wide sparse graph: Auto picks CSR; Dense forces the rows while
        // the budget allows.
        let mut b = MultiLayerGraphBuilder::new(4000, 1);
        for v in 0..4000u32 {
            b.add_edge(0, v, (v + 1) % 4000).unwrap();
        }
        let sparse = b.build();
        let full = sparse.full_vertex_set();
        assert_eq!(plan_index_with(&sparse, &full, IndexChoice::Auto).path, IndexPath::Csr);
        assert_eq!(plan_index_with(&sparse, &full, IndexChoice::Dense).path, IndexPath::Dense);
        // An empty universe can never be dense-indexed, even when forced.
        assert_eq!(
            plan_index_with(&g, &VertexSet::new(64), IndexChoice::Dense).path,
            IndexPath::Csr
        );
        // Forced compressed ignores the Auto model's universe floor — only
        // the byte budget gates it — and an empty universe still falls back.
        assert_eq!(
            plan_index_with(&g, &universe, IndexChoice::Compressed).path,
            IndexPath::CompressedDense
        );
        assert_eq!(
            plan_index_with(&sparse, &full, IndexChoice::Compressed).path,
            IndexPath::CompressedDense
        );
        assert_eq!(
            plan_index_with(&g, &VertexSet::new(64), IndexChoice::Compressed).path,
            IndexPath::Csr
        );
        for choice in
            [IndexChoice::Auto, IndexChoice::Csr, IndexChoice::Dense, IndexChoice::Compressed]
        {
            assert_eq!(IndexChoice::parse(choice.name()), Some(choice));
        }
        assert_eq!(IndexChoice::parse("btree"), None);
    }

    /// The third regime: a universe too large for the flat dense rows but
    /// sparse enough for compressed containers is auto-planned
    /// `CompressedDense` — the million-vertex scale path.
    #[test]
    fn cost_model_picks_compressed_past_the_flat_word_budget() {
        // 32768 vertices in a cycle: flat dense rows would need
        // 32768 × 512 = 16.7M words, over the 8.4M word budget; the
        // compressed estimate (≈ 3.4 MB) is far under its 1 GiB budget,
        // and the universe clears `COMPRESSED_MIN_UNIVERSE`.
        let n = 32_768u32;
        let mut b = MultiLayerGraphBuilder::new(n as usize, 1);
        for v in 0..n {
            b.add_edge(0, v, (v + 1) % n).unwrap();
        }
        let g = b.build();
        let universe = g.full_vertex_set();
        assert!(DenseSubgraph::words_required(n as usize, 1) > DENSE_WORD_BUDGET);
        let plan = plan_index(&g, &universe);
        assert_eq!(plan.path, IndexPath::CompressedDense);
        // Forcing CSR or (budget-blown) Dense still falls back cleanly.
        assert_eq!(plan_index_with(&g, &universe, IndexChoice::Csr).path, IndexPath::Csr);
        assert_eq!(plan_index_with(&g, &universe, IndexChoice::Dense).path, IndexPath::Csr);
    }

    #[test]
    fn compressed_cache_is_reused_for_the_same_universe() {
        let g = two_clique_graph();
        let universe = VertexSet::from_iter(64, 0..8);
        let mut ctx = SearchContext::new(1);
        ctx.set_index_choice(IndexChoice::Compressed);
        let first = {
            let (index, _) = ctx.peel_index(&g, &universe);
            assert_eq!(index.path(), IndexPath::CompressedDense);
            assert!(index.index_bytes() > 0);
            index.compressed_index().expect("compressed path chosen") as *const CompressedSubgraph
        };
        let second = {
            let (index, _) = ctx.peel_index(&g, &universe);
            index.compressed_index().expect("compressed path chosen") as *const CompressedSubgraph
        };
        assert_eq!(first, second, "same universe must hit the cache");
        let other = VertexSet::from_iter(64, 0..7);
        let (index, _) = ctx.peel_index(&g, &other);
        assert_eq!(index.universe_len(), 7);
    }

    /// One persistent crew must serve many batches and task graphs — with
    /// jobs borrowing data created long after the crew spawned — and keep
    /// the deterministic ordering contracts of the scoped pool.
    #[test]
    fn persistent_pool_serves_repeated_batches_and_graphs() {
        let mut crew = PersistentPool::new(3);
        let mut ws = PeelWorkspace::new();
        for round in 0..5usize {
            // Data created after the crew existed, borrowed by the jobs.
            let data: Vec<usize> = (0..17).map(|i| i + round * 100).collect();
            let out: Vec<usize> = crew
                .pool_ref()
                .map(&mut ws, data.iter().map(|&x| move |_ws: &mut PeelWorkspace| x * 2).collect());
            assert_eq!(out, data.iter().map(|&x| x * 2).collect::<Vec<_>>(), "round {round}");
        }
        // A task graph on the same crew, same pre-order contract.
        let eval = |v: u32, _ws: &mut PeelWorkspace| v;
        let mut committed = Vec::new();
        drive_task_graph(&crew.pool_ref(), &mut ws, vec![10u32, 20], &eval, |v, _ws, spawn| {
            if v % 10 == 0 {
                spawn.push(v + 1);
                spawn.push(v + 2);
            }
            committed.push(v);
        });
        assert_eq!(committed, vec![10, 11, 12, 20, 21, 22]);
    }

    /// The isolation layer: a panicking job surfaces on the driver (missing
    /// batch result), its message is parked for the session, the workers
    /// survive, and the very next batch on the same crew is correct.
    #[test]
    fn crew_survives_a_panicking_job() {
        let mut crew = PersistentPool::new(3);
        let mut ws = PeelWorkspace::new();
        let faulty: Vec<_> = (0..8usize)
            .map(|i| {
                move |_ws: &mut PeelWorkspace| {
                    if i == 3 {
                        panic!("boom in job 3");
                    }
                    i * 10
                }
            })
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crew.pool_ref().map(&mut ws, faulty)
        }));
        assert!(outcome.is_err(), "the missing result must panic the driver");
        let message = crew.pool_ref().take_last_panic();
        // With >1 worker the panicking job ran on a worker and parked its
        // message; when the driver itself ran it, the payload propagated
        // directly instead. Either way the message must not linger.
        if let Some(message) = message {
            assert!(message.contains("boom in job 3"), "unexpected message: {message}");
        }
        assert_eq!(crew.pool_ref().take_last_panic(), None, "take must clear the slot");
        let clean: Vec<_> = (0..8usize).map(|i| move |_ws: &mut PeelWorkspace| i * 10).collect();
        let out = crew.pool_ref().map(&mut ws, clean);
        assert_eq!(out, (0..8).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn dense_cache_is_reused_for_the_same_universe() {
        let g = two_clique_graph();
        let universe = VertexSet::from_iter(64, 0..8);
        let mut ctx = SearchContext::new(1);
        let (plan, dense) = ctx.dense_for(&g, &universe);
        assert_eq!(plan.path, IndexPath::Dense);
        let first = dense.expect("dense path chosen") as *const DenseSubgraph;
        let (_, dense2) = ctx.dense_for(&g, &universe);
        let second = dense2.expect("dense path chosen") as *const DenseSubgraph;
        assert_eq!(first, second, "same universe must hit the cache");
        // A different universe rebuilds.
        let other = VertexSet::from_iter(64, 0..7);
        let (_, dense3) = ctx.dense_for(&g, &other);
        assert!(dense3.is_some());
        assert_eq!(ctx.dense_cache.as_ref().unwrap().universe.len(), 7);
    }
}
