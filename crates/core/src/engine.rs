//! `SearchContext` + the shared parallel search executor — the execution
//! layer every DCCS algorithm drives its peels through.
//!
//! The three search algorithms (GD, BU, TD) all reduce to peeling d-CCs over
//! nodes of a layer-subset search tree. This module centralizes the three
//! resources those peels share:
//!
//! * **Scratch** — a [`SearchContext`] owns the driver-thread
//!   [`PeelWorkspace`] plus the reusable cover/seed buffers threaded through
//!   greedy selection and `InitTopK`, so a context reused across a parameter
//!   sweep performs no steady-state allocation.
//! * **Indexing policy** — a cost model ([`plan_index`]) decides per run
//!   whether candidate generation peels over the word-level
//!   [`DenseSubgraph`] rows or the CSR adjacency, comparing the dense
//!   per-query cost (`⌈m/64⌉` words per row) against the average CSR
//!   adjacency length. The built dense index is cached on the context,
//!   keyed on the candidate universe, so a sweep over `s` (whose universe
//!   is unchanged) re-indexes the graph once.
//! * **Worker scheduling** — [`with_pool`] spins up a scoped worker crew
//!   with one [`PeelWorkspace`] per worker and a shared job queue. Two
//!   scheduling shapes run on the same crew:
//!
//!   1. *Fork-join batches* ([`PoolRef::map`]) — a fixed job list whose
//!      outputs come back in submission order. The lattice's depth-1
//!      branches, the per-layer preprocessing peels, and `run_batch` query
//!      fan-out all use this shape.
//!   2. *Subtree task graphs* ([`drive_task_graph`]) — BU/TD search-tree
//!      nodes become individual tasks on the shared queue. Each task is
//!      evaluated on whichever worker grabs it first, carrying a snapshot
//!      of the pruning bounds it was spawned under, and its result is
//!      *committed* on the driver strictly in the tree's pre-order. A
//!      commit may spawn the node's surviving children as new tasks, which
//!      take the next pre-order commit slots — so sibling subtrees peel
//!      concurrently while the result set, the statistics, and every
//!      pruning decision evolve in one deterministic order.
//!
//! Determinism contract: the executor never lets scheduling influence an
//! algorithm's decisions. Fork-join batches fix their job set before any
//! job runs and commit outputs sequentially in submission order; task
//! graphs evaluate each task as a pure function of its payload (including
//! the spawn-time bound snapshot) and commit results in pre-order, with all
//! live pruning bounds read only at commit time on the driver. The
//! thread-equivalence property tests
//! (`crates/core/tests/engine_threads.rs`) enforce that BU, TD, and the
//! lattice produce bit-identical results and statistics at 1, 2, 4, and 8
//! threads.

use crate::config::{DccsOptions, DccsParams};
use crate::preprocess::{initial_layer_cores_threaded, preprocess_from_threaded, Preprocessed};
use coreness::PeelWorkspace;
use mlgraph::{DenseSubgraph, MultiLayerGraph, VertexSet};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Which adjacency representation a candidate-generation run peeled over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexPath {
    /// CSR adjacency scans with per-neighbor membership tests.
    #[default]
    Csr,
    /// Re-indexed [`DenseSubgraph`] bitset rows (word-level AND+popcount).
    Dense,
}

/// Word budget for the dense re-indexed adjacency (64 MiB of `u64` rows).
/// Universes needing more always fall back to the CSR engine regardless of
/// what the per-query cost model prefers.
pub const DENSE_WORD_BUDGET: usize = 8 << 20;

/// Crossover factor of the dense-vs-CSR cost model: the dense path is chosen
/// only when scanning one `⌈m/64⌉`-word adjacency row costs no more than
/// `DENSE_CROSSOVER ×` the average CSR adjacency scan. Word-level AND+popcount
/// streams sequentially while CSR neighbor tests are dependent random loads,
/// so a row word is cheaper than a neighbor test.
///
/// Calibrated on the `bench_dcc` suite: every configuration where dense wins
/// has `words_per_row / avg_degree ≤ 0.5` or thereabouts, the tiny German
/// analogue at `d = 2` (near-complete universe, ratio ≈ 2) still peels
/// fastest dense (the CSR engine measured 0.89× there), and the small-scale
/// German analogue at `d = 2` (ratio ≈ 10) is where dense collapses to
/// 0.48× — the old budget-only gate picked dense there; this factor puts the
/// cut between those regimes.
pub const DENSE_CROSSOVER: f64 = 4.0;

/// The cost-model decision for one candidate universe, with the quantities
/// that produced it (recorded for diagnostics and the crossover unit tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexPlan {
    /// Chosen representation.
    pub path: IndexPath,
    /// Universe size `m`.
    pub universe: usize,
    /// Dense row length in words, `⌈m/64⌉`.
    pub words_per_row: usize,
    /// Average CSR adjacency length of a universe member over all layers.
    pub avg_degree: f64,
}

/// Decides dense vs CSR for peeling a candidate `universe` of `g`.
///
/// The dense path re-indexes the universe to `0..m` and answers every
/// degree-within query by scanning a `⌈m/64⌉`-word row; the CSR path scans
/// the vertex's full adjacency list with membership tests, costing one
/// dependent load per neighbor. Dense wins when its row is short relative to
/// the average adjacency ([`DENSE_CROSSOVER`]) and the total index fits the
/// [`DENSE_WORD_BUDGET`]; at low degree thresholds on near-complete
/// universes (many vertices, sparse rows) CSR wins and is chosen.
pub fn plan_index(g: &MultiLayerGraph, universe: &VertexSet) -> IndexPlan {
    let m = universe.len();
    let l = g.num_layers();
    let words_per_row = m.div_ceil(64);
    let mut total_degree = 0usize;
    for layer in 0..l {
        let csr = g.layer(layer);
        for v in universe.iter() {
            total_degree += csr.neighbors(v).len();
        }
    }
    let avg_degree = if m == 0 { 0.0 } else { total_degree as f64 / (l * m) as f64 };
    let fits = m > 0 && DenseSubgraph::words_required(m, l) <= DENSE_WORD_BUDGET;
    let cheap_rows = (words_per_row as f64) <= DENSE_CROSSOVER * avg_degree;
    let path = if fits && cheap_rows { IndexPath::Dense } else { IndexPath::Csr };
    IndexPlan { path, universe: m, words_per_row, avg_degree }
}

/// One cached dense index, keyed on the universe it was built for.
#[derive(Debug)]
struct DenseCacheEntry {
    /// Identity guard: the graph address + shape the index was built from.
    /// The address alone could be reused by a different graph after a
    /// drop-and-rebuild, so the vertex/layer/edge counts are part of the
    /// key too. This is a best-effort tripwire, not a proof: a rebuilt
    /// graph matching on all four fields with different edges would still
    /// hit stale — the binding contract ("one context per graph", see
    /// [`SearchContext`]) is what callers must uphold; call
    /// [`SearchContext::clear_cache`] when repointing a context.
    graph_key: (usize, usize, usize, usize),
    universe: VertexSet,
    dense: DenseSubgraph,
}

fn graph_key(g: &MultiLayerGraph) -> (usize, usize, usize, usize) {
    (std::ptr::from_ref(g) as usize, g.num_vertices(), g.num_layers(), g.total_edges())
}

/// Shared execution state for a sequence of DCCS runs over one graph:
/// worker count, the driver's peel scratch, reusable cover/seed buffers, and
/// the lazily built, sweep-reusable dense index.
///
/// A context is bound to one graph: reuse it freely across `(d, s, k)`
/// values and algorithms (that is what makes the dense index and the scratch
/// buffers pay off), but create a fresh context per graph.
#[derive(Debug)]
pub struct SearchContext {
    threads: usize,
    dense_cache: Option<DenseCacheEntry>,
    /// Per-layer d-cores over the full vertex set, keyed by `d` — the
    /// `d`-only-dependent first step of preprocessing. An `s`/`k` sweep at
    /// fixed `d` re-peels no layer; a `d` sweep that revisits a value hits
    /// too. Guarded by the same graph-identity key as the dense cache.
    layer_core_memo: HashMap<u32, Vec<VertexSet>>,
    memo_graph_key: Option<(usize, usize, usize, usize)>,
    /// Driver-thread peel scratch (workers own their own, see [`with_pool`]).
    pub(crate) ws: PeelWorkspace,
    /// Reused cover accumulator for the greedy max-k-cover selection.
    pub(crate) cover: VertexSet,
    /// Reused running-intersection buffer for `InitTopK`.
    pub(crate) running: VertexSet,
    /// Reused seed-core output buffer for `InitTopK`.
    pub(crate) seed: VertexSet,
}

impl SearchContext {
    /// A context executing on `threads` workers (0 and 1 both mean
    /// sequential: the driver thread does all the work).
    pub fn new(threads: usize) -> Self {
        SearchContext {
            threads: threads.max(1),
            dense_cache: None,
            layer_core_memo: HashMap::new(),
            memo_graph_key: None,
            ws: PeelWorkspace::new(),
            cover: VertexSet::new(0),
            running: VertexSet::new(0),
            seed: VertexSet::new(0),
        }
    }

    /// A context configured from the options' `threads` knob.
    pub fn from_options(opts: &DccsOptions) -> Self {
        SearchContext::new(opts.threads)
    }

    /// Number of workers (≥ 1) batches are spread over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the worker count for subsequent runs (0 and 1 both mean
    /// sequential). The scratch buffers and caches are thread-independent,
    /// so a session can re-point the executor width per query without
    /// losing sweep state.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Runs the Section IV-C preprocessing through the context's per-layer
    /// d-core memo: the initial full-universe d-cores (the only step that
    /// depends on `d` alone) are computed once per distinct `d` and reused
    /// across every later query on the same graph, so an `s` or `k` sweep at
    /// fixed `d` never re-peels the layers. With more than one thread both
    /// the memo fill and every round of the vertex-deletion fixpoint run
    /// the layers as fork-join batches over the executor crew. The result
    /// is bit-identical to [`crate::preprocess::preprocess`] — the memo and
    /// the batches only skip or parallelize recomputing deterministic
    /// intermediates.
    pub fn preprocess(
        &mut self,
        g: &MultiLayerGraph,
        params: &DccsParams,
        opts: &DccsOptions,
    ) -> Preprocessed {
        let key = graph_key(g);
        if self.memo_graph_key != Some(key) {
            self.layer_core_memo.clear();
            self.memo_graph_key = Some(key);
        }
        if !self.layer_core_memo.contains_key(&params.d) {
            let cores = initial_layer_cores_threaded(g, params.d, &mut self.ws, self.threads);
            self.layer_core_memo.insert(params.d, cores);
        }
        let initial = self.layer_core_memo[&params.d].clone();
        preprocess_from_threaded(g, params, opts, &mut self.ws, initial, self.threads)
    }

    /// Runs the cost model for `universe` and, when the dense path wins,
    /// returns the re-indexed subgraph — cached across calls, so a sweep
    /// whose preprocessed universe is unchanged (e.g. varying `s` at fixed
    /// `d`) builds it once. Returns the plan alongside so callers can record
    /// the chosen path in their statistics.
    pub fn dense_for<'a>(
        &'a mut self,
        g: &MultiLayerGraph,
        universe: &VertexSet,
    ) -> (IndexPlan, Option<&'a DenseSubgraph>) {
        let (plan, dense, _) = self.lattice_resources(g, universe);
        (plan, dense)
    }

    /// Drops the cached dense index and the per-layer d-core memo (e.g.
    /// before pointing the context at a different graph).
    pub fn clear_cache(&mut self) {
        self.dense_cache = None;
        self.layer_core_memo.clear();
        self.memo_graph_key = None;
    }

    /// Split borrow of the `InitTopK` scratch: the driver workspace, the
    /// running-intersection buffer, and the seed-core buffer.
    pub(crate) fn init_scratch(&mut self) -> (&mut PeelWorkspace, &mut VertexSet, &mut VertexSet) {
        (&mut self.ws, &mut self.running, &mut self.seed)
    }

    /// Split-borrow variant of [`SearchContext::dense_for`] for the lattice:
    /// returns the plan, the (possibly cached) dense index, and the driver
    /// workspace simultaneously, so candidate generation can peel on the
    /// driver while branch jobs share the index.
    pub(crate) fn lattice_resources(
        &mut self,
        g: &MultiLayerGraph,
        universe: &VertexSet,
    ) -> (IndexPlan, Option<&DenseSubgraph>, &mut PeelWorkspace) {
        let plan = plan_index(g, universe);
        let dense = if plan.path == IndexPath::Dense {
            let key = graph_key(g);
            let hit = self
                .dense_cache
                .as_ref()
                .is_some_and(|e| e.graph_key == key && e.universe == *universe);
            if !hit {
                self.dense_cache = Some(DenseCacheEntry {
                    graph_key: key,
                    universe: universe.clone(),
                    dense: DenseSubgraph::build(g, universe),
                });
            }
            self.dense_cache.as_ref().map(|e| &e.dense)
        } else {
            None
        };
        (plan, dense, &mut self.ws)
    }
}

impl Default for SearchContext {
    fn default() -> Self {
        SearchContext::new(1)
    }
}

/// A unit of work: one search-tree child evaluation, run on any worker's
/// workspace.
type Job<'env> = Box<dyn FnOnce(&mut PeelWorkspace) + Send + 'env>;

struct PoolState<'env> {
    queue: VecDeque<Job<'env>>,
    outstanding: usize,
    shutdown: bool,
}

/// Queue + signalling shared between the driver and the workers.
struct PoolShared<'env> {
    state: Mutex<PoolState<'env>>,
    /// Workers park here waiting for jobs (or shutdown).
    work_cv: Condvar,
    /// The driver parks here waiting for the last job of a batch.
    done_cv: Condvar,
}

fn lock_state<'a, 'env>(shared: &'a PoolShared<'env>) -> MutexGuard<'a, PoolState<'env>> {
    // A panicking job poisons nothing we cannot recover: the state is a
    // plain queue + counter, consistent at every lock release.
    shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Decrements the in-flight job counter even if the job panicked, so a
/// driver parked on `done_cv` is woken and the panic can propagate through
/// the scope join instead of deadlocking the batch. Every popped job —
/// fork-join batch job or task-graph task — is executed under this guard;
/// `outstanding` is incremented at enqueue time by both [`PoolRef::map`]
/// and [`PoolRef::submit`], so the counter uniformly means "enqueued but
/// not finished".
struct JobGuard<'a, 'env>(&'a PoolShared<'env>);

impl Drop for JobGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.0.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &PoolShared<'_>) {
    let mut ws = PeelWorkspace::new();
    loop {
        let job = {
            let mut st = lock_state(shared);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let guard = JobGuard(shared);
        job(&mut ws);
        drop(guard);
    }
}

/// Handle to a running worker crew, passed to the closure of [`with_pool`].
pub struct PoolRef<'pool, 'env> {
    shared: &'pool PoolShared<'env>,
    workers: usize,
}

impl<'env> PoolRef<'_, 'env> {
    /// Number of workers draining the queue besides the driver.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of jobs — one search-tree child each — across the crew
    /// and returns their outputs **in submission order**.
    ///
    /// The driver participates: it drains the queue alongside the workers on
    /// `driver_ws`, then blocks until the stragglers finish. With no workers
    /// (sequential context) or a single job, everything runs inline on the
    /// driver, so a 1-thread run never touches the queue. The deterministic
    /// output order is what makes parallel search results bit-identical to
    /// sequential ones.
    pub fn map<T, F>(&self, driver_ws: &mut PeelWorkspace, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce(&mut PeelWorkspace) -> T + Send + 'env,
    {
        if self.workers == 0 || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job(driver_ws)).collect();
        }
        let n = jobs.len();
        let results: Arc<Mutex<Vec<(usize, T)>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
        {
            let mut st = lock_state(self.shared);
            st.outstanding += n;
            for (i, job) in jobs.into_iter().enumerate() {
                let slot = Arc::clone(&results);
                st.queue.push_back(Box::new(move |ws: &mut PeelWorkspace| {
                    let out = job(ws);
                    slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push((i, out));
                }));
            }
        }
        self.shared.work_cv.notify_all();
        // Participate until the queue is drained…
        loop {
            let job = lock_state(self.shared).queue.pop_front();
            let Some(job) = job else { break };
            let guard = JobGuard(self.shared);
            job(driver_ws);
            drop(guard);
        }
        // …then wait for jobs still running on workers.
        {
            let mut st = lock_state(self.shared);
            while st.outstanding > 0 {
                st =
                    self.shared.done_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let results = Arc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("batch results still shared after completion"))
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut results = results;
        results.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(results.len(), n, "a batch job died without producing its result");
        results.into_iter().map(|(_, t)| t).collect()
    }

    /// Enqueues one task for any worker (or the waiting driver) to execute,
    /// returning a handle its result is later collected through. Unlike
    /// [`PoolRef::map`] this is not a barrier: tasks from many search-tree
    /// nodes coexist in the queue, which is what lets sibling subtrees
    /// evaluate concurrently.
    pub fn submit<R, F>(&self, job: F) -> TaskHandle<R>
    where
        R: Send + 'env,
        F: FnOnce(&mut PeelWorkspace) -> R + Send + 'env,
    {
        let slot =
            Arc::new(TaskSlot { state: Mutex::new(SlotState::Pending), filled: Condvar::new() });
        let task_slot = Arc::clone(&slot);
        {
            let mut st = lock_state(self.shared);
            st.outstanding += 1;
            st.queue.push_back(Box::new(move |ws: &mut PeelWorkspace| {
                let mut guard = SlotGuard { slot: &task_slot, armed: true };
                let out = job(ws);
                guard.armed = false;
                *task_slot.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    SlotState::Done(out);
                task_slot.filled.notify_all();
            }));
        }
        self.shared.work_cv.notify_one();
        TaskHandle(slot)
    }

    /// Blocks until the given task's result is available and returns it.
    /// While waiting, the driver helps drain the shared queue on
    /// `driver_ws`, so a sequential context (no workers) executes every
    /// pending task itself and the task graph never stalls.
    pub fn wait_task<R: Send + 'env>(
        &self,
        driver_ws: &mut PeelWorkspace,
        handle: TaskHandle<R>,
    ) -> R {
        loop {
            if let Some(out) = handle.try_take() {
                return out;
            }
            let stolen = lock_state(self.shared).queue.pop_front();
            if let Some(job) = stolen {
                let guard = JobGuard(self.shared);
                job(driver_ws);
                drop(guard);
                continue;
            }
            if self.workers == 0 {
                // No workers and an empty queue: the awaited job can only
                // have run on the driver already, so the slot must be
                // filled — loop back and take it.
                continue;
            }
            // The task is running on a worker; park until its slot fills.
            let mut st = handle.0.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            while matches!(*st, SlotState::Pending) {
                st = handle.0.filled.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }
}

/// Runs a deterministic subtree-level task graph to completion.
///
/// Every task is one search-tree node. `eval` runs on whichever worker (or
/// the helping driver) grabs the task first and must be a pure function of
/// the task payload — any pruning bound it consults has to travel *inside*
/// the payload as a spawn-time snapshot (see
/// [`crate::coverage::PruneBounds`]). `commit` runs on the driver only,
/// strictly in the tree's **pre-order**: it may update live search state
/// (the top-k result set, the statistics) and pushes the node's surviving
/// children into its `Vec<T>` argument; those children take the commit
/// slots immediately after their parent, before the parent's later
/// siblings, and are snapshot under the bounds at that moment.
///
/// The combination — scheduling-independent evaluation plus pre-order
/// commits — makes the search's results and work counters bit-identical at
/// every thread count, while tasks from different subtrees peel
/// concurrently. With no workers the graph degenerates to a plain
/// depth-first traversal with zero queue overhead.
pub fn drive_task_graph<'env, T, R, E, C>(
    pool: &PoolRef<'_, 'env>,
    driver_ws: &mut PeelWorkspace,
    roots: Vec<T>,
    eval: &'env E,
    mut commit: C,
) where
    T: Send + 'env,
    R: Send + 'env,
    E: Fn(T, &mut PeelWorkspace) -> R + Sync,
    C: FnMut(R, &mut PeelWorkspace, &mut Vec<T>),
{
    let mut children: Vec<T> = Vec::new();
    if pool.workers() == 0 {
        // Sequential fast path: evaluate-and-commit is exactly a pre-order
        // depth-first walk; no slots, no boxing.
        let mut pending: VecDeque<T> = roots.into_iter().collect();
        while let Some(task) = pending.pop_front() {
            let result = eval(task, driver_ws);
            commit(result, driver_ws, &mut children);
            for child in children.drain(..).rev() {
                pending.push_front(child);
            }
        }
        return;
    }
    let mut pending: VecDeque<TaskHandle<R>> = VecDeque::new();
    for task in roots {
        pending.push_back(pool.submit(move |ws| eval(task, ws)));
    }
    while let Some(front) = pending.pop_front() {
        let result = pool.wait_task(driver_ws, front);
        commit(result, driver_ws, &mut children);
        for child in children.drain(..).rev() {
            pending.push_front(pool.submit(move |ws| eval(child, ws)));
        }
    }
}

/// State of one submitted task's result slot.
enum SlotState<R> {
    /// The task has not produced its result yet.
    Pending,
    /// The task finished; the result waits for the driver to take it.
    Done(R),
    /// The task panicked (or its result was already taken).
    Dead,
}

/// One submitted task's result mailbox. The executing worker fills it; the
/// driver takes it in commit order.
struct TaskSlot<R> {
    state: Mutex<SlotState<R>>,
    filled: Condvar,
}

/// Marks the slot [`SlotState::Dead`] unless disarmed — so a panicking task
/// job wakes a driver parked on the slot instead of deadlocking it; the
/// driver then panics itself and the worker's original panic propagates
/// through the scope join.
struct SlotGuard<'a, R> {
    slot: &'a TaskSlot<R>,
    armed: bool,
}

impl<R> Drop for SlotGuard<'_, R> {
    fn drop(&mut self) {
        if self.armed {
            *self.slot.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                SlotState::Dead;
            self.slot.filled.notify_all();
        }
    }
}

/// Handle to one submitted task, returned by [`PoolRef::submit`] and
/// redeemed (in commit order) by [`PoolRef::wait_task`].
pub struct TaskHandle<R>(Arc<TaskSlot<R>>);

impl<R> TaskHandle<R> {
    /// Takes the result if the task has finished.
    ///
    /// # Panics
    ///
    /// Panics if the task died without producing a result.
    fn try_take(&self) -> Option<R> {
        let mut st = self.0.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*st {
            SlotState::Pending => None,
            SlotState::Done(_) => match std::mem::replace(&mut *st, SlotState::Dead) {
                SlotState::Done(r) => Some(r),
                _ => unreachable!(),
            },
            SlotState::Dead => panic!("a task-graph job died before producing its result"),
        }
    }
}

/// Signals shutdown when the driver closure exits — normally or by panic —
/// so parked workers always wake up and the scope join never hangs.
struct ShutdownGuard<'a, 'env>(&'a PoolShared<'env>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        lock_state(self.0).shutdown = true;
        self.0.work_cv.notify_all();
    }
}

/// CI escape hatch: `DCCS_FORCE_THREADS=N` raises every crew to at least
/// `N` workers (it never lowers an explicit wider setting). Because the
/// executor's results are thread-invariant, forcing a width changes no
/// output — it only makes single-core CI runners exercise the multi-worker
/// queue, slot, and merge paths that a `threads = 1` run would otherwise
/// skip. Read once per process.
fn forced_threads() -> Option<usize> {
    use std::sync::OnceLock;
    static FORCED: OnceLock<Option<usize>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("DCCS_FORCE_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&n| n >= 1)
    })
}

/// Spins up `threads − 1` scoped workers (the driver is the remaining one),
/// runs `f` with a [`PoolRef`] handle, and joins everything before
/// returning. With `threads ≤ 1` no thread is spawned and every batch runs
/// inline on the driver (unless `DCCS_FORCE_THREADS` raises the width, see
/// [`forced_threads`]).
///
/// Jobs may borrow anything that outlives the `with_pool` call (`'env`):
/// the graph, preprocessed layer cores, a cached [`DenseSubgraph`] — plus
/// any owned data moved into them.
pub fn with_pool<'env, R>(threads: usize, f: impl FnOnce(&PoolRef<'_, 'env>) -> R) -> R {
    let threads = forced_threads().map_or(threads, |forced| threads.max(forced));
    let shared = PoolShared {
        state: Mutex::new(PoolState { queue: VecDeque::new(), outstanding: 0, shutdown: false }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };
    let workers = threads.saturating_sub(1);
    if workers == 0 {
        return f(&PoolRef { shared: &shared, workers: 0 });
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared));
        }
        // The guard wakes parked workers on every exit path (including a
        // panicking driver closure), so the scope join never hangs; a
        // panicking *job* surfaces as a missing batch result on the driver
        // (see `PoolRef::map`) and then propagates through the scope join.
        let _guard = ShutdownGuard(&shared);
        f(&PoolRef { shared: &shared, workers })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    #[test]
    fn map_returns_results_in_submission_order() {
        for threads in [1, 2, 4] {
            let out: Vec<usize> = with_pool(threads, |pool| {
                let mut ws = PeelWorkspace::new();
                let jobs: Vec<_> =
                    (0..17usize).map(|i| move |_ws: &mut PeelWorkspace| i * i).collect();
                pool.map(&mut ws, jobs)
            });
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn repeated_batches_reuse_the_same_crew() {
        let sums: Vec<usize> = with_pool(3, |pool| {
            let mut ws = PeelWorkspace::new();
            (0..10)
                .map(|round| {
                    let jobs: Vec<_> = (0..8usize)
                        .map(|i| move |_ws: &mut PeelWorkspace| round * 100 + i)
                        .collect();
                    pool.map(&mut ws, jobs).into_iter().sum()
                })
                .collect()
        });
        let expected: Vec<usize> = (0..10).map(|round| round * 800 + 28).collect();
        assert_eq!(sums, expected);
    }

    /// The task graph must commit in pre-order — parents before children,
    /// children before their parent's later siblings — at every width, and
    /// evaluation must see only the task payload.
    #[test]
    fn task_graph_commits_in_pre_order_at_every_width() {
        // A ternary tree of depth 3, identified by paths; eval squares the
        // node id, commit records the order and spawns the children.
        fn reference(path: &[usize], depth: usize, out: &mut Vec<Vec<usize>>) {
            out.push(path.to_vec());
            if depth == 0 {
                return;
            }
            for c in 0..3 {
                let mut child = path.to_vec();
                child.push(c);
                reference(&child, depth - 1, out);
            }
        }
        let mut expected = Vec::new();
        reference(&[], 3, &mut expected);

        for threads in [1usize, 2, 4, 8] {
            let eval = |path: Vec<usize>, _ws: &mut PeelWorkspace| path;
            let mut committed: Vec<Vec<usize>> = Vec::new();
            with_pool(threads, |pool| {
                let mut ws = PeelWorkspace::new();
                drive_task_graph(
                    pool,
                    &mut ws,
                    vec![Vec::new()],
                    &eval,
                    |path: Vec<usize>, _ws, spawn| {
                        if path.len() < 3 {
                            for c in 0..3usize {
                                let mut child = path.clone();
                                child.push(c);
                                spawn.push(child);
                            }
                        }
                        committed.push(path);
                    },
                );
            });
            assert_eq!(committed, expected, "threads={threads}");
        }
    }

    /// Multiple roots are committed in order, each with its full subtree
    /// before the next root.
    #[test]
    fn task_graph_handles_multiple_roots() {
        for threads in [1usize, 3] {
            let eval = |v: u32, _ws: &mut PeelWorkspace| v;
            let mut committed = Vec::new();
            with_pool(threads, |pool| {
                let mut ws = PeelWorkspace::new();
                drive_task_graph(pool, &mut ws, vec![10u32, 20, 30], &eval, |v, _ws, spawn| {
                    if v % 10 == 0 {
                        spawn.push(v + 1);
                        spawn.push(v + 2);
                    }
                    committed.push(v);
                });
            });
            assert_eq!(committed, vec![10, 11, 12, 20, 21, 22, 30, 31, 32], "threads={threads}");
        }
    }

    #[test]
    fn jobs_borrow_the_environment() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = with_pool(4, |pool| {
            let mut ws = PeelWorkspace::new();
            let jobs: Vec<_> = data
                .chunks(7)
                .map(|chunk| move |_ws: &mut PeelWorkspace| chunk.iter().sum::<u64>())
                .collect();
            pool.map(&mut ws, jobs).into_iter().sum()
        });
        assert_eq!(total, 4950);
    }

    fn two_clique_graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(64, 3);
        for layer in 0..3 {
            for i in 0..8u32 {
                for j in (i + 1)..8 {
                    b.add_edge(layer, i, j).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn cost_model_prefers_dense_on_small_dense_universes() {
        let g = two_clique_graph();
        let universe = VertexSet::from_iter(64, 0..8);
        let plan = plan_index(&g, &universe);
        // m = 8 → one word per row; avg degree 7 → dense clearly wins.
        assert_eq!(plan.words_per_row, 1);
        assert_eq!(plan.path, IndexPath::Dense);
    }

    #[test]
    fn cost_model_prefers_csr_on_wide_sparse_universes() {
        // 4000 vertices in a cycle: avg degree 2, rows of ⌈4000/64⌉ = 63
        // words — scanning 63 words to count 2 neighbors loses to CSR.
        let mut b = MultiLayerGraphBuilder::new(4000, 1);
        for v in 0..4000u32 {
            b.add_edge(0, v, (v + 1) % 4000).unwrap();
        }
        let g = b.build();
        let universe = g.full_vertex_set();
        let plan = plan_index(&g, &universe);
        assert_eq!(plan.path, IndexPath::Csr);
        assert!(plan.words_per_row as f64 > DENSE_CROSSOVER * plan.avg_degree);
    }

    #[test]
    fn cost_model_rejects_empty_universe() {
        let g = two_clique_graph();
        let plan = plan_index(&g, &VertexSet::new(64));
        assert_eq!(plan.path, IndexPath::Csr);
    }

    #[test]
    fn dense_cache_is_reused_for_the_same_universe() {
        let g = two_clique_graph();
        let universe = VertexSet::from_iter(64, 0..8);
        let mut ctx = SearchContext::new(1);
        let (plan, dense) = ctx.dense_for(&g, &universe);
        assert_eq!(plan.path, IndexPath::Dense);
        let first = dense.expect("dense path chosen") as *const DenseSubgraph;
        let (_, dense2) = ctx.dense_for(&g, &universe);
        let second = dense2.expect("dense path chosen") as *const DenseSubgraph;
        assert_eq!(first, second, "same universe must hit the cache");
        // A different universe rebuilds.
        let other = VertexSet::from_iter(64, 0..7);
        let (_, dense3) = ctx.dense_for(&g, &other);
        assert!(dense3.is_some());
        assert_eq!(ctx.dense_cache.as_ref().unwrap().universe.len(), 7);
    }
}
