//! `SearchContext` + the shared parallel search executor — the execution
//! layer every DCCS algorithm drives its peels through.
//!
//! The three search algorithms (GD, BU, TD) all reduce to peeling d-CCs over
//! nodes of a layer-subset search tree. This module centralizes the three
//! resources those peels share:
//!
//! * **Scratch** — a [`SearchContext`] owns the driver-thread
//!   [`PeelWorkspace`] plus the reusable cover/seed buffers threaded through
//!   greedy selection and `InitTopK`, so a context reused across a parameter
//!   sweep performs no steady-state allocation.
//! * **Indexing policy** — a cost model ([`plan_index`]) decides per run
//!   whether candidate generation peels over the word-level
//!   [`DenseSubgraph`] rows or the CSR adjacency, comparing the dense
//!   per-query cost (`⌈m/64⌉` words per row) against the average CSR
//!   adjacency length. The built dense index is cached on the context,
//!   keyed on the candidate universe, so a sweep over `s` (whose universe
//!   is unchanged) re-indexes the graph once.
//! * **Worker scheduling** — [`with_pool`] spins up a scoped worker crew
//!   with one [`PeelWorkspace`] per worker and a shared job queue.
//!   Search-tree children are submitted as batches ([`PoolRef::map`]); the
//!   driver participates in draining the queue, and results are returned in
//!   submission order, so every algorithm's merge order — and therefore its
//!   output and its work counters — is identical at any thread count.
//!
//! Determinism contract: the executor never lets scheduling influence an
//! algorithm's decisions. Batches are *fork-join* — the set of jobs in a
//! batch is fixed before any job runs, outputs are committed sequentially in
//! submission order, and all pruning bounds are evaluated against
//! deterministic state. The thread-equivalence property tests
//! (`crates/core/tests/engine_threads.rs`) enforce that BU, TD, and the
//! lattice produce bit-identical results and statistics at 1, 2, and 4
//! threads.

use crate::config::{DccsOptions, DccsParams};
use crate::preprocess::{initial_layer_cores, preprocess_from, Preprocessed};
use coreness::PeelWorkspace;
use mlgraph::{DenseSubgraph, MultiLayerGraph, VertexSet};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Which adjacency representation a candidate-generation run peeled over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexPath {
    /// CSR adjacency scans with per-neighbor membership tests.
    #[default]
    Csr,
    /// Re-indexed [`DenseSubgraph`] bitset rows (word-level AND+popcount).
    Dense,
}

/// Word budget for the dense re-indexed adjacency (64 MiB of `u64` rows).
/// Universes needing more always fall back to the CSR engine regardless of
/// what the per-query cost model prefers.
pub const DENSE_WORD_BUDGET: usize = 8 << 20;

/// Crossover factor of the dense-vs-CSR cost model: the dense path is chosen
/// only when scanning one `⌈m/64⌉`-word adjacency row costs no more than
/// `DENSE_CROSSOVER ×` the average CSR adjacency scan. Word-level AND+popcount
/// streams sequentially while CSR neighbor tests are dependent random loads,
/// so a row word is cheaper than a neighbor test.
///
/// Calibrated on the `bench_dcc` suite: every configuration where dense wins
/// has `words_per_row / avg_degree ≤ 0.5` or thereabouts, the tiny German
/// analogue at `d = 2` (near-complete universe, ratio ≈ 2) still peels
/// fastest dense (the CSR engine measured 0.89× there), and the small-scale
/// German analogue at `d = 2` (ratio ≈ 10) is where dense collapses to
/// 0.48× — the old budget-only gate picked dense there; this factor puts the
/// cut between those regimes.
pub const DENSE_CROSSOVER: f64 = 4.0;

/// The cost-model decision for one candidate universe, with the quantities
/// that produced it (recorded for diagnostics and the crossover unit tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexPlan {
    /// Chosen representation.
    pub path: IndexPath,
    /// Universe size `m`.
    pub universe: usize,
    /// Dense row length in words, `⌈m/64⌉`.
    pub words_per_row: usize,
    /// Average CSR adjacency length of a universe member over all layers.
    pub avg_degree: f64,
}

/// Decides dense vs CSR for peeling a candidate `universe` of `g`.
///
/// The dense path re-indexes the universe to `0..m` and answers every
/// degree-within query by scanning a `⌈m/64⌉`-word row; the CSR path scans
/// the vertex's full adjacency list with membership tests, costing one
/// dependent load per neighbor. Dense wins when its row is short relative to
/// the average adjacency ([`DENSE_CROSSOVER`]) and the total index fits the
/// [`DENSE_WORD_BUDGET`]; at low degree thresholds on near-complete
/// universes (many vertices, sparse rows) CSR wins and is chosen.
pub fn plan_index(g: &MultiLayerGraph, universe: &VertexSet) -> IndexPlan {
    let m = universe.len();
    let l = g.num_layers();
    let words_per_row = m.div_ceil(64);
    let mut total_degree = 0usize;
    for layer in 0..l {
        let csr = g.layer(layer);
        for v in universe.iter() {
            total_degree += csr.neighbors(v).len();
        }
    }
    let avg_degree = if m == 0 { 0.0 } else { total_degree as f64 / (l * m) as f64 };
    let fits = m > 0 && DenseSubgraph::words_required(m, l) <= DENSE_WORD_BUDGET;
    let cheap_rows = (words_per_row as f64) <= DENSE_CROSSOVER * avg_degree;
    let path = if fits && cheap_rows { IndexPath::Dense } else { IndexPath::Csr };
    IndexPlan { path, universe: m, words_per_row, avg_degree }
}

/// One cached dense index, keyed on the universe it was built for.
#[derive(Debug)]
struct DenseCacheEntry {
    /// Identity guard: the graph address + shape the index was built from.
    /// The address alone could be reused by a different graph after a
    /// drop-and-rebuild, so the vertex/layer/edge counts are part of the
    /// key too. This is a best-effort tripwire, not a proof: a rebuilt
    /// graph matching on all four fields with different edges would still
    /// hit stale — the binding contract ("one context per graph", see
    /// [`SearchContext`]) is what callers must uphold; call
    /// [`SearchContext::clear_cache`] when repointing a context.
    graph_key: (usize, usize, usize, usize),
    universe: VertexSet,
    dense: DenseSubgraph,
}

fn graph_key(g: &MultiLayerGraph) -> (usize, usize, usize, usize) {
    (std::ptr::from_ref(g) as usize, g.num_vertices(), g.num_layers(), g.total_edges())
}

/// Shared execution state for a sequence of DCCS runs over one graph:
/// worker count, the driver's peel scratch, reusable cover/seed buffers, and
/// the lazily built, sweep-reusable dense index.
///
/// A context is bound to one graph: reuse it freely across `(d, s, k)`
/// values and algorithms (that is what makes the dense index and the scratch
/// buffers pay off), but create a fresh context per graph.
#[derive(Debug)]
pub struct SearchContext {
    threads: usize,
    dense_cache: Option<DenseCacheEntry>,
    /// Per-layer d-cores over the full vertex set, keyed by `d` — the
    /// `d`-only-dependent first step of preprocessing. An `s`/`k` sweep at
    /// fixed `d` re-peels no layer; a `d` sweep that revisits a value hits
    /// too. Guarded by the same graph-identity key as the dense cache.
    layer_core_memo: HashMap<u32, Vec<VertexSet>>,
    memo_graph_key: Option<(usize, usize, usize, usize)>,
    /// Driver-thread peel scratch (workers own their own, see [`with_pool`]).
    pub(crate) ws: PeelWorkspace,
    /// Reused cover accumulator for the greedy max-k-cover selection.
    pub(crate) cover: VertexSet,
    /// Reused running-intersection buffer for `InitTopK`.
    pub(crate) running: VertexSet,
    /// Reused seed-core output buffer for `InitTopK`.
    pub(crate) seed: VertexSet,
}

impl SearchContext {
    /// A context executing on `threads` workers (0 and 1 both mean
    /// sequential: the driver thread does all the work).
    pub fn new(threads: usize) -> Self {
        SearchContext {
            threads: threads.max(1),
            dense_cache: None,
            layer_core_memo: HashMap::new(),
            memo_graph_key: None,
            ws: PeelWorkspace::new(),
            cover: VertexSet::new(0),
            running: VertexSet::new(0),
            seed: VertexSet::new(0),
        }
    }

    /// A context configured from the options' `threads` knob.
    pub fn from_options(opts: &DccsOptions) -> Self {
        SearchContext::new(opts.threads)
    }

    /// Number of workers (≥ 1) batches are spread over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the worker count for subsequent runs (0 and 1 both mean
    /// sequential). The scratch buffers and caches are thread-independent,
    /// so a session can re-point the executor width per query without
    /// losing sweep state.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Runs the Section IV-C preprocessing through the context's per-layer
    /// d-core memo: the initial full-universe d-cores (the only step that
    /// depends on `d` alone) are computed once per distinct `d` and reused
    /// across every later query on the same graph, so an `s` or `k` sweep at
    /// fixed `d` never re-peels the layers. The result is bit-identical to
    /// [`crate::preprocess::preprocess`] — the memo only skips recomputing a
    /// deterministic intermediate.
    pub fn preprocess(
        &mut self,
        g: &MultiLayerGraph,
        params: &DccsParams,
        opts: &DccsOptions,
    ) -> Preprocessed {
        let key = graph_key(g);
        if self.memo_graph_key != Some(key) {
            self.layer_core_memo.clear();
            self.memo_graph_key = Some(key);
        }
        if !self.layer_core_memo.contains_key(&params.d) {
            let cores = initial_layer_cores(g, params.d, &mut self.ws);
            self.layer_core_memo.insert(params.d, cores);
        }
        let initial = self.layer_core_memo[&params.d].clone();
        preprocess_from(g, params, opts, &mut self.ws, initial)
    }

    /// Runs the cost model for `universe` and, when the dense path wins,
    /// returns the re-indexed subgraph — cached across calls, so a sweep
    /// whose preprocessed universe is unchanged (e.g. varying `s` at fixed
    /// `d`) builds it once. Returns the plan alongside so callers can record
    /// the chosen path in their statistics.
    pub fn dense_for<'a>(
        &'a mut self,
        g: &MultiLayerGraph,
        universe: &VertexSet,
    ) -> (IndexPlan, Option<&'a DenseSubgraph>) {
        let (plan, dense, _) = self.lattice_resources(g, universe);
        (plan, dense)
    }

    /// Drops the cached dense index and the per-layer d-core memo (e.g.
    /// before pointing the context at a different graph).
    pub fn clear_cache(&mut self) {
        self.dense_cache = None;
        self.layer_core_memo.clear();
        self.memo_graph_key = None;
    }

    /// Split borrow of the `InitTopK` scratch: the driver workspace, the
    /// running-intersection buffer, and the seed-core buffer.
    pub(crate) fn init_scratch(&mut self) -> (&mut PeelWorkspace, &mut VertexSet, &mut VertexSet) {
        (&mut self.ws, &mut self.running, &mut self.seed)
    }

    /// Split-borrow variant of [`SearchContext::dense_for`] for the lattice:
    /// returns the plan, the (possibly cached) dense index, and the driver
    /// workspace simultaneously, so candidate generation can peel on the
    /// driver while branch jobs share the index.
    pub(crate) fn lattice_resources(
        &mut self,
        g: &MultiLayerGraph,
        universe: &VertexSet,
    ) -> (IndexPlan, Option<&DenseSubgraph>, &mut PeelWorkspace) {
        let plan = plan_index(g, universe);
        let dense = if plan.path == IndexPath::Dense {
            let key = graph_key(g);
            let hit = self
                .dense_cache
                .as_ref()
                .is_some_and(|e| e.graph_key == key && e.universe == *universe);
            if !hit {
                self.dense_cache = Some(DenseCacheEntry {
                    graph_key: key,
                    universe: universe.clone(),
                    dense: DenseSubgraph::build(g, universe),
                });
            }
            self.dense_cache.as_ref().map(|e| &e.dense)
        } else {
            None
        };
        (plan, dense, &mut self.ws)
    }
}

impl Default for SearchContext {
    fn default() -> Self {
        SearchContext::new(1)
    }
}

/// A unit of work: one search-tree child evaluation, run on any worker's
/// workspace.
type Job<'env> = Box<dyn FnOnce(&mut PeelWorkspace) + Send + 'env>;

struct PoolState<'env> {
    queue: VecDeque<Job<'env>>,
    outstanding: usize,
    shutdown: bool,
}

/// Queue + signalling shared between the driver and the workers.
struct PoolShared<'env> {
    state: Mutex<PoolState<'env>>,
    /// Workers park here waiting for jobs (or shutdown).
    work_cv: Condvar,
    /// The driver parks here waiting for the last job of a batch.
    done_cv: Condvar,
}

fn lock_state<'a, 'env>(shared: &'a PoolShared<'env>) -> MutexGuard<'a, PoolState<'env>> {
    // A panicking job poisons nothing we cannot recover: the state is a
    // plain queue + counter, consistent at every lock release.
    shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Decrements the batch counter even if the job panicked, so the driver is
/// woken and the panic can propagate through the scope join instead of
/// deadlocking the batch.
struct JobGuard<'a, 'env>(&'a PoolShared<'env>);

impl Drop for JobGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.0.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &PoolShared<'_>) {
    let mut ws = PeelWorkspace::new();
    loop {
        let job = {
            let mut st = lock_state(shared);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let guard = JobGuard(shared);
        job(&mut ws);
        drop(guard);
    }
}

/// Handle to a running worker crew, passed to the closure of [`with_pool`].
pub struct PoolRef<'pool, 'env> {
    shared: &'pool PoolShared<'env>,
    workers: usize,
}

impl<'env> PoolRef<'_, 'env> {
    /// Number of workers draining the queue besides the driver.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of jobs — one search-tree child each — across the crew
    /// and returns their outputs **in submission order**.
    ///
    /// The driver participates: it drains the queue alongside the workers on
    /// `driver_ws`, then blocks until the stragglers finish. With no workers
    /// (sequential context) or a single job, everything runs inline on the
    /// driver, so a 1-thread run never touches the queue. The deterministic
    /// output order is what makes parallel search results bit-identical to
    /// sequential ones.
    pub fn map<T, F>(&self, driver_ws: &mut PeelWorkspace, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce(&mut PeelWorkspace) -> T + Send + 'env,
    {
        if self.workers == 0 || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job(driver_ws)).collect();
        }
        let n = jobs.len();
        let results: Arc<Mutex<Vec<(usize, T)>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
        {
            let mut st = lock_state(self.shared);
            st.outstanding += n;
            for (i, job) in jobs.into_iter().enumerate() {
                let slot = Arc::clone(&results);
                st.queue.push_back(Box::new(move |ws: &mut PeelWorkspace| {
                    let out = job(ws);
                    slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push((i, out));
                }));
            }
        }
        self.shared.work_cv.notify_all();
        // Participate until the queue is drained…
        loop {
            let job = lock_state(self.shared).queue.pop_front();
            let Some(job) = job else { break };
            let guard = JobGuard(self.shared);
            job(driver_ws);
            drop(guard);
        }
        // …then wait for jobs still running on workers.
        {
            let mut st = lock_state(self.shared);
            while st.outstanding > 0 {
                st =
                    self.shared.done_cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let results = Arc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("batch results still shared after completion"))
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut results = results;
        results.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(results.len(), n, "a batch job died without producing its result");
        results.into_iter().map(|(_, t)| t).collect()
    }
}

/// Signals shutdown when the driver closure exits — normally or by panic —
/// so parked workers always wake up and the scope join never hangs.
struct ShutdownGuard<'a, 'env>(&'a PoolShared<'env>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        lock_state(self.0).shutdown = true;
        self.0.work_cv.notify_all();
    }
}

/// Spins up `threads − 1` scoped workers (the driver is the remaining one),
/// runs `f` with a [`PoolRef`] handle, and joins everything before
/// returning. With `threads ≤ 1` no thread is spawned and every batch runs
/// inline on the driver.
///
/// Jobs may borrow anything that outlives the `with_pool` call (`'env`):
/// the graph, preprocessed layer cores, a cached [`DenseSubgraph`] — plus
/// any owned data moved into them.
pub fn with_pool<'env, R>(threads: usize, f: impl FnOnce(&PoolRef<'_, 'env>) -> R) -> R {
    let shared = PoolShared {
        state: Mutex::new(PoolState { queue: VecDeque::new(), outstanding: 0, shutdown: false }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };
    let workers = threads.saturating_sub(1);
    if workers == 0 {
        return f(&PoolRef { shared: &shared, workers: 0 });
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let shared = &shared;
            scope.spawn(move || worker_loop(shared));
        }
        // The guard wakes parked workers on every exit path (including a
        // panicking driver closure), so the scope join never hangs; a
        // panicking *job* surfaces as a missing batch result on the driver
        // (see `PoolRef::map`) and then propagates through the scope join.
        let _guard = ShutdownGuard(&shared);
        f(&PoolRef { shared: &shared, workers })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    #[test]
    fn map_returns_results_in_submission_order() {
        for threads in [1, 2, 4] {
            let out: Vec<usize> = with_pool(threads, |pool| {
                let mut ws = PeelWorkspace::new();
                let jobs: Vec<_> =
                    (0..17usize).map(|i| move |_ws: &mut PeelWorkspace| i * i).collect();
                pool.map(&mut ws, jobs)
            });
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn repeated_batches_reuse_the_same_crew() {
        let sums: Vec<usize> = with_pool(3, |pool| {
            let mut ws = PeelWorkspace::new();
            (0..10)
                .map(|round| {
                    let jobs: Vec<_> = (0..8usize)
                        .map(|i| move |_ws: &mut PeelWorkspace| round * 100 + i)
                        .collect();
                    pool.map(&mut ws, jobs).into_iter().sum()
                })
                .collect()
        });
        let expected: Vec<usize> = (0..10).map(|round| round * 800 + 28).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn jobs_borrow_the_environment() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = with_pool(4, |pool| {
            let mut ws = PeelWorkspace::new();
            let jobs: Vec<_> = data
                .chunks(7)
                .map(|chunk| move |_ws: &mut PeelWorkspace| chunk.iter().sum::<u64>())
                .collect();
            pool.map(&mut ws, jobs).into_iter().sum()
        });
        assert_eq!(total, 4950);
    }

    fn two_clique_graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(64, 3);
        for layer in 0..3 {
            for i in 0..8u32 {
                for j in (i + 1)..8 {
                    b.add_edge(layer, i, j).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn cost_model_prefers_dense_on_small_dense_universes() {
        let g = two_clique_graph();
        let universe = VertexSet::from_iter(64, 0..8);
        let plan = plan_index(&g, &universe);
        // m = 8 → one word per row; avg degree 7 → dense clearly wins.
        assert_eq!(plan.words_per_row, 1);
        assert_eq!(plan.path, IndexPath::Dense);
    }

    #[test]
    fn cost_model_prefers_csr_on_wide_sparse_universes() {
        // 4000 vertices in a cycle: avg degree 2, rows of ⌈4000/64⌉ = 63
        // words — scanning 63 words to count 2 neighbors loses to CSR.
        let mut b = MultiLayerGraphBuilder::new(4000, 1);
        for v in 0..4000u32 {
            b.add_edge(0, v, (v + 1) % 4000).unwrap();
        }
        let g = b.build();
        let universe = g.full_vertex_set();
        let plan = plan_index(&g, &universe);
        assert_eq!(plan.path, IndexPath::Csr);
        assert!(plan.words_per_row as f64 > DENSE_CROSSOVER * plan.avg_degree);
    }

    #[test]
    fn cost_model_rejects_empty_universe() {
        let g = two_clique_graph();
        let plan = plan_index(&g, &VertexSet::new(64));
        assert_eq!(plan.path, IndexPath::Csr);
    }

    #[test]
    fn dense_cache_is_reused_for_the_same_universe() {
        let g = two_clique_graph();
        let universe = VertexSet::from_iter(64, 0..8);
        let mut ctx = SearchContext::new(1);
        let (plan, dense) = ctx.dense_for(&g, &universe);
        assert_eq!(plan.path, IndexPath::Dense);
        let first = dense.expect("dense path chosen") as *const DenseSubgraph;
        let (_, dense2) = ctx.dense_for(&g, &universe);
        let second = dense2.expect("dense path chosen") as *const DenseSubgraph;
        assert_eq!(first, second, "same universe must hit the cache");
        // A different universe rebuilds.
        let other = VertexSet::from_iter(64, 0..7);
        let (_, dense3) = ctx.dense_for(&g, &other);
        assert!(dense3.is_some());
        assert_eq!(ctx.dense_cache.as_ref().unwrap().universe.len(), 7);
    }
}
