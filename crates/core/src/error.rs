//! Typed errors for the query API.
//!
//! Every failure a caller can provoke through the public query surface —
//! invalid `(d, s, k)` parameters, querying an empty graph, or blowing the
//! exact solver's candidate budget — is a [`DccsError`] variant, so
//! [`crate::DccsSession::query`] returns `Result` instead of aborting the
//! process. The legacy free functions (`greedy_dccs` & co.) keep their
//! historical panic on invalid parameters for backward compatibility; they
//! are thin wrappers that `expect` the same validation this module types.

use std::fmt;

/// Everything that can go wrong with a DCCS query before the search even
/// starts (plus the exact oracle's candidate budget, checked mid-run).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DccsError {
    /// The support threshold `s` was 0 — d-CCs are taken over layer subsets
    /// of size *exactly* `s`, so at least one layer must be requested.
    SupportZero,
    /// The support threshold `s` exceeds the graph's layer count: no layer
    /// subset of size `s` exists.
    SupportExceedsLayers {
        /// Requested support threshold.
        s: usize,
        /// Number of layers in the queried graph.
        num_layers: usize,
    },
    /// The result size `k` was 0 — the problem asks for `k ≥ 1` diversified
    /// cores.
    ResultSizeZero,
    /// The queried graph has no vertices or no layers; every query on it is
    /// vacuous, which the session reports instead of returning misleading
    /// empty covers.
    EmptyGraph {
        /// Vertex count of the graph.
        num_vertices: usize,
        /// Layer count of the graph.
        num_layers: usize,
    },
    /// The exact solver's candidate enumeration exceeded its budget — the
    /// `k`-combination search is exponential, so [`crate::exact_dccs`] is
    /// only usable on tiny inputs.
    BudgetExceeded {
        /// Non-empty candidate d-CCs found.
        candidates: usize,
        /// The solver's hard candidate limit.
        limit: usize,
    },
}

impl fmt::Display for DccsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DccsError::SupportZero => write!(f, "support threshold s must be at least 1"),
            DccsError::SupportExceedsLayers { s, num_layers } => {
                write!(f, "support threshold s={s} exceeds the number of layers {num_layers}")
            }
            DccsError::ResultSizeZero => write!(f, "result size k must be at least 1"),
            DccsError::EmptyGraph { num_vertices, num_layers } => {
                write!(
                    f,
                    "cannot query an empty graph ({num_vertices} vertices, {num_layers} layers)"
                )
            }
            DccsError::BudgetExceeded { candidates, limit } => {
                write!(
                    f,
                    "exact solver budget exceeded: {candidates} candidate d-CCs \
                     (limit {limit}); use an approximation algorithm"
                )
            }
        }
    }
}

impl std::error::Error for DccsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_one_line() {
        let errors = [
            DccsError::SupportZero,
            DccsError::SupportExceedsLayers { s: 9, num_layers: 4 },
            DccsError::ResultSizeZero,
            DccsError::EmptyGraph { num_vertices: 0, num_layers: 3 },
            DccsError::BudgetExceeded { candidates: 99, limit: 24 },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(!text.contains('\n'), "error message must be one line: {text}");
        }
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(DccsError::SupportZero);
        assert_eq!(err.to_string(), "support threshold s must be at least 1");
    }
}
