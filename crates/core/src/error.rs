//! Typed errors for the query API.
//!
//! Every failure a caller can provoke through the public query surface —
//! invalid `(d, s, k)` parameters, querying an empty graph, blowing a
//! candidate budget, tripping a query limit, or a panicking engine task —
//! is a [`DccsError`] variant, so [`crate::DccsSession::query`] returns
//! `Result` instead of aborting the process. The legacy free functions
//! (`greedy_dccs` & co.) keep their historical panic on invalid parameters
//! for backward compatibility; they are thin wrappers that `expect` the
//! same validation this module types.
//!
//! The limit variants ([`DccsError::DeadlineExceeded`],
//! [`DccsError::Cancelled`], [`DccsError::MemoryLimit`]) carry the
//! **best-so-far partial result** (its [`crate::SearchStats`] flagged
//! `complete: false`), so a caller that hits a limit degrades gracefully
//! instead of losing all work.

use crate::result::DccsResult;
use std::fmt;
use std::time::Duration;

/// Everything that can go wrong with a DCCS query: parameter validation,
/// mid-run resource limits, and engine faults.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum DccsError {
    /// The support threshold `s` was 0 — d-CCs are taken over layer subsets
    /// of size *exactly* `s`, so at least one layer must be requested.
    SupportZero,
    /// The support threshold `s` exceeds the graph's layer count: no layer
    /// subset of size `s` exists.
    SupportExceedsLayers {
        /// Requested support threshold.
        s: usize,
        /// Number of layers in the queried graph.
        num_layers: usize,
    },
    /// The result size `k` was 0 — the problem asks for `k ≥ 1` diversified
    /// cores.
    ResultSizeZero,
    /// The queried graph has no vertices or no layers; every query on it is
    /// vacuous, which the session reports instead of returning misleading
    /// empty covers.
    EmptyGraph {
        /// Vertex count of the graph.
        num_vertices: usize,
        /// Layer count of the graph.
        num_layers: usize,
    },
    /// The candidate enumeration exceeded its budget — the exact solver's
    /// built-in gate, or the general
    /// [`crate::QueryLimits::candidate_budget`] on any algorithm.
    BudgetExceeded {
        /// Non-empty candidate d-CCs found (a lower bound when the general
        /// budget stopped the search mid-run).
        candidates: usize,
        /// The candidate limit in force.
        limit: usize,
    },
    /// The query's wall-clock deadline
    /// ([`crate::QueryLimits::deadline`]) passed mid-run.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
        /// Best-so-far partial result (`stats.complete == false`).
        partial: Box<DccsResult>,
    },
    /// The query's [`crate::CancelToken`] was tripped mid-run.
    Cancelled {
        /// Best-so-far partial result (`stats.complete == false`).
        partial: Box<DccsResult>,
    },
    /// A forced dense index exceeded the memory ceiling
    /// ([`crate::QueryLimits::max_dense_words`]). Under
    /// [`crate::IndexChoice::Auto`] the engine falls back to the CSR path
    /// instead of failing; this error fires only when the dense
    /// representation was explicitly forced.
    MemoryLimit {
        /// Words the dense index would have needed.
        required_words: usize,
        /// The ceiling that rejected it, in words.
        limit_words: usize,
        /// Partial result — empty: the query fails before searching.
        partial: Box<DccsResult>,
    },
    /// An engine task panicked mid-query. The worker crew survives (see the
    /// executor's panic isolation) and the session stays usable; the
    /// panic's message is preserved here.
    TaskPanicked {
        /// The panic payload's message, when it was a string.
        message: String,
    },
    /// A [`crate::DccIndex`] artifact failed to load: short or mangled
    /// frame header, wrong magic or format version, checksum mismatch,
    /// truncation, or a malformed payload body. Also covers I/O failures
    /// while reading the file, so loading is a single fallible step.
    IndexCorrupt {
        /// One-line description of what failed.
        message: String,
    },
    /// The query could not be served from the precomputed index even though
    /// [`crate::Serve::Index`] demanded it: no index attached, the index
    /// was built for a different graph, it has no entry for the requested
    /// `(d, s)`, or the query forces a non-greedy algorithm.
    IndexUnavailable {
        /// One-line description of why the index cannot serve the query.
        message: String,
    },
    /// A [`crate::Serve::Index`] query found the attached [`crate::DccIndex`]
    /// outdated: a committed mutation batch
    /// ([`crate::QueryService::commit`]) advanced the graph past the epoch
    /// the index was built against, auto-detaching it. Rebuild the index on
    /// the current graph and re-attach, or query with
    /// [`crate::Serve::Auto`]/[`crate::Serve::Peel`] to answer by peeling.
    IndexStale {
        /// Epoch of the graph version the index was valid for.
        index_epoch: u64,
        /// Epoch of the graph version the query ran against.
        graph_epoch: u64,
    },
    /// A mutation batch submitted to [`crate::QueryService::commit`] (or
    /// `dccs apply`) failed validation — an out-of-range layer or vertex, a
    /// self loop, or one edge appearing in both the insert and delete lists
    /// of a layer. Nothing was committed; the published snapshot is
    /// unchanged.
    BatchInvalid {
        /// The underlying [`mlgraph::GraphError`] message.
        message: String,
    },
}

/// Equality ignores the `partial` payloads of the limit variants (a partial
/// result carries timing data and has no meaningful equality); every other
/// field is compared exactly. This keeps `assert_eq!` on validation errors
/// as strict as it always was.
impl PartialEq for DccsError {
    fn eq(&self, other: &Self) -> bool {
        use DccsError::*;
        match (self, other) {
            (SupportZero, SupportZero) | (ResultSizeZero, ResultSizeZero) => true,
            (
                SupportExceedsLayers { s: a, num_layers: b },
                SupportExceedsLayers { s: c, num_layers: d },
            ) => a == c && b == d,
            (
                EmptyGraph { num_vertices: a, num_layers: b },
                EmptyGraph { num_vertices: c, num_layers: d },
            ) => a == c && b == d,
            (
                BudgetExceeded { candidates: a, limit: b },
                BudgetExceeded { candidates: c, limit: d },
            ) => a == c && b == d,
            (DeadlineExceeded { deadline: a, .. }, DeadlineExceeded { deadline: b, .. }) => a == b,
            (Cancelled { .. }, Cancelled { .. }) => true,
            (
                MemoryLimit { required_words: a, limit_words: b, .. },
                MemoryLimit { required_words: c, limit_words: d, .. },
            ) => a == c && b == d,
            (TaskPanicked { message: a }, TaskPanicked { message: b })
            | (IndexCorrupt { message: a }, IndexCorrupt { message: b })
            | (IndexUnavailable { message: a }, IndexUnavailable { message: b })
            | (BatchInvalid { message: a }, BatchInvalid { message: b }) => a == b,
            (
                IndexStale { index_epoch: a, graph_epoch: b },
                IndexStale { index_epoch: c, graph_epoch: d },
            ) => a == c && b == d,
            _ => false,
        }
    }
}

impl Eq for DccsError {}

impl DccsError {
    /// The best-so-far partial result carried by the limit variants
    /// (`None` for validation and fault errors).
    pub fn partial(&self) -> Option<&DccsResult> {
        match self {
            DccsError::DeadlineExceeded { partial, .. }
            | DccsError::Cancelled { partial }
            | DccsError::MemoryLimit { partial, .. } => Some(partial),
            _ => None,
        }
    }

    /// Whether this error means a query **limit** fired (deadline, token,
    /// budget, memory ceiling) as opposed to bad input or an engine fault.
    /// The CLI maps limit errors to their own exit code.
    pub fn is_limit(&self) -> bool {
        matches!(
            self,
            DccsError::DeadlineExceeded { .. }
                | DccsError::Cancelled { .. }
                | DccsError::BudgetExceeded { .. }
                | DccsError::MemoryLimit { .. }
        )
    }
}

impl fmt::Display for DccsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DccsError::SupportZero => write!(f, "support threshold s must be at least 1"),
            DccsError::SupportExceedsLayers { s, num_layers } => {
                write!(f, "support threshold s={s} exceeds the number of layers {num_layers}")
            }
            DccsError::ResultSizeZero => write!(f, "result size k must be at least 1"),
            DccsError::EmptyGraph { num_vertices, num_layers } => {
                write!(
                    f,
                    "cannot query an empty graph ({num_vertices} vertices, {num_layers} layers)"
                )
            }
            DccsError::BudgetExceeded { candidates, limit } => {
                write!(
                    f,
                    "candidate budget exceeded: {candidates} candidate d-CCs \
                     (limit {limit}); use an approximation algorithm or raise the budget"
                )
            }
            DccsError::DeadlineExceeded { deadline, partial } => {
                write!(
                    f,
                    "deadline of {deadline:?} exceeded; partial result covers {} vertices \
                     with {} cores",
                    partial.cover_size(),
                    partial.num_cores()
                )
            }
            DccsError::Cancelled { partial } => {
                write!(
                    f,
                    "query cancelled; partial result covers {} vertices with {} cores",
                    partial.cover_size(),
                    partial.num_cores()
                )
            }
            DccsError::MemoryLimit { required_words, limit_words, .. } => {
                write!(
                    f,
                    "forced dense index needs {required_words} words, over the \
                     {limit_words}-word ceiling; use the CSR index or raise the limit"
                )
            }
            DccsError::TaskPanicked { message } => {
                write!(f, "an engine task panicked: {message}")
            }
            DccsError::IndexCorrupt { message } => {
                write!(f, "index artifact is unusable: {message}")
            }
            DccsError::IndexUnavailable { message } => {
                write!(f, "cannot serve the query from the index: {message}")
            }
            DccsError::IndexStale { index_epoch, graph_epoch } => {
                write!(
                    f,
                    "the attached index was built for graph epoch {index_epoch} but the \
                     graph is now at epoch {graph_epoch}; rebuild and re-attach it"
                )
            }
            DccsError::BatchInvalid { message } => {
                write!(f, "mutation batch rejected: {message}")
            }
        }
    }
}

impl std::error::Error for DccsError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SearchStats;

    fn partial() -> Box<DccsResult> {
        Box::new(DccsResult::from_cores(4, vec![], SearchStats::default(), Duration::ZERO))
    }

    #[test]
    fn display_messages_are_one_line() {
        let errors = [
            DccsError::SupportZero,
            DccsError::SupportExceedsLayers { s: 9, num_layers: 4 },
            DccsError::ResultSizeZero,
            DccsError::EmptyGraph { num_vertices: 0, num_layers: 3 },
            DccsError::BudgetExceeded { candidates: 99, limit: 24 },
            DccsError::DeadlineExceeded { deadline: Duration::from_millis(50), partial: partial() },
            DccsError::Cancelled { partial: partial() },
            DccsError::MemoryLimit { required_words: 4096, limit_words: 1024, partial: partial() },
            DccsError::TaskPanicked { message: "injected fault at bu.eval".into() },
            DccsError::IndexCorrupt { message: "checksum mismatch".into() },
            DccsError::IndexUnavailable { message: "no index attached".into() },
            DccsError::IndexStale { index_epoch: 3, graph_epoch: 7 },
            DccsError::BatchInvalid { message: "vertex 99 out of range".into() },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(!text.contains('\n'), "error message must be one line: {text}");
        }
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(DccsError::SupportZero);
        assert_eq!(err.to_string(), "support threshold s must be at least 1");
    }

    #[test]
    fn limit_classification_and_partial_access() {
        assert!(!DccsError::SupportZero.is_limit());
        assert!(DccsError::BudgetExceeded { candidates: 9, limit: 4 }.is_limit());
        assert!(!DccsError::TaskPanicked { message: "x".into() }.is_limit());
        assert!(!DccsError::IndexCorrupt { message: "x".into() }.is_limit());
        assert!(!DccsError::IndexUnavailable { message: "x".into() }.is_limit());
        assert!(!DccsError::IndexStale { index_epoch: 1, graph_epoch: 2 }.is_limit());
        assert!(!DccsError::BatchInvalid { message: "x".into() }.is_limit());
        let err = DccsError::Cancelled { partial: partial() };
        assert!(err.is_limit());
        assert_eq!(err.partial().unwrap().num_cores(), 0);
        assert!(DccsError::SupportZero.partial().is_none());
    }

    #[test]
    fn equality_ignores_partial_payloads() {
        let a = DccsError::Cancelled { partial: partial() };
        let mut other = partial();
        other.stats.dcc_calls = 77;
        let b = DccsError::Cancelled { partial: other };
        assert_eq!(a, b);
        assert_ne!(a, DccsError::SupportZero);
        assert_eq!(
            DccsError::DeadlineExceeded { deadline: Duration::from_millis(5), partial: partial() },
            DccsError::DeadlineExceeded { deadline: Duration::from_millis(5), partial: partial() },
        );
        assert_ne!(
            DccsError::DeadlineExceeded { deadline: Duration::from_millis(5), partial: partial() },
            DccsError::DeadlineExceeded { deadline: Duration::from_millis(6), partial: partial() },
        );
    }
}
