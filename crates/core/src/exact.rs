//! Brute-force exact DCCS solver.
//!
//! The paper's Section III notes that the exact algorithm — enumerate every
//! candidate d-CC and every `k`-combination of them — is intractable for real
//! inputs; it exists here purely as a test oracle for the approximation
//! algorithms on tiny graphs, and to validate approximation-ratio claims
//! empirically (GD-DCCS ≥ (1 − 1/e)·OPT, BU/TD-DCCS ≥ OPT/4).

use crate::algorithm::Algorithm;
use crate::config::{DccsOptions, DccsParams};
use crate::engine::{with_pool, PoolRef, SearchContext};
use crate::error::DccsError;
use crate::lattice::collect_subset_cores;
use crate::limits::QueryMonitor;
use crate::result::{CoherentCore, DccsResult, SearchStats};
use mlgraph::{MultiLayerGraph, VertexSet};
use std::time::Instant;

/// Maximum number of candidate d-CCs the exact solver will accept before
/// giving up (the k-combination enumeration is exponential).
const MAX_CANDIDATES: usize = 24;

/// Solves the DCCS problem exactly by exhaustive enumeration.
///
/// # Panics
///
/// Panics on invalid parameters and when the candidate set `F_{d,s}(G)`
/// holds more than [`MAX_CANDIDATES`] non-empty d-CCs — the oracle is only
/// meant for tiny test graphs. The session API
/// ([`crate::DccsSession`] with [`Algorithm::Exact`]) reports both
/// conditions as typed [`DccsError`]s instead.
pub fn exact_dccs(g: &MultiLayerGraph, params: &DccsParams) -> DccsResult {
    params.validate(g.num_layers()).expect("invalid DCCS parameters");
    let mut ctx = SearchContext::new(1);
    match exact_dccs_in(&mut ctx, g, params, &DccsOptions::default()) {
        Ok(result) => result,
        Err(DccsError::BudgetExceeded { candidates, limit }) => panic!(
            "exact_dccs is a test oracle; {candidates} candidates exceed the limit of {limit}"
        ),
        Err(err) => panic!("invalid DCCS parameters: {err}"),
    }
}

/// [`exact_dccs`] on an existing [`SearchContext`] with explicit
/// preprocessing options, returning typed errors instead of panicking:
/// invalid parameters and a blown candidate budget
/// ([`DccsError::BudgetExceeded`]) come back as `Err`. Only the
/// preprocessing toggles of `opts` influence the work done; the result is
/// the exact optimum regardless.
pub fn exact_dccs_in(
    ctx: &mut SearchContext,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> Result<DccsResult, DccsError> {
    with_pool(ctx.threads(), |pool| exact_dccs_on(ctx, pool, g, params, opts))
}

/// [`exact_dccs_in`] on an existing executor crew (the session's
/// single-crew query path).
pub fn exact_dccs_on(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> Result<DccsResult, DccsError> {
    params.validate(g.num_layers())?;
    let start = Instant::now();
    let mut stats = SearchStats { algorithm: Some(Algorithm::Exact), ..SearchStats::default() };
    let pre = ctx.preprocess_on(pool, g, params, opts);
    stats.vertices_deleted = pre.vertices_deleted;
    stats.phase.preprocess = start.elapsed();

    let search_start = Instant::now();
    let (mut candidates, lattice) =
        collect_subset_cores(ctx, pool, g, params.d, params.s, &pre.layer_cores);
    stats.candidates_generated += lattice.candidates;
    stats.dcc_calls += lattice.peels;
    stats.index_path = Some(lattice.index_path);
    stats.index_bytes = lattice.index_bytes;
    stats.peel_scratch_bytes = ctx.ws.scratch_bytes();
    stats.phase.search = search_start.elapsed();
    candidates.retain(|c| !c.is_empty());

    // The solver's built-in gate, tightened by the query's candidate budget
    // when one is set: the k-combination enumeration is exponential in the
    // candidate count, so the smaller bound wins.
    let monitor = ctx.monitor().cloned();
    let mon = monitor.as_deref();
    let limit = mon
        .and_then(QueryMonitor::candidate_budget)
        .map_or(MAX_CANDIDATES, |b| b.min(MAX_CANDIDATES));
    if candidates.len() > limit {
        return Err(DccsError::BudgetExceeded { candidates: candidates.len(), limit });
    }

    let select_start = Instant::now();
    let k = params.k.min(candidates.len());
    let mut best_cover = 0usize;
    let mut best: Vec<usize> = Vec::new();
    let mut chosen: Vec<usize> = Vec::new();
    // A deadline or cancellation that tripped during candidate generation
    // (or trips mid-enumeration — checked every 256 leaves) stops the
    // combination search; `best` keeps the best combination seen so far.
    let mut ctl = SearchCtl { monitor: mon, leaves: 0, hit: false };
    ctl.hit = mon.is_some_and(|m| m.check().is_some());
    if !ctl.hit {
        search(
            &candidates,
            k,
            0,
            &mut chosen,
            &mut best,
            &mut best_cover,
            g.num_vertices(),
            &mut ctl,
        );
    }
    stats.phase.select = select_start.elapsed();
    if let Some(kind) = mon.and_then(QueryMonitor::hit) {
        stats.limit_hit = Some(kind);
        stats.complete = false;
    }

    let cores: Vec<CoherentCore> = best.iter().map(|&i| candidates[i].clone()).collect();
    Ok(DccsResult::from_cores(g.num_vertices(), cores, stats, start.elapsed()))
}

/// Cooperative-cancellation state threaded through the recursive
/// enumeration: the query monitor (when limits are in force), a leaf
/// counter driving the every-256-leaves deadline check, and the latched
/// abort flag.
struct SearchCtl<'a> {
    monitor: Option<&'a QueryMonitor>,
    leaves: usize,
    hit: bool,
}

#[allow(clippy::too_many_arguments)]
fn search(
    candidates: &[CoherentCore],
    k: usize,
    from: usize,
    chosen: &mut Vec<usize>,
    best: &mut Vec<usize>,
    best_cover: &mut usize,
    n: usize,
    ctl: &mut SearchCtl<'_>,
) {
    if ctl.hit {
        return;
    }
    if chosen.len() == k {
        ctl.leaves += 1;
        if ctl.leaves.is_multiple_of(256) && ctl.monitor.is_some_and(|m| m.check().is_some()) {
            ctl.hit = true;
            return;
        }
        let mut cover = VertexSet::new(n);
        for &i in chosen.iter() {
            cover.union_with(&candidates[i].vertices);
        }
        if cover.len() > *best_cover {
            *best_cover = cover.len();
            *best = chosen.clone();
        }
        return;
    }
    let remaining_needed = k - chosen.len();
    if candidates.len() - from < remaining_needed {
        return;
    }
    for i in from..candidates.len() {
        chosen.push(i);
        search(candidates, k, i + 1, chosen, best, best_cover, n, ctl);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom_up::bottom_up_dccs;
    use crate::greedy::greedy_dccs;
    use crate::top_down::top_down_dccs;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Three overlapping planted cliques over 3 layers.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 3);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[4, 5, 6]);
        clique(&mut b, 2, &[4, 5, 6]);
        clique(&mut b, 0, &[7, 8, 9, 10]);
        clique(&mut b, 2, &[7, 8, 9, 10]);
        b.build()
    }

    #[test]
    fn exact_maximizes_cover() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let exact = exact_dccs(&g, &params);
        // The best two candidates are the two 4-cliques: cover 8.
        assert_eq!(exact.cover_size(), 8);
    }

    #[test]
    fn exact_with_k_one() {
        let g = graph();
        let exact = exact_dccs(&g, &DccsParams::new(2, 2, 1));
        assert_eq!(exact.cover_size(), 4);
    }

    #[test]
    fn approximation_ratios_hold_empirically() {
        let g = graph();
        for (d, s, k) in [(2, 2, 1), (2, 2, 2), (2, 2, 3), (3, 2, 2), (2, 1, 2)] {
            let params = DccsParams::new(d, s, k);
            let opt = exact_dccs(&g, &params).cover_size();
            let gd = greedy_dccs(&g, &params).cover_size();
            let bu = bottom_up_dccs(&g, &params).cover_size();
            let td = top_down_dccs(&g, &params).cover_size();
            // Theorem 2: GD ≥ (1 − 1/e)·OPT. Theorems 3–4: BU, TD ≥ OPT/4.
            assert!(gd as f64 >= 0.632 * opt as f64 - 1e-9, "gd {gd} vs opt {opt} ({d},{s},{k})");
            assert!(4 * bu >= opt, "bu {bu} vs opt {opt} ({d},{s},{k})");
            assert!(4 * td >= opt, "td {td} vs opt {opt} ({d},{s},{k})");
        }
    }

    #[test]
    fn exact_handles_fewer_candidates_than_k() {
        let g = graph();
        let exact = exact_dccs(&g, &DccsParams::new(2, 3, 5));
        // No 2-CC spans all three layers.
        assert_eq!(exact.cover_size(), 0);
    }
}
