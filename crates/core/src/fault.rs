//! Deterministic fault injection for robustness tests.
//!
//! The engine's panic-isolation and limit paths are hard to exercise
//! organically, so a handful of **instrumented sites** (see [`site`]) call
//! [`check`] at the same coarse boundaries the query monitor polls. A site
//! is inert unless a fault has been **armed** — programmatically via
//! [`arm`] from a test, or through the `DCCS_FAULT_INJECT` environment
//! variable for end-to-end and CI runs:
//!
//! ```text
//! DCCS_FAULT_INJECT=<site>:<mode>[:<count>]
//!     site   one of the names in [`site`] (e.g. bu.eval)
//!     mode   panic       — panic at the site
//!            delay<ms>   — sleep <ms> milliseconds at the site (e.g. delay50)
//!     count  how many times the fault fires before disarming (default 1)
//! ```
//!
//! Examples: `DCCS_FAULT_INJECT=bu.eval:panic` panics the first bottom-up
//! task evaluation; `DCCS_FAULT_INJECT=lattice.branch:delay200:3` delays the
//! first three lattice branch walks by 200 ms (used to make deadline tests
//! deterministic). An unparseable value is ignored. The disarmed fast path
//! is one relaxed atomic load, so production queries pay nothing.
//!
//! This is a **test hook**: faults are process-global (one armed fault at a
//! time, last [`arm`] wins) and the panics it injects are ordinary Rust
//! panics, converted by the engine's isolation layer into
//! [`crate::DccsError::TaskPanicked`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// The instrumented site names accepted by [`arm`] and
/// `DCCS_FAULT_INJECT`.
pub mod site {
    /// Top of each vertex-deletion fixpoint round.
    pub const PREPROCESS_ROUND: &str = "preprocess.round";
    /// Each per-layer d-core peel job of preprocessing.
    pub const PREPROCESS_LAYER: &str = "preprocess.layer";
    /// Start of each depth-1 lattice branch walk (GD/Exact candidate
    /// generation).
    pub const LATTICE_BRANCH: &str = "lattice.branch";
    /// Start of each bottom-up task evaluation.
    pub const BU_EVAL: &str = "bu.eval";
    /// Start of each top-down task evaluation.
    pub const TD_EVAL: &str = "td.eval";
    /// Each task-graph commit on the driver.
    pub const GRAPH_COMMIT: &str = "graph.commit";
    /// Start of each query job of a batch sweep.
    pub const BATCH_QUERY: &str = "batch.query";
    /// The mutation-batch commit point of the query service: after the
    /// batch is validated and the next snapshot's shared tier repaired,
    /// immediately **before** the new snapshot is published — a panic here
    /// must leave the old snapshot serving, untouched.
    pub const BATCH_COMMIT: &str = "batch.commit";
    /// Start of the greedy max-k-cover selection.
    pub const SELECT: &str = "select";
}

/// What an armed fault does when its site is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic with a recognizable message.
    Panic,
    /// Sleep for the given duration (deterministic deadline tests).
    Delay(Duration),
}

struct Armed {
    site: String,
    mode: FaultMode,
    remaining: u32,
}

/// Fast-path gate. `IDLE` means no fault is armed and [`check`] returns
/// after one relaxed load; `UNINIT` (the initial state) forces the first
/// check through [`slot`] so a `DCCS_FAULT_INJECT` spec from the
/// environment gets parsed even when [`arm`] is never called.
const STATE_UNINIT: u8 = 0;
const STATE_IDLE: u8 = 1;
const STATE_ARMED: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

fn slot() -> &'static Mutex<Option<Armed>> {
    static SLOT: OnceLock<Mutex<Option<Armed>>> = OnceLock::new();
    SLOT.get_or_init(|| {
        let armed = std::env::var("DCCS_FAULT_INJECT").ok().and_then(|spec| parse_spec(&spec));
        let state = if armed.is_some() { STATE_ARMED } else { STATE_IDLE };
        STATE.store(state, Ordering::Relaxed);
        Mutex::new(armed)
    })
}

/// Parses a `DCCS_FAULT_INJECT` spec (`<site>:<mode>[:<count>]`); returns
/// `None` (ignore) on anything unparseable.
fn parse_spec(spec: &str) -> Option<Armed> {
    let mut parts = spec.split(':');
    let site = parts.next()?.trim();
    if site.is_empty() {
        return None;
    }
    let mode_token = parts.next()?.trim();
    let mode = if mode_token == "panic" {
        FaultMode::Panic
    } else if let Some(ms) = mode_token.strip_prefix("delay") {
        FaultMode::Delay(Duration::from_millis(ms.parse().ok()?))
    } else {
        return None;
    };
    let remaining = match parts.next() {
        Some(count) => count.trim().parse().ok().filter(|&c| c > 0)?,
        None => 1,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(Armed { site: site.to_string(), mode, remaining })
}

/// Arms a fault at `site`, firing `count` times before disarming. Replaces
/// any previously armed fault (one at a time, process-global). Test use
/// only — see the module docs.
pub fn arm(site: &str, mode: FaultMode, count: u32) {
    let mut slot = slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(Armed { site: site.to_string(), mode, remaining: count.max(1) });
    STATE.store(STATE_ARMED, Ordering::Relaxed);
}

/// Disarms any armed fault.
pub fn disarm() {
    let mut slot = slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = None;
    STATE.store(STATE_IDLE, Ordering::Relaxed);
}

/// The instrumented-site hook: fires the armed fault when `site` matches,
/// otherwise returns immediately (one relaxed load when nothing is armed).
#[inline]
pub fn check(site: &str) {
    if STATE.load(Ordering::Relaxed) == STATE_IDLE {
        return;
    }
    fire(site);
}

#[cold]
fn fire(site: &str) {
    let mode = {
        let mut slot = slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(armed) = slot.as_mut() else {
            // First touch with no env spec: settle into the fast path.
            STATE.store(STATE_IDLE, Ordering::Relaxed);
            return;
        };
        if armed.site != site {
            return;
        }
        let mode = armed.mode;
        armed.remaining -= 1;
        if armed.remaining == 0 {
            *slot = None;
            STATE.store(STATE_IDLE, Ordering::Relaxed);
        }
        mode
    };
    match mode {
        FaultMode::Panic => panic!("injected fault at {site}"),
        FaultMode::Delay(duration) => std::thread::sleep(duration),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests mutate process-global state; keep them serialized.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn specs_parse_and_bad_specs_are_ignored() {
        let armed = parse_spec("bu.eval:panic").unwrap();
        assert_eq!(armed.site, "bu.eval");
        assert_eq!(armed.mode, FaultMode::Panic);
        assert_eq!(armed.remaining, 1);
        let armed = parse_spec("lattice.branch:delay250:3").unwrap();
        assert_eq!(armed.mode, FaultMode::Delay(Duration::from_millis(250)));
        assert_eq!(armed.remaining, 3);
        for bad in ["", "panic", "x:explode", "x:delay", "x:delayABC", "x:panic:0", "x:panic:1:2"] {
            assert!(parse_spec(bad).is_none(), "spec {bad:?} must be ignored");
        }
    }

    #[test]
    fn armed_panic_fires_once_then_disarms() {
        let _guard = lock();
        arm(site::SELECT, FaultMode::Panic, 1);
        let caught = std::panic::catch_unwind(|| check(site::SELECT));
        assert!(caught.is_err(), "armed site must panic");
        // Disarmed after one shot; a second check is inert.
        check(site::SELECT);
        disarm();
    }

    #[test]
    fn mismatched_site_does_not_fire() {
        let _guard = lock();
        arm(site::BU_EVAL, FaultMode::Panic, 1);
        check(site::TD_EVAL); // must not panic
        disarm();
        check(site::BU_EVAL); // disarmed: must not panic either
    }

    #[test]
    fn delay_mode_sleeps_without_panicking() {
        let _guard = lock();
        arm(site::GRAPH_COMMIT, FaultMode::Delay(Duration::from_millis(5)), 2);
        let t0 = std::time::Instant::now();
        check(site::GRAPH_COMMIT);
        check(site::GRAPH_COMMIT);
        assert!(t0.elapsed() >= Duration::from_millis(10));
        check(site::GRAPH_COMMIT); // third check: disarmed
        disarm();
    }
}
