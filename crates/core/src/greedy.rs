//! `GD-DCCS` — the greedy algorithm of Section III (Fig. 2).
//!
//! Every candidate d-CC (one per layer subset of size `s`) is generated, and
//! `k` of them are then selected greedily by marginal cover gain. The
//! selection phase is the classic greedy max-k-cover algorithm, so the
//! approximation ratio is `1 − 1/e` (Theorem 2). The candidate-generation
//! phase exploits Lemma 1: `C_L^d(G) ⊆ ⋂_{i∈L} C^d(G_i)`, so each candidate
//! is computed inside the intersection of per-layer d-cores.
//!
//! Candidates are produced by the subset-lattice engine
//! ([`crate::lattice::collect_subset_cores`]) driven through a
//! [`SearchContext`]: each subset's peel is seeded from its parent prefix's
//! exact d-CC (Lemma 1), the dense-vs-CSR representation is chosen by the
//! [`crate::engine`] cost model, and with `opts.threads > 1` the lattice's
//! depth-1 branches fan out over the shared executor — with results (and
//! work counters) identical to the sequential walk.

use crate::algorithm::Algorithm;
use crate::config::{DccsOptions, DccsParams};
use crate::engine::{with_pool, PoolRef, SearchContext};
use crate::fault::{self, site};
use crate::lattice::collect_subset_cores;
use crate::result::{CoherentCore, DccsResult, SearchStats};
use mlgraph::{MultiLayerGraph, VertexSet};
use std::time::Instant;

/// Runs `GD-DCCS` with default options.
///
/// Like every `*_dccs` free function this is a one-shot wrapper: it builds
/// the same engine state a [`crate::DccsSession`] owns, runs one query, and
/// keeps the historical panic on invalid parameters. Long-lived callers and
/// sweeps should prefer the session API.
pub fn greedy_dccs(g: &MultiLayerGraph, params: &DccsParams) -> DccsResult {
    greedy_dccs_with_options(g, params, &DccsOptions::default())
}

/// Runs `GD-DCCS` with explicit options (used by the ablation experiments
/// and to set the executor width via `opts.threads`) — a one-shot wrapper
/// over the context the session API reuses.
pub fn greedy_dccs_with_options(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    let mut ctx = SearchContext::from_options(opts);
    greedy_dccs_in(&mut ctx, g, params, opts)
}

/// Runs `GD-DCCS` on an existing [`SearchContext`], reusing its scratch
/// buffers and cached dense index across a parameter sweep over the same
/// graph. Spins up one scoped crew for the whole query; session callers
/// with a persistent crew go through [`greedy_dccs_on`].
pub fn greedy_dccs_in(
    ctx: &mut SearchContext,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    with_pool(ctx.threads(), |pool| greedy_dccs_on(ctx, pool, g, params, opts))
}

/// [`greedy_dccs_in`] on an existing executor crew — the single-crew query
/// path: preprocessing and candidate generation share `pool`, so neither
/// phase pays its own worker spawn/join.
pub fn greedy_dccs_on(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    params.validate(g.num_layers()).expect("invalid DCCS parameters");
    let start = Instant::now();
    let mut stats = SearchStats { algorithm: Some(Algorithm::Greedy), ..SearchStats::default() };

    let pre = ctx.preprocess_on(pool, g, params, opts);
    stats.vertices_deleted = pre.vertices_deleted;
    stats.phase.preprocess = start.elapsed();

    // Lines 2–7 of Fig. 2: the full candidate set F_{d,s}(G).
    let search_start = Instant::now();
    let (candidates, lattice) =
        collect_subset_cores(ctx, pool, g, params.d, params.s, &pre.layer_cores);
    stats.candidates_generated += lattice.candidates;
    stats.dcc_calls += lattice.peels;
    stats.index_path = Some(lattice.index_path);
    stats.index_bytes = lattice.index_bytes;
    stats.peel_scratch_bytes = ctx.ws.scratch_bytes();
    stats.phase.search = search_start.elapsed();

    // A tripped limit stopped the walk early; everything already emitted is
    // a valid d-CC, so select over it and return the flagged partial — the
    // session converts the flag into the matching typed error. This final
    // poll must be `check`, not the latched-byte read: a deadline that
    // latches only in the cascade probe after the walk's last checkpoint
    // (e.g. on the checkpoint-free `s == 1` path) would otherwise go
    // unobserved and the run would be declared complete.
    if let Some(kind) = ctx.monitor().and_then(|m| m.check()) {
        stats.limit_hit = Some(kind);
        stats.complete = false;
    }

    fault::check(site::SELECT);
    let select_start = Instant::now();
    let cores = select_greedy(g.num_vertices(), candidates, params.k, &mut stats, &mut ctx.cover);
    stats.phase.select = select_start.elapsed();
    DccsResult::from_cores(g.num_vertices(), cores, stats, start.elapsed())
}

/// The greedy max-k-cover selection (lines 8–10 of Fig. 2). `cover` is a
/// reusable accumulator for `Cov(R)` (resized on capacity mismatch), so a
/// context-driven sweep allocates it once.
pub(crate) fn select_greedy(
    num_vertices: usize,
    mut candidates: Vec<CoherentCore>,
    k: usize,
    stats: &mut SearchStats,
    cover: &mut VertexSet,
) -> Vec<CoherentCore> {
    if cover.capacity() != num_vertices {
        *cover = VertexSet::new(num_vertices);
    } else {
        cover.clear();
    }
    let mut chosen = Vec::with_capacity(k);
    for _ in 0..k {
        if candidates.is_empty() {
            break;
        }
        let (best_idx, best_gain) = candidates
            .iter()
            .enumerate()
            .map(|(idx, core)| {
                // Word-level marginal gain: |C| − |C ∩ Cov(R)|.
                let gain = core.vertices.len() - core.vertices.intersection_len(cover);
                (idx, gain)
            })
            .max_by_key(|&(idx, gain)| (gain, std::cmp::Reverse(idx)))
            .expect("non-empty candidate list");
        // The paper keeps selecting k cores even when the marginal gain is 0;
        // we do the same so |R| = k whenever enough candidates exist.
        let core = candidates.swap_remove(best_idx);
        cover.union_with(&core.vertices);
        chosen.push(core);
        stats.updates_accepted += 1;
        let _ = best_gain;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    /// Three layers over 10 vertices:
    /// * layers 0 and 1 share a 4-clique A = {0,1,2,3};
    /// * layers 1 and 2 share a 4-clique B = {4,5,6,7};
    /// * layer 2 additionally has a triangle C = {7,8,9}.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(10, 3);
        let clique = |b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]| {
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    b.add_edge(layer, vs[i], vs[j]).unwrap();
                }
            }
        };
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[4, 5, 6, 7]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 2, &[7, 8, 9]);
        b.build()
    }

    #[test]
    fn finds_the_two_planted_cliques() {
        let g = graph();
        let result = greedy_dccs(&g, &DccsParams::new(3, 2, 2));
        assert_eq!(result.num_cores(), 2);
        assert_eq!(result.cover_size(), 8);
        let cover = result.cover.to_vec();
        assert_eq!(cover, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn candidate_count_matches_binomial() {
        let g = graph();
        let result = greedy_dccs(&g, &DccsParams::new(2, 2, 2));
        assert_eq!(result.stats.candidates_generated, 3); // C(3,2)
        let result = greedy_dccs(&g, &DccsParams::new(2, 1, 2));
        assert_eq!(result.stats.candidates_generated, 3); // C(3,1)
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let g = graph();
        let result = greedy_dccs(&g, &DccsParams::new(3, 2, 10));
        // Only C(3,2) = 3 candidates exist.
        assert!(result.num_cores() <= 3);
        assert_eq!(result.cover_size(), 8);
    }

    #[test]
    fn s_equals_one_reduces_to_per_layer_cores() {
        let g = graph();
        let result = greedy_dccs(&g, &DccsParams::new(3, 1, 3));
        // Layer 2's 3-core is {4,5,6,7} (the triangle {7,8,9} is only 2-dense).
        assert_eq!(result.cover_size(), 8);
    }

    #[test]
    fn d_larger_than_any_core_gives_empty_cover() {
        let g = graph();
        let result = greedy_dccs(&g, &DccsParams::new(5, 2, 2));
        assert_eq!(result.cover_size(), 0);
    }

    #[test]
    fn every_reported_core_is_d_dense() {
        let g = graph();
        let params = DccsParams::new(2, 2, 3);
        let result = greedy_dccs(&g, &params);
        for core in &result.cores {
            assert!(coreness::is_d_dense_multilayer(&g, &core.layers, &core.vertices, params.d));
            assert_eq!(core.layers.len(), params.s);
        }
    }

    #[test]
    fn options_do_not_change_the_result_only_the_work() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let with = greedy_dccs_with_options(&g, &params, &DccsOptions::default());
        let without = greedy_dccs_with_options(&g, &params, &DccsOptions::no_preprocessing());
        assert_eq!(with.cover_size(), without.cover_size());
    }

    #[test]
    fn context_reuse_across_a_sweep_matches_fresh_contexts() {
        let g = graph();
        let opts = DccsOptions::default();
        let mut ctx = SearchContext::from_options(&opts);
        for (d, s, k) in [(2, 2, 2), (3, 2, 2), (2, 3, 1), (2, 2, 3)] {
            let params = DccsParams::new(d, s, k);
            let swept = greedy_dccs_in(&mut ctx, &g, &params, &opts);
            let fresh = greedy_dccs_with_options(&g, &params, &opts);
            assert_eq!(swept.cores, fresh.cores, "d={d} s={s} k={k}");
            assert_eq!(swept.stats, fresh.stats, "d={d} s={s} k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid DCCS parameters")]
    fn invalid_parameters_panic() {
        let g = graph();
        let _ = greedy_dccs(&g, &DccsParams::new(2, 9, 2));
    }

    /// A deadline that latches only in the cascade probe — never observed
    /// by a checkpoint — must still flag the run incomplete. `s == 1` with
    /// vertex deletion off runs no cooperative checkpoint at all (memoized
    /// cores, no walk, no fixpoint rounds), so the final poll in
    /// `greedy_dccs_on` is the sole observer; reading the latched byte
    /// instead of `check()` would declare the run complete.
    #[test]
    fn probe_only_trip_flags_the_partial() {
        use crate::limits::{LimitKind, QueryLimits, QueryMonitor};
        use std::sync::Arc;

        let g = graph();
        let opts = DccsOptions::no_vertex_deletion();
        let mut ctx = SearchContext::from_options(&opts);
        let monitor = Arc::new(QueryMonitor::new(&QueryLimits::none(), None));
        monitor.probe().cancel(); // the clock latch, without the clock
        ctx.set_monitor(Some(Arc::clone(&monitor)));
        let result = greedy_dccs_in(&mut ctx, &g, &DccsParams::new(3, 1, 3), &opts);
        assert!(!result.stats.complete);
        assert_eq!(result.stats.limit_hit, Some(LimitKind::Deadline));
        // The memoized per-layer cores emitted before the trip are valid:
        // the flagged partial still carries them.
        assert_eq!(result.stats.candidates_generated, 3);
    }
}
