//! The hierarchical vertex index of Section V-C.
//!
//! The index partitions the (preprocessed) vertices into classes
//! `I_1, I_2, …, I_l`: `I_h` contains the vertices iteratively removed
//! because their support `Num(v)` (the number of per-layer d-cores containing
//! them) dropped to at most `h`. Within `I_h`, vertices removed in the same
//! batch share a *level*; later batches sit on higher levels. Each vertex is
//! annotated with `L(v)` — the set of layers whose d-core still contained it
//! just before its removal — and index edges are the union-graph edges.
//!
//! `RefineC` (see [`crate::refine`]) walks this index bottom-up to extract
//! `C_{L'}^d(G)` from a potential vertex set without re-peeling from scratch.

use crate::preprocess::Preprocessed;
use mlgraph::{Csr, MultiLayerGraph, Vertex, VertexSet};

/// The hierarchical vertex index used by `TD-DCCS`.
#[derive(Clone, Debug)]
pub struct VertexIndex {
    /// Global level of each vertex (`u32::MAX` for vertices outside the
    /// preprocessed active set). Levels are ordered bottom-up: lower levels
    /// were removed earlier.
    pub level_of: Vec<u32>,
    /// The partition `I_h` each vertex belongs to (its `h` value;
    /// `u32::MAX` for inactive vertices).
    pub partition_of: Vec<u32>,
    /// `L(v)` as a bitmask over original layer indices: the layers whose
    /// d-core contained `v` just before `v` was removed during construction.
    pub layer_mask: Vec<u64>,
    /// The vertices on each global level, bottom-up.
    pub levels: Vec<Vec<Vertex>>,
    /// The union graph restricted to active vertices — the index edges.
    pub union_graph: Csr,
}

impl VertexIndex {
    /// Builds the index from the preprocessed per-layer d-cores.
    ///
    /// The construction mirrors the paper: for `h = 1, …, l`, repeatedly
    /// remove (in batches) every remaining vertex whose support is ≤ `h`,
    /// maintaining the per-layer d-cores decrementally so each edge is
    /// touched a constant number of times overall.
    pub fn build(g: &MultiLayerGraph, d: u32, pre: &Preprocessed) -> Self {
        let n = g.num_vertices();
        let l = g.num_layers();
        assert!(l <= 64, "the vertex index supports at most 64 layers");

        // Mutable copies of the per-layer core membership and in-core degrees.
        let mut core_member: Vec<VertexSet> = pre.layer_cores.clone();
        let mut core_degree: Vec<Vec<u32>> = (0..l)
            .map(|i| {
                let mut deg = vec![0u32; n];
                for v in core_member[i].iter() {
                    deg[v as usize] = g.layer(i).degree_within(v, &core_member[i]) as u32;
                }
                deg
            })
            .collect();
        let mut support: Vec<u32> = (0..n as Vertex)
            .map(|v| (0..l).filter(|&i| core_member[i].contains(v)).count() as u32)
            .collect();

        let mut removed = vec![false; n];
        let mut level_of = vec![u32::MAX; n];
        let mut partition_of = vec![u32::MAX; n];
        let mut layer_mask = vec![0u64; n];
        let mut levels: Vec<Vec<Vertex>> = Vec::new();

        // Vertices outside the active set are considered removed up front.
        for v in 0..n as Vertex {
            if !pre.active.contains(v) {
                removed[v as usize] = true;
            }
        }

        for h in 1..=l as u32 {
            loop {
                let batch: Vec<Vertex> = pre
                    .active
                    .iter()
                    .filter(|&v| !removed[v as usize] && support[v as usize] <= h)
                    .collect();
                if batch.is_empty() {
                    break;
                }
                let level = levels.len() as u32;
                for &v in &batch {
                    removed[v as usize] = true;
                    level_of[v as usize] = level;
                    partition_of[v as usize] = h;
                    let mut mask = 0u64;
                    for (i, member) in core_member.iter().enumerate() {
                        if member.contains(v) {
                            mask |= 1 << i;
                        }
                    }
                    layer_mask[v as usize] = mask;
                }
                levels.push(batch.clone());
                // Remove the batch from every per-layer core and cascade the
                // core shrinkage (vertices whose in-core degree drops below d
                // fall out of that layer's core, reducing their support).
                for &v in &batch {
                    for i in 0..l {
                        if core_member[i].contains(v) {
                            remove_from_core(
                                g,
                                d,
                                i,
                                v,
                                &mut core_member[i],
                                &mut core_degree[i],
                                &mut support,
                                &removed,
                            );
                        }
                    }
                }
            }
        }

        let union_graph = build_union(g, &pre.active);
        VertexIndex { level_of, partition_of, layer_mask, levels, union_graph }
    }

    /// Number of levels in the index.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Whether `layers` (given as a bitmask) is a subset of `L(v)`.
    #[inline]
    pub fn layers_subset_of_lv(&self, v: Vertex, layers_mask: u64) -> bool {
        self.layer_mask[v as usize] & layers_mask == layers_mask
    }

    /// The vertices of `⋃_{h ≥ min_partition} I_h` intersected with `within`
    /// (the Lemma 8 restriction).
    pub fn restrict_by_partition(&self, within: &VertexSet, min_partition: u32) -> VertexSet {
        let mut out = VertexSet::new(within.capacity());
        for v in within.iter() {
            let p = self.partition_of[v as usize];
            if p != u32::MAX && p >= min_partition {
                out.insert(v);
            }
        }
        out
    }
}

/// Removes `v` from layer `i`'s core and cascades removals of vertices whose
/// in-core degree drops below `d`. Each cascaded removal decrements the
/// vertex's support.
#[allow(clippy::too_many_arguments)]
fn remove_from_core(
    g: &MultiLayerGraph,
    d: u32,
    layer: usize,
    v: Vertex,
    member: &mut VertexSet,
    degree: &mut [u32],
    support: &mut [u32],
    removed: &[bool],
) {
    let mut stack = vec![v];
    member.remove(v);
    // Note: the initiating vertex's own support is irrelevant (it has already
    // been assigned to a partition), but cascaded vertices lose support.
    while let Some(x) = stack.pop() {
        for &u in g.layer(layer).neighbors(x) {
            if !member.contains(u) {
                continue;
            }
            degree[u as usize] = degree[u as usize].saturating_sub(1);
            if degree[u as usize] < d && !removed[u as usize] {
                member.remove(u);
                support[u as usize] = support[u as usize].saturating_sub(1);
                stack.push(u);
            } else if degree[u as usize] < d {
                // Already removed from the graph; just drop core membership.
                member.remove(u);
                stack.push(u);
            }
        }
    }
}

fn build_union(g: &MultiLayerGraph, active: &VertexSet) -> Csr {
    let mut edges = Vec::new();
    for layer in g.layers() {
        for (u, v) in layer.edges() {
            if active.contains(u) && active.contains(v) {
                edges.push((u, v));
            }
        }
    }
    Csr::from_edges(g.num_vertices(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DccsOptions, DccsParams};
    use crate::preprocess::preprocess;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Layers 0,1,2 all contain clique A = {0,1,2,3};
    /// layers 0,1 additionally contain clique B = {4,5,6,7}.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(8, 3);
        for layer in 0..3 {
            clique(&mut b, layer, &[0, 1, 2, 3]);
        }
        for layer in 0..2 {
            clique(&mut b, layer, &[4, 5, 6, 7]);
        }
        b.build()
    }

    fn build_index(g: &MultiLayerGraph, d: u32, s: usize) -> (VertexIndex, Preprocessed) {
        let params = DccsParams::new(d, s, 2);
        let pre = preprocess(g, &params, &DccsOptions::default());
        (VertexIndex::build(g, d, &pre), pre)
    }

    #[test]
    fn partitions_reflect_support() {
        let g = graph();
        let (idx, _) = build_index(&g, 3, 2);
        // Clique B vertices are supported by 2 layers → I_2;
        // clique A vertices by 3 layers → I_3.
        for v in 4..8u32 {
            assert_eq!(idx.partition_of[v as usize], 2, "vertex {v}");
        }
        for v in 0..4u32 {
            assert_eq!(idx.partition_of[v as usize], 3, "vertex {v}");
        }
        // Levels: batch of B first (lower level), then A.
        for v in 4..8u32 {
            assert!(idx.level_of[v as usize] < idx.level_of[0]);
        }
    }

    #[test]
    fn layer_masks_record_core_membership_at_removal() {
        let g = graph();
        let (idx, _) = build_index(&g, 3, 2);
        // B vertices were in the 3-cores of layers 0 and 1 when removed.
        for v in 4..8u32 {
            assert_eq!(idx.layer_mask[v as usize], 0b011);
            assert!(idx.layers_subset_of_lv(v, 0b001));
            assert!(idx.layers_subset_of_lv(v, 0b011));
            assert!(!idx.layers_subset_of_lv(v, 0b100));
        }
        // A vertices were in all three 3-cores.
        for v in 0..4u32 {
            assert_eq!(idx.layer_mask[v as usize], 0b111);
        }
    }

    #[test]
    fn every_active_vertex_gets_a_level() {
        let g = graph();
        let (idx, pre) = build_index(&g, 2, 1);
        for v in pre.active.iter() {
            assert_ne!(idx.level_of[v as usize], u32::MAX);
            assert_ne!(idx.partition_of[v as usize], u32::MAX);
        }
        let total: usize = idx.levels.iter().map(|lvl| lvl.len()).sum();
        assert_eq!(total, pre.active.len());
    }

    #[test]
    fn inactive_vertices_are_not_indexed() {
        let mut b = MultiLayerGraphBuilder::new(6, 2);
        clique(&mut b, 0, &[0, 1, 2]);
        clique(&mut b, 1, &[0, 1, 2]);
        b.add_edge(0, 3, 4).unwrap();
        b.add_edge(1, 4, 5).unwrap();
        let g = b.build();
        let (idx, pre) = build_index(&g, 2, 2);
        assert_eq!(pre.active.to_vec(), vec![0, 1, 2]);
        for v in 3..6u32 {
            assert_eq!(idx.level_of[v as usize], u32::MAX);
        }
    }

    #[test]
    fn restrict_by_partition_applies_lemma8() {
        let g = graph();
        let (idx, pre) = build_index(&g, 3, 2);
        let all = pre.active.clone();
        let at_least_3 = idx.restrict_by_partition(&all, 3);
        assert_eq!(at_least_3.to_vec(), vec![0, 1, 2, 3]);
        let at_least_2 = idx.restrict_by_partition(&all, 2);
        assert_eq!(at_least_2.len(), 8);
    }

    #[test]
    fn union_graph_covers_all_layers() {
        let g = graph();
        let (idx, _) = build_index(&g, 2, 1);
        assert!(idx.union_graph.has_edge(0, 1));
        assert!(idx.union_graph.has_edge(4, 5));
        assert_eq!(idx.union_graph.num_edges(), 12);
    }
}
