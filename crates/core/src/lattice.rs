//! Subset-lattice candidate generation with Lemma-1 prefix reuse.
//!
//! `GD-DCCS` needs the d-CC of every layer subset of size `s`. The naive
//! path computes each one independently: intersect the `s` per-layer d-cores
//! and peel the intersection from scratch, rescanning the adjacency of every
//! candidate on **all** `s` layers and allocating fresh degree arrays per
//! subset. This module instead walks the subset lattice depth-first in
//! lexicographic order, keeping per-level state that children inherit:
//!
//! * **Exact prefix cores** — by Lemma 1 (`C_{L'} ⊆ C_L` for `L ⊆ L'`), the
//!   d-CC of a child subset `L ∪ {j}` is contained in `C_L ∩ C_{{j}}`, so
//!   each peel starts from the parent's already-peeled core, and a prefix
//!   that peels to the empty set proves every completion empty without
//!   touching the graph.
//! * **Inherited degree arrays** — every level stores the exact
//!   within-core degree of each member on each prefix layer. A child copies
//!   the parent's arrays adjusted for the vertices lost in the
//!   intersection, and counts **only the one newly added layer** before
//!   cascading. How the adjustment happens is the index representation's
//!   business ([`PeelIndex::inherit_prefix_degrees`][crate::engine::PeelIndex]):
//!   removed-vertex adjacency patching on CSR, word-restricted
//!   `popcount(row ∧ removed)` subtraction on dense rows (with a recount
//!   fallback counted in [`LatticeStats::recount_fallbacks`]).
//! * **Memoized single-layer cores** — depth-0 prefixes reuse the d-cores
//!   computed during preprocessing
//!   ([`crate::preprocess::Preprocessed::layer_cores`]) and are never
//!   re-peeled.
//!
//! There is **one** walk. Whether it peels over the CSR adjacency or over
//! re-indexed [`DenseSubgraph`] bitset rows is decided per run by the
//! [`crate::engine`] cost model (overridable via
//! [`crate::engine::IndexChoice`], e.g. the CLI's `--index`), which hands
//! back a unified [`crate::engine::PeelIndex`]; the walk consumes it
//! through the same kernel-dispatched API — degrees, cascades, core
//! translation — without ever re-branching on the representation. The walk
//! is partitioned by first layer (the lattice's depth-1 branches), so
//! [`collect_subset_cores`] can fan the branches out over the shared
//! executor crew — per-branch outputs are merged in branch order, keeping
//! the emission order (and therefore every downstream tie-break) identical
//! at any thread count.
//!
//! Cascade scratch comes from one [`PeelWorkspace`] per worker and all level
//! state is allocated once per branch, so the steady state allocates nothing
//! beyond the candidate cores the caller chooses to keep.

use crate::engine::{plan_index, IndexPath, InheritOutcome, PeelIndex, PoolRef, SearchContext};
use crate::fault::{self, site};
use crate::layer_subsets::combinations;
use crate::limits::QueryMonitor;
use crate::result::CoherentCore;
use coreness::PeelWorkspace;
use mlgraph::{CompressedSubgraph, DenseSubgraph, Layer, MultiLayerGraph, VertexSet};

/// Work counters reported by [`for_each_subset_core`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatticeStats {
    /// Layer subsets of size `s` emitted (always `C(l, s)`).
    pub candidates: usize,
    /// Cascade peels performed (internal prefixes + leaves).
    pub peels: usize,
    /// Size-`s` subsets emitted as empty without peeling because an
    /// ancestor prefix already proved them empty.
    pub empty_skipped: usize,
    /// Dense- or compressed-walk nodes whose prefix-layer degrees were
    /// inherited via row∧removed subtraction (word-restricted on flat rows,
    /// per-block on compressed rows; 0 on the CSR path, and on dense
    /// universes of ≤ 64 vertices, whose single-word rows always take the
    /// recount fallback).
    pub inherited: usize,
    /// Dense- or compressed-walk nodes where inheritance lost to a
    /// from-scratch recount (removals spanning full rows on the dense path,
    /// outnumbering the survivors on the compressed one) — the measured
    /// German-`d=2` failure mode of row inheritance, observable here
    /// instead of in prose (0 on the CSR path).
    pub recount_fallbacks: usize,
    /// Adjacency representation the cost model picked for this run.
    pub index_path: IndexPath,
    /// Heap footprint of the built adjacency index in bytes (0 on the CSR
    /// path — no index is built). A memory diagnostic, not a work counter:
    /// it is set once per run from the index, never absorbed across
    /// branches.
    pub index_bytes: usize,
}

impl LatticeStats {
    fn absorb(&mut self, other: &LatticeStats) {
        self.candidates += other.candidates;
        self.peels += other.peels;
        self.empty_skipped += other.empty_skipped;
        self.inherited += other.inherited;
        self.recount_fallbacks += other.recount_fallbacks;
    }
}

fn validate(l: usize, s: usize, layer_cores: &[VertexSet]) {
    assert!(s >= 1 && s <= l, "subset size s={s} out of range for {l} layers");
    assert_eq!(layer_cores.len(), l, "one memoized d-core per layer required");
}

/// The union of the per-layer d-cores — every candidate lives inside it.
fn candidate_universe(n: usize, layer_cores: &[VertexSet]) -> VertexSet {
    let mut universe = VertexSet::new(n);
    for core in layer_cores {
        universe.union_with(core);
    }
    universe
}

/// Enumerates every layer subset of size `s` over `0..l` in lexicographic
/// order and calls `emit(subset, core)` with the exact d-CC of each subset,
/// computed incrementally down the subset lattice (see the module docs).
///
/// `layer_cores[i]` must be `C_{{i}}^d` restricted to whatever candidate
/// universe the caller wants (the preprocessing's active set); all sets must
/// share the graph's vertex capacity.
///
/// This is the sequential entry point (one workspace, one thread, the
/// cost model's auto decision); the algorithms go through
/// [`collect_subset_cores`], which adds the sweep-reusable dense cache, the
/// [`crate::engine::IndexChoice`] override, and the executor fan-out on top
/// of the same walk.
///
/// # Panics
///
/// Panics if `s == 0` or `s > l`, or if `layer_cores` does not have one
/// entry per layer.
pub fn for_each_subset_core<F>(
    g: &MultiLayerGraph,
    d: u32,
    s: usize,
    layer_cores: &[VertexSet],
    ws: &mut PeelWorkspace,
    mut emit: F,
) -> LatticeStats
where
    F: FnMut(&[Layer], &VertexSet),
{
    let l = g.num_layers();
    validate(l, s, layer_cores);
    let branches = l - s + 1;

    // s == 1 needs no peel and no index; keep the cost model (and a dense
    // build) out of the trivial case.
    let universe;
    let dense_owned;
    let compressed_owned;
    let index = if s > 1 {
        universe = candidate_universe(g.num_vertices(), layer_cores);
        let plan = plan_index(g, &universe);
        match plan.path {
            IndexPath::Dense => {
                dense_owned = DenseSubgraph::build(g, &universe);
                PeelIndex::new(g, Some(&dense_owned), None, plan)
            }
            IndexPath::CompressedDense => {
                compressed_owned = CompressedSubgraph::build(g, &universe);
                PeelIndex::new(g, None, Some(&compressed_owned), plan)
            }
            IndexPath::Csr => PeelIndex::new(g, None, None, plan),
        }
    } else {
        PeelIndex::new(g, None, None, plan_index(g, &VertexSet::new(g.num_vertices())))
    };
    let cores_ix = index.compress_layer_cores(layer_cores);
    let cores_ix: &[VertexSet] = cores_ix.as_deref().unwrap_or(layer_cores);
    let mut stats =
        run_branches(g, d, s, &index, cores_ix, layer_cores, 0, branches, ws, None, &mut emit);
    stats.index_path = index.path();
    stats.index_bytes = index.index_bytes();
    stats
}

/// Collects every candidate d-CC as an owned [`CoherentCore`] list, in the
/// same lexicographic order as [`for_each_subset_core`], using the context's
/// cached dense index and fanning the depth-1 branches out over the given
/// executor crew when it has workers.
///
/// The output — cores, order, and statistics — is identical at every thread
/// count: each branch of the lattice is an independent walk, and the
/// per-branch results are merged in branch order.
pub fn collect_subset_cores(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    d: u32,
    s: usize,
    layer_cores: &[VertexSet],
) -> (Vec<CoherentCore>, LatticeStats) {
    let l = g.num_layers();
    validate(l, s, layer_cores);

    if s == 1 {
        // Memoized single-layer cores: no peel, no index decision.
        if let Some(monitor) = ctx.monitor() {
            monitor.charge_candidates(l);
        }
        let stats = LatticeStats { candidates: l, ..LatticeStats::default() };
        let cores = layer_cores
            .iter()
            .enumerate()
            .map(|(j, core)| CoherentCore::new(vec![j], core.clone()))
            .collect();
        return (cores, stats);
    }

    // Clone the monitor Arc out of the context before `peel_index` takes
    // its long mutable borrow; the branch jobs share it by reference.
    let monitor = ctx.monitor().cloned();
    let universe = candidate_universe(g.num_vertices(), layer_cores);
    let (index, driver_ws) = ctx.peel_index(g, &universe);
    let cores_ix = index.compress_layer_cores(layer_cores);
    let cores_ix: &[VertexSet] = cores_ix.as_deref().unwrap_or(layer_cores);
    let branches = l - s + 1;

    let monitor = monitor.as_deref();
    let run_branch = |ws: &mut PeelWorkspace, from: Layer, to: Layer| {
        fault::check(site::LATTICE_BRANCH);
        // Install the cascade-frontier probe for this job and always clear
        // it before the workspace serves anyone else's jobs.
        ws.set_probe(monitor.map(QueryMonitor::probe));
        let mut out: Vec<CoherentCore> = Vec::new();
        let mut emit = |subset: &[Layer], core: &VertexSet| {
            out.push(CoherentCore::new(subset.to_vec(), core.clone()));
        };
        let stats =
            run_branches(g, d, s, &index, cores_ix, layer_cores, from, to, ws, monitor, &mut emit);
        ws.set_probe(None);
        (out, stats)
    };

    let per_branch: Vec<(Vec<CoherentCore>, LatticeStats)> = if pool.workers() == 0 || branches <= 1
    {
        vec![run_branch(driver_ws, 0, branches)]
    } else {
        let jobs: Vec<_> = (0..branches)
            .map(|j| {
                let run_branch = &run_branch;
                move |ws: &mut PeelWorkspace| run_branch(ws, j, j + 1)
            })
            .collect();
        pool.map(driver_ws, jobs)
    };

    let mut stats = LatticeStats {
        index_path: index.path(),
        index_bytes: index.index_bytes(),
        ..LatticeStats::default()
    };
    let mut cores = Vec::new();
    for (mut branch_cores, branch_stats) in per_branch {
        stats.absorb(&branch_stats);
        cores.append(&mut branch_cores);
    }
    (cores, stats)
}

/// The frozen oracle: per-subset candidate cores computed exactly the way
/// the pre-refactor code did — intersect the memoized per-layer d-cores and
/// run the per-call-allocating reference peel
/// [`coreness::d_coherent_core_naive`]. Benches and property tests compare
/// the lattice engine against this single implementation.
pub fn naive_subset_cores(
    g: &MultiLayerGraph,
    d: u32,
    s: usize,
    layer_cores: &[VertexSet],
) -> Vec<(Vec<Layer>, VertexSet)> {
    let l = g.num_layers();
    validate(l, s, layer_cores);
    combinations(l, s)
        .map(|subset| {
            let mut candidate = layer_cores[subset[0]].clone();
            for &i in &subset[1..] {
                candidate.intersect_with(&layer_cores[i]);
            }
            let core = coreness::d_coherent_core_naive(g, &subset, d, &candidate);
            (subset, core)
        })
        .collect()
}

/// Walks the lattice branches with first layer in `from..to` over the given
/// index. `to` must not exceed `l − s + 1`.
#[allow(clippy::too_many_arguments)]
fn run_branches<F: FnMut(&[Layer], &VertexSet)>(
    g: &MultiLayerGraph,
    d: u32,
    s: usize,
    index: &PeelIndex<'_>,
    cores_ix: &[VertexSet],
    layer_cores: &[VertexSet],
    from: Layer,
    to: Layer,
    ws: &mut PeelWorkspace,
    monitor: Option<&QueryMonitor>,
    emit: F,
) -> LatticeStats {
    let len = index.universe_len();
    let mut run = LatticeWalk {
        index: *index,
        d,
        s,
        cores_ix,
        layer_cores,
        ws,
        monitor,
        emit,
        subset: Vec::with_capacity(s),
        cores: (0..s).map(|_| VertexSet::new(len)).collect(),
        degrees: (0..s).map(|t| vec![0u32; (t + 1) * len]).collect(),
        removed: VertexSet::new(len),
        removed_word_idx: Vec::new(),
        expanded: VertexSet::new(g.num_vertices()),
        empty: VertexSet::new(g.num_vertices()),
        stats: LatticeStats::default(),
        num_layers: g.num_layers(),
    };
    for j in from..to {
        run.root(j);
    }
    run.stats
}

/// The one lattice walk, generic over the peeling representation: every
/// level's cores and degree arrays live in the [`PeelIndex`]'s index space
/// (vertex space on CSR, the re-indexed `0..m` universe on dense rows), and
/// every representation-specific step — degree counting, prefix-degree
/// inheritance, the cascade, emission back to vertex space — goes through
/// the index's kernel-dispatched API. Formerly two parallel structs
/// (`LatticeRun` / `DenseLatticeRun`) duplicating the traversal.
struct LatticeWalk<'a, F> {
    index: PeelIndex<'a>,
    d: u32,
    s: usize,
    /// Per-layer d-cores in index space.
    cores_ix: &'a [VertexSet],
    /// Per-layer d-cores in vertex space (for the `s == 1` emission, which
    /// must hand out the memoized core itself).
    layer_cores: &'a [VertexSet],
    ws: &'a mut PeelWorkspace,
    /// The active query's limit monitor: polled once per child subtree, and
    /// consulted after every cascade — a probe-aborted cascade leaves a
    /// **superset** of the true core, which must never be emitted.
    monitor: Option<&'a QueryMonitor>,
    emit: F,
    /// The current prefix subset (original layer indices, ascending).
    subset: Vec<Layer>,
    /// `cores[t]`: exact d-CC of the prefix of length `t + 1` (index space).
    cores: Vec<VertexSet>,
    /// `degrees[t][j*len + v]`: degree of `v` inside `cores[t]` on the j-th
    /// prefix layer, exact for every member of `cores[t]` (inherited down
    /// the lattice).
    degrees: Vec<Vec<u32>>,
    /// Scratch: members lost when intersecting parent core with a layer
    /// core (index space).
    removed: VertexSet,
    /// Scratch: indices of `removed`'s non-zero words (dense inheritance).
    removed_word_idx: Vec<u32>,
    /// Reused vertex-space buffer for emitted candidates (dense expansion).
    expanded: VertexSet,
    /// Shared vertex-space empty set for pruned subtrees.
    empty: VertexSet,
    stats: LatticeStats,
    num_layers: usize,
}

impl<F: FnMut(&[Layer], &VertexSet)> LatticeWalk<'_, F> {
    /// `true` once a limit has tripped — the walk stops descending and,
    /// crucially, stops emitting: a probe-aborted cascade leaves a
    /// *superset* of the true core in its buffer, which is not a d-CC.
    ///
    /// This must go through [`QueryMonitor::check`], not the latched-byte
    /// read: a deadline that passes **inside** a cascade latches only in
    /// the [`coreness::CancelProbe`]'s own flag (the frontier poll reads
    /// the clock), and nothing has recorded it in the monitor yet. `check`
    /// observes the probe and latches the kind, so the aborted core is
    /// caught here rather than emitted.
    fn limit_hit(&self) -> bool {
        self.monitor.is_some_and(|m| m.check().is_some())
    }

    /// Counts one emitted candidate, charging the query's candidate budget.
    fn note_candidate(&mut self) {
        self.stats.candidates += 1;
        if let Some(monitor) = self.monitor {
            monitor.charge_candidates(1);
        }
    }

    /// Runs the depth-1 branch rooted at first layer `j`, keeping the
    /// lexicographic emission order of the naive enumeration (so downstream
    /// tie-breaking is unchanged).
    fn root(&mut self, j: Layer) {
        let len = self.index.universe_len();
        self.subset.push(j);
        if self.s == 1 {
            // Memoized single-layer core: already the exact d-CC of {j}.
            self.note_candidate();
            (self.emit)(&self.subset, &self.layer_cores[j]);
        } else {
            // The root's degree row seeds the inheritance chain below.
            self.cores[0].copy_from(&self.cores_ix[j]);
            let core = &self.cores[0];
            let deg = &mut self.degrees[0][..len];
            for v in core.iter() {
                deg[v as usize] = self.index.degree_within(j, v, core) as u32;
            }
            self.descend(1, j + 1);
        }
        self.subset.pop();
    }

    /// Visits every extension of the current prefix by layers in
    /// `start..l`.
    fn descend(&mut self, depth: usize, start: Layer) {
        let l = self.num_layers;
        let last = l - (self.s - depth) + 1;
        for j in start..last {
            // Cooperative checkpoint, once per child subtree.
            if self.monitor.is_some_and(|m| m.check().is_some()) {
                return;
            }
            self.subset.push(j);
            let nonempty = self.make_child(depth, j);
            if self.limit_hit() {
                // The cascade may have been probe-aborted mid-peel; its
                // output is then a superset of the true core, never a d-CC.
                self.subset.pop();
                return;
            }
            if depth + 1 == self.s {
                self.note_candidate();
                if nonempty && !self.cores[depth].is_empty() {
                    let (head, tail) = (&self.cores[depth], &mut self.expanded);
                    (self.emit)(&self.subset, self.index.emit(head, tail));
                } else {
                    (self.emit)(&self.subset, &self.empty);
                }
            } else if nonempty && !self.cores[depth].is_empty() {
                self.descend(depth + 1, j + 1);
            } else {
                // Lemma 1: every completion of an empty prefix is empty.
                self.emit_empty_completions(depth + 1, j + 1);
            }
            self.subset.pop();
        }
    }

    /// Builds level `depth` (prefix `subset[..depth]` extended by layer `j`)
    /// from level `depth − 1`: intersects the cores, inherits the parent's
    /// prefix-layer degrees through the index's representation-specific
    /// strategy, counts the one newly added layer fresh, and cascades.
    /// Returns `false` when the intersection was already empty (no state
    /// was built).
    fn make_child(&mut self, depth: usize, j: Layer) -> bool {
        let len = self.index.universe_len();
        let (head, tail) = self.cores.split_at_mut(depth);
        let parent = &head[depth - 1];
        let child = &mut tail[0];
        child.assign_intersection(parent, &self.cores_ix[j]);
        if child.is_empty() {
            return false;
        }
        self.removed.assign_difference(parent, child);

        let (dhead, dtail) = self.degrees.split_at_mut(depth);
        let parent_deg = &dhead[depth - 1][..depth * len];
        let child_deg = &mut dtail[0];
        match self.index.inherit_prefix_degrees(
            &self.subset[..depth],
            parent_deg,
            child_deg,
            child,
            &self.removed,
            &mut self.removed_word_idx,
        ) {
            InheritOutcome::DenseInherited | InheritOutcome::CompressedPatched => {
                self.stats.inherited += 1
            }
            InheritOutcome::DenseRecount | InheritOutcome::CompressedRecount => {
                self.stats.recount_fallbacks += 1
            }
            InheritOutcome::CsrPatched | InheritOutcome::CsrRecount => {}
        }
        // The newly added layer always needs a fresh count.
        for v in child.iter() {
            child_deg[depth * len + v as usize] = self.index.degree_within(j, v, child) as u32;
        }
        self.index.cascade(self.ws, &self.subset, self.d, child, child_deg);
        self.stats.peels += 1;
        true
    }

    /// Emits the empty core for every size-`s` completion of the current
    /// prefix, without peeling.
    fn emit_empty_completions(&mut self, depth: usize, start: Layer) {
        if self.limit_hit() {
            return;
        }
        let l = self.num_layers;
        if depth == self.s {
            self.note_candidate();
            self.stats.empty_skipped += 1;
            (self.emit)(&self.subset, &self.empty);
            return;
        }
        let last = l - (self.s - depth) + 1;
        for j in start..last {
            self.subset.push(j);
            self.emit_empty_completions(depth + 1, j + 1);
            self.subset.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DccsOptions, DccsParams};
    use crate::engine::with_pool;
    use crate::preprocess::preprocess;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(14, 4);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[4, 5, 6, 7]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 2, &[8, 9, 10]);
        clique(&mut b, 3, &[8, 9, 10, 11, 12]);
        b.build()
    }

    fn collect_with_threads(
        threads: usize,
        g: &MultiLayerGraph,
        d: u32,
        s: usize,
        layer_cores: &[VertexSet],
    ) -> (Vec<CoherentCore>, LatticeStats) {
        let mut ctx = SearchContext::new(threads);
        with_pool(threads, |pool| collect_subset_cores(&mut ctx, pool, g, d, s, layer_cores))
    }

    /// The lattice engine must emit, for every subset in lexicographic
    /// order, exactly what the frozen oracle computes from scratch.
    #[test]
    fn matches_naive_per_subset_computation() {
        let g = graph();
        for (d, s) in [(1u32, 1usize), (2, 1), (2, 2), (3, 2), (2, 3), (3, 3), (2, 4)] {
            let params = DccsParams::new(d, s, 2);
            let pre = preprocess(&g, &params, &DccsOptions::no_vertex_deletion());
            let mut ws = PeelWorkspace::new();
            let mut got: Vec<(Vec<Layer>, Vec<u32>)> = Vec::new();
            let stats =
                for_each_subset_core(&g, d, s, &pre.layer_cores, &mut ws, |subset, core| {
                    got.push((subset.to_vec(), core.to_vec()));
                });
            let expected: Vec<(Vec<Layer>, Vec<u32>)> =
                naive_subset_cores(&g, d, s, &pre.layer_cores)
                    .into_iter()
                    .map(|(subset, core)| (subset, core.to_vec()))
                    .collect();
            assert_eq!(got, expected, "d={d} s={s}");
            assert_eq!(stats.candidates as u128, crate::layer_subsets::binomial(4, s));
        }
    }

    /// `collect_subset_cores` must produce the same candidates as the
    /// sequential callback walk, in the same order, at every thread count.
    #[test]
    fn collected_candidates_are_thread_invariant() {
        let g = graph();
        for (d, s) in [(2u32, 1usize), (2, 2), (3, 2), (2, 3), (3, 3), (2, 4)] {
            let params = DccsParams::new(d, s, 2);
            let pre = preprocess(&g, &params, &DccsOptions::no_vertex_deletion());
            let mut ws = PeelWorkspace::new();
            let mut reference: Vec<CoherentCore> = Vec::new();
            let ref_stats =
                for_each_subset_core(&g, d, s, &pre.layer_cores, &mut ws, |subset, core| {
                    reference.push(CoherentCore::new(subset.to_vec(), core.clone()));
                });
            for threads in [1usize, 2, 4] {
                let (cores, stats) = collect_with_threads(threads, &g, d, s, &pre.layer_cores);
                assert_eq!(cores, reference, "d={d} s={s} threads={threads}");
                assert_eq!(stats.candidates, ref_stats.candidates);
                assert_eq!(stats.peels, ref_stats.peels);
                assert_eq!(stats.empty_skipped, ref_stats.empty_skipped);
                assert_eq!(stats.inherited, ref_stats.inherited);
                assert_eq!(stats.recount_fallbacks, ref_stats.recount_fallbacks);
            }
        }
    }

    /// A deadline that trips **inside** a cascade latches only in the
    /// [`coreness::CancelProbe`]'s own flag — nothing has recorded it in
    /// the monitor when the aborted (superset) core comes back. The walk
    /// must still refuse to emit it and must latch the trip into the
    /// monitor. The probe's poll-countdown hook lands the trip on every
    /// possible poll — checkpoint or cascade frontier — deterministically,
    /// with no clock involved; whatever the walk emits before stopping must
    /// equal the naive oracle for that subset.
    #[test]
    fn probe_trip_inside_a_cascade_is_never_emitted() {
        use crate::limits::{LimitKind, QueryLimits};
        use std::sync::Arc;

        // Per-layer 2-cores are nonempty, but every size-2 joint core peels
        // to empty through multi-frontier cascades — so an aborted cascade
        // emitted by mistake is a nonempty set where the oracle says empty.
        let mut b = MultiLayerGraphBuilder::new(10, 3);
        for v in 0..10u32 {
            b.add_edge(0, v, (v + 1) % 10).unwrap(); // cycle: 2-core = all
        }
        clique(&mut b, 1, &[7, 8, 9]);
        for v in 0..7u32 {
            b.add_edge(1, v, v + 1).unwrap(); // chain tail peels off
        }
        clique(&mut b, 2, &[0, 1, 2]);
        clique(&mut b, 2, &[5, 6, 7, 8]);
        let g = b.build();
        let (d, s) = (2u32, 2usize);
        let params = DccsParams::new(d, s, 2);
        let pre = preprocess(&g, &params, &DccsOptions::no_vertex_deletion());
        let naive = naive_subset_cores(&g, d, s, &pre.layer_cores);

        for n in 1..=40u32 {
            let mut ctx = SearchContext::new(1);
            // Force the dense path: its cascade polls once per frontier, so
            // the countdown can land mid-peel.
            ctx.set_index_choice(crate::IndexChoice::Dense);
            let monitor = Arc::new(QueryMonitor::new(&QueryLimits::none(), None));
            monitor.probe().trip_after_polls(n);
            ctx.set_monitor(Some(Arc::clone(&monitor)));
            let (cores, _) = with_pool(1, |pool| {
                collect_subset_cores(&mut ctx, pool, &g, d, s, &pre.layer_cores)
            });
            for core in &cores {
                let (_, expected) =
                    naive.iter().find(|(subset, _)| *subset == core.layers).unwrap();
                assert_eq!(
                    core.vertices.to_vec(),
                    expected.to_vec(),
                    "n={n}: emitted candidate for {:?} differs from the oracle",
                    core.layers
                );
            }
            if monitor.probe().cancelled() {
                assert_eq!(
                    monitor.hit(),
                    Some(LimitKind::Deadline),
                    "n={n}: a probe-latched trip must be recorded in the monitor"
                );
            } else {
                // Countdown never ran out: the walk completed in full.
                assert_eq!(cores.len(), naive.len(), "n={n}");
            }
        }
    }

    /// A forced index override must change the representation — and nothing
    /// else: identical cores in identical order under `Csr`, `Dense`,
    /// `Compressed`, and `Auto`.
    #[test]
    fn forced_index_choices_are_bit_identical() {
        let g = graph();
        for (d, s) in [(2u32, 2usize), (3, 2), (2, 3)] {
            let params = DccsParams::new(d, s, 2);
            let pre = preprocess(&g, &params, &DccsOptions::no_vertex_deletion());
            let mut reference: Option<Vec<CoherentCore>> = None;
            for choice in [
                crate::IndexChoice::Auto,
                crate::IndexChoice::Csr,
                crate::IndexChoice::Dense,
                crate::IndexChoice::Compressed,
            ] {
                let mut ctx = SearchContext::new(1);
                ctx.set_index_choice(choice);
                let (cores, stats) = with_pool(1, |pool| {
                    collect_subset_cores(&mut ctx, pool, &g, d, s, &pre.layer_cores)
                });
                match choice {
                    crate::IndexChoice::Csr => assert_eq!(stats.index_path, IndexPath::Csr),
                    crate::IndexChoice::Dense => assert_eq!(stats.index_path, IndexPath::Dense),
                    crate::IndexChoice::Compressed => {
                        assert_eq!(stats.index_path, IndexPath::CompressedDense)
                    }
                    crate::IndexChoice::Auto => {}
                }
                match &reference {
                    None => reference = Some(cores),
                    Some(expected) => assert_eq!(&cores, expected, "choice={choice:?} d={d} s={s}"),
                }
            }
        }
    }

    /// Engine-vs-naive equivalence on the shape the inherited dense rows
    /// exist for: a **multi-word** universe (150 vertices — three words per
    /// row) of heavily overlapping per-layer cores, where each lattice
    /// intersection loses a few vertices clustered in fewer words than a
    /// full row (`nz(removed) < W`, the inheritance path). A single-word
    /// test graph would silently exercise only the recount fallback — the
    /// guard compares word counts, so with `W = 1` any non-empty removal
    /// falls back — which is why the `inherited` stat is asserted. One
    /// layer's small clique drives the fallback within the same walk, which
    /// the `recount_fallbacks` counter must now make observable.
    #[test]
    fn dense_walk_with_inherited_rows_matches_naive() {
        let mut b = MultiLayerGraphBuilder::new(150, 4);
        let all: Vec<u32> = (0..150).collect();
        clique(&mut b, 0, &all);
        clique(&mut b, 1, &all[..140]); // loses 140..150: one word of three
        clique(&mut b, 2, &all[6..150]); // loses 0..6: one word of three
        clique(&mut b, 3, &all[..10]); // small: forces the rescan fallback
        let g = b.build();
        let mut inherited_total = 0usize;
        let mut fallback_total = 0usize;
        for (d, s) in [(2u32, 2usize), (2, 3), (2, 4), (3, 3)] {
            let params = DccsParams::new(d, s, 2);
            let pre = preprocess(&g, &params, &DccsOptions::no_vertex_deletion());
            let mut ws = PeelWorkspace::new();
            let mut got: Vec<(Vec<Layer>, Vec<u32>)> = Vec::new();
            let stats =
                for_each_subset_core(&g, d, s, &pre.layer_cores, &mut ws, |subset, core| {
                    got.push((subset.to_vec(), core.to_vec()));
                });
            assert_eq!(stats.index_path, IndexPath::Dense, "d={d} s={s}: dense path expected");
            let expected: Vec<(Vec<Layer>, Vec<u32>)> =
                naive_subset_cores(&g, d, s, &pre.layer_cores)
                    .into_iter()
                    .map(|(subset, core)| (subset, core.to_vec()))
                    .collect();
            assert_eq!(got, expected, "d={d} s={s}");
            inherited_total += stats.inherited;
            fallback_total += stats.recount_fallbacks;
        }
        assert!(inherited_total > 0, "the inherited-degree path never executed");
        assert!(fallback_total > 0, "the recount fallback never executed (or went uncounted)");
    }

    #[test]
    fn empty_prefixes_skip_peeling() {
        // Layers with disjoint cliques: every subset mixing them is empty,
        // and the depth-1 intersection proves it without any cascade.
        let mut b = MultiLayerGraphBuilder::new(8, 3);
        clique(&mut b, 0, &[0, 1, 2]);
        clique(&mut b, 1, &[3, 4, 5]);
        clique(&mut b, 2, &[0, 1, 2]);
        let g = b.build();
        let params = DccsParams::new(2, 3, 1);
        let pre = preprocess(&g, &params, &DccsOptions::no_vertex_deletion());
        let mut ws = PeelWorkspace::new();
        let mut emitted = 0usize;
        let stats = for_each_subset_core(&g, 2, 3, &pre.layer_cores, &mut ws, |_, core| {
            emitted += 1;
            assert!(core.is_empty());
        });
        assert_eq!(emitted, 1); // C(3,3)
        assert_eq!(stats.peels, 0, "empty intersection at depth 1 must skip all peels");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_s_panics() {
        let g = graph();
        let cores: Vec<VertexSet> = (0..4).map(|_| g.full_vertex_set()).collect();
        let mut ws = PeelWorkspace::new();
        for_each_subset_core(&g, 1, 0, &cores, &mut ws, |_, _| {});
    }
}
