//! Enumeration of layer subsets.
//!
//! `GD-DCCS` and the exact oracle enumerate every layer subset of size `s`
//! (there are `C(l, s)` of them); the search algorithms explore them through
//! a tree instead. This module provides the combination iterator and the
//! binomial-coefficient helper used for work estimates.

/// Iterator over all `s`-element subsets of `0..l`, in lexicographic order.
#[derive(Clone, Debug)]
pub struct Combinations {
    l: usize,
    s: usize,
    current: Vec<usize>,
    done: bool,
}

/// Creates an iterator over all `s`-element subsets of `{0, …, l-1}`.
///
/// When `s == 0` a single empty subset is produced; when `s > l` the iterator
/// is empty.
pub fn combinations(l: usize, s: usize) -> Combinations {
    let done = s > l;
    Combinations { l, s, current: (0..s).collect(), done }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let result = self.current.clone();
        // Advance to the next combination.
        if self.s == 0 {
            self.done = true;
            return Some(result);
        }
        let mut i = self.s;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.current[i] < self.l - (self.s - i) {
                self.current[i] += 1;
                for j in (i + 1)..self.s {
                    self.current[j] = self.current[j - 1] + 1;
                }
                break;
            }
        }
        Some(result)
    }
}

/// The binomial coefficient `C(l, s)` as a saturating `u128`.
pub fn binomial(l: usize, s: usize) -> u128 {
    if s > l {
        return 0;
    }
    let s = s.min(l - s);
    let mut result: u128 = 1;
    for i in 0..s {
        result = result.saturating_mul((l - i) as u128) / (i as u128 + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_subsets_in_order() {
        let subsets: Vec<Vec<usize>> = combinations(4, 2).collect();
        assert_eq!(
            subsets,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3]]
        );
    }

    #[test]
    fn count_matches_binomial() {
        for l in 0..8 {
            for s in 0..=l {
                let count = combinations(l, s).count() as u128;
                assert_eq!(count, binomial(l, s), "l={l} s={s}");
            }
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(combinations(5, 0).collect::<Vec<_>>(), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(3, 5).count(), 0);
        assert_eq!(combinations(3, 3).collect::<Vec<_>>(), vec![vec![0, 1, 2]]);
        assert_eq!(combinations(1, 1).collect::<Vec<_>>(), vec![vec![0]]);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(24, 3), 2024);
        assert_eq!(binomial(24, 22), 276);
        assert_eq!(binomial(14, 3), 364);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(5, 7), 0);
        assert_eq!(binomial(0, 0), 1);
    }

    #[test]
    fn subsets_are_sorted_and_within_range() {
        for subset in combinations(7, 3) {
            assert!(subset.windows(2).all(|w| w[0] < w[1]));
            assert!(subset.iter().all(|&x| x < 7));
            assert_eq!(subset.len(), 3);
        }
    }
}
