//! # dccs — Diversified Coherent Core Search on multi-layer graphs
//!
//! This crate implements the paper's primary contribution: the
//! **d-coherent core** (d-CC) notion and three algorithms for the
//! **Diversified Coherent Core Search (DCCS)** problem — given a multi-layer
//! graph `G`, a degree threshold `d`, a support threshold `s`, and a budget
//! `k`, find `k` d-CCs over layer subsets of size `s` whose union covers as
//! many vertices as possible.
//!
//! | Entry point | Algorithm | Approximation ratio |
//! |---|---|---|
//! | [`greedy_dccs`] | `GD-DCCS` — enumerate every candidate d-CC, greedy max-k-cover | 1 − 1/e |
//! | [`bottom_up_dccs`] | `BU-DCCS` — bottom-up search tree with interleaved top-k maintenance | 1/4 |
//! | [`top_down_dccs`] | `TD-DCCS` — top-down search tree with potential-set refinement | 1/4 |
//!
//! # Querying: the session API
//!
//! The primary entry point is [`DccsSession`]: construct it once per graph
//! and run every query — or whole parameter sweeps — through it. The
//! session owns the reusable engine state (peel scratch, the dense-index
//! cache, a per-`d` layer-core memo), returns typed [`DccsError`]s instead
//! of panicking, and picks the right algorithm per query with
//! [`Algorithm::Auto`]:
//!
//! ```
//! use mlgraph::MultiLayerGraphBuilder;
//! use dccs::{Algorithm, DccsParams, DccsSession, QuerySpec};
//!
//! // Two layers, each containing a triangle on {0,1,2}; vertex 3 is sparse.
//! let mut b = MultiLayerGraphBuilder::new(4, 2);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     b.add_edge(0, u, v).unwrap();
//!     b.add_edge(1, u, v).unwrap();
//! }
//! let g = b.build();
//!
//! let mut session = DccsSession::new(&g);
//! let result = session
//!     .query(DccsParams::new(2, 2, 1))
//!     .algorithm(Algorithm::Auto) // or Greedy / BottomUp / TopDown / Exact
//!     .run()?;
//! assert_eq!(result.cover.to_vec(), vec![0, 1, 2]);
//!
//! // Sweeps batch through one worker crew; results come back in order.
//! let sweep: Vec<QuerySpec> =
//!     (1..=2).map(|s| QuerySpec::new(DccsParams::new(2, s, 1))).collect();
//! let results = session.run_batch(&sweep)?;
//! assert_eq!(results.len(), 2);
//! # Ok::<(), dccs::DccsError>(())
//! ```
//!
//! The free functions above are retained as thin one-shot wrappers (they
//! build the same engine state per call and keep their historical panic on
//! invalid parameters), so existing callers and the frozen oracle tests
//! keep working unchanged.
//!
//! Supporting modules expose the building blocks: the [`coverage`] module
//! implements the paper's `Update` procedure, [`preprocess`] the vertex
//! deletion / layer sorting / `InitTopK` preprocessing, [`index`] and
//! [`refine`] the top-down index structure and `RefineU`/`RefineC`
//! procedures, [`exact`] a brute-force oracle for tiny inputs, and
//! [`metrics`] the evaluation measures used in the paper's Section VI.

// `deny` rather than `forbid`: the executor's job-lifetime erasure is the
// one audited exception (see `engine::erase_job`); everything else stays
// safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod analysis;
pub mod bottom_up;
pub mod config;
pub mod coverage;
pub mod engine;
pub mod error;
pub mod exact;
pub mod fault;
pub mod greedy;
pub mod index;
pub mod lattice;
pub mod layer_subsets;
pub mod limits;
pub mod metrics;
pub mod parallel;
pub mod preprocess;
pub mod refine;
pub mod result;
pub mod serve;
pub mod service;
pub mod session;
pub mod top_down;

pub use algorithm::Algorithm;
pub use analysis::{analyze_cores, analyze_result, jaccard, OverlapReport};
pub use bottom_up::{
    bottom_up_dccs, bottom_up_dccs_in, bottom_up_dccs_on, bottom_up_dccs_with_options,
};
pub use config::{DccsOptions, DccsParams};
pub use coverage::{PruneBounds, TopKDiversified};
pub use engine::{
    plan_index, plan_index_with, IndexChoice, IndexPath, IndexPlan, PeelIndex, SearchContext,
    SharedSearchState,
};
pub use error::DccsError;
pub use exact::{exact_dccs, exact_dccs_in, exact_dccs_on};
pub use greedy::{greedy_dccs, greedy_dccs_in, greedy_dccs_on, greedy_dccs_with_options};
pub use lattice::{collect_subset_cores, for_each_subset_core, naive_subset_cores, LatticeStats};
pub use limits::{CancelToken, LimitKind, QueryLimits};
pub use metrics::{complexes_found, containment_distribution, CoverSimilarity};
pub use parallel::parallel_greedy_dccs;
pub use result::{CoherentCore, DccsResult, PhaseTimes, SearchStats};
pub use serve::{DccIndex, Serve, ServePath};
pub use service::{
    CacheStats, CommitReceipt, GraphSnapshot, QueryService, ServiceOutcome, ServiceQuery,
};
pub use session::{auto_threads, DccsSession, Query, QuerySpec};
pub use top_down::{top_down_dccs, top_down_dccs_in, top_down_dccs_on, top_down_dccs_with_options};
