//! Query-lifecycle limits: wall-clock deadlines, candidate budgets, dense
//! memory ceilings, and cooperative cancellation.
//!
//! A [`QueryLimits`] value rides on [`crate::DccsOptions`] and bounds one
//! query; a [`CancelToken`] is the externally shared kill switch a serving
//! layer can trip from another thread. Internally the session compiles both
//! into a [`QueryMonitor`] — a `Sync` bundle of atomics the algorithms poll
//! at **coarse boundaries only**: per task-graph commit and evaluation, per
//! lattice subtree, per preprocessing fixpoint round, and (through the
//! [`coreness::CancelProbe`] installed on each worker's peel workspace) per
//! cascade frontier. The hot word loops are never instrumented, so an
//! unlimited query pays no measurable cancellation tax.
//!
//! A tripped limit does not abort the query abruptly: every algorithm stops
//! spawning and emitting, flags its [`crate::SearchStats`] as incomplete
//! (`complete = false`, `limit_hit = Some(kind)`), and returns the
//! best-so-far top-k. The session then converts that flagged partial into
//! the matching typed [`crate::DccsError`] variant, carrying the partial
//! result so callers degrade gracefully instead of losing all work.

use coreness::CancelProbe;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-query resource limits, all off by default. `Copy`, so it rides on
/// [`crate::DccsOptions`] without changing that type's ergonomics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Wall-clock deadline measured from the start of the query. When it
    /// passes, the query stops at the next cooperative checkpoint and the
    /// session returns [`crate::DccsError::DeadlineExceeded`] carrying the
    /// partial result.
    pub deadline: Option<Duration>,
    /// Candidate budget: the maximum number of candidate d-CCs a query may
    /// generate, generalizing the exact solver's built-in gate to every
    /// algorithm. Exceeding it surfaces as
    /// [`crate::DccsError::BudgetExceeded`].
    pub candidate_budget: Option<usize>,
    /// Ceiling (in `u64` words) on the dense re-indexed adjacency. Under
    /// [`crate::IndexChoice::Auto`] a universe over the ceiling silently
    /// falls back to the CSR path (the result is bit-identical); a *forced*
    /// dense index over the ceiling fails the query with
    /// [`crate::DccsError::MemoryLimit`]. The engine's built-in
    /// [`crate::engine::DENSE_WORD_BUDGET`] safety bound still applies on
    /// top.
    pub max_dense_words: Option<usize>,
    /// Opt-in degradation ladder: when [`crate::Algorithm::Exact`] blows
    /// its candidate budget, rerun the query as [`crate::Algorithm::Greedy`]
    /// instead of failing, recording the fallback in
    /// [`crate::SearchStats::degraded_from`].
    pub degrade: bool,
}

impl QueryLimits {
    /// No limits — the default.
    pub fn none() -> Self {
        QueryLimits::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the candidate budget.
    pub fn with_candidate_budget(mut self, budget: usize) -> Self {
        self.candidate_budget = Some(budget);
        self
    }

    /// Sets the dense-index memory ceiling, in `u64` words.
    pub fn with_max_dense_words(mut self, words: usize) -> Self {
        self.max_dense_words = Some(words);
        self
    }

    /// Enables the Exact-to-Greedy degradation ladder.
    pub fn with_degrade(mut self) -> Self {
        self.degrade = true;
        self
    }

    /// Whether every limit is off (the monitor is skipped entirely then,
    /// unless a [`CancelToken`] is attached).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.candidate_budget.is_none() && self.max_dense_words.is_none()
    }
}

/// Which limit stopped a query, recorded in
/// [`crate::SearchStats::limit_hit`] on the partial result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The query's [`CancelToken`] was tripped externally.
    Cancelled,
    /// The candidate budget was exhausted.
    CandidateBudget,
    /// A forced dense index exceeded the memory ceiling.
    DenseMemory,
}

/// A shared, cloneable cancellation handle. Hand a clone to another thread
/// (or a signal handler) and call [`CancelToken::cancel`]; every query the
/// token is attached to stops at its next cooperative checkpoint and
/// returns [`crate::DccsError::Cancelled`] with the partial result.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Encoding of `Option<LimitKind>` in one atomic byte (0 = no hit).
const HIT_NONE: u8 = 0;
const HIT_DEADLINE: u8 = 1;
const HIT_CANCELLED: u8 = 2;
const HIT_BUDGET: u8 = 3;
const HIT_MEMORY: u8 = 4;

fn kind_to_u8(kind: LimitKind) -> u8 {
    match kind {
        LimitKind::Deadline => HIT_DEADLINE,
        LimitKind::Cancelled => HIT_CANCELLED,
        LimitKind::CandidateBudget => HIT_BUDGET,
        LimitKind::DenseMemory => HIT_MEMORY,
    }
}

fn u8_to_kind(raw: u8) -> Option<LimitKind> {
    match raw {
        HIT_DEADLINE => Some(LimitKind::Deadline),
        HIT_CANCELLED => Some(LimitKind::Cancelled),
        HIT_BUDGET => Some(LimitKind::CandidateBudget),
        HIT_MEMORY => Some(LimitKind::DenseMemory),
        _ => None,
    }
}

/// The compiled, `Sync` form of one query's limits, shared by the driver
/// and every worker through an `Arc`. The first limit observed as tripped
/// wins and is latched; it also trips the embedded [`CancelProbe`] so
/// in-flight cascades on every worker stop at their next frontier.
#[derive(Debug)]
pub(crate) struct QueryMonitor {
    /// The frontier-granularity probe installed on peel workspaces; carries
    /// the deadline.
    probe: Arc<CancelProbe>,
    /// The externally shared cancellation flag, when one was attached.
    token: Option<CancelToken>,
    /// Candidate budget, when set.
    candidate_budget: Option<usize>,
    /// Dense-index memory ceiling in words, when set; the engine's
    /// `peel_index` consults it when planning the representation.
    max_dense_words: Option<usize>,
    /// Candidates generated so far (driver and workers both charge here).
    candidates: AtomicUsize,
    /// First tripped limit, `HIT_*` encoded (0 = still running).
    hit: AtomicU8,
    /// Words a rejected forced-dense index would have needed.
    mem_required: AtomicUsize,
    /// The ceiling that rejected it.
    mem_limit: AtomicUsize,
}

impl QueryMonitor {
    /// Compiles `limits` (deadline anchored at "now") and an optional token
    /// into a monitor.
    pub(crate) fn new(limits: &QueryLimits, token: Option<CancelToken>) -> Self {
        let probe = match limits.deadline {
            Some(budget) => CancelProbe::with_deadline(Instant::now() + budget),
            None => CancelProbe::new(),
        };
        QueryMonitor {
            probe: Arc::new(probe),
            token,
            candidate_budget: limits.candidate_budget,
            max_dense_words: limits.max_dense_words,
            candidates: AtomicUsize::new(0),
            hit: AtomicU8::new(HIT_NONE),
            mem_required: AtomicUsize::new(0),
            mem_limit: AtomicUsize::new(0),
        }
    }

    /// The cascade-frontier probe, for installation on a worker's
    /// [`coreness::PeelWorkspace`].
    pub(crate) fn probe(&self) -> Arc<CancelProbe> {
        Arc::clone(&self.probe)
    }

    /// Latches `kind` as the query's outcome (first writer wins) and trips
    /// the probe so cascades already running stop at their next frontier.
    pub(crate) fn record(&self, kind: LimitKind) {
        let _ = self.hit.compare_exchange(
            HIT_NONE,
            kind_to_u8(kind),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.probe.cancel();
    }

    /// The tripped limit, if any — without consulting the clock.
    pub(crate) fn hit(&self) -> Option<LimitKind> {
        u8_to_kind(self.hit.load(Ordering::Relaxed))
    }

    /// The cooperative checkpoint: returns the tripped limit, probing the
    /// token and the deadline. Called at coarse boundaries only.
    pub(crate) fn check(&self) -> Option<LimitKind> {
        if let Some(kind) = self.hit() {
            return Some(kind);
        }
        if self.token.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.record(LimitKind::Cancelled);
            return Some(LimitKind::Cancelled);
        }
        if self.probe.is_hit() {
            // The probe trips on its own only via the deadline (or the
            // test hook simulating one); explicit trips go through
            // `record`, which latches the kind first.
            self.record(LimitKind::Deadline);
            return self.hit();
        }
        None
    }

    /// Charges `n` generated candidates against the budget, tripping
    /// [`LimitKind::CandidateBudget`] when it overflows.
    pub(crate) fn charge_candidates(&self, n: usize) {
        let total = self.candidates.fetch_add(n, Ordering::Relaxed) + n;
        if self.candidate_budget.is_some_and(|budget| total > budget) {
            self.record(LimitKind::CandidateBudget);
        }
    }

    /// Candidates charged so far (a lower bound once the budget tripped:
    /// workers stop charging at their next checkpoint).
    pub(crate) fn candidates(&self) -> usize {
        self.candidates.load(Ordering::Relaxed)
    }

    /// The configured candidate budget.
    pub(crate) fn candidate_budget(&self) -> Option<usize> {
        self.candidate_budget
    }

    /// The configured dense-index memory ceiling, in words.
    pub(crate) fn max_dense_words(&self) -> Option<usize> {
        self.max_dense_words
    }

    /// Records a forced dense index rejected by the memory ceiling.
    pub(crate) fn trip_dense_memory(&self, required_words: usize, limit_words: usize) {
        self.mem_required.store(required_words, Ordering::Relaxed);
        self.mem_limit.store(limit_words, Ordering::Relaxed);
        self.record(LimitKind::DenseMemory);
    }

    /// `(required_words, limit_words)` of the rejected dense index.
    pub(crate) fn dense_memory(&self) -> (usize, usize) {
        (self.mem_required.load(Ordering::Relaxed), self.mem_limit.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_the_default() {
        let limits = QueryLimits::default();
        assert!(limits.is_unlimited());
        assert!(!limits.degrade);
        let bounded = QueryLimits::none()
            .with_deadline(Duration::from_millis(5))
            .with_candidate_budget(100)
            .with_max_dense_words(1 << 20)
            .with_degrade();
        assert!(!bounded.is_unlimited());
        assert_eq!(bounded.candidate_budget, Some(100));
        assert!(bounded.degrade);
    }

    #[test]
    fn token_cancels_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn monitor_latches_the_first_hit() {
        let monitor = QueryMonitor::new(&QueryLimits::default(), None);
        assert_eq!(monitor.check(), None);
        monitor.record(LimitKind::CandidateBudget);
        monitor.record(LimitKind::Deadline);
        assert_eq!(monitor.hit(), Some(LimitKind::CandidateBudget));
        assert!(monitor.probe().is_hit(), "a hit trips the cascade probe");
    }

    #[test]
    fn monitor_sees_token_cancellation() {
        let token = CancelToken::new();
        let monitor = QueryMonitor::new(&QueryLimits::default(), Some(token.clone()));
        assert_eq!(monitor.check(), None);
        token.cancel();
        assert_eq!(monitor.check(), Some(LimitKind::Cancelled));
    }

    #[test]
    fn check_observes_a_probe_only_trip() {
        // A deadline that passes inside a cascade latches only in the
        // probe's flag (the frontier poll reads the clock); the monitor
        // byte stays unset until the next `check`. The latched-byte read
        // alone must never be used to decide whether emitted state is
        // trustworthy.
        let monitor = QueryMonitor::new(&QueryLimits::default(), None);
        monitor.probe().cancel();
        assert_eq!(monitor.hit(), None, "the byte alone misses a probe-only trip");
        assert_eq!(monitor.check(), Some(LimitKind::Deadline));
        assert_eq!(monitor.hit(), Some(LimitKind::Deadline), "check latches it");
    }

    #[test]
    fn monitor_trips_on_a_passed_deadline() {
        let limits = QueryLimits::none().with_deadline(Duration::ZERO);
        let monitor = QueryMonitor::new(&limits, None);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(monitor.check(), Some(LimitKind::Deadline));
    }

    #[test]
    fn candidate_budget_charges_accumulate() {
        let limits = QueryLimits::none().with_candidate_budget(10);
        let monitor = QueryMonitor::new(&limits, None);
        monitor.charge_candidates(6);
        assert_eq!(monitor.hit(), None);
        monitor.charge_candidates(5);
        assert_eq!(monitor.hit(), Some(LimitKind::CandidateBudget));
        assert_eq!(monitor.candidates(), 11);
    }

    #[test]
    fn dense_memory_trip_records_the_sizes() {
        let monitor = QueryMonitor::new(&QueryLimits::default(), None);
        monitor.trip_dense_memory(4096, 1024);
        assert_eq!(monitor.hit(), Some(LimitKind::DenseMemory));
        assert_eq!(monitor.dense_memory(), (4096, 1024));
    }
}
