//! Evaluation metrics used in the paper's Section VI:
//!
//! * cover-similarity (precision / recall / F1) between the cover sets of two
//!   result collections (Fig. 29);
//! * the distribution of `|Q ∩ Cov(R_C)|` over quasi-cliques `Q` (Fig. 30);
//! * the proportion of ground-truth modules (protein complexes) entirely
//!   contained in some reported dense subgraph (Fig. 32).

use mlgraph::{Vertex, VertexSet};

/// Precision / recall / F1 between two covers, treating `reference` as the
/// ground truth (the paper uses the quasi-clique cover as `reference` and the
/// d-CC cover as `predicted`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverSimilarity {
    /// `|reference ∩ predicted| / |predicted|`.
    pub precision: f64,
    /// `|reference ∩ predicted| / |reference|`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Size of the intersection.
    pub overlap: usize,
}

impl CoverSimilarity {
    /// Computes the similarity between a reference cover and a predicted
    /// cover. Empty sets yield zero for the affected ratios.
    pub fn compute(reference: &VertexSet, predicted: &VertexSet) -> Self {
        let overlap = reference.intersection_len(predicted);
        let precision =
            if predicted.is_empty() { 0.0 } else { overlap as f64 / predicted.len() as f64 };
        let recall =
            if reference.is_empty() { 0.0 } else { overlap as f64 / reference.len() as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        CoverSimilarity { precision, recall, f1, overlap }
    }
}

/// The Fig. 30 statistic: for each subgraph `Q` (grouped by its size), the
/// distribution of `|Q ∩ cover|` — i.e. entry `dist[c]` is the fraction of
/// size-`q` subgraphs having exactly `c` vertices inside `cover`.
///
/// Returns a vector of `(q, distribution)` pairs sorted by `q`; each
/// distribution has `q + 1` entries summing to 1 (or all zeros when no
/// subgraph of that size exists).
pub fn containment_distribution(
    subgraphs: &[Vec<Vertex>],
    cover: &VertexSet,
) -> Vec<(usize, Vec<f64>)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for q in subgraphs {
        let size = q.len();
        let inside = q.iter().filter(|&&v| cover.contains(v)).count();
        let entry = counts.entry(size).or_insert_with(|| vec![0; size + 1]);
        entry[inside] += 1;
    }
    counts
        .into_iter()
        .map(|(size, hist)| {
            let total: usize = hist.iter().sum();
            let dist = hist
                .iter()
                .map(|&c| if total == 0 { 0.0 } else { c as f64 / total as f64 })
                .collect();
            (size, dist)
        })
        .collect()
}

/// The Fig. 32 statistic: the fraction of ground-truth modules entirely
/// contained in at least one of the reported dense subgraphs.
pub fn complexes_found(complexes: &[Vec<Vertex>], dense_subgraphs: &[VertexSet]) -> f64 {
    if complexes.is_empty() {
        return 0.0;
    }
    let found = complexes
        .iter()
        .filter(|complex| {
            dense_subgraphs.iter().any(|subgraph| complex.iter().all(|&v| subgraph.contains(v)))
        })
        .count();
    found as f64 / complexes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_perfect_overlap() {
        let a = VertexSet::from_iter(10, [1, 2, 3]);
        let sim = CoverSimilarity::compute(&a, &a);
        assert_eq!(sim.precision, 1.0);
        assert_eq!(sim.recall, 1.0);
        assert_eq!(sim.f1, 1.0);
        assert_eq!(sim.overlap, 3);
    }

    #[test]
    fn similarity_partial_overlap() {
        let reference = VertexSet::from_iter(10, [1, 2, 3, 4]);
        let predicted = VertexSet::from_iter(10, [3, 4, 5, 6, 7, 8]);
        let sim = CoverSimilarity::compute(&reference, &predicted);
        assert!((sim.precision - 2.0 / 6.0).abs() < 1e-12);
        assert!((sim.recall - 0.5).abs() < 1e-12);
        let expected_f1 = 2.0 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5);
        assert!((sim.f1 - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn similarity_empty_sets() {
        let empty = VertexSet::new(10);
        let full = VertexSet::from_iter(10, [1, 2]);
        let sim = CoverSimilarity::compute(&empty, &full);
        assert_eq!(sim.recall, 0.0);
        assert_eq!(sim.precision, 0.0);
        assert_eq!(sim.f1, 0.0);
        let sim = CoverSimilarity::compute(&full, &empty);
        assert_eq!(sim.precision, 0.0);
    }

    #[test]
    fn containment_distribution_groups_by_size() {
        let cover = VertexSet::from_iter(20, [0, 1, 2, 3, 4]);
        let subgraphs = vec![
            vec![0, 1, 2],    // fully inside (3/3)
            vec![0, 1, 10],   // 2 inside
            vec![10, 11, 12], // 0 inside
            vec![0, 1, 2, 3], // fully inside (4/4)
        ];
        let dist = containment_distribution(&subgraphs, &cover);
        assert_eq!(dist.len(), 2);
        let (size3, d3) = &dist[0];
        assert_eq!(*size3, 3);
        assert!((d3[3] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d3[2] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d3[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d3[1], 0.0);
        let (size4, d4) = &dist[1];
        assert_eq!(*size4, 4);
        assert_eq!(d4[4], 1.0);
        let total: f64 = d3.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn containment_distribution_empty_input() {
        let cover = VertexSet::from_iter(5, [0]);
        assert!(containment_distribution(&[], &cover).is_empty());
    }

    #[test]
    fn complexes_found_fraction() {
        let dense =
            vec![VertexSet::from_iter(20, [0, 1, 2, 3, 4]), VertexSet::from_iter(20, [10, 11, 12])];
        let complexes = vec![
            vec![0, 1, 2], // found in the first subgraph
            vec![10, 11],  // found in the second
            vec![3, 10],   // split across subgraphs → not found
            vec![15, 16],  // absent → not found
        ];
        assert!((complexes_found(&complexes, &dense) - 0.5).abs() < 1e-12);
        assert_eq!(complexes_found(&[], &dense), 0.0);
        assert_eq!(complexes_found(&complexes, &[]), 0.0);
    }
}
