//! Parallel candidate generation — an extension beyond the paper.
//!
//! Since the unified executor refactor this module is a thin compatibility
//! wrapper: every algorithm is parallelized by the shared engine
//! ([`crate::engine`]) itself — the lattice's depth-1 branches fan out as a
//! fork-join batch, and the BU/TD search trees run as subtree-level task
//! graphs — whenever `DccsOptions::threads > 1`, so
//! [`parallel_greedy_dccs`] simply runs [`crate::greedy_dccs_with_options`]
//! with the requested thread count. The output (cores, cover, and work
//! counters) is identical to the sequential run at every thread count; the
//! speed-up is reported by the `parallel_greedy` group of the
//! `dccs_algorithms` Criterion benchmark and by the `thread_scaling` /
//! `subtree_scaling` groups of `BENCH_dcc.json` (skipped, with a marker,
//! on single-core hosts).

use crate::config::{DccsOptions, DccsParams};
use crate::result::DccsResult;
use mlgraph::MultiLayerGraph;

/// Runs `GD-DCCS` with candidate generation spread over `num_threads`
/// executor workers (values of 0 or 1 fall back to a single worker).
///
/// Equivalent to [`crate::greedy_dccs_with_options`] with
/// [`DccsOptions::with_threads`]; kept for the historical call sites.
pub fn parallel_greedy_dccs(
    g: &MultiLayerGraph,
    params: &DccsParams,
    num_threads: usize,
) -> DccsResult {
    crate::greedy::greedy_dccs_with_options(g, params, &DccsOptions::with_threads(num_threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_dccs;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(16, 5);
        for layer in 0..3 {
            clique(&mut b, layer, &[0, 1, 2, 3, 4]);
        }
        for layer in 2..5 {
            clique(&mut b, layer, &[5, 6, 7, 8]);
        }
        for layer in [0, 4] {
            clique(&mut b, layer, &[9, 10, 11, 12]);
        }
        b.build()
    }

    #[test]
    fn matches_sequential_greedy_exactly() {
        let g = graph();
        for (d, s, k) in [(2, 2, 2), (3, 2, 3), (2, 3, 2)] {
            let params = DccsParams::new(d, s, k);
            let seq = greedy_dccs(&g, &params);
            for threads in [1, 2, 4] {
                let par = parallel_greedy_dccs(&g, &params, threads);
                assert_eq!(par.cores, seq.cores, "threads={threads}");
                assert_eq!(par.cover.to_vec(), seq.cover.to_vec(), "threads={threads}");
                assert_eq!(par.stats, seq.stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn zero_threads_falls_back_to_one_worker() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let r = parallel_greedy_dccs(&g, &params, 0);
        assert_eq!(r.cover_size(), greedy_dccs(&g, &params).cover_size());
    }

    #[test]
    fn stats_report_all_candidates() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let r = parallel_greedy_dccs(&g, &params, 4);
        assert_eq!(r.stats.candidates_generated, 10); // C(5,2)
    }
}
