//! Parallel candidate generation — an extension beyond the paper.
//!
//! `GD-DCCS` spends almost all of its time computing the `C(l, s)` candidate
//! d-CCs, and those computations are independent. This module fans the
//! candidate generation out over a pool of `crossbeam` scoped threads and
//! then runs the (cheap, inherently sequential) greedy selection, producing
//! exactly the same result as [`crate::greedy_dccs`]. The speed-up is
//! reported by the `parallel_greedy` group of the `dccs_algorithms` Criterion benchmark.

use crate::config::{DccsOptions, DccsParams};
use crate::greedy::select_greedy;
use crate::layer_subsets::combinations;
use crate::preprocess::preprocess;
use crate::result::{CoherentCore, DccsResult, SearchStats};
use coreness::PeelWorkspace;
use mlgraph::{MultiLayerGraph, VertexSet};
use parking_lot::Mutex;
use std::time::Instant;

/// Runs `GD-DCCS` with candidate generation parallelized over `num_threads`
/// worker threads (values of 0 or 1 fall back to a single worker).
///
/// The output is identical to [`crate::greedy_dccs`] up to tie-breaking among
/// candidates with equal marginal gain; the candidate list is sorted by layer
/// subset before selection so the result is deterministic.
pub fn parallel_greedy_dccs(
    g: &MultiLayerGraph,
    params: &DccsParams,
    num_threads: usize,
) -> DccsResult {
    params.validate(g.num_layers()).expect("invalid DCCS parameters");
    let start = Instant::now();
    let opts = DccsOptions::default();
    let mut stats = SearchStats::default();
    let pre = preprocess(g, params, &opts);
    stats.vertices_deleted = pre.vertices_deleted;

    let subsets: Vec<Vec<usize>> = combinations(g.num_layers(), params.s).collect();
    stats.candidates_generated = subsets.len();
    stats.dcc_calls = subsets.len();

    let workers = num_threads.max(1).min(subsets.len().max(1));
    let collected: Mutex<Vec<(usize, CoherentCore)>> =
        Mutex::new(Vec::with_capacity(subsets.len()));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                // One workspace and one seed buffer per worker thread: the
                // per-candidate steady state allocates only the emitted core.
                let mut ws = PeelWorkspace::new();
                let mut candidate_set = VertexSet::new(g.num_vertices());
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= subsets.len() {
                        break;
                    }
                    let subset = &subsets[idx];
                    candidate_set.copy_from(&pre.layer_cores[subset[0]]);
                    for &i in &subset[1..] {
                        candidate_set.intersect_with(&pre.layer_cores[i]);
                    }
                    if !candidate_set.is_empty() {
                        ws.peel_in_place(g, subset, params.d, &mut candidate_set);
                    }
                    collected
                        .lock()
                        .push((idx, CoherentCore::new(subset.clone(), candidate_set.clone())));
                }
            });
        }
    })
    .expect("candidate-generation worker panicked");

    let mut candidates = collected.into_inner();
    candidates.sort_by_key(|(idx, _)| *idx);
    let candidates: Vec<CoherentCore> = candidates.into_iter().map(|(_, c)| c).collect();
    let cores = select_greedy(g.num_vertices(), candidates, params.k, &mut stats);
    DccsResult::from_cores(g.num_vertices(), cores, stats, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_dccs;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(16, 5);
        for layer in 0..3 {
            clique(&mut b, layer, &[0, 1, 2, 3, 4]);
        }
        for layer in 2..5 {
            clique(&mut b, layer, &[5, 6, 7, 8]);
        }
        for layer in [0, 4] {
            clique(&mut b, layer, &[9, 10, 11, 12]);
        }
        b.build()
    }

    #[test]
    fn matches_sequential_greedy() {
        let g = graph();
        for (d, s, k) in [(2, 2, 2), (3, 2, 3), (2, 3, 2)] {
            let params = DccsParams::new(d, s, k);
            let seq = greedy_dccs(&g, &params);
            for threads in [1, 2, 4] {
                let par = parallel_greedy_dccs(&g, &params, threads);
                assert_eq!(par.cover_size(), seq.cover_size(), "threads={threads}");
                assert_eq!(par.num_cores(), seq.num_cores());
            }
        }
    }

    #[test]
    fn zero_threads_falls_back_to_one_worker() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let r = parallel_greedy_dccs(&g, &params, 0);
        assert_eq!(r.cover_size(), greedy_dccs(&g, &params).cover_size());
    }

    #[test]
    fn stats_report_all_candidates() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let r = parallel_greedy_dccs(&g, &params, 4);
        assert_eq!(r.stats.candidates_generated, 10); // C(5,2)
    }
}
