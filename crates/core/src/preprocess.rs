//! Preprocessing shared by the DCCS algorithms (Section IV-C):
//!
//! 1. **Vertex deletion** — iteratively remove every vertex that appears in
//!    fewer than `s` per-layer d-cores (`Num(v) < s`), recomputing the
//!    d-cores until a fixpoint; such a vertex can never belong to a d-CC on
//!    `s` layers.
//! 2. **Layer sorting** — order the layers by per-layer d-core size
//!    (descending for the bottom-up search, ascending for the top-down
//!    search).
//! 3. **Result initialization** (`InitTopK`, Appendix D) — greedily seed the
//!    temporary top-k result set so the pruning rules engage immediately.
//!
//! The per-layer d-core peels — both the initial full-universe pass and
//! every round of the vertex-deletion fixpoint — are independent across
//! layers, so the `*_on` entry points run them as fork-join batches on an
//! existing executor crew ([`crate::engine::PoolRef`]) — the same crew the
//! session threads through the whole query, so preprocessing pays no
//! worker spawn/join of its own. Each layer's peel is a pure function of
//! `(graph, layer, d, active)`, so the parallel batches are bit-identical
//! to the sequential loop at any width; the `*_threaded` entry points wrap
//! a scoped crew ([`crate::engine::with_pool`]) around them for one-shot
//! callers, and the sequential entry points are the `threads = 1` special
//! case.

use crate::config::{DccsOptions, DccsParams};
use crate::coverage::TopKDiversified;
use crate::engine::{with_pool, PoolRef};
use crate::fault::{self, site};
use crate::limits::QueryMonitor;
use crate::result::CoherentCore;
use coreness::{d_coherent_core_in, d_core_within_into, PeelWorkspace};
use mlgraph::{Layer, MultiLayerGraph, VertexSet};
use std::sync::Arc;

/// The state produced by preprocessing and consumed by every algorithm.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// Vertices surviving vertex deletion.
    pub active: VertexSet,
    /// Per-layer d-cores restricted to `active`, indexed by original layer.
    pub layer_cores: Vec<VertexSet>,
    /// `Num(v)`: the number of per-layer d-cores containing `v`
    /// (0 for inactive vertices).
    pub support: Vec<u32>,
    /// Number of vertices removed by vertex deletion.
    pub vertices_deleted: usize,
}

impl Preprocessed {
    /// Layer order for the bottom-up search: descending d-core size.
    /// Falls back to the natural order when layer sorting is disabled.
    pub fn bottom_up_layer_order(&self, opts: &DccsOptions) -> Vec<Layer> {
        let mut order: Vec<Layer> = (0..self.layer_cores.len()).collect();
        if opts.sort_layers {
            order.sort_by_key(|&i| std::cmp::Reverse(self.layer_cores[i].len()));
        }
        order
    }

    /// Layer order for the top-down search: ascending d-core size.
    pub fn top_down_layer_order(&self, opts: &DccsOptions) -> Vec<Layer> {
        let mut order: Vec<Layer> = (0..self.layer_cores.len()).collect();
        if opts.sort_layers {
            order.sort_by_key(|&i| self.layer_cores[i].len());
        }
        order
    }
}

/// Runs the vertex-deletion preprocessing (lines 1–7 of `BU-DCCS`) and
/// computes the per-layer d-cores of the surviving graph.
///
/// When `opts.vertex_deletion` is `false`, the d-cores are still computed
/// (every algorithm needs them) but no vertex is discarded for low support.
pub fn preprocess(g: &MultiLayerGraph, params: &DccsParams, opts: &DccsOptions) -> Preprocessed {
    let mut ws = PeelWorkspace::with_capacity(g.num_vertices(), 1);
    let initial = initial_layer_cores(g, params.d, &mut ws);
    preprocess_from(g, params, opts, &mut ws, initial)
}

/// The per-layer d-cores over the **full** vertex set — the first step of
/// [`preprocess`], and the only one that depends on `d` alone (vertex
/// deletion additionally depends on `s`). [`crate::engine::SearchContext`]
/// memoizes this per `d`, so parameter sweeps at fixed `d` never re-peel
/// the layers.
pub fn initial_layer_cores(g: &MultiLayerGraph, d: u32, ws: &mut PeelWorkspace) -> Vec<VertexSet> {
    initial_layer_cores_threaded(g, d, ws, 1)
}

/// [`initial_layer_cores`] with the per-layer peels spread over a
/// `threads`-wide scoped executor crew as one fork-join batch (the layers
/// are independent, so the result is bit-identical to the sequential
/// pass). One-shot wrapper over [`initial_layer_cores_on`].
pub fn initial_layer_cores_threaded(
    g: &MultiLayerGraph,
    d: u32,
    ws: &mut PeelWorkspace,
    threads: usize,
) -> Vec<VertexSet> {
    with_pool(threads, |pool| initial_layer_cores_on(g, d, ws, pool))
}

/// [`initial_layer_cores`] as one fork-join batch on an **existing** crew
/// (the session's single-crew query path). With no workers on the crew the
/// plain sequential loop runs on `ws`.
pub fn initial_layer_cores_on(
    g: &MultiLayerGraph,
    d: u32,
    ws: &mut PeelWorkspace,
    pool: &PoolRef<'_>,
) -> Vec<VertexSet> {
    let n = g.num_vertices();
    let l = g.num_layers();
    let active = g.full_vertex_set();
    if pool.workers() == 0 || l <= 1 {
        let mut layer_cores: Vec<VertexSet> = vec![VertexSet::new(n); l];
        for (i, core) in layer_cores.iter_mut().enumerate() {
            fault::check(site::PREPROCESS_LAYER);
            d_core_within_into(ws, g.layer(i), d, &active, core);
        }
        return layer_cores;
    }
    let active = &active;
    let jobs: Vec<_> = (0..l)
        .map(|i| {
            move |wws: &mut PeelWorkspace| {
                fault::check(site::PREPROCESS_LAYER);
                let mut core = VertexSet::new(n);
                d_core_within_into(wws, g.layer(i), d, active, &mut core);
                core
            }
        })
        .collect();
    pool.map(ws, jobs)
}

/// [`preprocess`] continued from already-computed [`initial_layer_cores`]
/// (which the caller may have pulled from a memo): runs the vertex-deletion
/// fixpoint and assembles the [`Preprocessed`] state. Bit-identical to
/// [`preprocess`] because the initial cores are a deterministic function of
/// `(g, d)`.
pub fn preprocess_from(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
    ws: &mut PeelWorkspace,
    layer_cores: Vec<VertexSet>,
) -> Preprocessed {
    preprocess_from_threaded(g, params, opts, ws, layer_cores, 1)
}

/// [`preprocess_from`] with every round of the vertex-deletion fixpoint
/// re-peeling the layers as one fork-join batch over a `threads`-wide
/// scoped executor crew. One-shot wrapper over [`preprocess_from_on`].
pub fn preprocess_from_threaded(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
    ws: &mut PeelWorkspace,
    layer_cores: Vec<VertexSet>,
    threads: usize,
) -> Preprocessed {
    with_pool(threads, |pool| preprocess_from_on(g, params, opts, ws, layer_cores, pool))
}

/// [`preprocess_from`] on an **existing** crew (the session's single-crew
/// query path): every round of the vertex-deletion fixpoint re-peels the
/// layers as one fork-join batch. The victims-and-support bookkeeping
/// between rounds stays on the driver, so the result is bit-identical to
/// the sequential fixpoint at any width; with no workers on the crew the
/// plain sequential loop runs on `ws`.
pub fn preprocess_from_on(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
    ws: &mut PeelWorkspace,
    layer_cores: Vec<VertexSet>,
    pool: &PoolRef<'_>,
) -> Preprocessed {
    preprocess_from_monitored(g, params, opts, ws, layer_cores, pool, None)
}

/// [`preprocess_from_on`] with a limit monitor checked once per fixpoint
/// round. An early exit is always safe here: stopping the fixpoint before
/// convergence leaves `active` a (less-pruned) **superset** of the
/// converged universe, which every downstream search accepts as valid
/// input — preprocessing only ever shrinks the problem, it never decides
/// results.
#[allow(clippy::too_many_arguments)]
pub(crate) fn preprocess_from_monitored(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
    ws: &mut PeelWorkspace,
    mut layer_cores: Vec<VertexSet>,
    pool: &PoolRef<'_>,
    monitor: Option<&QueryMonitor>,
) -> Preprocessed {
    let n = g.num_vertices();
    let mut active = g.full_vertex_set();
    let mut support = compute_support(n, &layer_cores, &active);

    let mut deleted = 0usize;
    if opts.vertex_deletion {
        if pool.workers() == 0 || g.num_layers() <= 1 {
            loop {
                fault::check(site::PREPROCESS_ROUND);
                if monitor.is_some_and(|m| m.check().is_some()) {
                    break;
                }
                let victims: Vec<u32> =
                    active.iter().filter(|&v| (support[v as usize] as usize) < params.s).collect();
                if victims.is_empty() {
                    break;
                }
                for &v in &victims {
                    active.remove(v);
                    deleted += 1;
                }
                // Re-peel every layer core into its existing set: the
                // fixpoint loop allocates nothing after the first iteration.
                for (i, core) in layer_cores.iter_mut().enumerate() {
                    fault::check(site::PREPROCESS_LAYER);
                    d_core_within_into(ws, g.layer(i), params.d, &active, core);
                }
                support = compute_support(n, &layer_cores, &active);
            }
        } else {
            loop {
                fault::check(site::PREPROCESS_ROUND);
                if monitor.is_some_and(|m| m.check().is_some()) {
                    break;
                }
                let victims: Vec<u32> =
                    active.iter().filter(|&v| (support[v as usize] as usize) < params.s).collect();
                if victims.is_empty() {
                    break;
                }
                for &v in &victims {
                    active.remove(v);
                    deleted += 1;
                }
                // One batch re-peels every layer. Jobs own their core
                // buffer (taken out of the slot and returned through the
                // batch result) and share a snapshot of the shrunken
                // active set.
                let shared_active = Arc::new(active.clone());
                let jobs: Vec<_> = layer_cores
                    .iter_mut()
                    .enumerate()
                    .map(|(i, slot)| {
                        let mut core = std::mem::replace(slot, VertexSet::new(0));
                        let shared_active = Arc::clone(&shared_active);
                        move |wws: &mut PeelWorkspace| {
                            fault::check(site::PREPROCESS_LAYER);
                            d_core_within_into(
                                wws,
                                g.layer(i),
                                params.d,
                                &shared_active,
                                &mut core,
                            );
                            core
                        }
                    })
                    .collect();
                let repeeled = pool.map(ws, jobs);
                for (slot, core) in layer_cores.iter_mut().zip(repeeled) {
                    *slot = core;
                }
                support = compute_support(n, &layer_cores, &active);
            }
        }
    }

    Preprocessed { active, layer_cores, support, vertices_deleted: deleted }
}

fn compute_support(n: usize, layer_cores: &[VertexSet], active: &VertexSet) -> Vec<u32> {
    let mut support = vec![0u32; n];
    for core in layer_cores {
        for v in core.iter() {
            if active.contains(v) {
                support[v as usize] += 1;
            }
        }
    }
    support
}

/// The `InitTopK` procedure (Appendix D): greedily builds `k` seed d-CCs.
///
/// For each of the `k` rounds it picks the layer whose d-core adds the most
/// uncovered vertices, greedily extends the layer set to size `s` by
/// maximizing the running intersection, computes the d-CC of the resulting
/// layer subset, and offers it to the result set via `Update`.
pub fn init_topk(
    g: &MultiLayerGraph,
    params: &DccsParams,
    pre: &Preprocessed,
    topk: &mut TopKDiversified,
) {
    let mut ws = PeelWorkspace::new();
    let mut running = VertexSet::new(0);
    let mut seed = VertexSet::new(0);
    init_topk_in(&mut ws, &mut running, &mut seed, g, params, pre, topk);
}

/// [`init_topk`] with explicit scratch: `running` accumulates the running
/// layer-core intersection and `seed` receives each seed core (both resized
/// on capacity mismatch, reused otherwise), so a
/// [`crate::engine::SearchContext`]-driven sweep peels the `k` seeding
/// rounds without per-round intersection/peel-output allocations. Each
/// round still clones `seed` once to hand `Update` an owned candidate —
/// that clone is inherent to offering ownership, not scratch churn (cf.
/// [`TopKDiversified::cover_set_into`] for the same reuse protocol on the
/// cover side).
pub fn init_topk_in(
    ws: &mut PeelWorkspace,
    running: &mut VertexSet,
    seed: &mut VertexSet,
    g: &MultiLayerGraph,
    params: &DccsParams,
    pre: &Preprocessed,
    topk: &mut TopKDiversified,
) {
    let l = g.num_layers();
    if l == 0 {
        return;
    }
    let n = g.num_vertices();
    if running.capacity() != n {
        *running = VertexSet::new(n);
    }
    for _ in 0..params.k {
        // Layer whose d-core maximally enlarges the current cover.
        let Some(first) = (0..l).max_by_key(|&i| topk.marginal_gain(&pre.layer_cores[i])) else {
            return;
        };
        let mut chosen = vec![first];
        running.copy_from(&pre.layer_cores[first]);
        while chosen.len() < params.s {
            let Some(next) = (0..l)
                .filter(|i| !chosen.contains(i))
                .max_by_key(|&j| running.intersection_len(&pre.layer_cores[j]))
            else {
                break;
            };
            chosen.push(next);
            running.intersect_with(&pre.layer_cores[next]);
        }
        if chosen.len() < params.s {
            return;
        }
        d_coherent_core_in(ws, g, &chosen, params.d, running, seed);
        topk.try_update(CoherentCore::new(chosen, seed.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    /// Layers 0 and 1 share a 4-clique on {0,1,2,3}; layer 2 has a triangle
    /// on {4,5,6}; vertex 7 is a pendant everywhere.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(8, 3);
        for layer in [0, 1] {
            for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 7)] {
                b.add_edge(layer, u, v).unwrap();
            }
        }
        for (u, v) in [(4, 5), (5, 6), (4, 6), (6, 7)] {
            b.add_edge(2, u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn per_layer_cores_computed() {
        let g = graph();
        let params = DccsParams::new(2, 1, 2);
        let pre = preprocess(&g, &params, &DccsOptions::default());
        assert_eq!(pre.layer_cores[0].to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(pre.layer_cores[2].to_vec(), vec![4, 5, 6]);
    }

    #[test]
    fn vertex_deletion_removes_low_support_vertices() {
        let g = graph();
        // s = 2: vertices must appear in at least 2 per-layer 2-cores.
        let params = DccsParams::new(2, 2, 2);
        let pre = preprocess(&g, &params, &DccsOptions::default());
        // {0,1,2,3} are in the 2-core of layers 0 and 1 → kept.
        // {4,5,6} only in layer 2's core → deleted. 7 in none → deleted.
        assert_eq!(pre.active.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(pre.vertices_deleted, 4);
        assert!(pre.support[0] >= 2);
        assert_eq!(pre.support[4], 0);
    }

    #[test]
    fn vertex_deletion_can_be_disabled() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let pre = preprocess(&g, &params, &DccsOptions::no_vertex_deletion());
        assert_eq!(pre.active.len(), 8);
        assert_eq!(pre.vertices_deleted, 0);
        // Support is still computed.
        assert_eq!(pre.support[4], 1);
    }

    #[test]
    fn deletion_cascades_until_fixpoint() {
        // A chain of triangles sharing single vertices: removing a low-support
        // part can push neighbors below the threshold.
        let mut b = MultiLayerGraphBuilder::new(6, 2);
        // layer 0: triangles {0,1,2} and {2,3,4} and edge 4-5
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)] {
            b.add_edge(0, u, v).unwrap();
        }
        // layer 1: only triangle {0,1,2}
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            b.add_edge(1, u, v).unwrap();
        }
        let g = b.build();
        let params = DccsParams::new(2, 2, 1);
        let pre = preprocess(&g, &params, &DccsOptions::default());
        assert_eq!(pre.active.to_vec(), vec![0, 1, 2]);
    }

    /// The parallel per-layer batches (initial pass and fixpoint rounds)
    /// must be bit-identical to the sequential loops at every width.
    #[test]
    fn threaded_preprocessing_is_bit_identical_to_sequential() {
        let g = graph();
        for (d, s) in [(2u32, 1usize), (2, 2), (3, 2), (2, 3)] {
            let params = DccsParams::new(d, s, 2);
            for opts in [DccsOptions::default(), DccsOptions::no_vertex_deletion()] {
                let mut ws = PeelWorkspace::new();
                let initial = initial_layer_cores(&g, d, &mut ws);
                let seq = preprocess_from(&g, &params, &opts, &mut ws, initial.clone());
                for threads in [2usize, 4] {
                    let par_initial = initial_layer_cores_threaded(&g, d, &mut ws, threads);
                    assert_eq!(par_initial, initial, "initial d={d} threads={threads}");
                    let par =
                        preprocess_from_threaded(&g, &params, &opts, &mut ws, par_initial, threads);
                    let label = format!("d={d} s={s} threads={threads}");
                    assert_eq!(par.active.to_vec(), seq.active.to_vec(), "{label}");
                    assert_eq!(par.layer_cores, seq.layer_cores, "{label}");
                    assert_eq!(par.support, seq.support, "{label}");
                    assert_eq!(par.vertices_deleted, seq.vertices_deleted, "{label}");
                }
            }
        }
    }

    #[test]
    fn layer_orders_follow_core_sizes() {
        let g = graph();
        let params = DccsParams::new(2, 1, 2);
        let pre = preprocess(&g, &params, &DccsOptions::default());
        // Core sizes: layer0 = 4, layer1 = 4, layer2 = 3.
        let bu = pre.bottom_up_layer_order(&DccsOptions::default());
        assert_eq!(*bu.last().unwrap(), 2);
        let td = pre.top_down_layer_order(&DccsOptions::default());
        assert_eq!(td[0], 2);
        // Sorting disabled keeps natural order.
        let natural = pre.bottom_up_layer_order(&DccsOptions::no_sort_layers());
        assert_eq!(natural, vec![0, 1, 2]);
    }

    #[test]
    fn init_topk_seeds_k_cores() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let pre = preprocess(&g, &params, &DccsOptions::default());
        let mut topk = TopKDiversified::new(g.num_vertices(), params.k);
        init_topk(&g, &params, &pre, &mut topk);
        assert_eq!(topk.len(), 2);
        // The best seed covers the shared 4-clique.
        assert!(topk.cover_size() >= 4);
        let cover = topk.cover_set();
        for v in [0, 1, 2, 3] {
            assert!(cover.contains(v));
        }
    }

    #[test]
    fn init_topk_with_s_equal_one() {
        let g = graph();
        let params = DccsParams::new(2, 1, 3);
        let pre = preprocess(&g, &params, &DccsOptions::default());
        let mut topk = TopKDiversified::new(g.num_vertices(), params.k);
        init_topk(&g, &params, &pre, &mut topk);
        assert!(topk.len() >= 2);
        // With s = 1 the best two seeds cover both the clique and the triangle.
        assert!(topk.cover_size() >= 7);
    }
}
