//! `RefineU` and `RefineC` — the refinement procedures of Sections V-B and
//! V-C used by the top-down search.
//!
//! * [`refine_u`] shrinks a parent potential vertex set `U_L` into the child
//!   potential set `U_{L'}` using the two refinement rules of Fig. 9:
//!   degree pruning on the Class-1 layers (layers that can no longer be
//!   removed) and support pruning against the Class-2 layers.
//! * [`refine_c`] extracts the exact d-CC `C_{L'}^d(G)` from `U_{L'}` by
//!   walking the hierarchical [`VertexIndex`](crate::index::VertexIndex)
//!   bottom-up (Fig. 10), discarding vertices via Lemma 9 and cascading
//!   degree-bound violations (`CascadeD`). A final restricted peel over the
//!   surviving vertices guarantees the output equals the true d-CC while
//!   keeping the O(n′·l′ + m′) bound (Lemma 10).

use crate::index::VertexIndex;
use mlgraph::{Layer, MultiLayerGraph, Vertex, VertexSet};

/// Refines the parent potential set `U_L` into `U_{L'}` (Fig. 9).
///
/// `class1_layers` (`M_{L'}`) are the layers of `L'` that can no longer be
/// removed on the way down to level `s`; every surviving vertex must have
/// degree ≥ `d` inside the potential set on each of them. `class2_layers`
/// (`N_{L'}`) are the still-removable layers; every surviving vertex must be
/// contained in at least `s − |M_{L'}|` of their (preprocessed) d-cores.
pub fn refine_u(
    g: &MultiLayerGraph,
    d: u32,
    s: usize,
    parent_potential: &VertexSet,
    class1_layers: &[Layer],
    class2_layers: &[Layer],
    layer_cores: &[VertexSet],
) -> VertexSet {
    let mut u = parent_potential.clone();
    // Refinement method 2 (static): support within the Class-2 d-cores.
    let needed = s.saturating_sub(class1_layers.len());
    if needed > 0 {
        let victims: Vec<Vertex> = u
            .iter()
            .filter(|&v| {
                let support = class2_layers.iter().filter(|&&j| layer_cores[j].contains(v)).count();
                support < needed
            })
            .collect();
        for v in victims {
            u.remove(v);
        }
    }
    // Refinement method 1 (peeling): degree ≥ d on every Class-1 layer.
    // This is exactly a multi-layer threshold peel over the Class-1 layers,
    // so it borrows the thread-shared peeling workspace.
    if class1_layers.is_empty() || d == 0 {
        return u;
    }
    coreness::workspace::with_thread_workspace(|ws| {
        ws.peel_in_place(g, class1_layers, d, &mut u);
    });
    u
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Unexplored,
    Undetermined,
    Discarded,
    Outside,
}

/// Extracts `C_{L'}^d(G)` from the potential set `U_{L'}` using the
/// hierarchical index (Fig. 10), then verifies the result with a restricted
/// peel so the output is exactly the d-CC.
pub fn refine_c(
    g: &MultiLayerGraph,
    d: u32,
    index: &VertexIndex,
    potential: &VertexSet,
    layers: &[Layer],
) -> VertexSet {
    let n = g.num_vertices();
    // Lemma 8: restrict to partitions I_h with h ≥ |L'|.
    let z = index.restrict_by_partition(potential, layers.len() as u32);
    if z.is_empty() {
        return z;
    }
    let layers_mask: u64 = layers.iter().fold(0u64, |m, &i| m | (1u64 << i));

    let mut state = vec![State::Outside; n];
    for v in z.iter() {
        state[v as usize] = State::Unexplored;
    }
    // d⁺_i(v): undetermined/unexplored neighbors of v in G_i[Z], per layer of L'.
    let mut d_plus: Vec<Vec<u32>> = layers
        .iter()
        .map(|&i| {
            let csr = g.layer(i);
            let mut deg = vec![0u32; n];
            for v in z.iter() {
                deg[v as usize] = csr.degree_within(v, &z) as u32;
            }
            deg
        })
        .collect();

    let cascade = |v: Vertex, state: &mut Vec<State>, d_plus: &mut Vec<Vec<u32>>| {
        // CascadeD: propagate the discard of `v` through undetermined
        // neighbors whose upper-bound degree drops below d.
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            for (j, &i) in layers.iter().enumerate() {
                for &u in g.layer(i).neighbors(x) {
                    if state[u as usize] != State::Undetermined {
                        continue;
                    }
                    let du = &mut d_plus[j][u as usize];
                    *du = du.saturating_sub(1);
                    if *du < d {
                        state[u as usize] = State::Discarded;
                        stack.push(u);
                    }
                }
            }
        }
    };

    for level in &index.levels {
        let on_level: Vec<Vertex> =
            level.iter().copied().filter(|&v| state[v as usize] != State::Outside).collect();
        if on_level.is_empty() {
            continue;
        }
        let has_undetermined = on_level.iter().any(|&v| state[v as usize] == State::Undetermined);
        if !has_undetermined {
            // Case 1: seed level — only unexplored or discarded vertices here.
            for &v in &on_level {
                if state[v as usize] != State::Unexplored {
                    continue;
                }
                let sound = index.layers_subset_of_lv(v, layers_mask)
                    && layers.iter().enumerate().all(|(j, _)| d_plus[j][v as usize] >= d);
                if !sound {
                    state[v as usize] = State::Discarded;
                    cascade(v, &mut state, &mut d_plus);
                } else if state[v as usize] == State::Unexplored {
                    state[v as usize] = State::Undetermined;
                    mark_higher_neighbors(index, v, &mut state);
                }
            }
        } else {
            // Case 2: check undetermined vertices, then discard the vertices
            // that no lower-level core vertex ever reached.
            for &v in &on_level {
                if state[v as usize] != State::Undetermined {
                    continue;
                }
                if layers.iter().enumerate().any(|(j, _)| d_plus[j][v as usize] < d) {
                    state[v as usize] = State::Discarded;
                    cascade(v, &mut state, &mut d_plus);
                } else {
                    mark_higher_neighbors(index, v, &mut state);
                }
            }
            for &v in &on_level {
                if state[v as usize] == State::Unexplored {
                    state[v as usize] = State::Discarded;
                    cascade(v, &mut state, &mut d_plus);
                }
            }
        }
    }

    let mut undetermined = VertexSet::new(n);
    for v in z.iter() {
        if state[v as usize] == State::Undetermined {
            undetermined.insert(v);
        }
    }
    // Final restricted peel: guarantees exactness (the index search never
    // discards a true core vertex, so the d-CC is a subset of `undetermined`
    // and one peel recovers it exactly).
    coreness::d_coherent_core(g, layers, d, &undetermined)
}

fn mark_higher_neighbors(index: &VertexIndex, v: Vertex, state: &mut [State]) {
    let lv = index.level_of[v as usize];
    for &u in index.union_graph.neighbors(v) {
        if state[u as usize] == State::Unexplored && index.level_of[u as usize] > lv {
            state[u as usize] = State::Undetermined;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DccsOptions, DccsParams};
    use crate::index::VertexIndex;
    use crate::preprocess::{preprocess, Preprocessed};
    use coreness::d_coherent_core;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Layers 0–2 contain clique A = {0,1,2,3}; layers 0–1 contain clique
    /// B = {4,5,6,7}; layer 2 additionally links B loosely (a path).
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(8, 3);
        for layer in 0..3 {
            clique(&mut b, layer, &[0, 1, 2, 3]);
        }
        for layer in 0..2 {
            clique(&mut b, layer, &[4, 5, 6, 7]);
        }
        for (u, v) in [(4, 5), (5, 6), (6, 7)] {
            b.add_edge(2, u, v).unwrap();
        }
        b.build()
    }

    fn setup(d: u32, s: usize) -> (MultiLayerGraph, Preprocessed, VertexIndex) {
        let g = graph();
        let params = DccsParams::new(d, s, 2);
        let pre = preprocess(&g, &params, &DccsOptions::default());
        let idx = VertexIndex::build(&g, d, &pre);
        (g, pre, idx)
    }

    #[test]
    fn refine_u_degree_rule_removes_sparse_vertices() {
        let (g, pre, _) = setup(3, 2);
        // Class 1 = {2}: on layer 2 only clique A is 3-dense.
        let u = refine_u(&g, 3, 2, &pre.active, &[2], &[0, 1], &pre.layer_cores);
        assert_eq!(u.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn refine_u_support_rule_uses_class2_cores() {
        let (g, pre, _) = setup(3, 2);
        // No Class-1 layers: every vertex must lie in ≥ 2 of the Class-2 cores.
        let u = refine_u(&g, 3, 2, &pre.active, &[], &[0, 1, 2], &pre.layer_cores);
        // A is in 3 cores, B in 2 cores → all kept.
        assert_eq!(u.len(), 8);
        let u = refine_u(&g, 3, 3, &pre.active, &[], &[0, 1, 2], &pre.layer_cores);
        // s = 3 requires membership in all three cores → only A.
        assert_eq!(u.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn refine_u_is_never_smaller_than_the_true_core() {
        let (g, pre, _) = setup(3, 2);
        for (class1, class2) in [
            (vec![0], vec![1, 2]),
            (vec![0, 1], vec![2]),
            (vec![2], vec![0, 1]),
            (vec![], vec![0, 1, 2]),
        ] {
            let u = refine_u(&g, 3, 2, &pre.active, &class1, &class2, &pre.layer_cores);
            // Any level-s descendant keeps every Class-1 layer and fills the
            // rest from Class-2; each such descendant's core must be inside U.
            let all: Vec<usize> = class1.iter().chain(class2.iter()).copied().collect();
            for &a in &all {
                for &b in &all {
                    if a < b && class1.iter().all(|c| *c == a || *c == b) {
                        let core = d_coherent_core(&g, &[a, b], 3, &pre.active);
                        assert!(core.is_subset_of(&u), "class1={class1:?} L={:?}", [a, b]);
                    }
                }
            }
        }
    }

    #[test]
    fn refine_c_matches_plain_dcc() {
        let (g, pre, idx) = setup(3, 2);
        for layers in [vec![0usize, 1], vec![0, 2], vec![1, 2], vec![0, 1, 2]] {
            let expected = d_coherent_core(&g, &layers, 3, &pre.active);
            let got = refine_c(&g, 3, &idx, &pre.active, &layers);
            assert_eq!(got.to_vec(), expected.to_vec(), "layers {layers:?}");
        }
    }

    #[test]
    fn refine_c_respects_restricted_potential_sets() {
        let (g, pre, idx) = setup(3, 2);
        // Shrink the potential set to clique A only; the result must stay
        // inside it.
        let mut potential = pre.active.clone();
        for v in 4..8u32 {
            potential.remove(v);
        }
        let got = refine_c(&g, 3, &idx, &potential, &[0, 1]);
        let expected = d_coherent_core(&g, &[0, 1], 3, &potential);
        assert_eq!(got.to_vec(), expected.to_vec());
        assert_eq!(got.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn refine_c_empty_potential_set() {
        let (g, _, idx) = setup(3, 2);
        let empty = VertexSet::new(g.num_vertices());
        assert!(refine_c(&g, 3, &idx, &empty, &[0, 1]).is_empty());
    }

    #[test]
    fn refine_u_with_d_zero_only_applies_support_rule() {
        let (g, pre, _) = setup(2, 2);
        let u = refine_u(&g, 0, 1, &pre.active, &[0], &[1, 2], &pre.layer_cores);
        assert_eq!(u.len(), pre.active.len());
    }
}
