//! Result types: coherent cores, search statistics, and the algorithm output.

use crate::algorithm::Algorithm;
use crate::engine::IndexPath;
use crate::limits::LimitKind;
use crate::serve::ServePath;
use mlgraph::{Layer, Vertex, VertexSet};
use std::time::Duration;

/// One d-coherent core: the layer subset `L` it was computed for and the
/// vertex set `C_L^d(G)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoherentCore {
    /// The layer subset (sorted original layer indices).
    pub layers: Vec<Layer>,
    /// The vertices of the core.
    pub vertices: VertexSet,
}

impl CoherentCore {
    /// Creates a core, normalizing the layer order.
    pub fn new(mut layers: Vec<Layer>, vertices: VertexSet) -> Self {
        layers.sort_unstable();
        CoherentCore { layers, vertices }
    }

    /// Number of vertices in the core.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the core is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Sorted vertex list.
    pub fn vertex_vec(&self) -> Vec<Vertex> {
        self.vertices.to_vec()
    }
}

/// Wall-clock time spent in each phase of a run. Populated by all four
/// algorithms; excluded from [`SearchStats`] equality (timings are never
/// deterministic) so work-counter assertions stay exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Vertex deletion, layer sorting, and `InitTopK` preprocessing.
    pub preprocess: Duration,
    /// Candidate generation / search-tree traversal.
    pub search: Duration,
    /// Final greedy max-k-cover selection (zero for the search-tree
    /// algorithms, which maintain top-k incrementally during search).
    pub select: Duration,
}

/// Counters describing how much work a DCCS run performed. These back the
/// paper's search-space-reduction claims (Section VI: "the bottom-up approach
/// reduces the search space by 80–90 % in comparison with the greedy
/// algorithm").
///
/// Equality compares the work counters and limit flags but **not**
/// [`phase`](SearchStats::phase) timings, so the determinism tests'
/// `assert_eq!(stats)` checks remain meaningful.
#[derive(Clone, Debug)]
pub struct SearchStats {
    /// Number of candidate d-CCs (layer subsets of size exactly `s`) whose
    /// core was actually computed.
    pub candidates_generated: usize,
    /// Total number of core computations (`dCC`/`RefineC` calls), including
    /// internal nodes of the search tree.
    pub dcc_calls: usize,
    /// Number of search-tree subtrees cut off by a pruning rule.
    pub subtrees_pruned: usize,
    /// Number of times the temporary top-k result set accepted an update.
    pub updates_accepted: usize,
    /// Number of vertices removed by the vertex-deletion preprocessing.
    pub vertices_deleted: usize,
    /// Which adjacency representation candidate generation peeled over —
    /// the [`crate::engine`] cost model's per-run dense-vs-CSR decision.
    /// `None` for the search-tree algorithms, which always peel CSR.
    pub index_path: Option<IndexPath>,
    /// Heap footprint in bytes of the adjacency index candidate generation
    /// peeled over (flat dense rows or compressed containers; 0 on the CSR
    /// path, where no index is built). A memory diagnostic for the
    /// large-scale bench tier — excluded from equality like the timings:
    /// it describes the machine-side cost, not the answer.
    pub index_bytes: usize,
    /// Capacity in bytes of the driver workspace's peel scratch buffers
    /// after the run (degree arrays, cascade queue, bins). Like
    /// [`index_bytes`](SearchStats::index_bytes) this is a memory
    /// diagnostic, excluded from equality.
    pub peel_scratch_bytes: usize,
    /// Which algorithm actually produced this result. Always the concrete
    /// algorithm — a query submitted with [`Algorithm::Auto`] records the
    /// resolved choice here, which is how the selection policy's decisions
    /// are observed and benchmarked.
    pub algorithm: Option<Algorithm>,
    /// Which query limit stopped the run early, if any. A limited run's
    /// result is the best-so-far partial; the session surfaces it inside the
    /// matching [`crate::DccsError`] variant.
    pub limit_hit: Option<LimitKind>,
    /// `true` when the run finished its full search; `false` when a limit
    /// stopped it early and the result is a partial.
    pub complete: bool,
    /// Set when the degradation ladder reran this query with a cheaper
    /// algorithm ([`crate::QueryLimits::degrade`]): the algorithm that was
    /// originally requested and gave up.
    pub degraded_from: Option<Algorithm>,
    /// Which serve path answered the query: re-peeling the graph or
    /// reading candidates from a precomputed [`crate::DccIndex`]. Stamped
    /// by the session; `None` for the one-shot free functions, which have
    /// no index to serve from. Excluded from equality (like `phase`): the
    /// serve path describes *how* an answer was derived, not the answer —
    /// the two paths are bit-identical on everything equality compares.
    pub serve: Option<ServePath>,
    /// `true` when the [`crate::service::QueryService`] answered this query
    /// out of its result cache instead of running it. Excluded from
    /// equality (like `phase` and `serve`): a cached answer *is* the
    /// computed answer — only its provenance differs.
    pub served_from_cache: bool,
    /// The epoch of the [`crate::service::GraphSnapshot`] this query ran
    /// against, stamped by the session and the query service; `None` for
    /// the one-shot free functions, which have no snapshot. Excluded from
    /// equality: the epoch identifies *which* published graph version
    /// answered, not the answer.
    pub graph_epoch: Option<u64>,
    /// Per-phase wall-clock breakdown (excluded from equality).
    pub phase: PhaseTimes,
}

impl Default for SearchStats {
    fn default() -> Self {
        SearchStats {
            candidates_generated: 0,
            dcc_calls: 0,
            subtrees_pruned: 0,
            updates_accepted: 0,
            vertices_deleted: 0,
            index_path: None,
            index_bytes: 0,
            peel_scratch_bytes: 0,
            algorithm: None,
            limit_hit: None,
            complete: true,
            degraded_from: None,
            serve: None,
            served_from_cache: false,
            graph_epoch: None,
            phase: PhaseTimes::default(),
        }
    }
}

impl PartialEq for SearchStats {
    fn eq(&self, other: &Self) -> bool {
        self.candidates_generated == other.candidates_generated
            && self.dcc_calls == other.dcc_calls
            && self.subtrees_pruned == other.subtrees_pruned
            && self.updates_accepted == other.updates_accepted
            && self.vertices_deleted == other.vertices_deleted
            && self.index_path == other.index_path
            && self.algorithm == other.algorithm
            && self.limit_hit == other.limit_hit
            && self.complete == other.complete
            && self.degraded_from == other.degraded_from
    }
}

impl Eq for SearchStats {}

/// The output of a DCCS algorithm.
#[derive(Clone, Debug)]
pub struct DccsResult {
    /// The reported diversified d-CCs (at most `k`).
    pub cores: Vec<CoherentCore>,
    /// The union of the reported cores' vertex sets, `Cov(R)`.
    pub cover: VertexSet,
    /// Work counters.
    pub stats: SearchStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl DccsResult {
    /// Assembles a result from cores, recomputing the cover.
    pub fn from_cores(
        num_vertices: usize,
        cores: Vec<CoherentCore>,
        stats: SearchStats,
        elapsed: Duration,
    ) -> Self {
        let mut cover = VertexSet::new(num_vertices);
        for core in &cores {
            cover.union_with(&core.vertices);
        }
        DccsResult { cores, cover, stats, elapsed }
    }

    /// Assembles a result from the temporary top-k set, materializing
    /// `Cov(R)` through the set's incremental bookkeeping
    /// ([`crate::coverage::TopKDiversified::cover_set_into`]) instead of
    /// re-unioning the cores. Used by the search-tree algorithms.
    pub fn from_topk(
        num_vertices: usize,
        topk: crate::coverage::TopKDiversified,
        stats: SearchStats,
        elapsed: Duration,
    ) -> Self {
        let mut cover = VertexSet::new(num_vertices);
        topk.cover_set_into(&mut cover);
        DccsResult { cores: topk.into_cores(), cover, stats, elapsed }
    }

    /// `|Cov(R)|` — the objective value of the DCCS problem.
    pub fn cover_size(&self) -> usize {
        self.cover.len()
    }

    /// Number of reported cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The largest reported core size, or 0 when no core was reported.
    pub fn max_core_size(&self) -> usize {
        self.cores.iter().map(|c| c.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(layers: Vec<Layer>, vertices: &[Vertex]) -> CoherentCore {
        CoherentCore::new(layers, VertexSet::from_iter(10, vertices.iter().copied()))
    }

    #[test]
    fn coherent_core_normalizes_layers() {
        let c = core(vec![3, 1, 2], &[4, 2]);
        assert_eq!(c.layers, vec![1, 2, 3]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.vertex_vec(), vec![2, 4]);
    }

    #[test]
    fn empty_core() {
        let c = CoherentCore::new(vec![0], VertexSet::new(10));
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn result_cover_is_union_of_cores() {
        let cores = vec![core(vec![0], &[1, 2, 3]), core(vec![1], &[3, 4])];
        let r = DccsResult::from_cores(10, cores, SearchStats::default(), Duration::ZERO);
        assert_eq!(r.cover_size(), 4);
        assert_eq!(r.cover.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(r.num_cores(), 2);
        assert_eq!(r.max_core_size(), 3);
    }

    #[test]
    fn stats_default_is_complete_and_equality_ignores_phase_times() {
        let a = SearchStats::default();
        assert!(a.complete);
        assert_eq!(a.limit_hit, None);
        let mut b = SearchStats::default();
        b.phase.search = Duration::from_millis(42);
        assert_eq!(a, b, "phase timings must not affect stats equality");
        b.serve = Some(ServePath::Index);
        assert_eq!(a, b, "the serve path must not affect stats equality");
        b.served_from_cache = true;
        b.graph_epoch = Some(7);
        assert_eq!(a, b, "cache provenance must not affect stats equality");
        b.index_bytes = 1024;
        b.peel_scratch_bytes = 2048;
        assert_eq!(a, b, "memory diagnostics must not affect stats equality");
        b.complete = false;
        assert_ne!(a, b);
    }

    #[test]
    fn result_with_no_cores() {
        let r = DccsResult::from_cores(5, vec![], SearchStats::default(), Duration::ZERO);
        assert_eq!(r.cover_size(), 0);
        assert_eq!(r.max_core_size(), 0);
    }
}
