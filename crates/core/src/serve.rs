//! Serve-from-index: a persistent d-CC hierarchy answering repeat queries.
//!
//! The paper's Section V observation is that the expensive part of a DCCS
//! query — deriving the candidate d-CC for every layer subset — depends only
//! on `(d, s)`, never on `k`. A [`DccIndex`] precomputes those candidate
//! lists once (in parallel on an executor crew, through the same
//! subset-lattice engine the peel path uses) and stores them verbatim, so a
//! later query is **hierarchy lookups + greedy coverage selection with no
//! re-peeling**. The artifact is serialized through the versioned,
//! checksummed frame of [`mlgraph::io::binary`], so it survives across
//! processes and a corrupt or truncated file fails with a typed
//! [`DccsError::IndexCorrupt`] instead of panicking.
//!
//! Bit-identity is by construction: the stored candidate list for `(d, s)`
//! is exactly what [`crate::lattice::collect_subset_cores`] emits — same
//! cores, same lexicographic subset order, empty subsets included — so
//! feeding it to the shared greedy selection engine reproduces the peel
//! path's answer (and hence the frozen `naive_subset_cores` oracle) for
//! every `k`. Preprocessing (vertex deletion) cannot perturb this: it only
//! removes vertices that belong to no candidate core, and a peel converges
//! to the same maximal d-CC from any superset seed.
//!
//! The index is **static**: it fingerprints the graph it was built for
//! (vertex/layer counts, per-layer edge counts, an FNV-1a edge hash) and
//! refuses to serve any other graph. Incremental maintenance under edge
//! updates is the ROADMAP's dynamic-graph follow-up.

use crate::algorithm::Algorithm;
use crate::config::DccsParams;
use crate::engine::{with_pool, PoolRef, SearchContext};
use crate::error::DccsError;
use crate::fault::{self, site};
use crate::greedy::select_greedy;
use crate::lattice::collect_subset_cores;
use crate::limits::QueryMonitor;
use crate::result::{CoherentCore, DccsResult, SearchStats};
use coreness::CoreHierarchy;
use mlgraph::io::binary::{frame, unframe};
use mlgraph::{MultiLayerGraph, VertexSet};
use std::path::Path;
use std::time::Instant;

/// Magic prefix of serialized [`DccIndex`] artifacts.
pub const INDEX_MAGIC: &[u8; 8] = b"DCCINDEX";
/// Current index artifact format version.
pub const INDEX_VERSION: u32 = 1;

/// How a session query derives its candidate cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Serve {
    /// Serve from the attached [`DccIndex`] when it covers the query's
    /// `(d, s)` and the algorithm is greedy-compatible; peel otherwise.
    #[default]
    Auto,
    /// Always re-peel; never consult the index.
    Peel,
    /// Require the index: fail with [`DccsError::IndexUnavailable`] instead
    /// of falling back to a peel.
    Index,
}

impl Serve {
    /// Stable lowercase name, as accepted by [`Serve::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Serve::Auto => "auto",
            Serve::Peel => "peel",
            Serve::Index => "index",
        }
    }

    /// Parses a serve-mode name as used by the CLI `--serve` flag.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "auto" => Some(Serve::Auto),
            "peel" => Some(Serve::Peel),
            "index" => Some(Serve::Index),
            _ => None,
        }
    }
}

/// Which path actually answered a query, recorded in
/// [`SearchStats::serve`] by the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServePath {
    /// Candidates were derived by peeling the graph.
    Peel,
    /// Candidates were read from a precomputed [`DccIndex`].
    Index,
}

/// One precomputed `(d, s)` candidate list.
#[derive(Clone, Debug, PartialEq, Eq)]
struct IndexEntry {
    d: u32,
    s: usize,
    /// Exactly what `collect_subset_cores` emits: one candidate per layer
    /// subset of size `s`, lexicographic subset order, empties included.
    candidates: Vec<CoherentCore>,
}

/// A persistent d-CC hierarchy index: per-`(d, s)` candidate core lists
/// plus a fingerprint of the graph they were computed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DccIndex {
    num_vertices: usize,
    num_layers: usize,
    layer_edges: Vec<u64>,
    edge_hash: u64,
    entries: Vec<IndexEntry>,
}

/// FNV-1a mix of one 64-bit word into a running hash.
fn mix(hash: u64, x: u64) -> u64 {
    let mut hash = hash ^ x;
    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    hash
}

/// Order-sensitive FNV-1a hash over every layer's edge list.
fn edge_hash(g: &MultiLayerGraph) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for layer in g.layers() {
        hash = mix(hash, layer.num_edges() as u64);
        for (u, v) in layer.edges() {
            hash = mix(hash, (u64::from(u) << 32) | u64::from(v));
        }
    }
    hash
}

fn corrupt(message: impl Into<String>) -> DccsError {
    DccsError::IndexCorrupt { message: message.into() }
}

impl DccIndex {
    /// Builds an index over every requested coherence threshold `d`, for
    /// all subset sizes `1..=max_s` (`max_s == 0` or anything above the
    /// layer count means "all subset sizes"). Single-crew convenience
    /// wrapper over [`DccIndex::build_on`].
    pub fn build(g: &MultiLayerGraph, ds: &[u32], max_s: usize) -> Self {
        Self::build_threaded(g, ds, max_s, 1)
    }

    /// [`DccIndex::build`] on a scoped crew of `threads` workers.
    pub fn build_threaded(g: &MultiLayerGraph, ds: &[u32], max_s: usize, threads: usize) -> Self {
        with_pool(threads, |pool| Self::build_on(g, ds, max_s, pool))
    }

    /// Builds the index on an existing executor crew: the subset-lattice
    /// walk for each `(d, s)` fans its depth-1 branches out over `pool`,
    /// exactly as a live query would.
    pub fn build_on(g: &MultiLayerGraph, ds: &[u32], max_s: usize, pool: &PoolRef<'_>) -> Self {
        let l = g.num_layers();
        let max_s = if max_s == 0 { l } else { max_s.min(l) };
        let mut ds = ds.to_vec();
        ds.sort_unstable();
        ds.dedup();

        let hierarchy = CoreHierarchy::build(g);
        let mut ctx = SearchContext::new(1);
        let mut entries = Vec::with_capacity(ds.len() * max_s);
        for &d in &ds {
            let layer_cores: Vec<VertexSet> =
                (0..l).map(|layer| hierarchy.d_core(layer, d)).collect();
            for s in 1..=max_s {
                let (candidates, _) = collect_subset_cores(&mut ctx, pool, g, d, s, &layer_cores);
                entries.push(IndexEntry { d, s, candidates });
            }
        }
        DccIndex {
            num_vertices: g.num_vertices(),
            num_layers: l,
            layer_edges: g.layers().iter().map(|layer| layer.num_edges() as u64).collect(),
            edge_hash: edge_hash(g),
            entries,
        }
    }

    /// Vertex count of the fingerprinted graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Layer count of the fingerprinted graph.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Number of `(d, s)` entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total stored candidate cores across all entries.
    pub fn num_candidates(&self) -> usize {
        self.entries.iter().map(|e| e.candidates.len()).sum()
    }

    /// The distinct `d` values the index covers, ascending.
    pub fn d_values(&self) -> Vec<u32> {
        let mut ds: Vec<u32> = self.entries.iter().map(|e| e.d).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }

    /// Per-entry summaries `(d, s, stored candidates)` in storage order.
    pub fn entry_summaries(&self) -> Vec<(u32, usize, usize)> {
        self.entries.iter().map(|e| (e.d, e.s, e.candidates.len())).collect()
    }

    /// The stored candidate list for `(d, s)`, if the index covers it.
    pub fn entry(&self, d: u32, s: usize) -> Option<&[CoherentCore]> {
        self.entries.iter().find(|e| e.d == d && e.s == s).map(|e| e.candidates.as_slice())
    }

    /// Whether the index holds an entry for `(d, s)`.
    pub fn covers(&self, d: u32, s: usize) -> bool {
        self.entry(d, s).is_some()
    }

    /// Checks the fingerprint against `g`; fails with
    /// [`DccsError::IndexUnavailable`] when the index was built for a
    /// different graph.
    pub fn matches(&self, g: &MultiLayerGraph) -> Result<(), DccsError> {
        let same = self.num_vertices == g.num_vertices()
            && self.num_layers == g.num_layers()
            && self
                .layer_edges
                .iter()
                .zip(g.layers())
                .all(|(&m, layer)| m == layer.num_edges() as u64)
            && self.edge_hash == edge_hash(g);
        if same {
            Ok(())
        } else {
            Err(DccsError::IndexUnavailable {
                message: format!(
                    "index fingerprint mismatch: built for {} vertices / {} layers, \
                     graph has {} / {}",
                    self.num_vertices,
                    self.num_layers,
                    g.num_vertices(),
                    g.num_layers()
                ),
            })
        }
    }

    /// Serializes the index into a framed, checksummed byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let put_u64 = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
        let put_u32 = |buf: &mut Vec<u8>, v: u32| buf.extend_from_slice(&v.to_le_bytes());
        put_u64(&mut payload, self.num_vertices as u64);
        put_u64(&mut payload, self.num_layers as u64);
        for &m in &self.layer_edges {
            put_u64(&mut payload, m);
        }
        put_u64(&mut payload, self.edge_hash);
        put_u64(&mut payload, self.entries.len() as u64);
        for entry in &self.entries {
            put_u32(&mut payload, entry.d);
            put_u64(&mut payload, entry.s as u64);
            put_u64(&mut payload, entry.candidates.len() as u64);
            for core in &entry.candidates {
                put_u32(&mut payload, core.layers.len() as u32);
                for &layer in &core.layers {
                    put_u32(&mut payload, layer as u32);
                }
                let words = core.vertices.words();
                put_u64(&mut payload, words.len() as u64);
                for &w in words {
                    put_u64(&mut payload, w);
                }
            }
        }
        frame(INDEX_MAGIC, INDEX_VERSION, &payload)
    }

    /// Deserializes an index from a buffer produced by
    /// [`DccIndex::to_bytes`]. Any malformed input — bad frame, truncated
    /// body, out-of-range layer or vertex ids, trailing bytes — fails with
    /// [`DccsError::IndexCorrupt`]; this function never panics.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DccsError> {
        // Unwrap the frame error's inner message: its `Display` prefix says
        // "graph snapshot", which is wrong for an index artifact.
        let payload = unframe(INDEX_MAGIC, INDEX_VERSION, data).map_err(|e| match e {
            mlgraph::GraphError::Corrupt(msg) => corrupt(msg),
            other => corrupt(other.to_string()),
        })?;
        let mut r = Reader { buf: payload };
        let num_vertices = r.usize64("vertex count")?;
        let num_layers = r.usize64("layer count")?;
        if num_layers == 0 {
            return Err(corrupt("index declares zero layers"));
        }
        let mut layer_edges = Vec::with_capacity(num_layers.min(r.buf.len() / 8 + 1));
        for _ in 0..num_layers {
            layer_edges.push(r.u64("layer edge count")?);
        }
        let edge_hash = r.u64("edge hash")?;
        let num_entries = r.usize64("entry count")?;
        let expected_words = num_vertices.div_ceil(64);
        let mut entries = Vec::new();
        for _ in 0..num_entries {
            let d = r.u32("entry d")?;
            let s = r.usize64("entry s")?;
            if s == 0 || s > num_layers {
                return Err(corrupt(format!("entry declares invalid subset size s={s}")));
            }
            let num_candidates = r.usize64("candidate count")?;
            let mut candidates = Vec::new();
            for _ in 0..num_candidates {
                let subset_len = r.u32("subset length")? as usize;
                if subset_len != s {
                    return Err(corrupt(format!(
                        "candidate subset has {subset_len} layers, entry declares s={s}"
                    )));
                }
                let mut layers = Vec::with_capacity(subset_len);
                for _ in 0..subset_len {
                    let layer = r.u32("subset layer id")? as usize;
                    if layer >= num_layers {
                        return Err(corrupt(format!(
                            "subset layer id {layer} out of range (l={num_layers})"
                        )));
                    }
                    layers.push(layer);
                }
                let num_words = r.usize64("vertex word count")?;
                if num_words != expected_words {
                    return Err(corrupt(format!(
                        "vertex set has {num_words} words, expected {expected_words} \
                         for {num_vertices} vertices"
                    )));
                }
                // Bound the allocation by what the buffer can actually
                // hold, so a mangled vertex count cannot drive a huge
                // allocation before the reads run dry.
                if r.buf.len() < num_words * 8 {
                    return Err(corrupt(format!(
                        "truncated index body reading vertex words: need {} bytes, have {}",
                        num_words * 8,
                        r.buf.len()
                    )));
                }
                let mut vertices = VertexSet::new(num_vertices);
                for word_idx in 0..num_words {
                    let mut word = r.u64("vertex word")?;
                    let base = word_idx * 64;
                    while word != 0 {
                        let bit = word.trailing_zeros() as usize;
                        word &= word - 1;
                        let v = base + bit;
                        if v >= num_vertices {
                            return Err(corrupt(format!(
                                "vertex id {v} out of range (n={num_vertices})"
                            )));
                        }
                        vertices.insert(v as u32);
                    }
                }
                candidates.push(CoherentCore::new(layers, vertices));
            }
            entries.push(IndexEntry { d, s, candidates });
        }
        if !r.buf.is_empty() {
            return Err(corrupt(format!(
                "trailing bytes after index body: {} left over",
                r.buf.len()
            )));
        }
        Ok(DccIndex { num_vertices, num_layers, layer_edges, edge_hash, entries })
    }

    /// Writes the framed artifact to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), DccsError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes())
            .map_err(|e| corrupt(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads a framed artifact from `path`. I/O failures and corrupt
    /// contents both surface as [`DccsError::IndexCorrupt`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, DccsError> {
        let path = path.as_ref();
        let raw = std::fs::read(path)
            .map_err(|e| corrupt(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&raw)
    }
}

/// Little-endian cursor over the index payload; every read is bounds-checked
/// and fails with [`DccsError::IndexCorrupt`] naming the field that ran dry.
struct Reader<'a> {
    buf: &'a [u8],
}

impl Reader<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], DccsError> {
        if self.buf.len() < n {
            return Err(corrupt(format!(
                "truncated index body reading {what}: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u32(&mut self, what: &str) -> Result<u32, DccsError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DccsError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A u64 field holding a count or size; rejects values that cannot
    /// possibly fit in the remaining buffer, so a mangled count can never
    /// drive a huge allocation.
    fn usize64(&mut self, what: &str) -> Result<usize, DccsError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| corrupt(format!("{what} {v} overflows usize")))
    }
}

/// Answers a greedy DCCS query from the precomputed index: clone the stored
/// candidate list for `(d, s)` and run the shared greedy selection engine —
/// no preprocessing, no peeling, no lattice walk.
///
/// Limits are honoured at the same coarse granularity as the peel path:
/// each emitted candidate is charged against the budget and the cooperative
/// checkpoint is polled once per candidate plus a final time, so a tripped
/// deadline/token/budget yields the same flagged partial (selection over
/// everything emitted so far) the session converts into a typed error.
///
/// The caller (session serve routing) has already validated the parameters
/// and checked [`DccIndex::covers`].
pub(crate) fn serve_from_index_on(
    ctx: &mut SearchContext,
    g: &MultiLayerGraph,
    index: &DccIndex,
    params: &DccsParams,
) -> DccsResult {
    let start = Instant::now();
    let mut stats = SearchStats {
        algorithm: Some(Algorithm::Greedy),
        serve: Some(ServePath::Index),
        ..SearchStats::default()
    };

    let stored = index.entry(params.d, params.s).expect("serve routing checked coverage");
    let monitor = ctx.monitor().cloned();
    let monitor = monitor.as_deref();

    let search_start = Instant::now();
    let mut candidates = Vec::with_capacity(stored.len());
    for core in stored {
        if let Some(m) = monitor {
            m.charge_candidates(1);
        }
        candidates.push(core.clone());
        if let Some(kind) = monitor.and_then(QueryMonitor::check) {
            stats.limit_hit = Some(kind);
            stats.complete = false;
            break;
        }
    }
    stats.candidates_generated += candidates.len();
    stats.phase.search = search_start.elapsed();

    // Final poll, mirroring `greedy_dccs_on`: a probe-latched trip that no
    // per-candidate checkpoint observed (e.g. an empty entry) must still
    // flag the run incomplete.
    if stats.complete {
        if let Some(kind) = monitor.and_then(QueryMonitor::check) {
            stats.limit_hit = Some(kind);
            stats.complete = false;
        }
    }

    fault::check(site::SELECT);
    let select_start = Instant::now();
    let cores = select_greedy(g.num_vertices(), candidates, params.k, &mut stats, &mut ctx.cover);
    stats.phase.select = select_start.elapsed();
    DccsResult::from_cores(g.num_vertices(), cores, stats, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DccsOptions;
    use crate::greedy::greedy_dccs_with_options;
    use mlgraph::MultiLayerGraphBuilder;

    /// The greedy module's fixture: two 4-cliques shared across layer pairs
    /// plus a triangle, 10 vertices, 3 layers.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(10, 3);
        let clique = |b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]| {
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    b.add_edge(layer, vs[i], vs[j]).unwrap();
                }
            }
        };
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[4, 5, 6, 7]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 2, &[7, 8, 9]);
        b.build()
    }

    #[test]
    fn build_covers_requested_grid_and_counts_binomials() {
        let g = graph();
        let index = DccIndex::build(&g, &[2, 3], 0);
        assert_eq!(index.num_entries(), 6); // 2 d-values × s ∈ {1,2,3}
        for &d in &[2u32, 3] {
            assert_eq!(index.entry(d, 1).unwrap().len(), 3); // C(3,1)
            assert_eq!(index.entry(d, 2).unwrap().len(), 3); // C(3,2)
            assert_eq!(index.entry(d, 3).unwrap().len(), 1); // C(3,3)
        }
        assert!(!index.covers(4, 1));
        assert_eq!(index.d_values(), vec![2, 3]);
    }

    #[test]
    fn stored_candidates_match_a_live_lattice_walk() {
        let g = graph();
        let index = DccIndex::build(&g, &[2], 0);
        let hierarchy = CoreHierarchy::build(&g);
        let layer_cores: Vec<VertexSet> = (0..3).map(|i| hierarchy.d_core(i, 2)).collect();
        let mut ctx = SearchContext::new(1);
        for s in 1..=3usize {
            let (live, _) =
                with_pool(1, |pool| collect_subset_cores(&mut ctx, pool, &g, 2, s, &layer_cores));
            assert_eq!(index.entry(2, s).unwrap(), live.as_slice(), "s={s}");
        }
    }

    #[test]
    fn serve_matches_peel_for_every_k() {
        let g = graph();
        let opts = DccsOptions::default();
        let index = DccIndex::build(&g, &[2, 3], 0);
        let mut ctx = SearchContext::new(1);
        for d in [2u32, 3] {
            for s in [1usize, 2, 3] {
                for k in [1usize, 2, 3, 10] {
                    let params = DccsParams::new(d, s, k);
                    let peel = greedy_dccs_with_options(&g, &params, &opts);
                    let served = serve_from_index_on(&mut ctx, &g, &index, &params);
                    assert_eq!(served.cores, peel.cores, "d={d} s={s} k={k}");
                    assert_eq!(served.cover, peel.cover, "d={d} s={s} k={k}");
                    assert_eq!(
                        served.stats.candidates_generated, peel.stats.candidates_generated,
                        "d={d} s={s} k={k}"
                    );
                    assert_eq!(
                        served.stats.updates_accepted, peel.stats.updates_accepted,
                        "d={d} s={s} k={k}"
                    );
                    assert_eq!(served.stats.serve, Some(ServePath::Index));
                    assert_eq!(served.stats.dcc_calls, 0, "index path must not peel");
                }
            }
        }
    }

    #[test]
    fn threaded_build_matches_sequential_build() {
        let g = graph();
        let seq = DccIndex::build(&g, &[2, 3], 0);
        let par = DccIndex::build_threaded(&g, &[2, 3], 0, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn roundtrip_through_bytes_is_exact() {
        let g = graph();
        let index = DccIndex::build(&g, &[2, 3], 0);
        let bytes = index.to_bytes();
        let loaded = DccIndex::from_bytes(&bytes).unwrap();
        assert_eq!(index, loaded);
    }

    #[test]
    fn fingerprint_rejects_a_different_graph() {
        let g = graph();
        let index = DccIndex::build(&g, &[2], 0);
        assert!(index.matches(&g).is_ok());
        let mut b = MultiLayerGraphBuilder::new(10, 3);
        b.add_edge(0, 0, 1).unwrap();
        let other = b.build();
        let err = index.matches(&other).unwrap_err();
        assert!(matches!(err, DccsError::IndexUnavailable { .. }));
    }

    #[test]
    fn every_truncation_fails_with_typed_error() {
        let g = graph();
        let bytes = DccIndex::build(&g, &[2], 2).to_bytes();
        for cut in 0..bytes.len() {
            let err = DccIndex::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, DccsError::IndexCorrupt { .. }), "cut at {cut}");
        }
    }

    #[test]
    fn byte_flips_fail_with_typed_error() {
        let g = graph();
        let bytes = DccIndex::build(&g, &[2], 2).to_bytes();
        for pos in [0, 8, 12, 20, 28, bytes.len() / 2, bytes.len() - 1] {
            let mut mangled = bytes.clone();
            mangled[pos] ^= 0x5a;
            let err = DccIndex::from_bytes(&mangled).unwrap_err();
            assert!(matches!(err, DccsError::IndexCorrupt { .. }), "flip at {pos}");
        }
    }

    #[test]
    fn max_s_limits_the_entry_grid() {
        let g = graph();
        let index = DccIndex::build(&g, &[2], 2);
        assert!(index.covers(2, 1));
        assert!(index.covers(2, 2));
        assert!(!index.covers(2, 3));
    }
}
