//! The concurrent query service: many queries, one graph, zero duplicated
//! preprocessing.
//!
//! [`DccsSession`](crate::DccsSession) is `&mut self` end-to-end — exactly
//! right for a single caller sweeping parameters, and exactly wrong for a
//! server answering many users against one loaded graph, where two
//! concurrent queries would need two full copies of scratch *and* of the
//! preprocessing work. This module splits that state into two tiers:
//!
//! * **Shared immutable tier** — a [`GraphSnapshot`]: the graph reference,
//!   an epoch identifying this published version, the
//!   [`SharedSearchState`] (per-`d` layer-core memo + dense index plans,
//!   each built once under a once-style guard on first use), and the
//!   optionally attached [`DccIndex`]. Published behind an `Arc`, read by
//!   any number of queries concurrently.
//! * **Cheap per-query tier** — a pooled [`SearchContext`] (peel workspace
//!   plus cover/seed buffers) checked out per query and returned on drop,
//!   so steady-state queries allocate nothing and never contend beyond a
//!   `Vec` push/pop.
//!
//! On top sits the [`QueryService`]: a shared (`&self`) handle answering
//! [`ServiceQuery`]s either inline on the calling thread or as a batch
//! fanned over a bounded worker crew ([`PersistentPool`]), with a result
//! cache keyed by `(graph_epoch, index_generation, d, s, k, algorithm,
//! serve)`. Cache hits are recorded in
//! [`SearchStats::served_from_cache`](crate::SearchStats::served_from_cache);
//! only unlimited, token-less queries consult the cache (a deadline changes
//! what a query may return, so limited queries always run).
//!
//! **Bit-identity** extends naturally: every query executes sequentially on
//! its own context (worker parallelism is across queries, like
//! [`DccsSession::run_batch`](crate::DccsSession::run_batch)), the shared
//! tier memoizes only deterministic pure functions of the graph, and a
//! cached answer is a clone of the computed one — so service results equal
//! fresh-session results at any worker count, enforced by
//! `crates/core/tests/service_concurrency.rs`.
//!
//! ```
//! use mlgraph::MultiLayerGraphBuilder;
//! use dccs::{DccsOptions, DccsParams, QueryService, ServiceQuery};
//!
//! let mut b = MultiLayerGraphBuilder::new(4, 2);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     b.add_edge(0, u, v).unwrap();
//!     b.add_edge(1, u, v).unwrap();
//! }
//! let g = b.build();
//! let service = QueryService::new(&g, DccsOptions::default());
//! // `query` takes `&self`: any number of threads may call it at once.
//! let first = service.query(&ServiceQuery::new(DccsParams::new(2, 2, 1)))?;
//! let again = service.query(&ServiceQuery::new(DccsParams::new(2, 2, 1)))?;
//! assert_eq!(first.cores, again.cores);
//! assert!(!first.stats.served_from_cache);
//! assert!(again.stats.served_from_cache);
//! # Ok::<(), dccs::DccsError>(())
//! ```

use crate::algorithm::Algorithm;
use crate::config::{DccsOptions, DccsParams};
use crate::engine::{
    effective_threads, lock, with_pool, IndexChoice, PersistentPool, SearchContext,
    SharedSearchState,
};
use crate::error::DccsError;
use crate::fault::{self, site};
use crate::limits::{CancelToken, QueryLimits};
use crate::result::DccsResult;
use crate::serve::{DccIndex, Serve};
use crate::session::{auto_threads, panic_to_error, run_spec_monitored, QuerySpec};
use coreness::PeelWorkspace;
use mlgraph::MultiLayerGraph;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Process-wide epoch counter: every published [`GraphSnapshot`] gets a
/// distinct epoch, so results and cache keys from different snapshots (or
/// from a re-published graph after a future mutation — the dynamic-graph
/// roadmap item) can never alias.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// The shared immutable tier for one published version of a graph: the
/// graph reference, a process-unique epoch, the lazily filled
/// [`SharedSearchState`], and the optionally attached [`DccIndex`].
///
/// A snapshot is read-only from the query path's perspective — attaching or
/// detaching an index is the one interior mutation, and it bumps the
/// snapshot's *index generation* so the service cache can tell answers
/// derived under different index configurations apart (under
/// [`Serve::Auto`] the same `(d, s, k)` is answered by peeling or by the
/// index depending on coverage, and the two answers differ in their work
/// counters).
///
/// Snapshots are handed around as `Arc<GraphSnapshot>`: a
/// [`crate::DccsSession`] owns one (and exposes it via
/// [`crate::DccsSession::snapshot`]), a [`QueryService`] serves from one,
/// and both can share the same instance — the session's preprocessing work
/// is then visible to every service query and vice versa.
#[derive(Debug)]
pub struct GraphSnapshot<'g> {
    g: &'g MultiLayerGraph,
    epoch: u64,
    state: Arc<SharedSearchState>,
    /// The attached index and its generation, under one lock so a reader
    /// always sees a consistent `(generation, index)` pair.
    index: Mutex<(u64, Option<Arc<DccIndex>>)>,
}

impl<'g> GraphSnapshot<'g> {
    /// Publishes a fresh snapshot of `g` with a new epoch and an empty
    /// shared tier (entries fill on first use).
    pub fn new(g: &'g MultiLayerGraph) -> Arc<Self> {
        Arc::new(GraphSnapshot {
            g,
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            state: SharedSearchState::for_graph(g),
            index: Mutex::new((0, None)),
        })
    }

    /// The graph this snapshot publishes.
    pub fn graph(&self) -> &'g MultiLayerGraph {
        self.g
    }

    /// The process-unique epoch of this snapshot, stamped into
    /// [`crate::SearchStats::graph_epoch`] of every result answered from
    /// it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared compute tier (layer-core memo + index plans).
    pub fn state(&self) -> &Arc<SharedSearchState> {
        &self.state
    }

    /// Attaches `index` after validating its fingerprint against the
    /// snapshot's graph ([`DccIndex::matches`]); a mismatched index is
    /// rejected and nothing changes. Returns the shared handle.
    pub fn attach_index(&self, index: DccIndex) -> Result<Arc<DccIndex>, DccsError> {
        index.matches(self.g)?;
        let index = Arc::new(index);
        self.install_index(Some(index.clone()));
        Ok(index)
    }

    /// Detaches the index; subsequent queries always peel.
    pub fn detach_index(&self) {
        self.install_index(None);
    }

    /// The attached index, if any.
    pub fn index(&self) -> Option<Arc<DccIndex>> {
        lock(&self.index).1.clone()
    }

    /// How many times the attached index has changed (attach or detach) —
    /// part of the service cache key.
    pub fn index_generation(&self) -> u64 {
        lock(&self.index).0
    }

    /// Stores `index` (already validated by the caller) and bumps the
    /// generation.
    pub(crate) fn install_index(&self, index: Option<Arc<DccIndex>>) {
        let mut slot = lock(&self.index);
        slot.0 += 1;
        slot.1 = index;
    }

    /// A consistent `(generation, index)` read for the query path.
    fn indexed(&self) -> (u64, Option<Arc<DccIndex>>) {
        let slot = lock(&self.index);
        (slot.0, slot.1.clone())
    }
}

/// One query submitted to a [`QueryService`]: the `(d, s, k)` parameters
/// and algorithm ([`QuerySpec`]) plus the per-query serving knobs that the
/// session API spreads over its builder — limits, serve mode, and an
/// optional cancel token.
#[derive(Clone, Debug)]
pub struct ServiceQuery {
    /// Parameters + algorithm ([`Algorithm::Auto`] by default).
    pub spec: QuerySpec,
    /// Per-query resource limits ([`QueryLimits::none`] by default). A
    /// limited query never consults or fills the result cache.
    pub limits: QueryLimits,
    /// How the query derives its candidate cores ([`Serve::Auto`] by
    /// default). Part of the cache key: `Peel` and `Index` answers differ
    /// in their work counters.
    pub serve: Serve,
    /// External kill switch for this query only; a token-carrying query
    /// never consults or fills the result cache.
    pub token: Option<CancelToken>,
}

impl ServiceQuery {
    /// A query for `params` with automatic algorithm selection, no limits,
    /// and `Serve::Auto`.
    pub fn new(params: DccsParams) -> Self {
        ServiceQuery {
            spec: QuerySpec::new(params),
            limits: QueryLimits::none(),
            serve: Serve::Auto,
            token: None,
        }
    }

    /// Pins the algorithm instead of auto-selecting.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.spec.algorithm = algorithm;
        self
    }

    /// Sets the query's resource limits.
    pub fn with_limits(mut self, limits: QueryLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the serve mode.
    pub fn with_serve(mut self, serve: Serve) -> Self {
        self.serve = serve;
        self
    }

    /// Attaches a cancel token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }
}

/// One slot of a [`QueryService::run_batch`] answer: the query's result (a
/// per-query limit, cancellation, or panic lands here without affecting
/// sibling slots) and its service-side latency, measured around the whole
/// answer path (cache probe included) on whichever worker ran it.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The query's result, exactly as [`QueryService::query`] would have
    /// returned it.
    pub result: Result<DccsResult, DccsError>,
    /// Wall-clock latency of answering this query.
    pub latency: Duration,
}

/// Counters describing the result cache's behavior, from
/// [`QueryService::cache_stats`]. Hits and misses count only
/// cache-eligible queries (unlimited, token-less); limited queries bypass
/// the cache entirely and are counted in neither.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered out of the cache.
    pub hits: u64,
    /// Cache-eligible queries that had to run.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// The pooled per-query tier: idle [`SearchContext`]s (each owning a
/// `PeelWorkspace` and the cover/seed buffers) checked out per query and
/// returned on drop. Contexts keep their context-local caches between
/// checkouts — those only ever memoize deterministic intermediates, so
/// whichever context a query draws, the answer is the same.
#[derive(Debug, Default)]
struct ContextPool {
    idle: Mutex<Vec<SearchContext>>,
}

impl ContextPool {
    /// Checks out an idle context (or builds a fresh one), configured for a
    /// sequential run with the shared tier installed.
    fn checkout(&self, shared: &Arc<SharedSearchState>, index: IndexChoice) -> PooledContext<'_> {
        let mut ctx = lock(&self.idle).pop().unwrap_or_else(|| SearchContext::new(1));
        ctx.set_threads(1);
        ctx.set_index_choice(index);
        ctx.set_shared(Some(shared.clone()));
        PooledContext { ctx: Some(ctx), pool: self }
    }

    /// Number of idle contexts (diagnostics).
    fn idle_len(&self) -> usize {
        lock(&self.idle).len()
    }
}

/// A checked-out context; returns itself to the pool on drop. Safe to
/// return even after a failed query: the dispatch layer replaces a context
/// wholesale when a panic unwinds through it, so what comes back here is
/// always either untouched or freshly rebuilt.
struct PooledContext<'p> {
    ctx: Option<SearchContext>,
    pool: &'p ContextPool,
}

impl Deref for PooledContext<'_> {
    type Target = SearchContext;
    fn deref(&self) -> &SearchContext {
        self.ctx.as_ref().expect("context present until drop")
    }
}

impl DerefMut for PooledContext<'_> {
    fn deref_mut(&mut self) -> &mut SearchContext {
        self.ctx.as_mut().expect("context present until drop")
    }
}

impl Drop for PooledContext<'_> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            lock(&self.pool.idle).push(ctx);
        }
    }
}

/// The result-cache key: everything that can change an answer. Epoch and
/// index generation pin the graph version and index configuration;
/// `(d, s, k)`, the algorithm, and the serve mode are the query itself.
/// The service's ablation toggles and index-choice override are fixed at
/// construction, so they need no slot.
type CacheKey = (u64, u64, u32, usize, usize, Algorithm, Serve);

/// A shared (`&self`) query-answering handle over one [`GraphSnapshot`].
///
/// Concurrency model: [`QueryService::query`] may be called from any number
/// of threads at once — each call checks a context out of the per-query
/// pool and runs sequentially on the calling thread.
/// [`QueryService::run_batch`] instead fans its queries over the service's
/// bounded worker crew (width = the service options' `threads`, spawned on
/// first use), one query per job, results in submission order. Both paths
/// answer through the same cache and the same shared tier.
#[derive(Debug)]
pub struct QueryService<'g> {
    snapshot: Arc<GraphSnapshot<'g>>,
    /// Service-wide defaults: ablation toggles and the index-choice
    /// override apply to every query; `threads` sets the batch worker
    /// width; per-query knobs (limits, serve, token) come from each
    /// [`ServiceQuery`].
    defaults: DccsOptions,
    workers: usize,
    contexts: ContextPool,
    crew: Mutex<Option<PersistentPool>>,
    cache: Mutex<HashMap<CacheKey, DccsResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'g> QueryService<'g> {
    /// A service over a fresh snapshot of `g`. `opts.threads` (0 = auto)
    /// sets the batch worker width; ablation toggles and the index-choice
    /// override apply to every query.
    pub fn new(g: &'g MultiLayerGraph, opts: DccsOptions) -> Self {
        QueryService::over(GraphSnapshot::new(g), opts)
    }

    /// A service over an existing snapshot — e.g. one taken from
    /// [`crate::DccsSession::snapshot`], sharing that session's
    /// already-computed tier.
    pub fn over(snapshot: Arc<GraphSnapshot<'g>>, opts: DccsOptions) -> Self {
        QueryService {
            snapshot,
            workers: auto_threads(opts.threads),
            defaults: opts,
            contexts: ContextPool::default(),
            crew: Mutex::new(None),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The snapshot this service answers from.
    pub fn snapshot(&self) -> &Arc<GraphSnapshot<'g>> {
        &self.snapshot
    }

    /// The batch worker width ([`QueryService::run_batch`]).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Attaches `index` to the snapshot (fingerprint-validated) and clears
    /// the result cache — the old entries' keys carry the previous index
    /// generation and could never be read again.
    pub fn attach_index(&self, index: DccIndex) -> Result<(), DccsError> {
        self.snapshot.attach_index(index)?;
        self.clear_cache();
        Ok(())
    }

    /// Detaches the snapshot's index and clears the result cache.
    pub fn detach_index(&self) {
        self.snapshot.detach_index();
        self.clear_cache();
    }

    /// Drops every cached result (the hit/miss counters keep counting).
    pub fn clear_cache(&self) {
        lock(&self.cache).clear();
    }

    /// Cache behavior so far: hits, misses, and current entry count.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: lock(&self.cache).len(),
        }
    }

    /// Number of idle pooled contexts (diagnostics for tests and stats).
    pub fn idle_contexts(&self) -> usize {
        self.contexts.idle_len()
    }

    /// Validates `params` against the snapshot's graph.
    fn check(&self, params: &DccsParams) -> Result<(), DccsError> {
        let (n, l) = (self.snapshot.g.num_vertices(), self.snapshot.g.num_layers());
        if n == 0 || l == 0 {
            return Err(DccsError::EmptyGraph { num_vertices: n, num_layers: l });
        }
        params.validate(l)
    }

    /// Answers one query on the calling thread. Thread-safe: any number of
    /// threads may call this concurrently; results are bit-identical to
    /// running the same query through a fresh [`crate::DccsSession`].
    pub fn query(&self, query: &ServiceQuery) -> Result<DccsResult, DccsError> {
        self.check(&query.spec.params)?;
        self.run_one(query)
    }

    /// The validated answer path: cache probe, then a sequential run on a
    /// pooled context.
    fn run_one(&self, query: &ServiceQuery) -> Result<DccsResult, DccsError> {
        let params = &query.spec.params;
        // A limited or cancellable query may legitimately return something
        // other than the full answer (a typed error carrying a partial), so
        // only unlimited token-less queries are cache-eligible — in either
        // direction.
        let cacheable = query.limits.is_unlimited() && query.token.is_none();
        let (generation, index) = self.snapshot.indexed();
        let key: CacheKey = (
            self.snapshot.epoch(),
            generation,
            params.d,
            params.s,
            params.k,
            query.spec.algorithm,
            query.serve,
        );
        if cacheable {
            if let Some(hit) = lock(&self.cache).get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut result = hit.clone();
                result.stats.served_from_cache = true;
                return Ok(result);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let opts =
            DccsOptions { threads: 1, serve: query.serve, limits: query.limits, ..self.defaults };
        let mut ctx = self.contexts.checkout(self.snapshot.state(), self.defaults.index);
        let result = with_pool(1, |pool| {
            run_spec_monitored(
                &mut ctx,
                pool,
                self.snapshot.g,
                &query.spec,
                &opts,
                query.token.clone(),
                index.as_deref(),
            )
        });
        drop(ctx);
        result.map(|mut result| {
            result.stats.graph_epoch = Some(self.snapshot.epoch());
            result.stats.served_from_cache = false;
            if cacheable && result.stats.complete {
                lock(&self.cache).entry(key).or_insert_with(|| result.clone());
            }
            result
        })
    }

    /// Answers a whole batch over the service's worker crew, one query per
    /// job, outcomes in submission order with per-query latencies.
    ///
    /// Like [`crate::DccsSession::run_batch`]: all queries are validated up
    /// front (the first invalid one fails the call before any work runs),
    /// and once running the batch is not all-or-nothing — a limit,
    /// cancellation, or panic on one query lands in that query's
    /// [`ServiceOutcome`] slot while every sibling completes. With one
    /// worker (or one query) the batch runs inline on the calling thread,
    /// in order.
    pub fn run_batch(&self, queries: &[ServiceQuery]) -> Result<Vec<ServiceOutcome>, DccsError> {
        for query in queries {
            self.check(&query.spec.params)?;
        }
        let run = |query: &ServiceQuery| -> ServiceOutcome {
            let start = Instant::now();
            let result = match catch_unwind(AssertUnwindSafe(|| {
                fault::check(site::BATCH_QUERY);
                self.run_one(query)
            })) {
                Ok(outcome) => outcome,
                Err(payload) => Err(panic_to_error(None, payload.as_ref())),
            };
            ServiceOutcome { result, latency: start.elapsed() }
        };
        let workers = effective_threads(self.workers);
        if workers <= 1 || queries.len() <= 1 {
            return Ok(queries.iter().map(run).collect());
        }
        let mut crew = lock(&self.crew);
        if crew.as_ref().is_none_or(|crew| crew.threads() != workers) {
            *crew = Some(PersistentPool::new(workers));
        }
        let crew = crew.as_mut().expect("crew spawned above");
        let mut driver_ws = PeelWorkspace::new();
        let jobs: Vec<_> = queries
            .iter()
            .map(|query| {
                let run = &run;
                move |_ws: &mut PeelWorkspace| run(query)
            })
            .collect();
        Ok(crew.pool_ref().map(&mut driver_ws, jobs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DccsSession;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// The session tests' fixture: four layers over 12 vertices with two
    /// planted coherent cliques.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 4);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 3, &[4, 5, 6, 7]);
        clique(&mut b, 1, &[8, 9, 10, 11]);
        b.build()
    }

    #[test]
    fn snapshots_get_distinct_epochs() {
        let g = graph();
        let a = GraphSnapshot::new(&g);
        let b = GraphSnapshot::new(&g);
        assert_ne!(a.epoch(), b.epoch());
        assert!(a.state().bound_to(&g));
    }

    #[test]
    fn service_results_match_a_fresh_session_and_stamp_the_epoch() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let params = DccsParams::new(2, 2, 2);
        let via_service = service.query(&ServiceQuery::new(params)).unwrap();
        let via_session = DccsSession::new(&g).query(params).run().unwrap();
        assert_eq!(via_service.cores, via_session.cores);
        assert_eq!(via_service.cover.to_vec(), via_session.cover.to_vec());
        assert_eq!(via_service.stats, via_session.stats);
        assert_eq!(via_service.stats.graph_epoch, Some(service.snapshot().epoch()));
        assert!(!via_service.stats.served_from_cache);
    }

    #[test]
    fn repeat_queries_hit_the_cache_and_the_answer_is_identical() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let query = ServiceQuery::new(DccsParams::new(2, 2, 2));
        let first = service.query(&query).unwrap();
        let second = service.query(&query).unwrap();
        assert!(!first.stats.served_from_cache);
        assert!(second.stats.served_from_cache);
        assert_eq!(first.cores, second.cores);
        assert_eq!(first.stats, second.stats, "cache provenance is Eq-excluded");
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_parameters_algorithms_and_serve_modes_miss() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let base = ServiceQuery::new(DccsParams::new(2, 2, 2));
        service.query(&base).unwrap();
        service.query(&ServiceQuery::new(DccsParams::new(2, 2, 1))).unwrap();
        service.query(&base.clone().with_algorithm(Algorithm::Greedy)).unwrap();
        service.query(&base.clone().with_serve(Serve::Peel)).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 4);
    }

    #[test]
    fn limited_and_cancellable_queries_bypass_the_cache() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let params = DccsParams::new(2, 2, 2);
        let limited = ServiceQuery::new(params)
            .with_limits(QueryLimits::none().with_candidate_budget(1_000_000));
        service.query(&limited).unwrap();
        service.query(&limited).unwrap();
        let tokened = ServiceQuery::new(params).with_token(CancelToken::new());
        service.query(&tokened).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats, CacheStats::default(), "bypassing queries count nowhere");
    }

    #[test]
    fn attach_and_detach_invalidate_the_cache() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let query = ServiceQuery::new(DccsParams::new(2, 2, 2));
        let peeled = service.query(&query).unwrap();
        assert_eq!(service.cache_stats().entries, 1);
        let index = DccIndex::build(&g, &[2], 0);
        service.attach_index(index).unwrap();
        assert_eq!(service.cache_stats().entries, 0);
        // The re-run is served from the index (different work counters than
        // the peel), which is exactly why the attach must invalidate.
        let served = service.query(&query).unwrap();
        assert_eq!(served.stats.dcc_calls, 0);
        assert_eq!(served.cores, peeled.cores);
        service.detach_index();
        assert_eq!(service.cache_stats().entries, 0);
        let repeeled = service.query(&query).unwrap();
        assert_eq!(repeeled.stats, peeled.stats);
    }

    #[test]
    fn contexts_are_pooled_and_reused() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        assert_eq!(service.idle_contexts(), 0);
        service.query(&ServiceQuery::new(DccsParams::new(2, 2, 2))).unwrap();
        assert_eq!(service.idle_contexts(), 1);
        service.query(&ServiceQuery::new(DccsParams::new(3, 2, 2))).unwrap();
        assert_eq!(service.idle_contexts(), 1, "the idle context is reused, not duplicated");
    }

    #[test]
    fn invalid_parameters_fail_the_whole_batch_up_front() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let queries = [
            ServiceQuery::new(DccsParams::new(2, 2, 2)),
            ServiceQuery::new(DccsParams::new(2, 0, 2)),
        ];
        assert_eq!(service.run_batch(&queries).unwrap_err(), DccsError::SupportZero);
    }

    #[test]
    fn batch_outcomes_arrive_in_submission_order_with_latencies() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let specs = [(2u32, 2usize, 2usize), (3, 2, 2), (2, 3, 1), (2, 2, 2)];
        let queries: Vec<ServiceQuery> =
            specs.iter().map(|&(d, s, k)| ServiceQuery::new(DccsParams::new(d, s, k))).collect();
        let outcomes = service.run_batch(&queries).unwrap();
        assert_eq!(outcomes.len(), queries.len());
        for (outcome, &(d, s, k)) in outcomes.iter().zip(&specs) {
            let got = outcome.result.as_ref().unwrap();
            let want = DccsSession::new(&g).query(DccsParams::new(d, s, k)).run().unwrap();
            assert_eq!(got.cores, want.cores);
            assert_eq!(got.stats, want.stats);
        }
        // The duplicated spec hit the cache.
        assert!(outcomes[3].result.as_ref().unwrap().stats.served_from_cache);
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn shared_snapshot_between_session_and_service() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        let params = DccsParams::new(2, 2, 2);
        let via_session = session.query(params).run().unwrap();
        // The service built over the session's snapshot reuses its tier and
        // reports the same epoch.
        let service = QueryService::over(session.snapshot().clone(), DccsOptions::default());
        let via_service = service.query(&ServiceQuery::new(params)).unwrap();
        assert_eq!(via_service.stats.graph_epoch, via_session.stats.graph_epoch);
        assert_eq!(via_service.cores, via_session.cores);
        assert_eq!(via_service.stats, via_session.stats);
        assert!(service.snapshot().state().memoized_ds() >= 1);
    }
}
