//! The concurrent query service: many queries, one graph, zero duplicated
//! preprocessing.
//!
//! [`DccsSession`](crate::DccsSession) is `&mut self` end-to-end — exactly
//! right for a single caller sweeping parameters, and exactly wrong for a
//! server answering many users against one loaded graph, where two
//! concurrent queries would need two full copies of scratch *and* of the
//! preprocessing work. This module splits that state into two tiers:
//!
//! * **Shared immutable tier** — a [`GraphSnapshot`]: the graph reference,
//!   an epoch identifying this published version, the
//!   [`SharedSearchState`] (per-`d` layer-core memo + dense index plans,
//!   each built once under a once-style guard on first use), and the
//!   optionally attached [`DccIndex`]. Published behind an `Arc`, read by
//!   any number of queries concurrently.
//! * **Cheap per-query tier** — a pooled [`SearchContext`] (peel workspace
//!   plus cover/seed buffers) checked out per query and returned on drop,
//!   so steady-state queries allocate nothing and never contend beyond a
//!   `Vec` push/pop.
//!
//! On top sits the [`QueryService`]: a shared (`&self`) handle answering
//! [`ServiceQuery`]s either inline on the calling thread or as a batch
//! fanned over a bounded worker crew ([`PersistentPool`]), with a result
//! cache keyed by `(graph_epoch, index_generation, d, s, k, algorithm,
//! serve)`. Cache hits are recorded in
//! [`SearchStats::served_from_cache`](crate::SearchStats::served_from_cache);
//! only unlimited, token-less queries consult the cache (a deadline changes
//! what a query may return, so limited queries always run).
//!
//! **Bit-identity** extends naturally: every query executes sequentially on
//! its own context (worker parallelism is across queries, like
//! [`DccsSession::run_batch`](crate::DccsSession::run_batch)), the shared
//! tier memoizes only deterministic pure functions of the graph, and a
//! cached answer is a clone of the computed one — so service results equal
//! fresh-session results at any worker count, enforced by
//! `crates/core/tests/service_concurrency.rs`.
//!
//! ```
//! use mlgraph::MultiLayerGraphBuilder;
//! use dccs::{DccsOptions, DccsParams, QueryService, ServiceQuery};
//!
//! let mut b = MultiLayerGraphBuilder::new(4, 2);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     b.add_edge(0, u, v).unwrap();
//!     b.add_edge(1, u, v).unwrap();
//! }
//! let g = b.build();
//! let service = QueryService::new(&g, DccsOptions::default());
//! // `query` takes `&self`: any number of threads may call it at once.
//! let first = service.query(&ServiceQuery::new(DccsParams::new(2, 2, 1)))?;
//! let again = service.query(&ServiceQuery::new(DccsParams::new(2, 2, 1)))?;
//! assert_eq!(first.cores, again.cores);
//! assert!(!first.stats.served_from_cache);
//! assert!(again.stats.served_from_cache);
//! # Ok::<(), dccs::DccsError>(())
//! ```

use crate::algorithm::Algorithm;
use crate::config::{DccsOptions, DccsParams};
use crate::engine::{
    effective_threads, lock, with_pool, IndexChoice, PersistentPool, SearchContext,
    SharedSearchState,
};
use crate::error::DccsError;
use crate::fault::{self, site};
use crate::limits::{CancelToken, QueryLimits};
use crate::result::DccsResult;
use crate::serve::{DccIndex, Serve};
use crate::session::{auto_threads, panic_to_error, run_spec_monitored, IndexState, QuerySpec};
use coreness::PeelWorkspace;
use mlgraph::{EdgeBatch, MultiLayerGraph, VertexSet};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Process-wide epoch counter: every published [`GraphSnapshot`] gets a
/// distinct epoch — including each snapshot a committed mutation batch
/// publishes ([`QueryService::commit`]) — so results and cache keys from
/// different graph versions can never alias.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// How a [`GraphSnapshot`] holds its graph. The initial snapshot borrows
/// the caller's graph for the service lifetime; every snapshot a mutation
/// commit publishes owns the rebuilt graph, shared by `Arc` so in-flight
/// queries holding the previous snapshot keep their version alive until
/// they finish.
#[derive(Debug)]
enum GraphHandle<'g> {
    /// The caller's graph, borrowed (the pre-mutation snapshot).
    Borrowed(&'g MultiLayerGraph),
    /// A graph version produced by [`QueryService::commit`], owned.
    Owned(Arc<MultiLayerGraph>),
}

impl GraphHandle<'_> {
    fn get(&self) -> &MultiLayerGraph {
        match self {
            GraphHandle::Borrowed(g) => g,
            GraphHandle::Owned(g) => g,
        }
    }
}

/// The attached-index slot of a snapshot: the index, its generation, and —
/// after a mutation commit auto-detached a previously valid index — the
/// epoch that index was built for, so [`Serve::Index`] queries can report
/// the typed [`DccsError::IndexStale`] instead of a generic
/// unavailability. One lock keeps the triple consistent for readers.
#[derive(Debug, Default)]
struct IndexSlot {
    /// Bumped on every attach/detach — part of the service cache key.
    generation: u64,
    index: Option<Arc<DccIndex>>,
    /// Epoch of the graph version the auto-detached index was valid for;
    /// cleared when a fresh index is attached.
    stale_epoch: Option<u64>,
}

/// The shared immutable tier for one published version of a graph: the
/// graph reference, a process-unique epoch, the lazily filled
/// [`SharedSearchState`], and the optionally attached [`DccIndex`].
///
/// A snapshot is read-only from the query path's perspective — attaching or
/// detaching an index is the one interior mutation, and it bumps the
/// snapshot's *index generation* so the service cache can tell answers
/// derived under different index configurations apart (under
/// [`Serve::Auto`] the same `(d, s, k)` is answered by peeling or by the
/// index depending on coverage, and the two answers differ in their work
/// counters).
///
/// Snapshots are handed around as `Arc<GraphSnapshot>`: a
/// [`crate::DccsSession`] owns one (and exposes it via
/// [`crate::DccsSession::snapshot`]), a [`QueryService`] serves from one,
/// and both can share the same instance — the session's preprocessing work
/// is then visible to every service query and vice versa.
#[derive(Debug)]
pub struct GraphSnapshot<'g> {
    g: GraphHandle<'g>,
    epoch: u64,
    state: Arc<SharedSearchState>,
    /// The attached index, its generation, and the staleness record, under
    /// one lock so a reader always sees a consistent triple.
    index: Mutex<IndexSlot>,
}

impl<'g> GraphSnapshot<'g> {
    /// Publishes a fresh snapshot of `g` with a new epoch and an empty
    /// shared tier (entries fill on first use).
    pub fn new(g: &'g MultiLayerGraph) -> Arc<Self> {
        Arc::new(GraphSnapshot {
            g: GraphHandle::Borrowed(g),
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            state: SharedSearchState::for_graph(g),
            index: Mutex::new(IndexSlot::default()),
        })
    }

    /// The graph this snapshot publishes. The reference is tied to the
    /// snapshot (not to `'g`): a post-commit snapshot owns its graph
    /// version rather than borrowing the caller's.
    pub fn graph(&self) -> &MultiLayerGraph {
        self.g.get()
    }

    /// The process-unique epoch of this snapshot, stamped into
    /// [`crate::SearchStats::graph_epoch`] of every result answered from
    /// it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared compute tier (layer-core memo + index plans).
    pub fn state(&self) -> &Arc<SharedSearchState> {
        &self.state
    }

    /// Attaches `index` after validating its fingerprint against the
    /// snapshot's graph ([`DccIndex::matches`]); a mismatched index is
    /// rejected and nothing changes. Attaching also clears any staleness
    /// record a mutation commit left behind. Returns the shared handle.
    pub fn attach_index(&self, index: DccIndex) -> Result<Arc<DccIndex>, DccsError> {
        index.matches(self.graph())?;
        let index = Arc::new(index);
        self.install_index(Some(index.clone()));
        Ok(index)
    }

    /// Detaches the index; subsequent queries always peel.
    pub fn detach_index(&self) {
        self.install_index(None);
    }

    /// The attached index, if any.
    pub fn index(&self) -> Option<Arc<DccIndex>> {
        lock(&self.index).index.clone()
    }

    /// How many times the attached index has changed (attach or detach) —
    /// part of the service cache key.
    pub fn index_generation(&self) -> u64 {
        lock(&self.index).generation
    }

    /// When a mutation commit auto-detached an index, the epoch that index
    /// was valid for (`None` otherwise) — the provenance behind
    /// [`DccsError::IndexStale`].
    pub fn stale_index_epoch(&self) -> Option<u64> {
        lock(&self.index).stale_epoch
    }

    /// Stores `index` (already validated by the caller), bumps the
    /// generation, and clears any staleness record.
    pub(crate) fn install_index(&self, index: Option<Arc<DccIndex>>) {
        let mut slot = lock(&self.index);
        slot.generation += 1;
        slot.index = index;
        slot.stale_epoch = None;
    }

    /// A consistent `(generation, index, stale-epoch)` read for the query
    /// path.
    fn indexed(&self) -> (u64, Option<Arc<DccIndex>>, Option<u64>) {
        let slot = lock(&self.index);
        (slot.generation, slot.index.clone(), slot.stale_epoch)
    }
}

/// One query submitted to a [`QueryService`]: the `(d, s, k)` parameters
/// and algorithm ([`QuerySpec`]) plus the per-query serving knobs that the
/// session API spreads over its builder — limits, serve mode, and an
/// optional cancel token.
#[derive(Clone, Debug)]
pub struct ServiceQuery {
    /// Parameters + algorithm ([`Algorithm::Auto`] by default).
    pub spec: QuerySpec,
    /// Per-query resource limits ([`QueryLimits::none`] by default). A
    /// limited query never consults or fills the result cache.
    pub limits: QueryLimits,
    /// How the query derives its candidate cores ([`Serve::Auto`] by
    /// default). Part of the cache key: `Peel` and `Index` answers differ
    /// in their work counters.
    pub serve: Serve,
    /// External kill switch for this query only; a token-carrying query
    /// never consults or fills the result cache.
    pub token: Option<CancelToken>,
}

impl ServiceQuery {
    /// A query for `params` with automatic algorithm selection, no limits,
    /// and `Serve::Auto`.
    pub fn new(params: DccsParams) -> Self {
        ServiceQuery {
            spec: QuerySpec::new(params),
            limits: QueryLimits::none(),
            serve: Serve::Auto,
            token: None,
        }
    }

    /// Pins the algorithm instead of auto-selecting.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.spec.algorithm = algorithm;
        self
    }

    /// Sets the query's resource limits.
    pub fn with_limits(mut self, limits: QueryLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the serve mode.
    pub fn with_serve(mut self, serve: Serve) -> Self {
        self.serve = serve;
        self
    }

    /// Attaches a cancel token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }
}

/// One slot of a [`QueryService::run_batch`] answer: the query's result (a
/// per-query limit, cancellation, or panic lands here without affecting
/// sibling slots) and its service-side latency, measured around the whole
/// answer path (cache probe included) on whichever worker ran it.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The query's result, exactly as [`QueryService::query`] would have
    /// returned it.
    pub result: Result<DccsResult, DccsError>,
    /// Wall-clock latency of answering this query.
    pub latency: Duration,
}

/// Counters describing the result cache's behavior, from
/// [`QueryService::cache_stats`]. Hits and misses count only
/// cache-eligible queries (unlimited, token-less); limited queries bypass
/// the cache entirely and are counted in neither.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered out of the cache.
    pub hits: u64,
    /// Cache-eligible queries that had to run.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// The pooled per-query tier: idle [`SearchContext`]s (each owning a
/// `PeelWorkspace` and the cover/seed buffers) checked out per query and
/// returned on drop. Contexts keep their context-local caches between
/// checkouts — those only ever memoize deterministic intermediates, so
/// whichever context a query draws, the answer is the same.
///
/// The pool also carries the **graph epoch** its idle contexts' caches may
/// be bound to. A mutation commit bumps it (and clears the idle contexts'
/// caches); a context checked out before the commit and returned after it
/// clears its own cache on the way back in. This closes the one gap in the
/// contexts' best-effort graph-identity key: after the old graph version is
/// dropped, a later version could be allocated at the same address with the
/// same shape.
#[derive(Debug, Default)]
struct ContextPool {
    idle: Mutex<Vec<SearchContext>>,
    epoch: AtomicU64,
}

impl ContextPool {
    /// Checks out an idle context (or builds a fresh one), configured for a
    /// sequential run with the shared tier installed.
    fn checkout(&self, shared: &Arc<SharedSearchState>, index: IndexChoice) -> PooledContext<'_> {
        let mut ctx = lock(&self.idle).pop().unwrap_or_else(|| SearchContext::new(1));
        ctx.set_threads(1);
        ctx.set_index_choice(index);
        ctx.set_shared(Some(shared.clone()));
        PooledContext { ctx: Some(ctx), pool: self, epoch: self.epoch.load(Ordering::Relaxed) }
    }

    /// A mutation commit published `epoch`: every idle context's
    /// graph-bound caches are cleared, and contexts still checked out will
    /// clear theirs when returned (their checkout epoch no longer matches).
    fn invalidate(&self, epoch: u64) {
        for ctx in lock(&self.idle).iter_mut() {
            ctx.clear_cache();
        }
        self.epoch.store(epoch, Ordering::Relaxed);
    }

    /// Number of idle contexts (diagnostics).
    fn idle_len(&self) -> usize {
        lock(&self.idle).len()
    }
}

/// A checked-out context; returns itself to the pool on drop. Safe to
/// return even after a failed query: the dispatch layer replaces a context
/// wholesale when a panic unwinds through it, so what comes back here is
/// always either untouched or freshly rebuilt.
struct PooledContext<'p> {
    ctx: Option<SearchContext>,
    pool: &'p ContextPool,
    /// The pool epoch at checkout; a mismatch at return means a commit
    /// happened mid-query and this context's caches must not survive.
    epoch: u64,
}

impl Deref for PooledContext<'_> {
    type Target = SearchContext;
    fn deref(&self) -> &SearchContext {
        self.ctx.as_ref().expect("context present until drop")
    }
}

impl DerefMut for PooledContext<'_> {
    fn deref_mut(&mut self) -> &mut SearchContext {
        self.ctx.as_mut().expect("context present until drop")
    }
}

impl Drop for PooledContext<'_> {
    fn drop(&mut self) {
        if let Some(mut ctx) = self.ctx.take() {
            if self.pool.epoch.load(Ordering::Relaxed) != self.epoch {
                ctx.clear_cache();
            }
            lock(&self.pool.idle).push(ctx);
        }
    }
}

/// What [`QueryService::commit`] reports back: the epoch of the snapshot
/// the batch published and a summary of the work the commit did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Epoch of the published snapshot. For a batch whose every operation
    /// was a no-op, the epoch of the still-current snapshot (nothing is
    /// republished).
    pub epoch: u64,
    /// Edges actually inserted (no-op inserts are dropped).
    pub inserted: usize,
    /// Edges actually deleted (no-op deletes are dropped).
    pub deleted: usize,
    /// Number of layers the batch changed.
    pub layers_touched: usize,
    /// Number of per-`d` layer-core memo entries incrementally repaired
    /// into the new snapshot's shared tier (one per `d` the old tier had
    /// materialized).
    pub repaired_ds: usize,
    /// Whether a previously attached [`DccIndex`] was auto-detached because
    /// this commit outdated it ([`DccsError::IndexStale`]).
    pub index_detached: bool,
}

impl CommitReceipt {
    /// Whether the batch changed nothing — no snapshot was republished and
    /// [`CommitReceipt::epoch`] is the still-current one.
    pub fn is_noop_commit(&self) -> bool {
        self.layers_touched == 0
    }
}

/// The result-cache key: everything that can change an answer. Epoch and
/// index generation pin the graph version and index configuration;
/// `(d, s, k)`, the algorithm, and the serve mode are the query itself.
/// The service's ablation toggles and index-choice override are fixed at
/// construction, so they need no slot.
type CacheKey = (u64, u64, u32, usize, usize, Algorithm, Serve);

/// A shared (`&self`) query-answering handle over one [`GraphSnapshot`].
///
/// Concurrency model: [`QueryService::query`] may be called from any number
/// of threads at once — each call checks a context out of the per-query
/// pool and runs sequentially on the calling thread.
/// [`QueryService::run_batch`] instead fans its queries over the service's
/// bounded worker crew (width = the service options' `threads`, spawned on
/// first use), one query per job, results in submission order. Both paths
/// answer through the same cache and the same shared tier.
#[derive(Debug)]
pub struct QueryService<'g> {
    /// The currently published snapshot. Queries clone the `Arc` once at
    /// entry and answer entirely on that version, so a concurrent
    /// [`QueryService::commit`] never changes what an in-flight query sees
    /// — readers finish on the old snapshot while new queries pick up the
    /// new one.
    snapshot: Mutex<Arc<GraphSnapshot<'g>>>,
    /// Serializes mutation commits (queries are never blocked by this —
    /// they only take the brief `snapshot` lock to clone the `Arc`).
    commit_serial: Mutex<()>,
    /// Service-wide defaults: ablation toggles and the index-choice
    /// override apply to every query; `threads` sets the batch worker
    /// width; per-query knobs (limits, serve, token) come from each
    /// [`ServiceQuery`].
    defaults: DccsOptions,
    workers: usize,
    contexts: ContextPool,
    crew: Mutex<Option<PersistentPool>>,
    cache: Mutex<HashMap<CacheKey, DccsResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'g> QueryService<'g> {
    /// A service over a fresh snapshot of `g`. `opts.threads` (0 = auto)
    /// sets the batch worker width; ablation toggles and the index-choice
    /// override apply to every query.
    pub fn new(g: &'g MultiLayerGraph, opts: DccsOptions) -> Self {
        QueryService::over(GraphSnapshot::new(g), opts)
    }

    /// A service over an existing snapshot — e.g. one taken from
    /// [`crate::DccsSession::snapshot`], sharing that session's
    /// already-computed tier.
    pub fn over(snapshot: Arc<GraphSnapshot<'g>>, opts: DccsOptions) -> Self {
        QueryService {
            snapshot: Mutex::new(snapshot),
            commit_serial: Mutex::new(()),
            workers: auto_threads(opts.threads),
            defaults: opts,
            contexts: ContextPool::default(),
            crew: Mutex::new(None),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The currently published snapshot. The clone is the caller's pin on
    /// this graph version: it stays fully queryable (and alive) even after
    /// a later [`QueryService::commit`] republishes.
    pub fn snapshot(&self) -> Arc<GraphSnapshot<'g>> {
        lock(&self.snapshot).clone()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// The batch worker width ([`QueryService::run_batch`]).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Attaches `index` to the current snapshot (fingerprint-validated) and
    /// clears the result cache — the old entries' keys carry the previous
    /// index generation and could never be read again.
    pub fn attach_index(&self, index: DccIndex) -> Result<(), DccsError> {
        self.snapshot().attach_index(index)?;
        self.clear_cache();
        Ok(())
    }

    /// Detaches the current snapshot's index and clears the result cache.
    pub fn detach_index(&self) {
        self.snapshot().detach_index();
        self.clear_cache();
    }

    /// Drops every cached result (the hit/miss counters keep counting).
    pub fn clear_cache(&self) {
        lock(&self.cache).clear();
    }

    /// Cache behavior so far: hits, misses, and current entry count.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: lock(&self.cache).len(),
        }
    }

    /// Number of idle pooled contexts (diagnostics for tests and stats).
    pub fn idle_contexts(&self) -> usize {
        self.contexts.idle_len()
    }

    /// Validates `params` against a snapshot's graph.
    fn check_on(snapshot: &GraphSnapshot<'g>, params: &DccsParams) -> Result<(), DccsError> {
        let g = snapshot.graph();
        let (n, l) = (g.num_vertices(), g.num_layers());
        if n == 0 || l == 0 {
            return Err(DccsError::EmptyGraph { num_vertices: n, num_layers: l });
        }
        params.validate(l)
    }

    /// Answers one query on the calling thread. Thread-safe: any number of
    /// threads may call this concurrently; results are bit-identical to
    /// running the same query through a fresh [`crate::DccsSession`]. The
    /// query pins the snapshot published at entry — a concurrent
    /// [`QueryService::commit`] does not affect it.
    pub fn query(&self, query: &ServiceQuery) -> Result<DccsResult, DccsError> {
        let snapshot = self.snapshot();
        Self::check_on(&snapshot, &query.spec.params)?;
        self.run_one(&snapshot, query)
    }

    /// The validated answer path: cache probe, then a sequential run on a
    /// pooled context — entirely against `snapshot`, the graph version
    /// pinned when the query entered the service.
    fn run_one(
        &self,
        snapshot: &GraphSnapshot<'g>,
        query: &ServiceQuery,
    ) -> Result<DccsResult, DccsError> {
        let params = &query.spec.params;
        // A limited or cancellable query may legitimately return something
        // other than the full answer (a typed error carrying a partial), so
        // only unlimited token-less queries are cache-eligible — in either
        // direction.
        let cacheable = query.limits.is_unlimited() && query.token.is_none();
        let (generation, index, stale_epoch) = snapshot.indexed();
        let key: CacheKey = (
            snapshot.epoch(),
            generation,
            params.d,
            params.s,
            params.k,
            query.spec.algorithm,
            query.serve,
        );
        if cacheable {
            if let Some(hit) = lock(&self.cache).get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut result = hit.clone();
                result.stats.served_from_cache = true;
                return Ok(result);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let index_state = match (index.as_deref(), stale_epoch) {
            (Some(index), _) => IndexState::Ready(index),
            (None, Some(index_epoch)) => {
                IndexState::Stale { index_epoch, graph_epoch: snapshot.epoch() }
            }
            (None, None) => IndexState::Absent,
        };
        let opts =
            DccsOptions { threads: 1, serve: query.serve, limits: query.limits, ..self.defaults };
        let mut ctx = self.contexts.checkout(snapshot.state(), self.defaults.index);
        let result = with_pool(1, |pool| {
            run_spec_monitored(
                &mut ctx,
                pool,
                snapshot.graph(),
                &query.spec,
                &opts,
                query.token.clone(),
                index_state,
            )
        });
        drop(ctx);
        result.map(|mut result| {
            result.stats.graph_epoch = Some(snapshot.epoch());
            result.stats.served_from_cache = false;
            if cacheable && result.stats.complete {
                lock(&self.cache).entry(key).or_insert_with(|| result.clone());
            }
            result
        })
    }

    /// Answers a whole batch over the service's worker crew, one query per
    /// job, outcomes in submission order with per-query latencies.
    ///
    /// Like [`crate::DccsSession::run_batch`]: all queries are validated up
    /// front (the first invalid one fails the call before any work runs),
    /// and once running the batch is not all-or-nothing — a limit,
    /// cancellation, or panic on one query lands in that query's
    /// [`ServiceOutcome`] slot while every sibling completes. With one
    /// worker (or one query) the batch runs inline on the calling thread,
    /// in order.
    pub fn run_batch(&self, queries: &[ServiceQuery]) -> Result<Vec<ServiceOutcome>, DccsError> {
        // The whole batch answers on the snapshot published at submission:
        // a commit that lands mid-batch affects only later submissions.
        let snapshot = self.snapshot();
        for query in queries {
            Self::check_on(&snapshot, &query.spec.params)?;
        }
        let run = |query: &ServiceQuery| -> ServiceOutcome {
            let start = Instant::now();
            let result = match catch_unwind(AssertUnwindSafe(|| {
                fault::check(site::BATCH_QUERY);
                self.run_one(&snapshot, query)
            })) {
                Ok(outcome) => outcome,
                Err(payload) => Err(panic_to_error(None, payload.as_ref())),
            };
            ServiceOutcome { result, latency: start.elapsed() }
        };
        let workers = effective_threads(self.workers);
        if workers <= 1 || queries.len() <= 1 {
            return Ok(queries.iter().map(run).collect());
        }
        let mut crew = lock(&self.crew);
        if crew.as_ref().is_none_or(|crew| crew.threads() != workers) {
            *crew = Some(PersistentPool::new(workers));
        }
        let crew = crew.as_mut().expect("crew spawned above");
        let mut driver_ws = PeelWorkspace::new();
        let jobs: Vec<_> = queries
            .iter()
            .map(|query| {
                let run = &run;
                move |_ws: &mut PeelWorkspace| run(query)
            })
            .collect();
        Ok(crew.pool_ref().map(&mut driver_ws, jobs))
    }

    /// Commits a mutation batch, publishing the next graph version as a new
    /// snapshot with a fresh epoch.
    ///
    /// The commit pipeline, all off the query path (in-flight and
    /// concurrent queries keep answering on the previous snapshot
    /// throughout, and pick up the new one only once it is published
    /// whole):
    ///
    /// 1. **Validate and apply** — [`MultiLayerGraph::apply_batch`] rebuilds
    ///    only the touched layers; a malformed batch is rejected as
    ///    [`DccsError::BatchInvalid`] with nothing published. A batch whose
    ///    every operation is a no-op short-circuits: the current snapshot
    ///    stays published and its epoch is returned.
    /// 2. **Repair the shared tier** — every per-`d` layer-core entry the
    ///    old tier had materialized is repaired incrementally
    ///    ([`coreness::PeelWorkspace::repair_d_core`]: bounded reach-set
    ///    growth for inserts, cascade re-peel within the old core for
    ///    deletes) on the touched layers only; untouched layers carry over.
    ///    The next epoch's queries start warm instead of re-peeling from
    ///    scratch.
    /// 3. **Publish atomically** — the new snapshot (graph, repaired tier,
    ///    fresh epoch) swaps in under the snapshot lock. A previously
    ///    attached [`DccIndex`] is **auto-detached** with its validity epoch
    ///    recorded, so [`Serve::Index`] queries fail typed
    ///    ([`DccsError::IndexStale`]) while [`Serve::Auto`] peels. The
    ///    result cache and the pooled contexts' graph-bound caches are
    ///    invalidated (the epoch bump in the cache key makes old entries
    ///    unreadable; dropping them bounds memory).
    ///
    /// Commits serialize against each other; a commit that panics (e.g.
    /// fault injection at `batch.commit`) before the swap leaves the old
    /// snapshot serving, untouched.
    pub fn commit(&self, batch: &EdgeBatch) -> Result<CommitReceipt, DccsError> {
        let _serial = lock(&self.commit_serial);
        let snapshot = self.snapshot();
        let (next, applied) = snapshot
            .graph()
            .apply_batch(batch)
            .map_err(|e| DccsError::BatchInvalid { message: e.to_string() })?;
        if applied.is_noop() {
            return Ok(CommitReceipt {
                epoch: snapshot.epoch(),
                inserted: 0,
                deleted: 0,
                layers_touched: 0,
                repaired_ds: 0,
                index_detached: false,
            });
        }
        let next = Arc::new(next);
        // Repair the shared tier: for every `d` the old tier materialized,
        // the touched layers' d-cores are repaired against the delta and
        // the untouched layers' carried over verbatim.
        let old_entries = snapshot.state().snapshot_cores();
        let repaired_ds = old_entries.len();
        let mut ws = PeelWorkspace::new();
        let n = next.num_vertices();
        let mut entries = Vec::with_capacity(old_entries.len());
        for (d, cores) in old_entries {
            let mut repaired: Vec<VertexSet> = (*cores).clone();
            for delta in &applied.layers {
                let mut out = VertexSet::new(n);
                ws.repair_d_core(
                    next.layer(delta.layer),
                    d,
                    &cores[delta.layer],
                    &delta.inserted,
                    &mut out,
                );
                repaired[delta.layer] = out;
            }
            entries.push((d, repaired));
        }
        // The fault site sits after all fallible work and before the swap:
        // a panic here proves the old snapshot survives a dying commit.
        fault::check(site::BATCH_COMMIT);
        let state = SharedSearchState::preloaded(&next, entries);
        let epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
        let (generation, old_index, carried_stale) = snapshot.indexed();
        let index_detached = old_index.is_some();
        // An index valid for the old snapshot was (implicitly) built for
        // that epoch; one already detached by an earlier commit keeps its
        // original validity epoch.
        let stale_epoch = if index_detached { Some(snapshot.epoch()) } else { carried_stale };
        let next_snapshot = Arc::new(GraphSnapshot {
            g: GraphHandle::Owned(next),
            epoch,
            state,
            index: Mutex::new(IndexSlot {
                generation: generation + u64::from(index_detached),
                index: None,
                stale_epoch,
            }),
        });
        *lock(&self.snapshot) = next_snapshot;
        self.contexts.invalidate(epoch);
        // Every cached key carries an older epoch and can never be read
        // again; drop them rather than letting dead entries accumulate.
        lock(&self.cache).retain(|key, _| key.0 == epoch);
        Ok(CommitReceipt {
            epoch,
            inserted: applied.num_inserted(),
            deleted: applied.num_deleted(),
            layers_touched: applied.layers.len(),
            repaired_ds,
            index_detached,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DccsSession;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// The session tests' fixture: four layers over 12 vertices with two
    /// planted coherent cliques.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 4);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 3, &[4, 5, 6, 7]);
        clique(&mut b, 1, &[8, 9, 10, 11]);
        b.build()
    }

    #[test]
    fn snapshots_get_distinct_epochs() {
        let g = graph();
        let a = GraphSnapshot::new(&g);
        let b = GraphSnapshot::new(&g);
        assert_ne!(a.epoch(), b.epoch());
        assert!(a.state().bound_to(&g));
    }

    #[test]
    fn service_results_match_a_fresh_session_and_stamp_the_epoch() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let params = DccsParams::new(2, 2, 2);
        let via_service = service.query(&ServiceQuery::new(params)).unwrap();
        let via_session = DccsSession::new(&g).query(params).run().unwrap();
        assert_eq!(via_service.cores, via_session.cores);
        assert_eq!(via_service.cover.to_vec(), via_session.cover.to_vec());
        assert_eq!(via_service.stats, via_session.stats);
        assert_eq!(via_service.stats.graph_epoch, Some(service.snapshot().epoch()));
        assert!(!via_service.stats.served_from_cache);
    }

    #[test]
    fn repeat_queries_hit_the_cache_and_the_answer_is_identical() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let query = ServiceQuery::new(DccsParams::new(2, 2, 2));
        let first = service.query(&query).unwrap();
        let second = service.query(&query).unwrap();
        assert!(!first.stats.served_from_cache);
        assert!(second.stats.served_from_cache);
        assert_eq!(first.cores, second.cores);
        assert_eq!(first.stats, second.stats, "cache provenance is Eq-excluded");
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_parameters_algorithms_and_serve_modes_miss() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let base = ServiceQuery::new(DccsParams::new(2, 2, 2));
        service.query(&base).unwrap();
        service.query(&ServiceQuery::new(DccsParams::new(2, 2, 1))).unwrap();
        service.query(&base.clone().with_algorithm(Algorithm::Greedy)).unwrap();
        service.query(&base.clone().with_serve(Serve::Peel)).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 4);
    }

    #[test]
    fn limited_and_cancellable_queries_bypass_the_cache() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let params = DccsParams::new(2, 2, 2);
        let limited = ServiceQuery::new(params)
            .with_limits(QueryLimits::none().with_candidate_budget(1_000_000));
        service.query(&limited).unwrap();
        service.query(&limited).unwrap();
        let tokened = ServiceQuery::new(params).with_token(CancelToken::new());
        service.query(&tokened).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats, CacheStats::default(), "bypassing queries count nowhere");
    }

    #[test]
    fn attach_and_detach_invalidate_the_cache() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let query = ServiceQuery::new(DccsParams::new(2, 2, 2));
        let peeled = service.query(&query).unwrap();
        assert_eq!(service.cache_stats().entries, 1);
        let index = DccIndex::build(&g, &[2], 0);
        service.attach_index(index).unwrap();
        assert_eq!(service.cache_stats().entries, 0);
        // The re-run is served from the index (different work counters than
        // the peel), which is exactly why the attach must invalidate.
        let served = service.query(&query).unwrap();
        assert_eq!(served.stats.dcc_calls, 0);
        assert_eq!(served.cores, peeled.cores);
        service.detach_index();
        assert_eq!(service.cache_stats().entries, 0);
        let repeeled = service.query(&query).unwrap();
        assert_eq!(repeeled.stats, peeled.stats);
    }

    #[test]
    fn contexts_are_pooled_and_reused() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        assert_eq!(service.idle_contexts(), 0);
        service.query(&ServiceQuery::new(DccsParams::new(2, 2, 2))).unwrap();
        assert_eq!(service.idle_contexts(), 1);
        service.query(&ServiceQuery::new(DccsParams::new(3, 2, 2))).unwrap();
        assert_eq!(service.idle_contexts(), 1, "the idle context is reused, not duplicated");
    }

    #[test]
    fn invalid_parameters_fail_the_whole_batch_up_front() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let queries = [
            ServiceQuery::new(DccsParams::new(2, 2, 2)),
            ServiceQuery::new(DccsParams::new(2, 0, 2)),
        ];
        assert_eq!(service.run_batch(&queries).unwrap_err(), DccsError::SupportZero);
    }

    #[test]
    fn batch_outcomes_arrive_in_submission_order_with_latencies() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let specs = [(2u32, 2usize, 2usize), (3, 2, 2), (2, 3, 1), (2, 2, 2)];
        let queries: Vec<ServiceQuery> =
            specs.iter().map(|&(d, s, k)| ServiceQuery::new(DccsParams::new(d, s, k))).collect();
        let outcomes = service.run_batch(&queries).unwrap();
        assert_eq!(outcomes.len(), queries.len());
        for (outcome, &(d, s, k)) in outcomes.iter().zip(&specs) {
            let got = outcome.result.as_ref().unwrap();
            let want = DccsSession::new(&g).query(DccsParams::new(d, s, k)).run().unwrap();
            assert_eq!(got.cores, want.cores);
            assert_eq!(got.stats, want.stats);
        }
        // The duplicated spec hit the cache.
        assert!(outcomes[3].result.as_ref().unwrap().stats.served_from_cache);
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn commit_publishes_a_new_epoch_and_queries_see_the_mutated_graph() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let params = DccsParams::new(3, 2, 2);
        let before = service.query(&ServiceQuery::new(params)).unwrap();
        let epoch_before = service.epoch();
        // Wire the second planted clique into layers 0 and 1 as well.
        let mut batch = EdgeBatch::new();
        for i in 4u32..8 {
            for j in (i + 1)..8 {
                batch.insert(0, i, j).insert(1, i, j);
            }
        }
        let receipt = service.commit(&batch).unwrap();
        assert!(receipt.epoch > epoch_before);
        assert_eq!(service.epoch(), receipt.epoch);
        assert_eq!(receipt.inserted, 12);
        assert_eq!(receipt.deleted, 0);
        assert_eq!(receipt.layers_touched, 2);
        assert!(receipt.repaired_ds >= 1, "the d=3 layer cores were materialized pre-commit");
        let after = service.query(&ServiceQuery::new(params)).unwrap();
        assert_eq!(after.stats.graph_epoch, Some(receipt.epoch));
        // The mutation changed what the query returns (the second clique
        // now also lives on layers {0, 1}) ...
        assert_ne!(after.cores, before.cores);
        // ... and incremental repair must be bit-identical to a fresh
        // session on an equivalently mutated graph.
        let (fresh_g, _) = g.apply_batch(&batch).unwrap();
        let fresh = DccsSession::new(&fresh_g).query(params).run().unwrap();
        assert_eq!(after.cores, fresh.cores);
        assert_eq!(after.cover.to_vec(), fresh.cover.to_vec());
        assert_eq!(after.stats.dcc_calls, fresh.stats.dcc_calls);
    }

    #[test]
    fn commit_invalidates_the_result_cache_but_old_snapshots_stay_queryable() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let query = ServiceQuery::new(DccsParams::new(2, 2, 2));
        let before = service.query(&query).unwrap();
        assert_eq!(service.cache_stats().entries, 1);
        let pinned = service.snapshot();
        let mut batch = EdgeBatch::new();
        batch.delete(1, 8, 9);
        let receipt = service.commit(&batch).unwrap();
        assert_eq!(service.cache_stats().entries, 0, "old-epoch entries are dropped");
        let after = service.query(&query).unwrap();
        assert!(!after.stats.served_from_cache);
        assert_eq!(after.stats.graph_epoch, Some(receipt.epoch));
        // The pinned pre-commit snapshot still answers on the old graph.
        assert_eq!(pinned.epoch(), before.stats.graph_epoch.unwrap());
        assert_eq!(pinned.graph().layer(1).num_edges(), g.layer(1).num_edges());
    }

    #[test]
    fn noop_and_invalid_batches_leave_the_snapshot_alone() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let epoch = service.epoch();
        // Every operation a no-op: insert a present edge, delete an absent one.
        let mut noop = EdgeBatch::new();
        noop.insert(0, 0, 1).delete(0, 8, 9);
        let receipt = service.commit(&noop).unwrap();
        assert_eq!(receipt.epoch, epoch, "nothing republished");
        assert!(receipt.is_noop_commit());
        // An invalid batch is a typed error and changes nothing.
        let mut bad = EdgeBatch::new();
        bad.insert(0, 0, 99);
        let err = service.commit(&bad).unwrap_err();
        assert!(matches!(err, DccsError::BatchInvalid { .. }), "got {err:?}");
        assert_eq!(service.epoch(), epoch);
    }

    #[test]
    fn commit_detaches_the_index_and_serve_index_reports_stale() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let index = DccIndex::build(&g, &[2], 0);
        service.attach_index(index).unwrap();
        let index_epoch = service.epoch();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 8, 9);
        let receipt = service.commit(&batch).unwrap();
        assert!(receipt.index_detached);
        let snapshot = service.snapshot();
        assert!(snapshot.index().is_none(), "the stale index must not serve");
        assert_eq!(snapshot.stale_index_epoch(), Some(index_epoch));
        // Serve::Index now fails typed; Serve::Auto silently peels.
        let forced = ServiceQuery::new(DccsParams::new(2, 1, 2)).with_serve(Serve::Index);
        assert_eq!(
            service.query(&forced).unwrap_err(),
            DccsError::IndexStale { index_epoch, graph_epoch: receipt.epoch }
        );
        let auto = service.query(&ServiceQuery::new(DccsParams::new(2, 1, 2))).unwrap();
        assert!(auto.stats.complete);
        // Re-attaching a freshly built index clears the staleness.
        let rebuilt = DccIndex::build(service.snapshot().graph(), &[2], 0);
        service.attach_index(rebuilt).unwrap();
        assert_eq!(service.snapshot().stale_index_epoch(), None);
        assert!(service.query(&forced).is_ok());
    }

    #[test]
    fn a_panicking_commit_leaves_the_old_snapshot_serving() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let query = ServiceQuery::new(DccsParams::new(2, 2, 2));
        let before = service.query(&query).unwrap();
        let epoch = service.epoch();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 8, 9);
        fault::arm(site::BATCH_COMMIT, crate::fault::FaultMode::Panic, 1);
        let caught = catch_unwind(AssertUnwindSafe(|| service.commit(&batch)));
        fault::disarm();
        assert!(caught.is_err(), "the armed fault must panic the commit");
        assert_eq!(service.epoch(), epoch, "the old snapshot is still published");
        let after = service.query(&query).unwrap();
        assert_eq!(after.cores, before.cores);
        assert_eq!(after.stats.graph_epoch, Some(epoch));
        // And the service can still commit afterwards.
        let receipt = service.commit(&batch).unwrap();
        assert!(receipt.epoch > epoch);
    }

    #[test]
    fn successive_commits_stay_bit_identical_to_recompute() {
        let g = graph();
        let service = QueryService::new(&g, DccsOptions::default());
        let params = DccsParams::new(2, 2, 2);
        let mut current = g.clone();
        let steps: Vec<EdgeBatch> = vec![
            {
                let mut b = EdgeBatch::new();
                b.insert(2, 0, 4).insert(2, 1, 4).delete(1, 8, 9);
                b
            },
            {
                let mut b = EdgeBatch::new();
                b.delete(0, 0, 1).delete(0, 2, 3).insert(1, 8, 9);
                b
            },
            {
                let mut b = EdgeBatch::new();
                b.insert(0, 0, 1).insert(0, 2, 3);
                b
            },
        ];
        for (i, batch) in steps.iter().enumerate() {
            service.query(&ServiceQuery::new(params)).unwrap();
            let receipt = service.commit(batch).unwrap();
            let (next, _) = current.apply_batch(batch).unwrap();
            current = next;
            let incremental = service.query(&ServiceQuery::new(params)).unwrap();
            let fresh = DccsSession::new(&current).query(params).run().unwrap();
            assert_eq!(incremental.cores, fresh.cores, "step {i}");
            assert_eq!(incremental.cover.to_vec(), fresh.cover.to_vec(), "step {i}");
            assert_eq!(incremental.stats.dcc_calls, fresh.stats.dcc_calls, "step {i}");
            assert_eq!(incremental.stats.graph_epoch, Some(receipt.epoch), "step {i}");
        }
    }

    #[test]
    fn shared_snapshot_between_session_and_service() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        let params = DccsParams::new(2, 2, 2);
        let via_session = session.query(params).run().unwrap();
        // The service built over the session's snapshot reuses its tier and
        // reports the same epoch.
        let service = QueryService::over(session.snapshot().clone(), DccsOptions::default());
        let via_service = service.query(&ServiceQuery::new(params)).unwrap();
        assert_eq!(via_service.stats.graph_epoch, via_session.stats.graph_epoch);
        assert_eq!(via_service.cores, via_session.cores);
        assert_eq!(via_service.stats, via_session.stats);
        assert!(service.snapshot().state().memoized_ds() >= 1);
    }
}
