//! The session-based query API — the crate's primary public surface.
//!
//! The paper's workload is *sweep-shaped*: its experiments vary `d`, `s`,
//! and `k` over a fixed graph (Figs. 14–25), and a production deployment
//! serves many queries against one loaded graph. A [`DccsSession`] is the
//! durable handle for that pattern: constructed once per graph, it owns the
//! long-lived engine state — the [`SearchContext`] with the driver's
//! `PeelWorkspace`, the reused cover/seed buffers, the universe-keyed
//! `DenseSubgraph` cache, and the per-`d` layer-core memo — so consecutive
//! queries reuse everything a fresh run would have to rebuild, while
//! returning **bit-identical results** to one-shot calls (the caches only
//! skip recomputing deterministic intermediates; enforced by
//! `crates/core/tests/session_sweep.rs`).
//!
//! Queries go through a builder and return `Result` instead of panicking:
//!
//! ```
//! use mlgraph::MultiLayerGraphBuilder;
//! use dccs::{Algorithm, DccsParams, DccsSession};
//!
//! let mut b = MultiLayerGraphBuilder::new(4, 2);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     b.add_edge(0, u, v).unwrap();
//!     b.add_edge(1, u, v).unwrap();
//! }
//! let g = b.build();
//! let mut session = DccsSession::new(&g);
//! let result = session
//!     .query(DccsParams::new(2, 2, 1))
//!     .algorithm(Algorithm::Auto)
//!     .run()
//!     .expect("valid parameters");
//! assert_eq!(result.cover.to_vec(), vec![0, 1, 2]);
//! // Invalid parameters are typed errors, not panics:
//! assert!(session.query(DccsParams::new(2, 9, 1)).run().is_err());
//! ```
//!
//! Whole sweeps go through [`DccsSession::run_batch`], which fans the
//! queries of a sweep out over the session's **persistent** worker crew
//! (each query runs sequentially on one worker, so per-query results — and
//! their work counters — are exactly the 1-thread results, in submission
//! order).
//!
//! # Single-crew queries
//!
//! The session keeps one [`PersistentPool`] (spawned on the first query
//! that wants more than one thread) and threads it through preprocessing
//! *and* the search of every query, so neither phase — nor any later
//! query at the same width — pays a worker spawn/join. The crew is
//! re-created only when a query asks for a different width and joined on
//! drop.
//!
//! # Threads
//!
//! A query's `threads` knob selects the width of the shared executor — the
//! fork-join batches of preprocessing and the lattice, and the BU/TD
//! subtree task graphs ([`crate::engine::drive_task_graph`]) — and nothing
//! else: results are bit-identical at every width. The value `0` means
//! **auto** (`available_parallelism`, via [`auto_threads`]) everywhere in
//! the session API; the legacy free functions (`*_with_options`,
//! [`crate::parallel_greedy_dccs`]) keep their historical `0 ≡ 1`
//! (sequential) reading, so existing call sites run exactly as they always
//! did.

use crate::algorithm::Algorithm;
use crate::bottom_up::bottom_up_dccs_on;
use crate::config::{DccsOptions, DccsParams};
use crate::engine::{effective_threads, PersistentPool, PoolRef, SearchContext};
use crate::error::DccsError;
use crate::exact::exact_dccs_on;
use crate::greedy::greedy_dccs_on;
use crate::result::DccsResult;
use crate::top_down::top_down_dccs_on;
use coreness::PeelWorkspace;
use mlgraph::MultiLayerGraph;

/// Resolves the `threads` knob of the session API: `0` means **auto** —
/// `std::thread::available_parallelism()` (falling back to 1 when the
/// platform cannot report it) — while any other value is taken literally
/// (`1` stays sequential). The direct entry points (`*_with_options`) keep
/// the legacy behavior of treating `0` as `1`.
pub fn auto_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// One query of a batch: the `(d, s, k)` parameters plus the algorithm to
/// run them with ([`Algorithm::Auto`] by default).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// The DCCS problem parameters.
    pub params: DccsParams,
    /// The algorithm to run (resolved per query when [`Algorithm::Auto`]).
    pub algorithm: Algorithm,
}

impl QuerySpec {
    /// A spec running `params` with automatic algorithm selection.
    pub fn new(params: DccsParams) -> Self {
        QuerySpec { params, algorithm: Algorithm::Auto }
    }

    /// Pins the algorithm instead of auto-selecting.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }
}

/// A long-lived query handle over one graph. See the [module docs](self)
/// for the full story; in short: construct once, [`DccsSession::query`] many
/// times, and every piece of reusable engine state carries over between
/// queries without changing any result.
#[derive(Debug)]
pub struct DccsSession<'g> {
    g: &'g MultiLayerGraph,
    ctx: SearchContext,
    opts: DccsOptions,
    /// The session's persistent worker crew ([`PersistentPool`]): spawned
    /// on the first query that wants more than one thread, then threaded
    /// through preprocessing and search of **every** subsequent query (and
    /// through whole `run_batch` sweeps), so repeated small queries stop
    /// paying a worker spawn/join per phase. Re-created only when a query
    /// asks for a different width; `None` while every query has been
    /// sequential.
    crew: Option<PersistentPool>,
}

impl<'g> DccsSession<'g> {
    /// A session over `g` with default [`DccsOptions`] (all preprocessing
    /// and pruning on, sequential execution).
    pub fn new(g: &'g MultiLayerGraph) -> Self {
        DccsSession::with_options(g, DccsOptions::default())
    }

    /// A session over `g` whose queries default to `opts`. An `opts.threads`
    /// of `0` means auto ([`auto_threads`]).
    pub fn with_options(g: &'g MultiLayerGraph, opts: DccsOptions) -> Self {
        let mut ctx = SearchContext::new(auto_threads(opts.threads));
        ctx.set_index_choice(opts.index);
        DccsSession { g, ctx, opts, crew: None }
    }

    /// The graph this session queries.
    pub fn graph(&self) -> &'g MultiLayerGraph {
        self.g
    }

    /// The session's default options (per-query overrides go through the
    /// [`Query`] builder).
    pub fn options(&self) -> &DccsOptions {
        &self.opts
    }

    /// Starts building a query for `params`. Nothing runs until
    /// [`Query::run`].
    pub fn query(&mut self, params: DccsParams) -> Query<'_, 'g> {
        let opts = self.opts;
        Query { session: self, spec: QuerySpec::new(params), opts }
    }

    /// Checks that the graph is non-empty and `params` are valid for it.
    fn check(&self, params: &DccsParams) -> Result<(), DccsError> {
        let (n, l) = (self.g.num_vertices(), self.g.num_layers());
        if n == 0 || l == 0 {
            return Err(DccsError::EmptyGraph { num_vertices: n, num_layers: l });
        }
        params.validate(l)
    }

    /// Makes sure the persistent crew matches `threads` (after the CI
    /// forcing override); sequential queries never spawn one. An existing
    /// crew of a different width is torn down and replaced — sweeps at a
    /// fixed width, the common case, reuse one crew for their lifetime.
    fn ensure_crew(&mut self, threads: usize) {
        let effective = effective_threads(threads);
        if effective <= 1 {
            return;
        }
        if self.crew.as_ref().is_none_or(|crew| crew.threads() != effective) {
            self.crew = Some(PersistentPool::new(effective));
        }
    }

    /// Runs one validated query on the session context and the persistent
    /// crew. `opts.threads` must already be resolved (≥ 1).
    fn run_checked(
        &mut self,
        spec: &QuerySpec,
        opts: &DccsOptions,
    ) -> Result<DccsResult, DccsError> {
        self.ctx.set_threads(opts.threads);
        self.ctx.set_index_choice(opts.index);
        let parallel = effective_threads(opts.threads) > 1;
        if parallel {
            self.ensure_crew(opts.threads);
        }
        let ctx = &mut self.ctx;
        let g = self.g;
        match &mut self.crew {
            // A sequential query must not fan out on a crew left over from
            // an earlier wider query — the crew stays alive (a later wide
            // query reuses it) but this query bypasses it.
            Some(crew) if parallel => run_spec_on_pool(ctx, &crew.pool_ref(), g, spec, opts),
            // Truly sequential (no forcing either): a width-1 scoped pool
            // spawns no thread and runs every batch inline.
            _ => crate::engine::with_pool(1, |pool| run_spec_on_pool(ctx, pool, g, spec, opts)),
        }
    }

    /// Runs a whole sweep through **one** executor crew.
    ///
    /// All specs are validated up front (the batch is all-or-nothing: the
    /// first invalid spec fails the call before any work runs). With an
    /// effective thread count of 1 — or a single spec — the queries run
    /// in order on the session context, compounding its caches. With more
    /// threads, the session's persistent crew serves the entire batch and
    /// each query becomes one job, executed sequentially on one worker —
    /// inter-query parallelism, which is where a sweep's wall-clock actually
    /// goes. Either way each result is bit-identical to running its spec as
    /// a one-shot query (per-query execution is thread-invariant), and
    /// results come back in spec order.
    pub fn run_batch(&mut self, specs: &[QuerySpec]) -> Result<Vec<DccsResult>, DccsError> {
        for spec in specs {
            self.check(&spec.params)?;
        }
        let threads = auto_threads(self.opts.threads);
        if threads <= 1 || specs.len() <= 1 {
            let opts = DccsOptions { threads, ..self.opts };
            return specs.iter().map(|spec| self.run_checked(spec, &opts)).collect();
        }
        // The persistent crew serves the whole sweep; each query is one
        // sequential job, so its result (and stats) equal the 1-thread run
        // by construction.
        self.ensure_crew(threads);
        let g = self.g;
        let opts = DccsOptions { threads: 1, ..self.opts };
        let crew = self.crew.as_mut().expect("ensure_crew spawns for threads > 1");
        let jobs: Vec<_> = specs
            .iter()
            .map(|&spec| {
                let opts = &opts;
                move |_ws: &mut PeelWorkspace| {
                    let mut ctx = SearchContext::new(1);
                    ctx.set_index_choice(opts.index);
                    crate::engine::with_pool(1, |pool| {
                        run_spec_on_pool(&mut ctx, pool, g, &spec, opts)
                    })
                }
            })
            .collect();
        let outcomes: Vec<Result<DccsResult, DccsError>> =
            crew.pool_ref().map(&mut self.ctx.ws, jobs);
        outcomes.into_iter().collect()
    }
}

/// Dispatches one spec on an existing context and executor crew — the
/// single place the algorithm match lives, shared by the session's
/// single-query and batch paths. The caller has already validated the spec
/// and configured the context's thread count and index override; the crew
/// is threaded through preprocessing and the search (the single-crew query
/// path).
fn run_spec_on_pool(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    spec: &QuerySpec,
    opts: &DccsOptions,
) -> Result<DccsResult, DccsError> {
    let algorithm = spec.algorithm.resolve(g, &spec.params);
    Ok(match algorithm {
        Algorithm::Greedy => greedy_dccs_on(ctx, pool, g, &spec.params, opts),
        Algorithm::BottomUp => bottom_up_dccs_on(ctx, pool, g, &spec.params, opts),
        Algorithm::TopDown => top_down_dccs_on(ctx, pool, g, &spec.params, opts),
        Algorithm::Exact => exact_dccs_on(ctx, pool, g, &spec.params, opts)?,
        Algorithm::Auto => unreachable!("resolve never returns Auto"),
    })
}

/// A configured-but-not-yet-run query, produced by [`DccsSession::query`].
/// Builder methods refine it; [`Query::run`] executes it on the session.
#[derive(Debug)]
#[must_use = "a query does nothing until .run() is called"]
pub struct Query<'s, 'g> {
    session: &'s mut DccsSession<'g>,
    spec: QuerySpec,
    opts: DccsOptions,
}

impl Query<'_, '_> {
    /// Selects the algorithm (default: the session runs
    /// [`Algorithm::Auto`]). The concrete algorithm that ends up running is
    /// recorded in [`crate::SearchStats::algorithm`].
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.spec.algorithm = algorithm;
        self
    }

    /// Sets the executor width for this query: `0` means auto
    /// ([`auto_threads`]), `1` sequential. Results are identical at every
    /// thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Replaces the full option set for this query (ablation toggles,
    /// threads) instead of inheriting the session defaults.
    pub fn options(mut self, opts: DccsOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Validates and executes the query on the session's engine state.
    ///
    /// Every parameter combination [`DccsParams::validate`] rejects — and an
    /// empty graph, and a blown [`Algorithm::Exact`] candidate budget —
    /// comes back as a typed [`DccsError`]; this entry point never panics on
    /// user input.
    pub fn run(self) -> Result<DccsResult, DccsError> {
        self.session.check(&self.spec.params)?;
        let opts = DccsOptions { threads: auto_threads(self.opts.threads), ..self.opts };
        self.session.run_checked(&self.spec, &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bottom_up_dccs, greedy_dccs};
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Four layers over 12 vertices with two planted coherent cliques.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 4);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 3, &[4, 5, 6, 7]);
        clique(&mut b, 1, &[8, 9, 10, 11]);
        b.build()
    }

    #[test]
    fn one_shot_query_matches_free_function() {
        let g = graph();
        let params = DccsParams::new(3, 2, 2);
        let mut session = DccsSession::new(&g);
        let via_session = session.query(params).algorithm(Algorithm::BottomUp).run().unwrap();
        let via_free = bottom_up_dccs(&g, &params);
        assert_eq!(via_session.cores, via_free.cores);
        assert_eq!(via_session.cover.to_vec(), via_free.cover.to_vec());
        assert_eq!(via_session.stats, via_free.stats);
    }

    #[test]
    fn session_reuse_across_a_sweep_is_bit_identical_to_fresh_sessions() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown] {
            // s-sweep at fixed d (memo + dense cache hits), then a d change.
            for (d, s, k) in [(2, 1, 2), (2, 2, 2), (2, 3, 1), (3, 2, 2), (2, 2, 3)] {
                let params = DccsParams::new(d, s, k);
                let swept = session.query(params).algorithm(algorithm).run().unwrap();
                let fresh = DccsSession::new(&g).query(params).algorithm(algorithm).run().unwrap();
                let label = format!("{} d={d} s={s} k={k}", algorithm.name());
                assert_eq!(swept.cores, fresh.cores, "{label}");
                assert_eq!(swept.cover.to_vec(), fresh.cover.to_vec(), "{label}");
                assert_eq!(swept.stats, fresh.stats, "{label}");
            }
        }
    }

    #[test]
    fn auto_records_the_resolved_algorithm_in_stats() {
        let g = graph();
        let params = DccsParams::new(3, 2, 2);
        let mut session = DccsSession::new(&g);
        let result = session.query(params).run().unwrap(); // default = Auto
        let resolved = Algorithm::Auto.resolve(&g, &params);
        assert_ne!(resolved, Algorithm::Auto);
        assert_eq!(result.stats.algorithm, Some(resolved));
        // An explicit algorithm is recorded too.
        let explicit = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
        assert_eq!(explicit.stats.algorithm, Some(Algorithm::Greedy));
    }

    #[test]
    fn invalid_parameters_are_typed_errors_not_panics() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        assert_eq!(
            session.query(DccsParams::new(2, 0, 2)).run().unwrap_err(),
            DccsError::SupportZero
        );
        assert_eq!(
            session.query(DccsParams::new(2, 9, 2)).run().unwrap_err(),
            DccsError::SupportExceedsLayers { s: 9, num_layers: 4 }
        );
        assert_eq!(
            session.query(DccsParams::new(2, 2, 0)).run().unwrap_err(),
            DccsError::ResultSizeZero
        );
        // The session stays usable after an error.
        assert!(session.query(DccsParams::new(2, 2, 2)).run().is_ok());
    }

    #[test]
    fn empty_graph_is_a_typed_error() {
        // A graph cannot have zero layers (the constructor rejects that),
        // but a zero-vertex graph is constructible — and unqueryable.
        let g = MultiLayerGraph::from_edge_lists(0, &[vec![]]).unwrap();
        let mut session = DccsSession::new(&g);
        assert_eq!(
            session.query(DccsParams::new(2, 1, 1)).run().unwrap_err(),
            DccsError::EmptyGraph { num_vertices: 0, num_layers: 1 }
        );
    }

    #[test]
    fn exact_budget_overflow_is_a_typed_error() {
        // 9 layers sharing one triangle: C(9, 2) = 36 > 24 non-empty
        // candidates blow the exact solver's budget.
        let mut b = MultiLayerGraphBuilder::new(3, 9);
        for layer in 0..9 {
            clique(&mut b, layer, &[0, 1, 2]);
        }
        let g = b.build();
        let mut session = DccsSession::new(&g);
        let err =
            session.query(DccsParams::new(2, 2, 1)).algorithm(Algorithm::Exact).run().unwrap_err();
        assert!(matches!(err, DccsError::BudgetExceeded { candidates: 36, limit: 24 }));
    }

    #[test]
    fn run_batch_matches_one_shot_queries_at_any_width() {
        let g = graph();
        let specs: Vec<QuerySpec> = [(2u32, 2usize, 2usize), (3, 2, 2), (2, 3, 1), (2, 2, 3)]
            .into_iter()
            .map(|(d, s, k)| QuerySpec::new(DccsParams::new(d, s, k)))
            .collect();
        let reference: Vec<DccsResult> = specs
            .iter()
            .map(|spec| DccsSession::new(&g).query(spec.params).run().unwrap())
            .collect();
        for threads in [1usize, 4] {
            let mut session = DccsSession::with_options(&g, DccsOptions::with_threads(threads));
            let batch = session.run_batch(&specs).unwrap();
            assert_eq!(batch.len(), reference.len());
            for (got, want) in batch.iter().zip(&reference) {
                assert_eq!(got.cores, want.cores, "threads={threads}");
                assert_eq!(got.cover.to_vec(), want.cover.to_vec(), "threads={threads}");
                assert_eq!(got.stats, want.stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn run_batch_rejects_the_whole_batch_on_one_invalid_spec() {
        let g = graph();
        let specs =
            [QuerySpec::new(DccsParams::new(2, 2, 2)), QuerySpec::new(DccsParams::new(2, 99, 2))];
        let mut session = DccsSession::new(&g);
        assert_eq!(
            session.run_batch(&specs).unwrap_err(),
            DccsError::SupportExceedsLayers { s: 99, num_layers: 4 }
        );
    }

    #[test]
    fn zero_threads_means_auto_and_changes_no_result() {
        assert_eq!(auto_threads(1), 1);
        assert_eq!(auto_threads(4), 4);
        assert!(auto_threads(0) >= 1, "auto must resolve to at least one worker");
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let seq = DccsSession::new(&g).query(params).threads(1).run().unwrap();
        let auto = DccsSession::new(&g).query(params).threads(0).run().unwrap();
        assert_eq!(seq.cores, auto.cores);
        assert_eq!(seq.stats, auto.stats);
    }

    #[test]
    fn query_spec_defaults_to_auto() {
        let spec = QuerySpec::new(DccsParams::new(2, 2, 2));
        assert_eq!(spec.algorithm, Algorithm::Auto);
        let pinned = spec.with_algorithm(Algorithm::TopDown);
        assert_eq!(pinned.algorithm, Algorithm::TopDown);
        assert_eq!(pinned.params, spec.params);
    }

    #[test]
    fn greedy_via_session_matches_greedy_free_function() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let via_session =
            DccsSession::new(&g).query(params).algorithm(Algorithm::Greedy).run().unwrap();
        let via_free = greedy_dccs(&g, &params);
        assert_eq!(via_session.cores, via_free.cores);
        assert_eq!(via_session.stats, via_free.stats);
    }
}
