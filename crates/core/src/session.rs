//! The session-based query API — the crate's primary public surface.
//!
//! The paper's workload is *sweep-shaped*: its experiments vary `d`, `s`,
//! and `k` over a fixed graph (Figs. 14–25), and a production deployment
//! serves many queries against one loaded graph. A [`DccsSession`] is the
//! durable handle for that pattern: constructed once per graph, it owns the
//! long-lived engine state — the [`SearchContext`] with the driver's
//! `PeelWorkspace`, the reused cover/seed buffers, the universe-keyed
//! `DenseSubgraph` cache, and the per-`d` layer-core memo — so consecutive
//! queries reuse everything a fresh run would have to rebuild, while
//! returning **bit-identical results** to one-shot calls (the caches only
//! skip recomputing deterministic intermediates; enforced by
//! `crates/core/tests/session_sweep.rs`).
//!
//! Queries go through a builder and return `Result` instead of panicking:
//!
//! ```
//! use mlgraph::MultiLayerGraphBuilder;
//! use dccs::{Algorithm, DccsParams, DccsSession};
//!
//! let mut b = MultiLayerGraphBuilder::new(4, 2);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     b.add_edge(0, u, v).unwrap();
//!     b.add_edge(1, u, v).unwrap();
//! }
//! let g = b.build();
//! let mut session = DccsSession::new(&g);
//! let result = session
//!     .query(DccsParams::new(2, 2, 1))
//!     .algorithm(Algorithm::Auto)
//!     .run()
//!     .expect("valid parameters");
//! assert_eq!(result.cover.to_vec(), vec![0, 1, 2]);
//! // Invalid parameters are typed errors, not panics:
//! assert!(session.query(DccsParams::new(2, 9, 1)).run().is_err());
//! ```
//!
//! Whole sweeps go through [`DccsSession::run_batch`], which fans the
//! queries of a sweep out over the session's **persistent** worker crew
//! (each query runs sequentially on one worker, so per-query results — and
//! their work counters — are exactly the 1-thread results, in submission
//! order).
//!
//! # Single-crew queries
//!
//! The session keeps one [`PersistentPool`] (spawned on the first query
//! that wants more than one thread) and threads it through preprocessing
//! *and* the search of every query, so neither phase — nor any later
//! query at the same width — pays a worker spawn/join. The crew is
//! re-created only when a query asks for a different width and joined on
//! drop.
//!
//! # Threads
//!
//! A query's `threads` knob selects the width of the shared executor — the
//! fork-join batches of preprocessing and the lattice, and the BU/TD
//! subtree task graphs ([`crate::engine::drive_task_graph`]) — and nothing
//! else: results are bit-identical at every width. The value `0` means
//! **auto** (`available_parallelism`, via [`auto_threads`]) everywhere in
//! the session API; the legacy free functions (`*_with_options`,
//! [`crate::parallel_greedy_dccs`]) keep their historical `0 ≡ 1`
//! (sequential) reading, so existing call sites run exactly as they always
//! did.

use crate::algorithm::Algorithm;
use crate::bottom_up::bottom_up_dccs_on;
use crate::config::{DccsOptions, DccsParams};
use crate::engine::{effective_threads, PersistentPool, PoolRef, SearchContext};
use crate::error::DccsError;
use crate::exact::exact_dccs_on;
use crate::fault::{self, site};
use crate::greedy::greedy_dccs_on;
use crate::limits::{CancelToken, LimitKind, QueryLimits, QueryMonitor};
use crate::result::DccsResult;
use crate::serve::{serve_from_index_on, DccIndex, Serve, ServePath};
use crate::service::GraphSnapshot;
use crate::top_down::top_down_dccs_on;
use coreness::PeelWorkspace;
use mlgraph::MultiLayerGraph;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Resolves the `threads` knob of the session API: `0` means **auto** —
/// `std::thread::available_parallelism()` (falling back to 1 when the
/// platform cannot report it) — while any other value is taken literally
/// (`1` stays sequential). The direct entry points (`*_with_options`) keep
/// the legacy behavior of treating `0` as `1`.
pub fn auto_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// One query of a batch: the `(d, s, k)` parameters plus the algorithm to
/// run them with ([`Algorithm::Auto`] by default).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// The DCCS problem parameters.
    pub params: DccsParams,
    /// The algorithm to run (resolved per query when [`Algorithm::Auto`]).
    pub algorithm: Algorithm,
}

impl QuerySpec {
    /// A spec running `params` with automatic algorithm selection.
    pub fn new(params: DccsParams) -> Self {
        QuerySpec { params, algorithm: Algorithm::Auto }
    }

    /// Pins the algorithm instead of auto-selecting.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }
}

/// A long-lived query handle over one graph. See the [module docs](self)
/// for the full story; in short: construct once, [`DccsSession::query`] many
/// times, and every piece of reusable engine state carries over between
/// queries without changing any result.
#[derive(Debug)]
pub struct DccsSession<'g> {
    g: &'g MultiLayerGraph,
    /// The session's epoch-versioned shared tier ([`GraphSnapshot`]): the
    /// per-`d` layer-core memo and index-plan memo live here (installed
    /// into every context the session runs queries on, including fresh
    /// batch-job contexts), and the attached [`DccIndex`] is mirrored into
    /// it — so a session *is* a single-tenant
    /// [`crate::service::QueryService`] client over its own snapshot, and
    /// [`DccsSession::snapshot`] hands the same tier to concurrent readers.
    snapshot: Arc<GraphSnapshot<'g>>,
    ctx: SearchContext,
    opts: DccsOptions,
    /// The session's persistent worker crew ([`PersistentPool`]): spawned
    /// on the first query that wants more than one thread, then threaded
    /// through preprocessing and search of **every** subsequent query (and
    /// through whole `run_batch` sweeps), so repeated small queries stop
    /// paying a worker spawn/join per phase. Re-created only when a query
    /// asks for a different width; `None` while every query has been
    /// sequential.
    crew: Option<PersistentPool>,
    /// The externally shared kill switch attached to every query of this
    /// session (see [`DccsSession::set_cancel_token`]); `None` by default.
    token: Option<CancelToken>,
    /// The attached precomputed d-CC hierarchy ([`DccIndex`]), fingerprint-
    /// validated against `g` at attach time. Shared by `Arc` so batch jobs
    /// on the crew read it without copying. `None` until
    /// [`DccsSession::attach_index`]; queries then serve from it per the
    /// [`Serve`] knob.
    index: Option<Arc<DccIndex>>,
}

impl<'g> DccsSession<'g> {
    /// A session over `g` with default [`DccsOptions`] (all preprocessing
    /// and pruning on, sequential execution).
    pub fn new(g: &'g MultiLayerGraph) -> Self {
        DccsSession::with_options(g, DccsOptions::default())
    }

    /// A session over `g` whose queries default to `opts`. An `opts.threads`
    /// of `0` means auto ([`auto_threads`]).
    pub fn with_options(g: &'g MultiLayerGraph, opts: DccsOptions) -> Self {
        let snapshot = GraphSnapshot::new(g);
        let mut ctx = SearchContext::new(auto_threads(opts.threads));
        ctx.set_index_choice(opts.index);
        ctx.set_shared(Some(snapshot.state().clone()));
        DccsSession { g, snapshot, ctx, opts, crew: None, token: None, index: None }
    }

    /// The session's epoch-versioned [`GraphSnapshot`] — the shared
    /// immutable tier its queries run against. Hand a clone of the `Arc` to
    /// a [`crate::service::QueryService`] (or another session-free reader)
    /// to share the preprocessing work this session has already paid for.
    pub fn snapshot(&self) -> &Arc<GraphSnapshot<'g>> {
        &self.snapshot
    }

    /// Attaches a [`CancelToken`] to every subsequent query (and batch) of
    /// this session. Hand a clone of the token to another thread and call
    /// [`CancelToken::cancel`] to stop an in-flight query at its next
    /// cooperative checkpoint; the query returns
    /// [`DccsError::Cancelled`] carrying the partial result. Pass `None`
    /// to detach.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.token = token;
    }

    /// The graph this session queries.
    pub fn graph(&self) -> &'g MultiLayerGraph {
        self.g
    }

    /// The session's default options (per-query overrides go through the
    /// [`Query`] builder).
    pub fn options(&self) -> &DccsOptions {
        &self.opts
    }

    /// Builds a [`DccIndex`] for the session's graph on its persistent
    /// crew (spawned on demand at the session's thread width), covering
    /// every requested `d` for subset sizes `1..=max_s` (`max_s == 0`
    /// means all subset sizes). The index is returned, not attached —
    /// save it with [`DccIndex::save`] and/or hand it to
    /// [`DccsSession::attach_index`].
    pub fn build_index(&mut self, ds: &[u32], max_s: usize) -> DccIndex {
        let threads = auto_threads(self.opts.threads);
        self.ensure_crew(threads);
        let g = self.g;
        match &mut self.crew {
            Some(crew) => DccIndex::build_on(g, ds, max_s, &crew.pool_ref()),
            None => crate::engine::with_pool(1, |pool| DccIndex::build_on(g, ds, max_s, pool)),
        }
    }

    /// Attaches `index` after validating its fingerprint against the
    /// session's graph ([`DccIndex::matches`]); a mismatched index is
    /// rejected with [`DccsError::IndexUnavailable`] and nothing is
    /// attached. Subsequent queries consult the index per the [`Serve`]
    /// knob on their options.
    pub fn attach_index(&mut self, index: DccIndex) -> Result<(), DccsError> {
        index.matches(self.g)?;
        let index = Arc::new(index);
        self.snapshot.install_index(Some(index.clone()));
        self.index = Some(index);
        Ok(())
    }

    /// Detaches the index; subsequent queries always peel.
    pub fn detach_index(&mut self) {
        self.snapshot.install_index(None);
        self.index = None;
    }

    /// The attached index, if any.
    pub fn index(&self) -> Option<&DccIndex> {
        self.index.as_deref()
    }

    /// Starts building a query for `params`. Nothing runs until
    /// [`Query::run`].
    pub fn query(&mut self, params: DccsParams) -> Query<'_, 'g> {
        let opts = self.opts;
        Query { session: self, spec: QuerySpec::new(params), opts, token: None }
    }

    /// Checks that the graph is non-empty and `params` are valid for it.
    fn check(&self, params: &DccsParams) -> Result<(), DccsError> {
        let (n, l) = (self.g.num_vertices(), self.g.num_layers());
        if n == 0 || l == 0 {
            return Err(DccsError::EmptyGraph { num_vertices: n, num_layers: l });
        }
        params.validate(l)
    }

    /// Makes sure the persistent crew matches `threads` (after the CI
    /// forcing override); sequential queries never spawn one. An existing
    /// crew of a different width is torn down and replaced — sweeps at a
    /// fixed width, the common case, reuse one crew for their lifetime.
    fn ensure_crew(&mut self, threads: usize) {
        let effective = effective_threads(threads);
        if effective <= 1 {
            return;
        }
        if self.crew.as_ref().is_none_or(|crew| crew.threads() != effective) {
            self.crew = Some(PersistentPool::new(effective));
        }
    }

    /// Runs one validated query on the session context and the persistent
    /// crew. `opts.threads` must already be resolved (≥ 1).
    fn run_checked(
        &mut self,
        spec: &QuerySpec,
        opts: &DccsOptions,
    ) -> Result<DccsResult, DccsError> {
        self.ctx.set_threads(opts.threads);
        self.ctx.set_index_choice(opts.index);
        let parallel = effective_threads(opts.threads) > 1;
        if parallel {
            self.ensure_crew(opts.threads);
        }
        let token = self.token.clone();
        let index = self.index.clone();
        let index = IndexState::from_option(index.as_deref());
        let epoch = self.snapshot.epoch();
        let ctx = &mut self.ctx;
        let g = self.g;
        let result = match &mut self.crew {
            // A sequential query must not fan out on a crew left over from
            // an earlier wider query — the crew stays alive (a later wide
            // query reuses it) but this query bypasses it.
            Some(crew) if parallel => {
                run_spec_monitored(ctx, &crew.pool_ref(), g, spec, opts, token, index)
            }
            // Truly sequential (no forcing either): a width-1 scoped pool
            // spawns no thread and runs every batch inline.
            _ => crate::engine::with_pool(1, |pool| {
                run_spec_monitored(ctx, pool, g, spec, opts, token, index)
            }),
        };
        result.map(|mut result| {
            result.stats.graph_epoch = Some(epoch);
            result
        })
    }

    /// Runs a whole sweep through **one** executor crew.
    ///
    /// All specs are validated up front (the first invalid spec fails the
    /// whole call before any work runs — a malformed sweep is a caller
    /// bug). Once running, the batch is **not** all-or-nothing: a runtime
    /// limit or a panicking engine task on one spec yields an `Err` in that
    /// spec's slot and every other query still completes, so the outer
    /// `Result` wraps one per-spec `Result` per submitted spec, in
    /// submission order.
    ///
    /// With an effective thread count of 1 — or a single spec — the queries
    /// run in order on the session context, compounding its caches. With
    /// more threads, the session's persistent crew serves the entire batch
    /// and each query becomes one job, executed sequentially on one worker —
    /// inter-query parallelism, which is where a sweep's wall-clock actually
    /// goes. Either way each result is bit-identical to running its spec as
    /// a one-shot query (per-query execution is thread-invariant).
    #[allow(clippy::type_complexity)]
    pub fn run_batch(
        &mut self,
        specs: &[QuerySpec],
    ) -> Result<Vec<Result<DccsResult, DccsError>>, DccsError> {
        for spec in specs {
            self.check(&spec.params)?;
        }
        let threads = auto_threads(self.opts.threads);
        if threads <= 1 || specs.len() <= 1 {
            let opts = DccsOptions { threads, ..self.opts };
            let outcomes = specs
                .iter()
                .map(|spec| {
                    match catch_unwind(AssertUnwindSafe(|| {
                        fault::check(site::BATCH_QUERY);
                        self.run_checked(spec, &opts)
                    })) {
                        Ok(outcome) => outcome,
                        Err(payload) => Err(panic_to_error(None, payload.as_ref())),
                    }
                })
                .collect();
            return Ok(outcomes);
        }
        // The persistent crew serves the whole sweep; each query is one
        // sequential job, so its result (and stats) equal the 1-thread run
        // by construction. Each job catches its own panics: a dying query
        // becomes a `TaskPanicked` in its slot instead of sinking the sweep.
        self.ensure_crew(threads);
        let g = self.g;
        let token = self.token.clone();
        let index = self.index.clone();
        let shared = self.snapshot.state().clone();
        let epoch = self.snapshot.epoch();
        let opts = DccsOptions { threads: 1, ..self.opts };
        let crew = self.crew.as_mut().expect("ensure_crew spawns for threads > 1");
        let jobs: Vec<_> = specs
            .iter()
            .map(|&spec| {
                let opts = &opts;
                let token = token.clone();
                let index = index.clone();
                let shared = shared.clone();
                move |_ws: &mut PeelWorkspace| match catch_unwind(AssertUnwindSafe(|| {
                    fault::check(site::BATCH_QUERY);
                    let mut ctx = SearchContext::new(1);
                    ctx.set_index_choice(opts.index);
                    ctx.set_shared(Some(shared));
                    crate::engine::with_pool(1, |pool| {
                        let index = IndexState::from_option(index.as_deref());
                        run_spec_monitored(&mut ctx, pool, g, &spec, opts, token, index)
                    })
                })) {
                    Ok(outcome) => outcome,
                    Err(payload) => Err(panic_to_error(None, payload.as_ref())),
                }
            })
            .collect();
        let mut outcomes = crew.pool_ref().map(&mut self.ctx.ws, jobs);
        for result in outcomes.iter_mut().flatten() {
            result.stats.graph_epoch = Some(epoch);
        }
        Ok(outcomes)
    }
}

/// What the dispatch layer knows about the caller's [`DccIndex`] — richer
/// than `Option<&DccIndex>` so serve routing can distinguish "never
/// attached" from "attached, then outdated by a mutation commit"
/// ([`crate::QueryService::commit`]) and report the latter as the typed
/// [`DccsError::IndexStale`] instead of a generic unavailability.
#[derive(Clone, Copy, Debug)]
pub(crate) enum IndexState<'a> {
    /// No index attached; [`Serve::Index`] queries fail unavailable.
    Absent,
    /// An index was attached but a committed mutation batch advanced the
    /// graph past the epoch it was built for, auto-detaching it;
    /// [`Serve::Index`] queries fail with [`DccsError::IndexStale`] while
    /// [`Serve::Auto`] silently peels.
    Stale {
        /// Epoch of the graph version the index was valid for.
        index_epoch: u64,
        /// Epoch of the graph version the query runs against.
        graph_epoch: u64,
    },
    /// A fingerprint-validated index for the current graph version.
    Ready(&'a DccIndex),
}

impl<'a> IndexState<'a> {
    /// The static-graph embedding: sessions never outdate their index, so
    /// an attached index is always [`IndexState::Ready`].
    pub(crate) fn from_option(index: Option<&'a DccIndex>) -> Self {
        match index {
            Some(index) => IndexState::Ready(index),
            None => IndexState::Absent,
        }
    }

    /// The usable index, if any.
    fn get(&self) -> Option<&'a DccIndex> {
        match self {
            IndexState::Ready(index) => Some(index),
            _ => None,
        }
    }
}

/// Dispatches one spec on an existing context and executor crew — the
/// single place the algorithm match lives, shared by the session's
/// single-query and batch paths. The caller has already validated the spec
/// and configured the context's thread count and index override; the crew
/// is threaded through preprocessing and the search (the single-crew query
/// path).
///
/// Serve routing lives here too: per `opts.serve`, a greedy-compatible
/// query whose `(d, s)` the attached [`DccIndex`] covers is answered by
/// [`serve_from_index_on`] — hierarchy lookups feeding the same selection
/// engine, no re-peeling — and every peeled result is stamped
/// [`ServePath::Peel`]. Only [`Algorithm::Greedy`] (or [`Algorithm::Auto`],
/// which the index resolves to greedy) can serve: the search-tree
/// algorithms interleave pruning with candidate generation and have no
/// precomputed form.
fn run_spec_on_pool(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    spec: &QuerySpec,
    opts: &DccsOptions,
    index: IndexState<'_>,
) -> Result<DccsResult, DccsError> {
    let greedy_compatible = matches!(spec.algorithm, Algorithm::Auto | Algorithm::Greedy);
    let serving = match opts.serve {
        Serve::Peel => false,
        Serve::Auto => {
            greedy_compatible
                && index.get().is_some_and(|ix| ix.covers(spec.params.d, spec.params.s))
        }
        Serve::Index => {
            let ix = match index {
                IndexState::Ready(ix) => ix,
                IndexState::Stale { index_epoch, graph_epoch } => {
                    return Err(DccsError::IndexStale { index_epoch, graph_epoch })
                }
                IndexState::Absent => {
                    return Err(DccsError::IndexUnavailable {
                        message: "no index attached to the session".into(),
                    })
                }
            };
            if !greedy_compatible {
                return Err(DccsError::IndexUnavailable {
                    message: format!(
                        "the index serves greedy selection; explicit {} queries must peel",
                        spec.algorithm.name()
                    ),
                });
            }
            if !ix.covers(spec.params.d, spec.params.s) {
                return Err(DccsError::IndexUnavailable {
                    message: format!(
                        "the index has no entry for (d={}, s={})",
                        spec.params.d, spec.params.s
                    ),
                });
            }
            true
        }
    };
    if serving {
        let index = index.get().expect("serving implies a ready index");
        return Ok(serve_from_index_on(ctx, g, index, &spec.params));
    }
    let algorithm = spec.algorithm.resolve(g, &spec.params);
    let mut result = match algorithm {
        Algorithm::Greedy => greedy_dccs_on(ctx, pool, g, &spec.params, opts),
        Algorithm::BottomUp => bottom_up_dccs_on(ctx, pool, g, &spec.params, opts),
        Algorithm::TopDown => top_down_dccs_on(ctx, pool, g, &spec.params, opts),
        Algorithm::Exact => exact_dccs_on(ctx, pool, g, &spec.params, opts)?,
        Algorithm::Auto => unreachable!("resolve never returns Auto"),
    };
    result.stats.serve = Some(ServePath::Peel);
    Ok(result)
}

/// [`run_spec_on_pool`] under the query's limits and panic isolation, plus
/// the opt-in degradation ladder: an explicit [`Algorithm::Exact`] query
/// that blows its candidate budget is rerun as [`Algorithm::Greedy`] (with
/// whatever wall-clock remains) when [`QueryLimits::degrade`] is set, and
/// the fallback is recorded in [`crate::SearchStats::degraded_from`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_spec_monitored(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    spec: &QuerySpec,
    opts: &DccsOptions,
    token: Option<CancelToken>,
    index: IndexState<'_>,
) -> Result<DccsResult, DccsError> {
    let query_start = Instant::now();
    let result = dispatch_limited(ctx, pool, g, spec, opts, token.clone(), index);
    let degradable = opts.limits.degrade
        && matches!(result, Err(DccsError::BudgetExceeded { .. }))
        && spec.algorithm.resolve(g, &spec.params) == Algorithm::Exact;
    if !degradable {
        return result;
    }
    // The retry keeps every limit; only the deadline needs re-anchoring, to
    // the wall-clock the original query has left (a fallback must not grant
    // itself a second full time budget).
    let mut retry_limits = opts.limits;
    if let Some(budget) = retry_limits.deadline {
        retry_limits.deadline = Some(budget.saturating_sub(query_start.elapsed()));
    }
    let retry_opts = DccsOptions { limits: retry_limits, ..*opts };
    let retry_spec = QuerySpec { params: spec.params, algorithm: Algorithm::Greedy };
    dispatch_limited(ctx, pool, g, &retry_spec, &retry_opts, token, index).map(|mut result| {
        result.stats.degraded_from = Some(Algorithm::Exact);
        result
    })
}

/// One monitored dispatch attempt: compiles the limits and token into a
/// [`QueryMonitor`] (skipped entirely for unlimited, token-less queries),
/// installs it on the context for the duration of the run, converts a
/// flagged-incomplete result into the matching typed error carrying the
/// partial, and converts a panicking engine task into
/// [`DccsError::TaskPanicked`] — replacing the context wholesale, since a
/// panic can leave mid-query state behind, so the session stays usable.
#[allow(clippy::too_many_arguments)]
fn dispatch_limited(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    spec: &QuerySpec,
    opts: &DccsOptions,
    token: Option<CancelToken>,
    index: IndexState<'_>,
) -> Result<DccsResult, DccsError> {
    let limited = !opts.limits.is_unlimited() || token.is_some();
    let monitor =
        if limited { Some(Arc::new(QueryMonitor::new(&opts.limits, token))) } else { None };
    ctx.set_monitor(monitor.clone());
    let outcome =
        catch_unwind(AssertUnwindSafe(|| run_spec_on_pool(ctx, pool, g, spec, opts, index)));
    let result = match outcome {
        Ok(result) => {
            ctx.set_monitor(None);
            result?
        }
        Err(payload) => {
            // The panic unwound through mid-query engine state; rebuild the
            // context (same width, index override, and shared tier) rather
            // than trusting whatever the unwind left behind. The shared
            // tier survives by design: its entries are only ever installed
            // whole, so a mid-query panic cannot leave one half-built.
            let threads = ctx.threads();
            let shared = ctx.shared().cloned();
            *ctx = SearchContext::new(threads);
            ctx.set_index_choice(opts.index);
            ctx.set_shared(shared);
            return Err(panic_to_error(pool.take_last_panic(), payload.as_ref()));
        }
    };
    if result.stats.complete {
        return Ok(result);
    }
    let monitor = monitor.expect("an incomplete result implies a monitor was installed");
    let partial = Box::new(result);
    Err(match partial.stats.limit_hit {
        Some(LimitKind::Deadline) => DccsError::DeadlineExceeded {
            deadline: opts.limits.deadline.unwrap_or_default(),
            partial,
        },
        Some(LimitKind::Cancelled) => DccsError::Cancelled { partial },
        Some(LimitKind::CandidateBudget) => DccsError::BudgetExceeded {
            candidates: monitor.candidates(),
            limit: monitor.candidate_budget().unwrap_or(0),
        },
        Some(LimitKind::DenseMemory) => {
            let (required_words, limit_words) = monitor.dense_memory();
            DccsError::MemoryLimit { required_words, limit_words, partial }
        }
        None => unreachable!("complete == false implies limit_hit is set"),
    })
}

/// Builds the [`DccsError::TaskPanicked`] for a caught engine panic,
/// preferring the message a pool worker parked (the original panic, not the
/// driver's generic "job died" rethrow) over the caught payload itself.
pub(crate) fn panic_to_error(
    worker_message: Option<String>,
    payload: &(dyn std::any::Any + Send),
) -> DccsError {
    let message = worker_message
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    DccsError::TaskPanicked { message }
}

/// A configured-but-not-yet-run query, produced by [`DccsSession::query`].
/// Builder methods refine it; [`Query::run`] executes it on the session.
#[derive(Debug)]
#[must_use = "a query does nothing until .run() is called"]
pub struct Query<'s, 'g> {
    session: &'s mut DccsSession<'g>,
    spec: QuerySpec,
    opts: DccsOptions,
    token: Option<CancelToken>,
}

impl Query<'_, '_> {
    /// Selects the algorithm (default: the session runs
    /// [`Algorithm::Auto`]). The concrete algorithm that ends up running is
    /// recorded in [`crate::SearchStats::algorithm`].
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.spec.algorithm = algorithm;
        self
    }

    /// Sets the executor width for this query: `0` means auto
    /// ([`auto_threads`]), `1` sequential. Results are identical at every
    /// thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Replaces the full option set for this query (ablation toggles,
    /// threads, limits) instead of inheriting the session defaults.
    pub fn options(mut self, opts: DccsOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets this query's [`QueryLimits`] — deadline, candidate budget,
    /// dense-memory ceiling, degradation — overriding the session default
    /// carried on its [`DccsOptions`].
    pub fn limits(mut self, limits: QueryLimits) -> Self {
        self.opts.limits = limits;
        self
    }

    /// Overrides how this query derives its candidate cores (see
    /// [`Serve`]): `Auto` answers from the session's attached [`DccIndex`]
    /// when possible, `Peel` always re-peels, `Index` fails with
    /// [`DccsError::IndexUnavailable`] instead of falling back. The two
    /// paths are bit-identical; [`crate::SearchStats::serve`] records
    /// which one ran.
    pub fn serve(mut self, serve: Serve) -> Self {
        self.opts.serve = serve;
        self
    }

    /// Attaches a [`CancelToken`] to this query only, overriding the
    /// session-level token ([`DccsSession::set_cancel_token`]) if one is
    /// set.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Validates and executes the query on the session's engine state.
    ///
    /// Every parameter combination [`DccsParams::validate`] rejects — and an
    /// empty graph, and a blown [`Algorithm::Exact`] candidate budget —
    /// comes back as a typed [`DccsError`]; this entry point never panics on
    /// user input. A query bounded by [`QueryLimits`] (or cancelled through
    /// its token) that stops early returns the matching limit error with
    /// the best-so-far partial result attached, and a panicking engine task
    /// comes back as [`DccsError::TaskPanicked`] with the session still
    /// usable.
    pub fn run(self) -> Result<DccsResult, DccsError> {
        self.session.check(&self.spec.params)?;
        let opts = DccsOptions { threads: auto_threads(self.opts.threads), ..self.opts };
        if let Some(token) = self.token {
            // A per-query token substitutes for the session token for this
            // run only.
            let saved = self.session.token.take();
            self.session.token = Some(token);
            let result = self.session.run_checked(&self.spec, &opts);
            self.session.token = saved;
            return result;
        }
        self.session.run_checked(&self.spec, &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bottom_up_dccs, greedy_dccs};
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Four layers over 12 vertices with two planted coherent cliques.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 4);
        clique(&mut b, 0, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 2, &[4, 5, 6, 7]);
        clique(&mut b, 3, &[4, 5, 6, 7]);
        clique(&mut b, 1, &[8, 9, 10, 11]);
        b.build()
    }

    #[test]
    fn one_shot_query_matches_free_function() {
        let g = graph();
        let params = DccsParams::new(3, 2, 2);
        let mut session = DccsSession::new(&g);
        let via_session = session.query(params).algorithm(Algorithm::BottomUp).run().unwrap();
        let via_free = bottom_up_dccs(&g, &params);
        assert_eq!(via_session.cores, via_free.cores);
        assert_eq!(via_session.cover.to_vec(), via_free.cover.to_vec());
        assert_eq!(via_session.stats, via_free.stats);
    }

    #[test]
    fn session_reuse_across_a_sweep_is_bit_identical_to_fresh_sessions() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        for algorithm in [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown] {
            // s-sweep at fixed d (memo + dense cache hits), then a d change.
            for (d, s, k) in [(2, 1, 2), (2, 2, 2), (2, 3, 1), (3, 2, 2), (2, 2, 3)] {
                let params = DccsParams::new(d, s, k);
                let swept = session.query(params).algorithm(algorithm).run().unwrap();
                let fresh = DccsSession::new(&g).query(params).algorithm(algorithm).run().unwrap();
                let label = format!("{} d={d} s={s} k={k}", algorithm.name());
                assert_eq!(swept.cores, fresh.cores, "{label}");
                assert_eq!(swept.cover.to_vec(), fresh.cover.to_vec(), "{label}");
                assert_eq!(swept.stats, fresh.stats, "{label}");
            }
        }
    }

    #[test]
    fn auto_records_the_resolved_algorithm_in_stats() {
        let g = graph();
        let params = DccsParams::new(3, 2, 2);
        let mut session = DccsSession::new(&g);
        let result = session.query(params).run().unwrap(); // default = Auto
        let resolved = Algorithm::Auto.resolve(&g, &params);
        assert_ne!(resolved, Algorithm::Auto);
        assert_eq!(result.stats.algorithm, Some(resolved));
        // An explicit algorithm is recorded too.
        let explicit = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
        assert_eq!(explicit.stats.algorithm, Some(Algorithm::Greedy));
    }

    #[test]
    fn invalid_parameters_are_typed_errors_not_panics() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        assert_eq!(
            session.query(DccsParams::new(2, 0, 2)).run().unwrap_err(),
            DccsError::SupportZero
        );
        assert_eq!(
            session.query(DccsParams::new(2, 9, 2)).run().unwrap_err(),
            DccsError::SupportExceedsLayers { s: 9, num_layers: 4 }
        );
        assert_eq!(
            session.query(DccsParams::new(2, 2, 0)).run().unwrap_err(),
            DccsError::ResultSizeZero
        );
        // The session stays usable after an error.
        assert!(session.query(DccsParams::new(2, 2, 2)).run().is_ok());
    }

    #[test]
    fn empty_graph_is_a_typed_error() {
        // A graph cannot have zero layers (the constructor rejects that),
        // but a zero-vertex graph is constructible — and unqueryable.
        let g = MultiLayerGraph::from_edge_lists(0, &[vec![]]).unwrap();
        let mut session = DccsSession::new(&g);
        assert_eq!(
            session.query(DccsParams::new(2, 1, 1)).run().unwrap_err(),
            DccsError::EmptyGraph { num_vertices: 0, num_layers: 1 }
        );
    }

    #[test]
    fn exact_budget_overflow_is_a_typed_error() {
        // 9 layers sharing one triangle: C(9, 2) = 36 > 24 non-empty
        // candidates blow the exact solver's budget.
        let mut b = MultiLayerGraphBuilder::new(3, 9);
        for layer in 0..9 {
            clique(&mut b, layer, &[0, 1, 2]);
        }
        let g = b.build();
        let mut session = DccsSession::new(&g);
        let err =
            session.query(DccsParams::new(2, 2, 1)).algorithm(Algorithm::Exact).run().unwrap_err();
        assert!(matches!(err, DccsError::BudgetExceeded { candidates: 36, limit: 24 }));
    }

    #[test]
    fn run_batch_matches_one_shot_queries_at_any_width() {
        let g = graph();
        let specs: Vec<QuerySpec> = [(2u32, 2usize, 2usize), (3, 2, 2), (2, 3, 1), (2, 2, 3)]
            .into_iter()
            .map(|(d, s, k)| QuerySpec::new(DccsParams::new(d, s, k)))
            .collect();
        let reference: Vec<DccsResult> = specs
            .iter()
            .map(|spec| DccsSession::new(&g).query(spec.params).run().unwrap())
            .collect();
        for threads in [1usize, 4] {
            let mut session = DccsSession::with_options(&g, DccsOptions::with_threads(threads));
            let batch = session.run_batch(&specs).unwrap();
            assert_eq!(batch.len(), reference.len());
            for (got, want) in batch.iter().zip(&reference) {
                let got = got.as_ref().expect("no limits in force, every spec succeeds");
                assert_eq!(got.cores, want.cores, "threads={threads}");
                assert_eq!(got.cover.to_vec(), want.cover.to_vec(), "threads={threads}");
                assert_eq!(got.stats, want.stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn run_batch_rejects_the_whole_batch_on_one_invalid_spec() {
        let g = graph();
        let specs =
            [QuerySpec::new(DccsParams::new(2, 2, 2)), QuerySpec::new(DccsParams::new(2, 99, 2))];
        let mut session = DccsSession::new(&g);
        assert_eq!(
            session.run_batch(&specs).unwrap_err(),
            DccsError::SupportExceedsLayers { s: 99, num_layers: 4 }
        );
    }

    #[test]
    fn zero_threads_means_auto_and_changes_no_result() {
        assert_eq!(auto_threads(1), 1);
        assert_eq!(auto_threads(4), 4);
        assert!(auto_threads(0) >= 1, "auto must resolve to at least one worker");
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let seq = DccsSession::new(&g).query(params).threads(1).run().unwrap();
        let auto = DccsSession::new(&g).query(params).threads(0).run().unwrap();
        assert_eq!(seq.cores, auto.cores);
        assert_eq!(seq.stats, auto.stats);
    }

    #[test]
    fn query_spec_defaults_to_auto() {
        let spec = QuerySpec::new(DccsParams::new(2, 2, 2));
        assert_eq!(spec.algorithm, Algorithm::Auto);
        let pinned = spec.with_algorithm(Algorithm::TopDown);
        assert_eq!(pinned.algorithm, Algorithm::TopDown);
        assert_eq!(pinned.params, spec.params);
    }

    #[test]
    fn unlimited_query_results_are_flagged_complete() {
        let g = graph();
        let result = DccsSession::new(&g).query(DccsParams::new(2, 2, 2)).run().unwrap();
        assert!(result.stats.complete);
        assert_eq!(result.stats.limit_hit, None);
        assert_eq!(result.stats.degraded_from, None);
    }

    #[test]
    fn zero_deadline_returns_deadline_exceeded_with_a_partial() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        let limits = QueryLimits::none().with_deadline(std::time::Duration::ZERO);
        let err = session
            .query(DccsParams::new(2, 2, 2))
            .algorithm(Algorithm::Greedy)
            .limits(limits)
            .run()
            .unwrap_err();
        assert!(matches!(err, DccsError::DeadlineExceeded { .. }), "got {err:?}");
        let partial = err.partial().expect("deadline errors carry the partial");
        assert!(!partial.stats.complete);
        assert_eq!(partial.stats.limit_hit, Some(crate::LimitKind::Deadline));
        // The session answers an unlimited rerun of the same spec exactly.
        let clean = session.query(DccsParams::new(2, 2, 2)).algorithm(Algorithm::Greedy).run();
        let fresh =
            DccsSession::new(&g).query(DccsParams::new(2, 2, 2)).algorithm(Algorithm::Greedy).run();
        assert_eq!(clean.unwrap().stats, fresh.unwrap().stats);
    }

    #[test]
    fn pre_tripped_token_cancels_and_session_survives() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        let token = CancelToken::new();
        token.cancel();
        let err = session.query(DccsParams::new(2, 2, 2)).cancel_token(token).run().unwrap_err();
        assert!(matches!(err, DccsError::Cancelled { .. }), "got {err:?}");
        // The per-query token does not stick to the session.
        assert!(session.query(DccsParams::new(2, 2, 2)).run().is_ok());
    }

    #[test]
    fn session_token_applies_to_every_query_until_detached() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        let token = CancelToken::new();
        session.set_cancel_token(Some(token.clone()));
        assert!(session.query(DccsParams::new(2, 2, 2)).run().is_ok(), "untripped token");
        token.cancel();
        let err = session.query(DccsParams::new(2, 2, 2)).run().unwrap_err();
        assert!(matches!(err, DccsError::Cancelled { .. }), "got {err:?}");
        session.set_cancel_token(None);
        assert!(session.query(DccsParams::new(2, 2, 2)).run().is_ok());
    }

    #[test]
    fn candidate_budget_applies_to_approximation_algorithms() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        // C(4, 2) = 6 subsets; a budget of 2 trips mid-walk.
        let limits = QueryLimits::none().with_candidate_budget(2);
        let err = session
            .query(DccsParams::new(2, 2, 2))
            .algorithm(Algorithm::Greedy)
            .limits(limits)
            .run()
            .unwrap_err();
        match err {
            DccsError::BudgetExceeded { candidates, limit } => {
                assert_eq!(limit, 2);
                assert!(candidates > 2, "the tripping charge is counted: {candidates}");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn exact_degrades_to_greedy_when_opted_in() {
        // Same construction as exact_budget_overflow_is_a_typed_error: 36
        // candidates blow the exact solver's 24-candidate gate.
        let mut b = MultiLayerGraphBuilder::new(3, 9);
        for layer in 0..9 {
            clique(&mut b, layer, &[0, 1, 2]);
        }
        let g = b.build();
        let mut session = DccsSession::new(&g);
        let params = DccsParams::new(2, 2, 1);
        let degraded = session
            .query(params)
            .algorithm(Algorithm::Exact)
            .limits(QueryLimits::none().with_degrade())
            .run()
            .expect("degradation turns the budget error into a greedy result");
        assert_eq!(degraded.stats.algorithm, Some(Algorithm::Greedy));
        assert_eq!(degraded.stats.degraded_from, Some(Algorithm::Exact));
        assert!(degraded.stats.complete);
        let reference = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
        assert_eq!(degraded.cores, reference.cores);
        // Without the opt-in the same query still fails.
        let err = session.query(params).algorithm(Algorithm::Exact).run().unwrap_err();
        assert!(matches!(err, DccsError::BudgetExceeded { candidates: 36, limit: 24 }));
    }

    #[test]
    fn forced_dense_over_the_memory_ceiling_is_a_typed_error() {
        let g = graph();
        let mut session = DccsSession::with_options(
            &g,
            DccsOptions { index: crate::IndexChoice::Dense, ..DccsOptions::default() },
        );
        let err = session
            .query(DccsParams::new(2, 2, 2))
            .algorithm(Algorithm::Greedy)
            .limits(QueryLimits::none().with_max_dense_words(0))
            .run()
            .unwrap_err();
        match &err {
            DccsError::MemoryLimit { required_words, limit_words, .. } => {
                assert!(*required_words > 0);
                assert_eq!(*limit_words, 0);
            }
            other => panic!("expected MemoryLimit, got {other:?}"),
        }
        // Auto index under the same ceiling silently uses CSR instead.
        let mut auto = DccsSession::new(&g);
        let ok = auto
            .query(DccsParams::new(2, 2, 2))
            .algorithm(Algorithm::Greedy)
            .limits(QueryLimits::none().with_max_dense_words(0))
            .run()
            .expect("auto falls back to CSR");
        assert!(ok.stats.complete);
    }

    #[test]
    fn auto_serves_from_the_attached_index_and_pins_the_path() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        let params = DccsParams::new(3, 2, 2);
        // Before any index is attached, everything peels.
        let peeled = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
        assert_eq!(peeled.stats.serve, Some(ServePath::Peel));
        let index = session.build_index(&[3], 0);
        session.attach_index(index).unwrap();
        // Auto algorithm + Auto serve: answered from the index as greedy.
        let served = session.query(params).run().unwrap();
        assert_eq!(served.stats.serve, Some(ServePath::Index));
        assert_eq!(served.stats.algorithm, Some(Algorithm::Greedy));
        assert_eq!(served.stats.dcc_calls, 0, "the index path must not peel");
        assert_eq!(served.cores, peeled.cores);
        assert_eq!(served.cover.to_vec(), peeled.cover.to_vec());
        assert_eq!(served.stats.candidates_generated, peeled.stats.candidates_generated);
        assert_eq!(served.stats.updates_accepted, peeled.stats.updates_accepted);
        // A d the index does not cover falls back to peeling under Auto.
        let fallback =
            session.query(DccsParams::new(2, 2, 2)).algorithm(Algorithm::Greedy).run().unwrap();
        assert_eq!(fallback.stats.serve, Some(ServePath::Peel));
        // Detaching restores peel-only behavior.
        session.detach_index();
        let detached = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
        assert_eq!(detached.stats.serve, Some(ServePath::Peel));
    }

    #[test]
    fn forced_index_serving_reports_typed_unavailability() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        let params = DccsParams::new(2, 2, 2);
        // No index attached.
        let err = session.query(params).serve(Serve::Index).run().unwrap_err();
        assert!(matches!(err, DccsError::IndexUnavailable { .. }), "got {err:?}");
        // Index attached but (d, s) not covered (only s == 1 stored).
        let index = session.build_index(&[2], 1);
        session.attach_index(index).unwrap();
        let err = session.query(params).serve(Serve::Index).run().unwrap_err();
        assert!(matches!(err, DccsError::IndexUnavailable { .. }), "got {err:?}");
        // An explicit non-greedy algorithm cannot be served.
        let err = session
            .query(DccsParams::new(2, 1, 2))
            .algorithm(Algorithm::BottomUp)
            .serve(Serve::Index)
            .run()
            .unwrap_err();
        assert!(matches!(err, DccsError::IndexUnavailable { .. }), "got {err:?}");
        // The covered entry serves, and the session stays usable throughout.
        let ok = session.query(DccsParams::new(2, 1, 2)).serve(Serve::Index).run().unwrap();
        assert_eq!(ok.stats.serve, Some(ServePath::Index));
    }

    #[test]
    fn serve_peel_ignores_the_attached_index() {
        let g = graph();
        let mut session = DccsSession::new(&g);
        let index = session.build_index(&[2], 0);
        session.attach_index(index).unwrap();
        let peel = session.query(DccsParams::new(2, 2, 2)).serve(Serve::Peel).run().unwrap();
        assert_eq!(peel.stats.serve, Some(ServePath::Peel));
        assert!(peel.stats.dcc_calls > 0, "Serve::Peel must actually peel");
        let served = session.query(DccsParams::new(2, 2, 2)).serve(Serve::Index).run().unwrap();
        assert_eq!(served.cores, peel.cores);
        assert_eq!(served.cover.to_vec(), peel.cover.to_vec());
    }

    #[test]
    fn mismatched_index_is_rejected_at_attach() {
        let g = graph();
        let mut other = MultiLayerGraphBuilder::new(12, 4);
        clique(&mut other, 0, &[0, 1, 2]);
        let other = other.build();
        let foreign = DccIndex::build(&other, &[2], 0);
        let mut session = DccsSession::new(&g);
        let err = session.attach_index(foreign).unwrap_err();
        assert!(matches!(err, DccsError::IndexUnavailable { .. }), "got {err:?}");
        assert!(session.index().is_none());
    }

    #[test]
    fn batch_queries_serve_from_the_index_at_any_width() {
        let g = graph();
        let specs: Vec<QuerySpec> = [(2u32, 2usize, 2usize), (3, 2, 2), (2, 3, 1)]
            .into_iter()
            .map(|(d, s, k)| QuerySpec::new(DccsParams::new(d, s, k)))
            .collect();
        // Serving resolves Auto to greedy, so the peel reference pins it.
        let reference: Vec<DccsResult> = specs
            .iter()
            .map(|spec| {
                DccsSession::new(&g).query(spec.params).algorithm(Algorithm::Greedy).run().unwrap()
            })
            .collect();
        for threads in [1usize, 4] {
            let mut session = DccsSession::with_options(&g, DccsOptions::with_threads(threads));
            let index = session.build_index(&[2, 3], 0);
            session.attach_index(index).unwrap();
            let batch = session.run_batch(&specs).unwrap();
            for (got, want) in batch.iter().zip(&reference) {
                let got = got.as_ref().unwrap();
                assert_eq!(got.stats.serve, Some(ServePath::Index), "threads={threads}");
                assert_eq!(got.cores, want.cores, "threads={threads}");
                assert_eq!(got.cover.to_vec(), want.cover.to_vec(), "threads={threads}");
            }
        }
    }

    #[test]
    fn greedy_via_session_matches_greedy_free_function() {
        let g = graph();
        let params = DccsParams::new(2, 2, 2);
        let via_session =
            DccsSession::new(&g).query(params).algorithm(Algorithm::Greedy).run().unwrap();
        let via_free = greedy_dccs(&g, &params);
        assert_eq!(via_session.cores, via_free.cores);
        assert_eq!(via_session.stats, via_free.stats);
    }
}
