//! `TD-DCCS` — the top-down search algorithm of Section V (Figs. 8 and 11).
//!
//! The search tree is rooted at the full layer set `[l]`; a child removes one
//! layer whose (sorted) index exceeds every previously removed index. The
//! tree is explored depth-first from the root down to level `s`. Each node
//! carries, besides its d-CC `C_L`, a *potential vertex set* `U_L` that
//! contains every vertex of every level-`s` descendant; `U_L` is shrunk by
//! `RefineU` and the exact child core is extracted by `RefineC` over the
//! hierarchical vertex index. Pruning rules:
//!
//! * **Lemma 5** (search-tree pruning) — if `U_{L'}` fails Eq. (1), no
//!   descendant can update `R`.
//! * **Lemma 6** (order-based pruning) — children are visited in decreasing
//!   order of `|U_{L'}|`; once that size drops below
//!   `|Cov(R)|/k + |Δ(R, C*(R))|` the remaining children are skipped.
//! * **Lemma 7** (potential-set pruning) — when `C_{L'}` satisfies Eq. (1)
//!   and `U_{L'}` satisfies Eq. (2), at most one descendant can update `R`,
//!   so a single representative level-`s` descendant is evaluated instead of
//!   the whole subtree.
//!
//! The approximation ratio is 1/4 (Theorem 4). The paper recommends TD-DCCS
//! when `s ≥ l/2`; the implementation works for any `s` but is typically
//! slower than `BU-DCCS` for small `s`.
//!
//! # Execution model
//!
//! TD-Gen always evaluates every child of a node (`RefineU` + `RefineC`)
//! before ordering them for pruning, so the children form a natural
//! fork-join batch: they are computed on the shared executor
//! ([`crate::engine`]) and committed in deterministic order. Unlike BU, no
//! bound has to be frozen — the parallel search is *exactly* the sequential
//! search, decision for decision, at every thread count.

use crate::algorithm::Algorithm;
use crate::config::{DccsOptions, DccsParams};
use crate::coverage::TopKDiversified;
use crate::engine::{with_pool, PoolRef, SearchContext};
use crate::index::VertexIndex;
use crate::preprocess::init_topk_in;
use crate::refine::{refine_c, refine_u};
use crate::result::{CoherentCore, DccsResult, SearchStats};
use coreness::PeelWorkspace;
use mlgraph::{Layer, MultiLayerGraph, VertexSet};
use std::sync::Arc;
use std::time::Instant;

/// Runs `TD-DCCS` with default options.
///
/// A one-shot wrapper over the engine state [`crate::DccsSession`] keeps
/// alive between queries; it retains the historical panic on invalid
/// parameters. Prefer the session API for repeated queries.
pub fn top_down_dccs(g: &MultiLayerGraph, params: &DccsParams) -> DccsResult {
    top_down_dccs_with_options(g, params, &DccsOptions::default())
}

/// Runs `TD-DCCS` with explicit options (used by the Fig. 28 ablation and
/// to set the executor width via `opts.threads`) — a one-shot wrapper over
/// the context the session API reuses.
pub fn top_down_dccs_with_options(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    let mut ctx = SearchContext::from_options(opts);
    top_down_dccs_in(&mut ctx, g, params, opts)
}

/// Runs `TD-DCCS` on an existing [`SearchContext`], reusing its scratch
/// across a parameter sweep.
pub fn top_down_dccs_in(
    ctx: &mut SearchContext,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    params.validate(g.num_layers()).expect("invalid DCCS parameters");
    let start = Instant::now();
    let mut stats = SearchStats { algorithm: Some(Algorithm::TopDown), ..SearchStats::default() };
    let l = g.num_layers();

    let pre = ctx.preprocess(g, params, opts);
    stats.vertices_deleted = pre.vertices_deleted;

    let mut topk = TopKDiversified::new(g.num_vertices(), params.k);
    if opts.init_topk {
        let (ws, running, seed) = ctx.init_scratch();
        init_topk_in(ws, running, seed, g, params, &pre, &mut topk);
    }

    // Positions follow the ascending d-core-size order (Section V-D).
    let order = pre.top_down_layer_order(opts);
    let cores_by_layer = pre.layer_cores.clone();
    let index = if opts.use_refine_c && l <= 64 {
        Some(VertexIndex::build(g, params.d, &pre))
    } else {
        None
    };

    // Root: C_{[l]} computed over the active vertex set.
    let all_positions: Vec<usize> = (0..l).collect();
    let all_layers: Vec<Layer> = order.clone();
    stats.dcc_calls += 1;
    let mut root_core = pre.active.clone();
    ctx.ws.peel_in_place(g, &all_layers, params.d, &mut root_core);
    let threads = ctx.threads();

    with_pool(threads, |pool| {
        let mut td = TdContext {
            g,
            params,
            opts,
            order: &order,
            layer_cores: &cores_by_layer,
            index: index.as_ref(),
            ws: &mut ctx.ws,
            pool,
            topk: &mut topk,
            stats: &mut stats,
        };
        if params.s == l {
            td.stats.candidates_generated += 1;
            td.topk.try_update(CoherentCore::new(all_layers, root_core));
        } else {
            td.td_gen(&all_positions, &root_core, &pre.active);
        }
    });

    stats.updates_accepted = topk.accepted_updates();
    DccsResult::from_topk(g.num_vertices(), topk, stats, start.elapsed())
}

struct TdContext<'a, 'env> {
    g: &'env MultiLayerGraph,
    params: &'a DccsParams,
    opts: &'a DccsOptions,
    /// Position → original layer index (ascending d-core size).
    order: &'env [Layer],
    /// Per-original-layer d-cores (restricted to the active set).
    layer_cores: &'env [VertexSet],
    index: Option<&'env VertexIndex>,
    /// Driver-thread peeling scratch (each worker owns its own).
    ws: &'a mut PeelWorkspace,
    pool: &'a PoolRef<'a, 'env>,
    topk: &'a mut TopKDiversified,
    stats: &'a mut SearchStats,
}

/// A child node of the top-down search tree.
struct TdChild {
    positions: Vec<usize>,
    core: VertexSet,
    potential: VertexSet,
    /// The removed position `j` (needed for the Lemma-7 shortcut).
    removed: usize,
}

/// The driver-computed description of one child evaluation: the removed
/// position, the child's positions, the `RefineU` class split, and the
/// child's layer list.
struct TdChildSpec {
    j: usize,
    child_positions: Vec<usize>,
    class1: Vec<Layer>,
    class2: Vec<Layer>,
    layers: Vec<Layer>,
}

/// One child evaluation — `RefineU` then `RefineC` (or a plain peel) —
/// shared by the sequential path and the executor jobs.
#[allow(clippy::too_many_arguments)]
fn eval_child(
    g: &MultiLayerGraph,
    d: u32,
    s: usize,
    layer_cores: &[VertexSet],
    index: Option<&VertexIndex>,
    use_refine_c: bool,
    spec: TdChildSpec,
    u_l: &VertexSet,
    ws: &mut PeelWorkspace,
) -> TdChild {
    let TdChildSpec { j, child_positions, class1, class2, layers } = spec;
    let potential = refine_u(g, d, s, u_l, &class1, &class2, layer_cores);
    let core = match index {
        Some(ix) if use_refine_c => refine_c(g, d, ix, &potential, &layers),
        _ => {
            let mut core = potential.clone();
            ws.peel_in_place(g, &layers, d, &mut core);
            core
        }
    };
    TdChild { positions: child_positions, core, potential, removed: j }
}

impl<'env> TdContext<'_, 'env> {
    fn layers_of(&self, positions: &[usize]) -> Vec<Layer> {
        positions.iter().map(|&p| self.order[p]).collect()
    }

    /// Evaluates every child (`L' = L − {j}`) of the current node as one
    /// executor batch: each job refines the potential set (`RefineU`) and
    /// extracts the child's d-CC (`RefineC` or a plain peel). Outputs come
    /// back in removable-position order — the order the sequential code
    /// produced them in.
    fn make_children(
        &mut self,
        positions: &[usize],
        removable: &[usize],
        u_l: &VertexSet,
    ) -> Vec<TdChild> {
        let g = self.g;
        let d = self.params.d;
        let s = self.params.s;
        let order = self.order;
        let layer_cores = self.layer_cores;
        let index = self.index;
        let use_refine_c = self.opts.use_refine_c;
        // The class split and layer lists are cheap and computed on the
        // driver; only the RefineU/RefineC work is dispatched.
        let specs: Vec<TdChildSpec> = removable
            .iter()
            .map(|&j| {
                let child_positions: Vec<usize> =
                    positions.iter().copied().filter(|&p| p != j).collect();
                // Class split w.r.t. L' (Section V-B): max removed position
                // is `j` because children always remove a position above
                // every earlier one.
                let class1: Vec<Layer> =
                    child_positions.iter().filter(|&&p| p < j).map(|&p| order[p]).collect();
                let class2: Vec<Layer> =
                    child_positions.iter().filter(|&&p| p > j).map(|&p| order[p]).collect();
                let layers: Vec<Layer> = child_positions.iter().map(|&p| order[p]).collect();
                TdChildSpec { j, child_positions, class1, class2, layers }
            })
            .collect();
        self.stats.dcc_calls += specs.len();
        let children = if self.pool.workers() == 0 {
            // Sequential path: children borrow the parent's potential set
            // directly — no Arc, no clone.
            specs
                .into_iter()
                .map(|spec| {
                    eval_child(g, d, s, layer_cores, index, use_refine_c, spec, u_l, self.ws)
                })
                .collect()
        } else {
            // Children share the parent's potential set; an `Arc` lets
            // every job hold it without tying jobs to this recursion frame.
            let u_l = Arc::new(u_l.clone());
            let jobs: Vec<_> = specs
                .into_iter()
                .map(|spec| {
                    let u_l = Arc::clone(&u_l);
                    move |ws: &mut PeelWorkspace| {
                        eval_child(g, d, s, layer_cores, index, use_refine_c, spec, &u_l, ws)
                    }
                })
                .collect();
            self.pool.map(self.ws, jobs)
        };
        for child in &children {
            if child.positions.len() == self.params.s {
                self.stats.candidates_generated += 1;
            }
        }
        children
    }

    /// The recursive `TD-Gen` procedure (Fig. 8).
    fn td_gen(&mut self, positions: &[usize], _c_l: &VertexSet, u_l: &VertexSet) {
        let l = self.g.num_layers();
        // Positions already removed from [l].
        let max_removed =
            (0..l).filter(|p| !positions.contains(p)).max().map(|p| p as isize).unwrap_or(-1);
        // Removable positions: members of L above every removed position.
        let removable: Vec<usize> =
            positions.iter().copied().filter(|&p| p as isize > max_removed).collect();
        if removable.is_empty() {
            return;
        }

        let mut children = self.make_children(positions, &removable, u_l);

        if !self.topk.is_full() {
            // Cases 1–2: no pruning while |R| < k.
            for child in children {
                if child.positions.len() == self.params.s {
                    self.topk.try_update(CoherentCore::new(
                        self.layers_of(&child.positions),
                        child.core,
                    ));
                } else {
                    self.td_gen(&child.positions.clone(), &child.core, &child.potential);
                }
            }
            return;
        }

        // Cases 3–4: order children by |U_{L'}| descending (Lemma 6).
        children.sort_by_key(|c| std::cmp::Reverse(c.potential.len()));
        for (rank, child) in children.iter().enumerate() {
            if self.opts.order_pruning && self.topk.fails_size_bound(child.potential.len()) {
                self.stats.subtrees_pruned += children.len() - rank;
                break;
            }
            if child.positions.len() == self.params.s {
                self.topk.try_update(CoherentCore::new(
                    self.layers_of(&child.positions),
                    child.core.clone(),
                ));
                continue;
            }
            // Lemma 5: prune when even the potential set cannot satisfy Eq. (1).
            if !self.topk.satisfies_eq1(&child.potential) {
                self.stats.subtrees_pruned += 1;
                continue;
            }
            // Lemma 7: when the child's core already satisfies Eq. (1) and the
            // potential set satisfies Eq. (2), a single representative
            // descendant suffices.
            let removable_below: Vec<usize> =
                child.positions.iter().copied().filter(|&p| p > child.removed).collect();
            let need_remove = child.positions.len() - self.params.s;
            if self.opts.potential_pruning
                && self.topk.satisfies_eq1(&child.core)
                && self.topk.satisfies_eq2(child.potential.len())
            {
                if removable_below.len() < need_remove {
                    // The node has no level-s descendant at all.
                    self.stats.subtrees_pruned += 1;
                    continue;
                }
                // Deterministic choice: drop the largest removable positions.
                let drop: Vec<usize> =
                    removable_below.iter().rev().take(need_remove).copied().collect();
                let descendant: Vec<usize> =
                    child.positions.iter().copied().filter(|p| !drop.contains(p)).collect();
                let layers = self.layers_of(&descendant);
                self.stats.dcc_calls += 1;
                self.stats.candidates_generated += 1;
                let mut core = child.potential.clone();
                self.ws.peel_in_place(self.g, &layers, self.params.d, &mut core);
                self.topk.try_update(CoherentCore::new(layers, core));
                self.stats.subtrees_pruned += 1;
                continue;
            }
            self.td_gen(&child.positions.clone(), &child.core, &child.potential);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom_up::bottom_up_dccs;
    use crate::greedy::greedy_dccs;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Four layers over 12 vertices: clique A = {0,1,2,3} on layers 0–3,
    /// clique B = {4,5,6,7} on layers 0–2, clique C = {8,9,10,11} on layers 2–3.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 4);
        for layer in 0..4 {
            clique(&mut b, layer, &[0, 1, 2, 3]);
        }
        for layer in 0..3 {
            clique(&mut b, layer, &[4, 5, 6, 7]);
        }
        for layer in 2..4 {
            clique(&mut b, layer, &[8, 9, 10, 11]);
        }
        b.build()
    }

    #[test]
    fn finds_coherent_cores_for_large_s() {
        let g = graph();
        // s = 3 (≥ l/2): only cliques A (4 layers) and B (3 layers) qualify.
        let result = top_down_dccs(&g, &DccsParams::new(3, 3, 2));
        assert_eq!(result.cover.to_vec(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn s_equal_to_l_returns_the_root_core() {
        let g = graph();
        let result = top_down_dccs(&g, &DccsParams::new(3, 4, 2));
        assert_eq!(result.cover.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(result.cores[0].layers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn agrees_with_greedy_and_bottom_up_on_cover_size() {
        let g = graph();
        for (d, s, k) in [(2, 2, 2), (3, 3, 2), (2, 3, 3), (3, 2, 2), (2, 4, 1)] {
            let params = DccsParams::new(d, s, k);
            let td = top_down_dccs(&g, &params);
            let bu = bottom_up_dccs(&g, &params);
            let gd = greedy_dccs(&g, &params);
            assert_eq!(td.cover_size(), gd.cover_size(), "td vs gd d={d} s={s} k={k}");
            assert_eq!(bu.cover_size(), gd.cover_size(), "bu vs gd d={d} s={s} k={k}");
        }
    }

    #[test]
    fn multithreaded_run_is_identical_to_sequential() {
        let g = graph();
        for (d, s, k) in [(2, 2, 2), (3, 3, 2), (2, 3, 3), (2, 4, 1)] {
            let params = DccsParams::new(d, s, k);
            let seq = top_down_dccs(&g, &params);
            for threads in [2, 4] {
                let par =
                    top_down_dccs_with_options(&g, &params, &DccsOptions::with_threads(threads));
                assert_eq!(par.cores, seq.cores, "threads={threads} d={d} s={s} k={k}");
                assert_eq!(par.stats, seq.stats, "threads={threads} d={d} s={s} k={k}");
            }
        }
    }

    #[test]
    fn reported_cores_are_d_dense_with_s_layers() {
        let g = graph();
        let params = DccsParams::new(2, 3, 3);
        let result = top_down_dccs(&g, &params);
        for core in &result.cores {
            assert_eq!(core.layers.len(), params.s);
            assert!(coreness::is_d_dense_multilayer(&g, &core.layers, &core.vertices, params.d));
        }
    }

    #[test]
    fn refine_c_and_plain_dcc_give_identical_results() {
        let g = graph();
        let params = DccsParams::new(3, 3, 2);
        let with_index = top_down_dccs(&g, &params);
        let opts = DccsOptions { use_refine_c: false, ..DccsOptions::default() };
        let without_index = top_down_dccs_with_options(&g, &params, &opts);
        assert_eq!(with_index.cover_size(), without_index.cover_size());
    }

    #[test]
    fn ablation_options_do_not_change_cover_size() {
        let g = graph();
        let params = DccsParams::new(2, 3, 2);
        let reference = top_down_dccs(&g, &params).cover_size();
        for opts in [
            DccsOptions::no_vertex_deletion(),
            DccsOptions::no_sort_layers(),
            DccsOptions::no_init_topk(),
            DccsOptions::no_preprocessing(),
        ] {
            let r = top_down_dccs_with_options(&g, &params, &opts);
            assert_eq!(r.cover_size(), reference);
        }
    }

    #[test]
    fn pruning_disabled_matches_default() {
        let g = graph();
        let params = DccsParams::new(2, 3, 2);
        let opts = DccsOptions {
            order_pruning: false,
            potential_pruning: false,
            ..DccsOptions::default()
        };
        let unpruned = top_down_dccs_with_options(&g, &params, &opts);
        let pruned = top_down_dccs(&g, &params);
        assert_eq!(unpruned.cover_size(), pruned.cover_size());
        assert!(pruned.stats.dcc_calls <= unpruned.stats.dcc_calls + 4);
    }

    #[test]
    fn empty_result_when_no_core_exists() {
        let mut b = MultiLayerGraphBuilder::new(6, 3);
        for layer in 0..3 {
            for v in 0..5u32 {
                b.add_edge(layer, v, v + 1).unwrap();
            }
        }
        let g = b.build();
        let result = top_down_dccs(&g, &DccsParams::new(2, 2, 2));
        assert_eq!(result.cover_size(), 0);
    }

    #[test]
    fn stats_are_populated() {
        let g = graph();
        let result = top_down_dccs(&g, &DccsParams::new(3, 3, 2));
        assert!(result.stats.dcc_calls > 0);
        assert!(result.stats.candidates_generated > 0);
    }
}
