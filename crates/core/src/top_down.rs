//! `TD-DCCS` — the top-down search algorithm of Section V (Figs. 8 and 11).
//!
//! The search tree is rooted at the full layer set `[l]`; a child removes one
//! layer whose (sorted) index exceeds every previously removed index. The
//! tree is explored depth-first from the root down to level `s`. Each node
//! carries, besides its d-CC `C_L`, a *potential vertex set* `U_L` that
//! contains every vertex of every level-`s` descendant; `U_L` is shrunk by
//! `RefineU` and the exact child core is extracted by `RefineC` over the
//! hierarchical vertex index. Pruning rules:
//!
//! * **Lemma 5** (search-tree pruning) — if `U_{L'}` fails Eq. (1), no
//!   descendant can update `R`.
//! * **Lemma 6** (order-based pruning) — children are visited in decreasing
//!   order of `|U_{L'}|`; once that size drops below
//!   `|Cov(R)|/k + |Δ(R, C*(R))|` the remaining children are skipped.
//! * **Lemma 7** (potential-set pruning) — when `C_{L'}` satisfies Eq. (1)
//!   and `U_{L'}` satisfies Eq. (2), at most one descendant can update `R`,
//!   so a single representative level-`s` descendant is evaluated instead of
//!   the whole subtree.
//!
//! The approximation ratio is 1/4 (Theorem 4). The paper recommends TD-DCCS
//! when `s ≥ l/2`; the implementation works for any `s` but is typically
//! slower than `BU-DCCS` for small `s`.
//!
//! # Execution model
//!
//! The search tree runs as a deterministic subtree-level task graph on the
//! shared executor ([`crate::engine::drive_task_graph`]): each node is one
//! task whose evaluation computes **all** of its children (`RefineU` +
//! `RefineC` — `TD-Gen` needs every child before it can order them), on
//! whichever worker grabs the task. Results are committed on the driver in
//! the tree's pre-order; the commit sorts the children, applies Lemmas
//! 5–7 against the live result set, performs the updates, and spawns the
//! surviving children as new tasks — which then evaluate concurrently with
//! tasks from other subtrees. Unlike BU, evaluation itself consults no
//! pruning bound, so nothing has to be frozen into the task payload: every
//! pruning decision runs at a deterministic commit moment, and the search
//! is bit-identical at any thread count.

use crate::algorithm::Algorithm;
use crate::config::{DccsOptions, DccsParams};
use crate::coverage::TopKDiversified;
use crate::engine::{drive_task_graph, with_pool, PoolRef, SearchContext};
use crate::fault::{self, site};
use crate::index::VertexIndex;
use crate::limits::QueryMonitor;
use crate::preprocess::init_topk_in;
use crate::refine::{refine_c, refine_u};
use crate::result::{CoherentCore, DccsResult, SearchStats};
use coreness::PeelWorkspace;
use mlgraph::{Layer, MultiLayerGraph, VertexSet};
use std::time::Instant;

/// Runs `TD-DCCS` with default options.
///
/// A one-shot wrapper over the engine state [`crate::DccsSession`] keeps
/// alive between queries; it retains the historical panic on invalid
/// parameters. Prefer the session API for repeated queries.
pub fn top_down_dccs(g: &MultiLayerGraph, params: &DccsParams) -> DccsResult {
    top_down_dccs_with_options(g, params, &DccsOptions::default())
}

/// Runs `TD-DCCS` with explicit options (used by the Fig. 28 ablation and
/// to set the executor width via `opts.threads`) — a one-shot wrapper over
/// the context the session API reuses.
pub fn top_down_dccs_with_options(
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    let mut ctx = SearchContext::from_options(opts);
    top_down_dccs_in(&mut ctx, g, params, opts)
}

/// Runs `TD-DCCS` on an existing [`SearchContext`], reusing its scratch
/// across a parameter sweep. Spins up one scoped crew for the whole query;
/// session callers with a persistent crew go through [`top_down_dccs_on`].
pub fn top_down_dccs_in(
    ctx: &mut SearchContext,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    with_pool(ctx.threads(), |pool| top_down_dccs_on(ctx, pool, g, params, opts))
}

/// [`top_down_dccs_in`] on an existing executor crew — the single-crew
/// query path: preprocessing and the subtree task graph share `pool`, so
/// neither phase pays its own worker spawn/join.
pub fn top_down_dccs_on(
    ctx: &mut SearchContext,
    pool: &PoolRef<'_>,
    g: &MultiLayerGraph,
    params: &DccsParams,
    opts: &DccsOptions,
) -> DccsResult {
    params.validate(g.num_layers()).expect("invalid DCCS parameters");
    let start = Instant::now();
    let mut stats = SearchStats { algorithm: Some(Algorithm::TopDown), ..SearchStats::default() };
    let l = g.num_layers();

    let pre = ctx.preprocess_on(pool, g, params, opts);
    stats.vertices_deleted = pre.vertices_deleted;
    stats.phase.preprocess = start.elapsed();

    let mut topk = TopKDiversified::new(g.num_vertices(), params.k);
    if opts.init_topk {
        let (ws, running, seed) = ctx.init_scratch();
        init_topk_in(ws, running, seed, g, params, &pre, &mut topk);
    }

    // Positions follow the ascending d-core-size order (Section V-D).
    let order = pre.top_down_layer_order(opts);
    let cores_by_layer = pre.layer_cores.clone();
    let index = if opts.use_refine_c && l <= 64 {
        Some(VertexIndex::build(g, params.d, &pre))
    } else {
        None
    };

    // Root: C_{[l]} computed over the active vertex set, under the query's
    // probe — the root peel is the single largest cascade of the search.
    let monitor = ctx.monitor().cloned();
    let mon = monitor.as_deref();
    let all_positions: Vec<usize> = (0..l).collect();
    let all_layers: Vec<Layer> = order.clone();
    stats.dcc_calls += 1;
    let search_start = Instant::now();
    let mut root_core = pre.active.clone();
    ctx.ws.set_probe(mon.map(QueryMonitor::probe));
    ctx.ws.peel_in_place(g, &all_layers, params.d, &mut root_core);
    ctx.ws.set_probe(None);

    if params.s == l {
        // An aborted root peel leaves `root_core` a superset of the true
        // d-CC — report nothing rather than a wrong core.
        if mon.is_none_or(|m| m.check().is_none()) {
            stats.candidates_generated += 1;
            if let Some(m) = mon {
                m.charge_candidates(1);
            }
            topk.try_update(CoherentCore::new(all_layers, root_core));
        }
        stats.phase.search = search_start.elapsed();
        if let Some(kind) = mon.and_then(QueryMonitor::hit) {
            stats.limit_hit = Some(kind);
            stats.complete = false;
        }
        stats.updates_accepted = topk.accepted_updates();
        return DccsResult::from_topk(g.num_vertices(), topk, stats, start.elapsed());
    }

    let d = params.d;
    let s = params.s;
    let use_refine_c = opts.use_refine_c;
    let order_ref: &[Layer] = &order;
    let layer_cores: &[VertexSet] = &cores_by_layer;
    let index_ref = index.as_ref();

    // Evaluating one `TD-Gen` node: compute every child `L' = L − {j}`
    // (`RefineU` then `RefineC` or a plain peel), in removable-position
    // order. Runs on any worker and reads only the task payload.
    let eval = move |task: TdTask, ws: &mut PeelWorkspace| -> TdNodeEval {
        fault::check(site::TD_EVAL);
        let TdTask { positions, potential } = task;
        // A tripped limit: skip the refinement entirely. The commit sees no
        // children and spawns nothing, so the outstanding subtree drains.
        if mon.is_some_and(|m| m.check().is_some()) {
            return TdNodeEval { children: Vec::new() };
        }
        // Peels run under the query's probe; an aborted peel leaves a child
        // core a *superset* of the truth, which the commit-side limit check
        // keeps out of the result set.
        ws.set_probe(mon.map(QueryMonitor::probe));
        // Removable positions: members of L above every removed position.
        let max_removed =
            (0..l).filter(|p| !positions.contains(p)).max().map(|p| p as isize).unwrap_or(-1);
        let removable: Vec<usize> =
            positions.iter().copied().filter(|&p| p as isize > max_removed).collect();
        let children: Vec<TdChild> = removable
            .into_iter()
            .map(|j| {
                let child_positions: Vec<usize> =
                    positions.iter().copied().filter(|&p| p != j).collect();
                // Class split w.r.t. L' (Section V-B): max removed position
                // is `j` because children always remove a position above
                // every earlier one.
                let class1: Vec<Layer> =
                    child_positions.iter().filter(|&&p| p < j).map(|&p| order_ref[p]).collect();
                let class2: Vec<Layer> =
                    child_positions.iter().filter(|&&p| p > j).map(|&p| order_ref[p]).collect();
                let layers: Vec<Layer> = child_positions.iter().map(|&p| order_ref[p]).collect();
                let spec = TdChildSpec { j, child_positions, class1, class2, layers };
                eval_child(g, d, s, layer_cores, index_ref, use_refine_c, spec, &potential, ws)
            })
            .collect();
        ws.set_probe(None);
        TdNodeEval { children }
    };

    {
        let root = TdTask { positions: all_positions, potential: pre.active.clone() };
        let topk = &mut topk;
        let stats = &mut stats;
        // Committing one node, in pre-order on the driver: order the
        // children by |U_{L'}| and apply Lemmas 5–7 against the live result
        // set, update R from leaves and Lemma-7 representatives, and spawn
        // the children that must be expanded.
        drive_task_graph(pool, &mut ctx.ws, vec![root], &eval, |mut ev: TdNodeEval, ws, spawn| {
            fault::check(site::GRAPH_COMMIT);
            // Once a limit trips, commit nothing more: children evaluated
            // after the hit may be probe-aborted supersets, and `topk`
            // already holds the best-so-far partial the caller gets back.
            if mon.is_some_and(|m| m.check().is_some()) {
                return;
            }
            stats.dcc_calls += ev.children.len();
            let leaves = ev.children.iter().filter(|c| c.positions.len() == s).count();
            stats.candidates_generated += leaves;
            if let Some(m) = mon {
                m.charge_candidates(leaves);
            }
            if !topk.is_full() {
                // Cases 1–2: no pruning while |R| < k.
                for child in ev.children {
                    if child.positions.len() == s {
                        let layers: Vec<Layer> =
                            child.positions.iter().map(|&p| order[p]).collect();
                        topk.try_update(CoherentCore::new(layers, child.core));
                    } else {
                        spawn.push(TdTask {
                            positions: child.positions,
                            potential: child.potential,
                        });
                    }
                }
                return;
            }
            // Cases 3–4: order children by |U_{L'}| descending (Lemma 6).
            ev.children.sort_by_key(|c| std::cmp::Reverse(c.potential.len()));
            let total = ev.children.len();
            for (rank, child) in ev.children.into_iter().enumerate() {
                if opts.order_pruning && topk.fails_size_bound(child.potential.len()) {
                    stats.subtrees_pruned += total - rank;
                    break;
                }
                if child.positions.len() == s {
                    let layers: Vec<Layer> = child.positions.iter().map(|&p| order[p]).collect();
                    topk.try_update(CoherentCore::new(layers, child.core));
                    continue;
                }
                // Lemma 5: prune when even the potential set cannot satisfy
                // Eq. (1).
                if !topk.satisfies_eq1(&child.potential) {
                    stats.subtrees_pruned += 1;
                    continue;
                }
                // Lemma 7: when the child's core already satisfies Eq. (1)
                // and the potential set satisfies Eq. (2), a single
                // representative descendant suffices.
                let removable_below: Vec<usize> =
                    child.positions.iter().copied().filter(|&p| p > child.removed).collect();
                let need_remove = child.positions.len() - s;
                if opts.potential_pruning
                    && topk.satisfies_eq1(&child.core)
                    && topk.satisfies_eq2(child.potential.len())
                {
                    if removable_below.len() < need_remove {
                        // The node has no level-s descendant at all.
                        stats.subtrees_pruned += 1;
                        continue;
                    }
                    // Deterministic choice: drop the largest removable
                    // positions.
                    let drop: Vec<usize> =
                        removable_below.iter().rev().take(need_remove).copied().collect();
                    let descendant: Vec<usize> =
                        child.positions.iter().copied().filter(|p| !drop.contains(p)).collect();
                    let layers: Vec<Layer> = descendant.iter().map(|&p| order[p]).collect();
                    stats.dcc_calls += 1;
                    stats.candidates_generated += 1;
                    if let Some(m) = mon {
                        m.charge_candidates(1);
                    }
                    // The representative peel runs on the driver's workspace
                    // with no probe installed, so it always completes and
                    // the update below is always a true d-CC.
                    let mut core = child.potential.clone();
                    ws.peel_in_place(g, &layers, d, &mut core);
                    topk.try_update(CoherentCore::new(layers, core));
                    stats.subtrees_pruned += 1;
                    continue;
                }
                spawn.push(TdTask { positions: child.positions, potential: child.potential });
            }
        });
    }

    stats.phase.search = search_start.elapsed();
    if let Some(kind) = mon.and_then(QueryMonitor::hit) {
        stats.limit_hit = Some(kind);
        stats.complete = false;
    }
    stats.updates_accepted = topk.accepted_updates();
    DccsResult::from_topk(g.num_vertices(), topk, stats, start.elapsed())
}

/// One `TD-Gen` search-tree node, scheduled as a task on the executor's
/// task graph. Evaluation needs no pruning state — `TD-Gen` computes every
/// child before ordering them — so the payload is just the node identity
/// and its potential vertex set.
struct TdTask {
    /// Tree positions of the node's layer subset `L` (ascending).
    positions: Vec<usize>,
    /// The node's potential vertex set `U_L`.
    potential: VertexSet,
}

/// The outcome of evaluating one [`TdTask`]: every child, in
/// removable-position order, committed on the driver in pre-order.
struct TdNodeEval {
    children: Vec<TdChild>,
}

/// A child node of the top-down search tree.
struct TdChild {
    positions: Vec<usize>,
    core: VertexSet,
    potential: VertexSet,
    /// The removed position `j` (needed for the Lemma-7 shortcut).
    removed: usize,
}

/// The driver-computed description of one child evaluation: the removed
/// position, the child's positions, the `RefineU` class split, and the
/// child's layer list.
struct TdChildSpec {
    j: usize,
    child_positions: Vec<usize>,
    class1: Vec<Layer>,
    class2: Vec<Layer>,
    layers: Vec<Layer>,
}

/// One child evaluation — `RefineU` then `RefineC` (or a plain peel) —
/// shared by the sequential path and the executor jobs.
#[allow(clippy::too_many_arguments)]
fn eval_child(
    g: &MultiLayerGraph,
    d: u32,
    s: usize,
    layer_cores: &[VertexSet],
    index: Option<&VertexIndex>,
    use_refine_c: bool,
    spec: TdChildSpec,
    u_l: &VertexSet,
    ws: &mut PeelWorkspace,
) -> TdChild {
    let TdChildSpec { j, child_positions, class1, class2, layers } = spec;
    let potential = refine_u(g, d, s, u_l, &class1, &class2, layer_cores);
    let core = match index {
        Some(ix) if use_refine_c => refine_c(g, d, ix, &potential, &layers),
        _ => {
            let mut core = potential.clone();
            ws.peel_in_place(g, &layers, d, &mut core);
            core
        }
    };
    TdChild { positions: child_positions, core, potential, removed: j }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom_up::bottom_up_dccs;
    use crate::greedy::greedy_dccs;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Four layers over 12 vertices: clique A = {0,1,2,3} on layers 0–3,
    /// clique B = {4,5,6,7} on layers 0–2, clique C = {8,9,10,11} on layers 2–3.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(12, 4);
        for layer in 0..4 {
            clique(&mut b, layer, &[0, 1, 2, 3]);
        }
        for layer in 0..3 {
            clique(&mut b, layer, &[4, 5, 6, 7]);
        }
        for layer in 2..4 {
            clique(&mut b, layer, &[8, 9, 10, 11]);
        }
        b.build()
    }

    #[test]
    fn finds_coherent_cores_for_large_s() {
        let g = graph();
        // s = 3 (≥ l/2): only cliques A (4 layers) and B (3 layers) qualify.
        let result = top_down_dccs(&g, &DccsParams::new(3, 3, 2));
        assert_eq!(result.cover.to_vec(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn s_equal_to_l_returns_the_root_core() {
        let g = graph();
        let result = top_down_dccs(&g, &DccsParams::new(3, 4, 2));
        assert_eq!(result.cover.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(result.cores[0].layers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn agrees_with_greedy_and_bottom_up_on_cover_size() {
        let g = graph();
        for (d, s, k) in [(2, 2, 2), (3, 3, 2), (2, 3, 3), (3, 2, 2), (2, 4, 1)] {
            let params = DccsParams::new(d, s, k);
            let td = top_down_dccs(&g, &params);
            let bu = bottom_up_dccs(&g, &params);
            let gd = greedy_dccs(&g, &params);
            assert_eq!(td.cover_size(), gd.cover_size(), "td vs gd d={d} s={s} k={k}");
            assert_eq!(bu.cover_size(), gd.cover_size(), "bu vs gd d={d} s={s} k={k}");
        }
    }

    #[test]
    fn multithreaded_run_is_identical_to_sequential() {
        let g = graph();
        for (d, s, k) in [(2, 2, 2), (3, 3, 2), (2, 3, 3), (2, 4, 1)] {
            let params = DccsParams::new(d, s, k);
            let seq = top_down_dccs(&g, &params);
            for threads in [2, 4] {
                let par =
                    top_down_dccs_with_options(&g, &params, &DccsOptions::with_threads(threads));
                assert_eq!(par.cores, seq.cores, "threads={threads} d={d} s={s} k={k}");
                assert_eq!(par.stats, seq.stats, "threads={threads} d={d} s={s} k={k}");
            }
        }
    }

    #[test]
    fn reported_cores_are_d_dense_with_s_layers() {
        let g = graph();
        let params = DccsParams::new(2, 3, 3);
        let result = top_down_dccs(&g, &params);
        for core in &result.cores {
            assert_eq!(core.layers.len(), params.s);
            assert!(coreness::is_d_dense_multilayer(&g, &core.layers, &core.vertices, params.d));
        }
    }

    #[test]
    fn refine_c_and_plain_dcc_give_identical_results() {
        let g = graph();
        let params = DccsParams::new(3, 3, 2);
        let with_index = top_down_dccs(&g, &params);
        let opts = DccsOptions { use_refine_c: false, ..DccsOptions::default() };
        let without_index = top_down_dccs_with_options(&g, &params, &opts);
        assert_eq!(with_index.cover_size(), without_index.cover_size());
    }

    #[test]
    fn ablation_options_do_not_change_cover_size() {
        let g = graph();
        let params = DccsParams::new(2, 3, 2);
        let reference = top_down_dccs(&g, &params).cover_size();
        for opts in [
            DccsOptions::no_vertex_deletion(),
            DccsOptions::no_sort_layers(),
            DccsOptions::no_init_topk(),
            DccsOptions::no_preprocessing(),
        ] {
            let r = top_down_dccs_with_options(&g, &params, &opts);
            assert_eq!(r.cover_size(), reference);
        }
    }

    #[test]
    fn pruning_disabled_matches_default() {
        let g = graph();
        let params = DccsParams::new(2, 3, 2);
        let opts = DccsOptions {
            order_pruning: false,
            potential_pruning: false,
            ..DccsOptions::default()
        };
        let unpruned = top_down_dccs_with_options(&g, &params, &opts);
        let pruned = top_down_dccs(&g, &params);
        assert_eq!(unpruned.cover_size(), pruned.cover_size());
        assert!(pruned.stats.dcc_calls <= unpruned.stats.dcc_calls + 4);
    }

    #[test]
    fn empty_result_when_no_core_exists() {
        let mut b = MultiLayerGraphBuilder::new(6, 3);
        for layer in 0..3 {
            for v in 0..5u32 {
                b.add_edge(layer, v, v + 1).unwrap();
            }
        }
        let g = b.build();
        let result = top_down_dccs(&g, &DccsParams::new(2, 2, 2));
        assert_eq!(result.cover_size(), 0);
    }

    #[test]
    fn stats_are_populated() {
        let g = graph();
        let result = top_down_dccs(&g, &DccsParams::new(3, 3, 2));
        assert!(result.stats.dcc_calls > 0);
        assert!(result.stats.candidates_generated > 0);
    }
}
