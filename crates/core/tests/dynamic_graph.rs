//! Dynamic-graph property suite: epoch-versioned mutation batches with
//! incremental d-core maintenance must be indistinguishable from a full
//! recompute on the mutated graph.
//!
//! The central property: after **every** commit of a random insert/delete
//! batch sequence, a [`dccs::QueryService`] answers a probe mix bit-identically
//! (cores, cover, and work counters) to fresh single-tenant sessions built
//! from scratch on an equivalently mutated graph — at 1, 2, and 4 workers.
//! CI re-runs this whole binary under `DCCS_FORCE_KERNEL=scalar` (the kernel
//! is latched once per process), so the repair path is also proven
//! kernel-invariant. Deterministic tests cover the nastiest shapes — a batch
//! that empties a layer and a follow-up that refills it — and fault
//! injection at `batch.commit`, proving a panicking commit leaves the old
//! snapshot serving.

use dccs::fault::{self, site, FaultMode};
use dccs::{
    Algorithm, DccsOptions, DccsParams, DccsResult, DccsSession, QueryService, Serve, ServiceQuery,
};
use mlgraph::{EdgeBatch, MultiLayerGraph, MultiLayerGraphBuilder, Vertex};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests that arm the process-global fault slot (same idiom
/// as `fault_injection.rs`; separate test binaries cannot collide).
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII disarm so a panicking assertion never leaks an armed fault.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm();
    }
}

const N: usize = 12;
const LAYERS: usize = 3;

fn small_multilayer() -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(
        prop::collection::vec((0..N as Vertex, 0..N as Vertex), 0..40),
        LAYERS..=LAYERS,
    )
    .prop_map(|lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(N, &cleaned).unwrap()
    })
}

/// One raw mutation draw; sanitized into a valid [`EdgeBatch`] by
/// [`to_batch`].
#[derive(Clone, Debug)]
struct Op {
    insert: bool,
    layer: usize,
    u: Vertex,
    v: Vertex,
}

fn batch_sequence() -> impl Strategy<Value = Vec<Vec<Op>>> {
    let op = (0usize..2, 0..LAYERS, 0..N as Vertex, 0..N as Vertex)
        .prop_map(|(insert, layer, u, v)| Op { insert: insert == 1, layer, u, v });
    prop::collection::vec(prop::collection::vec(op, 0..24), 1..4)
}

/// Drops self loops and keeps only the first operation touching each
/// `(layer, edge)` — `apply_batch` rejects an edge on both lists of one
/// layer, and this suite is about valid batches, not rejection paths
/// (those have their own deterministic test below).
fn to_batch(ops: &[Op]) -> EdgeBatch {
    let mut batch = EdgeBatch::new();
    let mut used = std::collections::HashSet::new();
    for op in ops {
        if op.u == op.v || !used.insert((op.layer, op.u.min(op.v), op.u.max(op.v))) {
            continue;
        }
        if op.insert {
            batch.insert(op.layer, op.u, op.v);
        } else {
            batch.delete(op.layer, op.u, op.v);
        }
    }
    batch
}

/// The probe mix answered after every commit: every algorithm family and a
/// spread of `(d, s, k)` shapes.
fn probes() -> Vec<ServiceQuery> {
    [
        (1u32, 1usize, 2usize, Algorithm::Auto),
        (2, 2, 2, Algorithm::Greedy),
        (2, 2, 1, Algorithm::BottomUp),
        (3, 2, 2, Algorithm::TopDown),
        (2, 3, 2, Algorithm::Auto),
    ]
    .into_iter()
    .map(|(d, s, k, a)| ServiceQuery::new(DccsParams::new(d, s, k)).with_algorithm(a))
    .collect()
}

/// The recompute-from-scratch ground truth: each probe through its own
/// fresh session on the mutated graph.
fn recompute_reference(g: &MultiLayerGraph, queries: &[ServiceQuery]) -> Vec<DccsResult> {
    queries
        .iter()
        .map(|q| {
            DccsSession::new(g)
                .query(q.spec.params)
                .algorithm(q.spec.algorithm)
                .serve(q.serve)
                .run()
                .expect("unlimited reference queries succeed")
        })
        .collect()
}

fn assert_identical(got: &DccsResult, want: &DccsResult, label: &str) {
    assert_eq!(got.cores, want.cores, "{label}: cores differ");
    assert_eq!(got.cover.to_vec(), want.cover.to_vec(), "{label}: cover differs");
    assert_eq!(got.stats, want.stats, "{label}: work counters differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The tentpole invariant: after every commit of a random batch
    // sequence, the incrementally maintained service is bit-identical to
    // recompute-from-scratch, at every worker count.
    #[test]
    fn incremental_maintenance_matches_recompute_after_every_commit(
        base in small_multilayer(),
        sequence in batch_sequence(),
    ) {
        let probes = probes();
        for workers in [1usize, 2, 4] {
            let service = QueryService::new(&base, DccsOptions::with_threads(workers));
            let mut current = base.clone();
            // Warm the shared tier so commits have per-`d` memos to repair
            // (a cold service would just recompute lazily — also correct,
            // but then the repair path would go untested).
            let _ = service.run_batch(&probes).unwrap();
            let mut epoch = service.epoch();
            for (step, ops) in sequence.iter().enumerate() {
                let batch = to_batch(ops);
                let receipt = service.commit(&batch).unwrap();
                let (next, applied) = current.apply_batch(&batch).unwrap();
                current = next;
                prop_assert_eq!(
                    receipt.is_noop_commit(),
                    applied.is_noop(),
                    "workers={} step={}: no-op classification", workers, step
                );
                if applied.is_noop() {
                    prop_assert_eq!(receipt.epoch, epoch);
                } else {
                    prop_assert!(receipt.epoch > epoch, "epochs advance monotonically");
                }
                epoch = receipt.epoch;
                let outcomes = service.run_batch(&probes).unwrap();
                let reference = recompute_reference(&current, &probes);
                for (i, (outcome, want)) in outcomes.iter().zip(&reference).enumerate() {
                    let got = outcome.result.as_ref().expect("unlimited probes succeed");
                    assert_identical(
                        got,
                        want,
                        &format!("workers={workers} step={step} probe={i}"),
                    );
                }
            }
        }
    }
}

/// The session tests' planted-clique fixture, where every algorithm has
/// real work to do.
fn clique_graph() -> MultiLayerGraph {
    let mut b = MultiLayerGraphBuilder::new(12, 4);
    for (layer, vs) in [
        (0usize, [0u32, 1, 2, 3]),
        (1, [0, 1, 2, 3]),
        (2, [4, 5, 6, 7]),
        (3, [4, 5, 6, 7]),
        (1, [8, 9, 10, 11]),
    ] {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }
    b.build()
}

/// Emptying a layer outright and refilling it next commit is the harshest
/// delete/insert shape for the repair path: every core on that layer dies,
/// then has to grow back from nothing.
#[test]
fn emptying_a_layer_and_refilling_it_round_trips() {
    let g = clique_graph();
    let probes = probes();
    for workers in [1usize, 2, 4] {
        let service = QueryService::new(&g, DccsOptions::with_threads(workers));
        let before = service.run_batch(&probes).unwrap();

        // Commit 1: delete every edge of layer 1 (both cliques on it).
        let layer_1_edges: Vec<(Vertex, Vertex)> = g.layer(1).edges().collect();
        assert!(!layer_1_edges.is_empty());
        let mut empty = EdgeBatch::new();
        for &(u, v) in &layer_1_edges {
            empty.delete(1, u, v);
        }
        let receipt = service.commit(&empty).unwrap();
        assert_eq!(receipt.deleted, layer_1_edges.len());
        let (emptied, _) = g.apply_batch(&empty).unwrap();
        assert_eq!(emptied.layer(1).num_edges(), 0);
        let outcomes = service.run_batch(&probes).unwrap();
        let reference = recompute_reference(&emptied, &probes);
        for (i, (outcome, want)) in outcomes.iter().zip(&reference).enumerate() {
            let got = outcome.result.as_ref().unwrap();
            assert_identical(got, want, &format!("workers={workers} emptied probe={i}"));
        }

        // Commit 2: re-add the same edges; the graph is back to the
        // original, and so must be every answer (including work counters).
        let mut refill = EdgeBatch::new();
        for &(u, v) in &layer_1_edges {
            refill.insert(1, u, v);
        }
        let receipt = service.commit(&refill).unwrap();
        assert_eq!(receipt.inserted, layer_1_edges.len());
        let outcomes = service.run_batch(&probes).unwrap();
        for (i, (outcome, want)) in outcomes.iter().zip(&before).enumerate() {
            let got = outcome.result.as_ref().unwrap();
            let want = want.result.as_ref().unwrap();
            assert_identical(got, want, &format!("workers={workers} refilled probe={i}"));
        }
    }
}

/// An invalid batch must reject without publishing anything, and `Serve`
/// modes keep working across commits.
#[test]
fn rejected_batches_leave_the_epoch_and_answers_alone() {
    let g = clique_graph();
    let service = QueryService::new(&g, DccsOptions::default());
    let probes = probes();
    let before = service.run_batch(&probes).unwrap();
    let epoch = service.epoch();
    for bad in [
        {
            let mut b = EdgeBatch::new();
            b.insert(9, 0, 1); // layer out of range
            b
        },
        {
            let mut b = EdgeBatch::new();
            b.insert(0, 0, 99); // vertex out of range
            b
        },
        {
            let mut b = EdgeBatch::new();
            b.insert(0, 4, 4); // self loop
            b
        },
        {
            let mut b = EdgeBatch::new();
            b.insert(0, 0, 5).delete(0, 5, 0); // insert+delete conflict
            b
        },
    ] {
        let err = service.commit(&bad).unwrap_err();
        assert!(
            matches!(err, dccs::DccsError::BatchInvalid { .. }),
            "expected BatchInvalid, got {err:?}"
        );
        assert_eq!(service.epoch(), epoch, "a rejected batch must not publish");
    }
    let after = service.run_batch(&probes).unwrap();
    for (i, (got, want)) in after.iter().zip(&before).enumerate() {
        assert_identical(
            got.result.as_ref().unwrap(),
            want.result.as_ref().unwrap(),
            &format!("post-reject probe={i}"),
        );
    }
}

/// Fault injection at `batch.commit`: a panic after the batch is validated
/// and repaired but before the swap must leave the old snapshot serving,
/// and the service must accept a clean retry of the same batch.
#[test]
fn a_panicking_commit_is_invisible_and_retryable() {
    let _guard = lock();
    let _disarm = Disarm;
    let g = clique_graph();
    let probes = probes();
    for workers in [1usize, 2, 4] {
        let service = QueryService::new(&g, DccsOptions::with_threads(workers));
        let before = service.run_batch(&probes).unwrap();
        let epoch = service.epoch();

        let mut batch = EdgeBatch::new();
        for (u, v) in [(4u32, 8u32), (5, 9), (6, 10)] {
            batch.insert(0, u, v);
        }
        fault::arm(site::BATCH_COMMIT, FaultMode::Panic, 1);
        let unwound = catch_unwind(AssertUnwindSafe(|| service.commit(&batch)));
        fault::disarm();
        assert!(unwound.is_err(), "workers={workers}: the armed commit must panic");

        // The failed commit published nothing: same epoch, same answers.
        assert_eq!(service.epoch(), epoch, "workers={workers}");
        let still = service.run_batch(&probes).unwrap();
        for (i, (got, want)) in still.iter().zip(&before).enumerate() {
            assert_identical(
                got.result.as_ref().unwrap(),
                want.result.as_ref().unwrap(),
                &format!("workers={workers} post-panic probe={i}"),
            );
        }

        // A clean retry of the identical batch commits and matches a full
        // recompute on the mutated graph.
        let receipt = service.commit(&batch).unwrap();
        assert!(receipt.epoch > epoch, "workers={workers}: retry publishes");
        let (mutated, _) = g.apply_batch(&batch).unwrap();
        let outcomes = service.run_batch(&probes).unwrap();
        let reference = recompute_reference(&mutated, &probes);
        for (i, (outcome, want)) in outcomes.iter().zip(&reference).enumerate() {
            assert_identical(
                outcome.result.as_ref().unwrap(),
                want,
                &format!("workers={workers} retry probe={i}"),
            );
        }
    }
}

/// Old snapshots pinned before a commit keep answering on their own
/// version while the service has moved on — the reader-side half of the
/// epoch contract, proven here against explicit `Serve::Peel` probes so
/// nothing is served from a cache.
#[test]
fn pinned_snapshots_survive_later_commits() {
    let g = clique_graph();
    let service = QueryService::new(&g, DccsOptions::default());
    let probe = ServiceQuery::new(DccsParams::new(2, 2, 2)).with_serve(Serve::Peel);
    let before = service.query(&probe).unwrap();
    let pinned = service.snapshot();

    // Cut vertex 0 out of the layer-0 clique entirely: the d-core on layer
    // subsets containing layer 0 shrinks from {0,1,2,3} to {1,2,3}.
    let mut batch = EdgeBatch::new();
    batch.delete(0, 0, 1).delete(0, 0, 2).delete(0, 0, 3);
    let receipt = service.commit(&batch).unwrap();
    assert!(receipt.epoch > pinned.epoch());

    // The service answers on the new version...
    let after = service.query(&probe).unwrap();
    assert_ne!(after.cores, before.cores, "the mutation must be visible");
    // ...while a session over the pinned snapshot's graph still reproduces
    // the pre-commit answer bit-identically.
    let mut session = DccsSession::new(pinned.graph());
    let replay = session.query(probe.spec.params).serve(Serve::Peel).run().unwrap();
    assert_eq!(replay.cores, before.cores);
    assert_eq!(replay.cover.to_vec(), before.cover.to_vec());
}
