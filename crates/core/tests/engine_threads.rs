//! Thread-equivalence property tests for the unified search executor.
//!
//! The determinism contract of `dccs::engine` is that the worker count is
//! invisible in everything but wall-clock time: BU and TD (whose search
//! trees run as subtree-level task graphs with spawn-time bound snapshots
//! and pre-order commits) and the lattice-driven GD must produce the same
//! cores (layer subsets and vertex sets, in the same order), the same
//! cover, and the same work counters at 1, 2, 4, and 8 threads — and the
//! 1-thread engine run (the task graph's inline depth-first fast path)
//! must equal the plain sequential entry points. Random small multi-layer
//! graphs exercise the full grid, including the ablation presets whose
//! pruning interacts with commit order.
//!
//! CI additionally runs this suite under `RUST_TEST_THREADS=1` with
//! `DCCS_FORCE_THREADS=4`, so even a single-core runner drives the
//! multi-worker queue, slot, and merge paths.

use dccs::{
    bottom_up_dccs, bottom_up_dccs_with_options, greedy_dccs, greedy_dccs_with_options,
    top_down_dccs, top_down_dccs_with_options, DccsOptions, DccsParams, DccsResult, IndexPath,
};
use mlgraph::{MultiLayerGraph, MultiLayerGraphBuilder, Vertex};
use proptest::prelude::*;

fn small_multilayer(
    n: usize,
    layers: usize,
    max_edges: usize,
) -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(
        prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..max_edges),
        layers..=layers,
    )
    .prop_map(move |lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(n, &cleaned).unwrap()
    })
}

/// Full identity: cores (layers + members, in order), cover, and stats.
/// Only `elapsed` may differ between the two runs.
fn assert_identical(a: &DccsResult, b: &DccsResult, label: &str) {
    assert_eq!(a.cores, b.cores, "{label}: cores differ");
    assert_eq!(a.cover.to_vec(), b.cover.to_vec(), "{label}: cover differs");
    assert_eq!(a.stats, b.stats, "{label}: work counters differ");
}

type AlgoFn = fn(&MultiLayerGraph, &DccsParams, &DccsOptions) -> DccsResult;

const ALGORITHMS: [(&str, AlgoFn); 3] = [
    ("GD", greedy_dccs_with_options as AlgoFn),
    ("BU", bottom_up_dccs_with_options as AlgoFn),
    ("TD", top_down_dccs_with_options as AlgoFn),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_algorithm_is_thread_invariant(
        g in small_multilayer(18, 4, 70),
        d in 1u32..4,
        s in 1usize..5,
        k in 1usize..4,
    ) {
        let params = DccsParams::new(d, s, k);
        for (name, algo) in ALGORITHMS {
            let seq = algo(&g, &params, &DccsOptions::with_threads(1));
            for threads in [2usize, 4, 8] {
                let par = algo(&g, &params, &DccsOptions::with_threads(threads));
                assert_identical(&seq, &par, &format!("{name} d={d} s={s} k={k} t={threads}"));
            }
        }
    }

    #[test]
    fn one_thread_engine_equals_plain_sequential_entry_points(
        g in small_multilayer(16, 3, 60),
        d in 1u32..3,
        s in 1usize..4,
        k in 1usize..3,
    ) {
        let params = DccsParams::new(d, s, k);
        let opts = DccsOptions::with_threads(1);
        assert_identical(&greedy_dccs(&g, &params), &greedy_dccs_with_options(&g, &params, &opts), "GD");
        assert_identical(&bottom_up_dccs(&g, &params), &bottom_up_dccs_with_options(&g, &params, &opts), "BU");
        assert_identical(&top_down_dccs(&g, &params), &top_down_dccs_with_options(&g, &params, &opts), "TD");
    }

    #[test]
    fn ablations_stay_thread_invariant(
        g in small_multilayer(16, 4, 60),
        d in 1u32..3,
        s in 2usize..4,
    ) {
        // Pruning interacts with commit order; every ablation preset must
        // stay deterministic under the executor too.
        let params = DccsParams::new(d, s, 2);
        for base in [
            DccsOptions::no_preprocessing(),
            DccsOptions::no_init_topk(),
            DccsOptions { order_pruning: false, layer_pruning: false, ..DccsOptions::default() },
            DccsOptions { use_refine_c: false, ..DccsOptions::default() },
        ] {
            for (name, algo) in ALGORITHMS {
                let seq = algo(&g, &params, &DccsOptions { threads: 1, ..base });
                for threads in [4usize, 8] {
                    let par = algo(&g, &params, &DccsOptions { threads, ..base });
                    assert_identical(&seq, &par, &format!("{name} ablation d={d} s={s} t={threads}"));
                }
            }
        }
    }
}

/// Cost-model crossover: the stats must record the dense path on a small
/// dense universe and the CSR path on a wide sparse one — the shape
/// (German analogue at low `d`) where the dense rows used to lose to CSR.
#[test]
fn stats_record_the_cost_model_crossover() {
    // Two layers sharing an 8-clique: universe m = 8, one word per row.
    let mut b = MultiLayerGraphBuilder::new(32, 2);
    for layer in 0..2 {
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                b.add_edge(layer, i, j).unwrap();
            }
        }
    }
    let dense_graph = b.build();
    let r = greedy_dccs(&dense_graph, &DccsParams::new(2, 2, 2));
    assert_eq!(r.stats.index_path, Some(IndexPath::Dense), "small dense universe → dense rows");

    // Two layers, each a 4000-cycle: with d = 1 the universe is the whole
    // graph (m = 4000, 63 words per row) while the average degree is 2 —
    // scanning 63 words per degree query loses, the model must pick CSR.
    let mut b = MultiLayerGraphBuilder::new(4000, 2);
    for layer in 0..2 {
        for v in 0..4000u32 {
            b.add_edge(layer, v, (v + 1) % 4000).unwrap();
        }
    }
    let sparse_graph = b.build();
    let r = greedy_dccs(&sparse_graph, &DccsParams::new(1, 2, 2));
    assert_eq!(r.stats.index_path, Some(IndexPath::Csr), "wide sparse universe → CSR fallback");
    assert_eq!(r.cover_size(), 4000, "the 1-CC of the double cycle is everything");
}
