//! Thread-equivalence property tests for the unified search executor.
//!
//! The determinism contract of `dccs::engine` is that the worker count is
//! invisible in everything but wall-clock time: BU and TD (whose search
//! trees run as subtree-level task graphs with spawn-time bound snapshots
//! and pre-order commits) and the lattice-driven GD must produce the same
//! cores (layer subsets and vertex sets, in the same order), the same
//! cover, and the same work counters at 1, 2, 4, and 8 threads — and the
//! 1-thread engine run (the task graph's inline depth-first fast path)
//! must equal the plain sequential entry points. Random small multi-layer
//! graphs exercise the full grid, including the ablation presets whose
//! pruning interacts with commit order.
//!
//! CI additionally runs this suite under `RUST_TEST_THREADS=1` with
//! `DCCS_FORCE_THREADS=4`, so even a single-core runner drives the
//! multi-worker queue, slot, and merge paths.

use dccs::{
    bottom_up_dccs, bottom_up_dccs_with_options, greedy_dccs, greedy_dccs_with_options,
    top_down_dccs, top_down_dccs_with_options, DccsOptions, DccsParams, DccsResult, IndexPath,
};
use mlgraph::{MultiLayerGraph, MultiLayerGraphBuilder, Vertex};
use proptest::prelude::*;

fn small_multilayer(
    n: usize,
    layers: usize,
    max_edges: usize,
) -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(
        prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..max_edges),
        layers..=layers,
    )
    .prop_map(move |lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(n, &cleaned).unwrap()
    })
}

/// Full identity: cores (layers + members, in order), cover, and stats.
/// Only `elapsed` may differ between the two runs.
fn assert_identical(a: &DccsResult, b: &DccsResult, label: &str) {
    assert_eq!(a.cores, b.cores, "{label}: cores differ");
    assert_eq!(a.cover.to_vec(), b.cover.to_vec(), "{label}: cover differs");
    assert_eq!(a.stats, b.stats, "{label}: work counters differ");
}

type AlgoFn = fn(&MultiLayerGraph, &DccsParams, &DccsOptions) -> DccsResult;

const ALGORITHMS: [(&str, AlgoFn); 3] = [
    ("GD", greedy_dccs_with_options as AlgoFn),
    ("BU", bottom_up_dccs_with_options as AlgoFn),
    ("TD", top_down_dccs_with_options as AlgoFn),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_algorithm_is_thread_invariant(
        g in small_multilayer(18, 4, 70),
        d in 1u32..4,
        s in 1usize..5,
        k in 1usize..4,
    ) {
        let params = DccsParams::new(d, s, k);
        for (name, algo) in ALGORITHMS {
            let seq = algo(&g, &params, &DccsOptions::with_threads(1));
            for threads in [2usize, 4, 8] {
                let par = algo(&g, &params, &DccsOptions::with_threads(threads));
                assert_identical(&seq, &par, &format!("{name} d={d} s={s} k={k} t={threads}"));
            }
        }
    }

    #[test]
    fn one_thread_engine_equals_plain_sequential_entry_points(
        g in small_multilayer(16, 3, 60),
        d in 1u32..3,
        s in 1usize..4,
        k in 1usize..3,
    ) {
        let params = DccsParams::new(d, s, k);
        let opts = DccsOptions::with_threads(1);
        assert_identical(&greedy_dccs(&g, &params), &greedy_dccs_with_options(&g, &params, &opts), "GD");
        assert_identical(&bottom_up_dccs(&g, &params), &bottom_up_dccs_with_options(&g, &params, &opts), "BU");
        assert_identical(&top_down_dccs(&g, &params), &top_down_dccs_with_options(&g, &params, &opts), "TD");
    }

    #[test]
    fn ablations_stay_thread_invariant(
        g in small_multilayer(16, 4, 60),
        d in 1u32..3,
        s in 2usize..4,
    ) {
        // Pruning interacts with commit order; every ablation preset must
        // stay deterministic under the executor too.
        let params = DccsParams::new(d, s, 2);
        for base in [
            DccsOptions::no_preprocessing(),
            DccsOptions::no_init_topk(),
            DccsOptions { order_pruning: false, layer_pruning: false, ..DccsOptions::default() },
            DccsOptions { use_refine_c: false, ..DccsOptions::default() },
        ] {
            for (name, algo) in ALGORITHMS {
                let seq = algo(&g, &params, &DccsOptions { threads: 1, ..base });
                for threads in [4usize, 8] {
                    let par = algo(&g, &params, &DccsOptions { threads, ..base });
                    assert_identical(&seq, &par, &format!("{name} ablation d={d} s={s} t={threads}"));
                }
            }
        }
    }
}

/// Executor panic safety at every crew width: a pooled batch job that
/// panics must not take down its worker, leak queued jobs, or poison the
/// session. Uses the `batch.query` fault site, which only `run_batch` jobs
/// reach — the free-function proptests above run concurrently in this
/// binary and must never consume the armed fault. (Worker panics at the
/// algorithm-level sites are exercised in `fault_injection.rs`, where the
/// whole binary serializes on one lock.)
#[test]
fn panicking_batch_job_leaves_the_crew_and_queue_intact() {
    use dccs::fault::{self, site, FaultMode};
    use dccs::{Algorithm, DccsError, DccsSession, QuerySpec};

    // Two 6-cliques shared by 3 layers: enough structure for real queries.
    let mut b = MultiLayerGraphBuilder::new(16, 3);
    for layer in 0..3 {
        for base in [0u32, 8] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    b.add_edge(layer, base + i, base + j).unwrap();
                }
            }
        }
    }
    let g = b.build();
    let specs: Vec<QuerySpec> = (1..=3usize)
        .map(|s| QuerySpec::new(DccsParams::new(2, s, 2)).with_algorithm(Algorithm::Greedy))
        .collect();
    let reference: Vec<DccsResult> =
        specs.iter().map(|spec| DccsSession::new(&g).query(spec.params).run().unwrap()).collect();
    for threads in [1usize, 2, 4] {
        let opts = DccsOptions::with_threads(threads);
        let mut session = DccsSession::with_options(&g, opts);
        fault::arm(site::BATCH_QUERY, FaultMode::Panic, 1);
        let batch = session.run_batch(&specs).expect("validation passes");
        fault::disarm();
        // One job absorbed the panic; the queue kept draining: every other
        // slot holds its correct, complete result.
        let dead: Vec<usize> = (0..batch.len()).filter(|&i| batch[i].is_err()).collect();
        assert_eq!(dead.len(), 1, "threads={threads}: exactly one slot fails");
        assert!(
            matches!(batch[dead[0]].as_ref().unwrap_err(), DccsError::TaskPanicked { .. }),
            "threads={threads}: the failure is typed"
        );
        for (i, slot) in batch.iter().enumerate() {
            if let Ok(result) = slot {
                assert_identical(result, &reference[i], &format!("slot {i} threads={threads}"));
            }
        }
        // The crew survived: a fresh single query and a fresh batch on the
        // same session both come back complete and bit-identical.
        let single = session.query(specs[0].params).run().unwrap();
        assert_identical(&single, &reference[0], &format!("post-panic run threads={threads}"));
        let clean = session.run_batch(&specs).unwrap();
        for (i, slot) in clean.iter().enumerate() {
            let result = slot.as_ref().expect("no fault armed: every slot succeeds");
            assert_identical(result, &reference[i], &format!("clean slot {i} threads={threads}"));
        }
    }
}

/// Cost-model crossover: the stats must record the dense path on a small
/// dense universe and the CSR path on a wide sparse one — the shape
/// (German analogue at low `d`) where the dense rows used to lose to CSR.
#[test]
fn stats_record_the_cost_model_crossover() {
    // Two layers sharing an 8-clique: universe m = 8, one word per row.
    let mut b = MultiLayerGraphBuilder::new(32, 2);
    for layer in 0..2 {
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                b.add_edge(layer, i, j).unwrap();
            }
        }
    }
    let dense_graph = b.build();
    let r = greedy_dccs(&dense_graph, &DccsParams::new(2, 2, 2));
    assert_eq!(r.stats.index_path, Some(IndexPath::Dense), "small dense universe → dense rows");

    // Two layers, each a 4000-cycle: with d = 1 the universe is the whole
    // graph (m = 4000, 63 words per row) while the average degree is 2 —
    // scanning 63 words per degree query loses, the model must pick CSR.
    let mut b = MultiLayerGraphBuilder::new(4000, 2);
    for layer in 0..2 {
        for v in 0..4000u32 {
            b.add_edge(layer, v, (v + 1) % 4000).unwrap();
        }
    }
    let sparse_graph = b.build();
    let r = greedy_dccs(&sparse_graph, &DccsParams::new(1, 2, 2));
    assert_eq!(r.stats.index_path, Some(IndexPath::Csr), "wide sparse universe → CSR fallback");
    assert_eq!(r.cover_size(), 4000, "the 1-CC of the double cycle is everything");
}
