//! Fault-injection robustness tests: every instrumented site
//! (`dccs::fault::site`) is armed in turn and the session must convert the
//! injected panic into [`DccsError::TaskPanicked`], keep its worker crew
//! alive, and answer the next query **bit-identically to a fresh session**.
//! Delay injection makes the deadline path deterministic, and a panicking
//! batch spec must stay confined to its own result slot.
//!
//! The fault hook is process-global (one armed fault at a time), so every
//! test serializes on one mutex and disarms on the way out.

use dccs::fault::{self, site, FaultMode};
use dccs::{
    Algorithm, DccsError, DccsOptions, DccsParams, DccsResult, DccsSession, LimitKind, QueryLimits,
    QuerySpec,
};
use mlgraph::{MultiLayerGraph, MultiLayerGraphBuilder, Vertex};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that arm the process-global fault slot.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII disarm: a panicking assertion must not leave a fault armed for the
/// next test.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm();
    }
}

/// A 4-layer graph with planted quasi-cliques so every algorithm has real
/// work at d = 2: an 8-clique on layers 0–2, a 6-clique on layers 1–3, and
/// a background cycle per layer.
fn test_graph() -> MultiLayerGraph {
    let n = 24u32;
    let mut b = MultiLayerGraphBuilder::new(n as usize, 4);
    for layer in 0..3 {
        for i in 0..8 {
            for j in (i + 1)..8 {
                b.add_edge(layer, i, j).unwrap();
            }
        }
    }
    for layer in 1..4 {
        for i in 10..16 {
            for j in (i + 1)..16 {
                b.add_edge(layer, i, j).unwrap();
            }
        }
    }
    for layer in 0..4u32 {
        for v in 0..n {
            b.add_edge(layer as usize, v, (v + 1) % n).unwrap();
        }
    }
    b.build()
}

fn assert_identical(a: &DccsResult, b: &DccsResult, label: &str) {
    assert_eq!(a.cores, b.cores, "{label}: cores differ");
    assert_eq!(a.cover.to_vec(), b.cover.to_vec(), "{label}: cover differs");
    assert_eq!(a.stats, b.stats, "{label}: work counters differ");
}

/// Every instrumented site, paired with a query shape that reaches it.
const SITES: [(&str, Algorithm, u32, usize); 7] = [
    (site::PREPROCESS_ROUND, Algorithm::Greedy, 2, 2),
    (site::PREPROCESS_LAYER, Algorithm::Greedy, 2, 2),
    (site::LATTICE_BRANCH, Algorithm::Greedy, 2, 2),
    (site::SELECT, Algorithm::Greedy, 2, 2),
    (site::BU_EVAL, Algorithm::BottomUp, 2, 2),
    (site::TD_EVAL, Algorithm::TopDown, 2, 3),
    (site::GRAPH_COMMIT, Algorithm::BottomUp, 2, 2),
];

#[test]
fn every_fault_site_converts_to_a_typed_error_and_the_session_recovers() {
    let _guard = lock();
    let _disarm = Disarm;
    let g = test_graph();
    for (fault_site, algorithm, d, s) in SITES {
        let params = DccsParams::new(d, s, 3);
        for threads in [1usize, 2, 4] {
            let label = format!("{fault_site} threads={threads}");
            let opts = DccsOptions::with_threads(threads);
            let mut session = DccsSession::with_options(&g, opts);
            fault::arm(fault_site, FaultMode::Panic, 1);
            let err = session
                .query(params)
                .algorithm(algorithm)
                .run()
                .expect_err(&format!("{label}: armed site must fail the query"));
            match err {
                DccsError::TaskPanicked { message } => assert!(
                    message.contains("injected fault"),
                    "{label}: panic message lost: {message}"
                ),
                other => panic!("{label}: expected TaskPanicked, got: {other}"),
            }
            fault::disarm();
            // The crew survived and the session's rebuilt state is
            // invisible: the same query now matches a fresh session.
            let after = session.query(params).algorithm(algorithm).run().unwrap();
            let fresh = DccsSession::with_options(&g, opts)
                .query(params)
                .algorithm(algorithm)
                .run()
                .unwrap();
            assert_identical(&after, &fresh, &label);
        }
    }
}

#[test]
fn delay_injection_trips_the_deadline_deterministically() {
    let _guard = lock();
    let _disarm = Disarm;
    let g = test_graph();
    let params = DccsParams::new(2, 2, 3);
    let opts = DccsOptions::with_threads(1);
    let mut session = DccsSession::with_options(&g, opts);
    // Every lattice branch walk sleeps 60 ms against a 10 ms deadline: the
    // first post-delay checkpoint must stop the query, regardless of
    // machine speed.
    fault::arm(site::LATTICE_BRANCH, FaultMode::Delay(Duration::from_millis(60)), 50);
    let err = session
        .query(params)
        .algorithm(Algorithm::Greedy)
        .limits(QueryLimits::none().with_deadline(Duration::from_millis(10)))
        .run()
        .expect_err("a blown deadline must fail the query");
    let DccsError::DeadlineExceeded { deadline, partial } = err else {
        panic!("expected DeadlineExceeded, got: {err}");
    };
    assert_eq!(deadline, Duration::from_millis(10));
    assert!(!partial.stats.complete, "partial results are flagged incomplete");
    assert_eq!(partial.stats.limit_hit, Some(LimitKind::Deadline));
    fault::disarm();
    // Unlimited rerun on the same session: complete and bit-identical.
    let after = session.query(params).algorithm(Algorithm::Greedy).run().unwrap();
    assert!(after.stats.complete);
    let fresh = DccsSession::with_options(&g, opts)
        .query(params)
        .algorithm(Algorithm::Greedy)
        .run()
        .unwrap();
    assert_identical(&after, &fresh, "post-deadline rerun");
}

#[test]
fn a_panicking_batch_spec_stays_in_its_own_slot() {
    let _guard = lock();
    let _disarm = Disarm;
    let g = test_graph();
    let specs = [
        QuerySpec::new(DccsParams::new(2, 2, 3)).with_algorithm(Algorithm::Greedy),
        QuerySpec::new(DccsParams::new(2, 2, 3)).with_algorithm(Algorithm::BottomUp),
        QuerySpec::new(DccsParams::new(2, 3, 3)).with_algorithm(Algorithm::TopDown),
    ];
    let reference: Vec<DccsResult> = specs
        .iter()
        .map(|spec| {
            DccsSession::new(&g).query(spec.params).algorithm(spec.algorithm).run().unwrap()
        })
        .collect();
    for threads in [1usize, 4] {
        let opts = DccsOptions::with_threads(threads);
        let mut session = DccsSession::with_options(&g, opts);
        fault::arm(site::BATCH_QUERY, FaultMode::Panic, 1);
        let batch = session.run_batch(&specs).expect("valid specs pass up-front validation");
        fault::disarm();
        assert_eq!(batch.len(), specs.len());
        // Exactly one slot died (at 1 thread it is deterministically the
        // first); every other slot still holds its correct result.
        let dead: Vec<usize> = (0..batch.len()).filter(|&i| batch[i].is_err()).collect();
        assert_eq!(dead.len(), 1, "threads={threads}: exactly one spec absorbs the panic");
        if threads == 1 {
            assert_eq!(dead[0], 0, "the sequential path fails the first spec");
        }
        for (i, slot) in batch.iter().enumerate() {
            match slot {
                Ok(result) => {
                    assert_identical(result, &reference[i], &format!("slot {i} threads={threads}"));
                }
                Err(DccsError::TaskPanicked { message }) => {
                    assert!(message.contains("injected fault"), "slot {i}: {message}");
                }
                Err(other) => panic!("slot {i}: unexpected error: {other}"),
            }
        }
        // The session survives the batch fault: rerunning the dead spec
        // alone matches its reference.
        let spec = specs[dead[0]];
        let again = session.query(spec.params).algorithm(spec.algorithm).run().unwrap();
        assert_identical(&again, &reference[dead[0]], "post-batch rerun");
    }
}

fn small_multilayer(
    n: usize,
    layers: usize,
    max_edges: usize,
) -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(
        prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..max_edges),
        layers..=layers,
    )
    .prop_map(move |lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(n, &cleaned).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The recovery property over random graphs: whatever an injected
    // mid-query panic did to the session's caches and crew, the next
    // query is bit-identical to a fresh session (the fault may or may not
    // fire on a degenerate graph — recovery must hold either way).
    #[test]
    fn post_fault_queries_match_a_fresh_session(
        g in small_multilayer(14, 4, 50),
        d in 1u32..3,
        s in 1usize..4,
    ) {
        let _guard = lock();
        let _disarm = Disarm;
        let params = DccsParams::new(d, s, 2);
        for (fault_site, algorithm) in [
            (site::GRAPH_COMMIT, Algorithm::BottomUp),
            (site::LATTICE_BRANCH, Algorithm::Greedy),
        ] {
            for threads in [1usize, 2] {
                let opts = DccsOptions::with_threads(threads);
                let mut session = DccsSession::with_options(&g, opts);
                fault::arm(fault_site, FaultMode::Panic, 1);
                let _ = session.query(params).algorithm(algorithm).run();
                fault::disarm();
                let after = session.query(params).algorithm(algorithm).run().unwrap();
                let fresh = DccsSession::with_options(&g, opts)
                    .query(params)
                    .algorithm(algorithm)
                    .run()
                    .unwrap();
                assert_identical(
                    &after,
                    &fresh,
                    &format!("{fault_site} d={d} s={s} threads={threads}"),
                );
            }
        }
    }
}
