//! Property-based tests for the DCCS algorithms.
//!
//! Random small multi-layer graphs are generated, all three approximation
//! algorithms are run, and the paper's structural guarantees are checked:
//! every reported core really is a d-CC on exactly `s` layers, the covers
//! respect the proven approximation ratios against the exact optimum, and
//! the search algorithms agree with the greedy baseline within the expected
//! bounds.

use dccs::{
    bottom_up_dccs, bottom_up_dccs_with_options, exact_dccs, greedy_dccs, top_down_dccs,
    top_down_dccs_with_options, DccsOptions, DccsParams,
};
use mlgraph::{MultiLayerGraph, Vertex};
use proptest::prelude::*;

fn small_multilayer(
    n: usize,
    layers: usize,
    max_edges: usize,
) -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(
        prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..max_edges),
        layers..=layers,
    )
    .prop_map(move |lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(n, &cleaned).unwrap()
    })
}

fn check_cores_are_valid(g: &MultiLayerGraph, params: &DccsParams, result: &dccs::DccsResult) {
    assert!(result.num_cores() <= params.k);
    for core in &result.cores {
        assert_eq!(core.layers.len(), params.s, "core must span exactly s layers");
        assert!(
            coreness::is_d_dense_multilayer(g, &core.layers, &core.vertices, params.d),
            "reported core is not d-dense"
        );
        // Maximality: the core must equal the full d-CC for its layer set.
        let full = coreness::d_coherent_core_full(g, &core.layers, params.d);
        assert_eq!(core.vertices.to_vec(), full.to_vec(), "core is not maximal");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_algorithms_produce_valid_maximal_cores(
        g in small_multilayer(18, 4, 70),
        d in 1u32..4,
        s in 1usize..4,
        k in 1usize..4,
    ) {
        let params = DccsParams::new(d, s, k);
        for result in [greedy_dccs(&g, &params), bottom_up_dccs(&g, &params), top_down_dccs(&g, &params)] {
            check_cores_are_valid(&g, &params, &result);
        }
    }

    #[test]
    fn approximation_ratios_against_exact(
        g in small_multilayer(14, 3, 45),
        d in 1u32..3,
        k in 1usize..4,
    ) {
        let params = DccsParams::new(d, 2, k);
        let opt = exact_dccs(&g, &params).cover_size();
        let gd = greedy_dccs(&g, &params).cover_size();
        let bu = bottom_up_dccs(&g, &params).cover_size();
        let td = top_down_dccs(&g, &params).cover_size();
        prop_assert!(gd as f64 + 1e-9 >= (1.0 - 1.0 / std::f64::consts::E) * opt as f64,
            "greedy below 1-1/e: gd={} opt={}", gd, opt);
        prop_assert!(4 * bu >= opt, "bottom-up below 1/4: bu={} opt={}", bu, opt);
        prop_assert!(4 * td >= opt, "top-down below 1/4: td={} opt={}", td, opt);
        prop_assert!(gd <= opt && bu <= opt && td <= opt, "no algorithm may exceed the optimum");
    }

    #[test]
    fn pruning_and_preprocessing_do_not_change_bottom_up_validity(
        g in small_multilayer(16, 4, 60),
        d in 1u32..3,
        s in 1usize..4,
    ) {
        let params = DccsParams::new(d, s, 2);
        let baseline = bottom_up_dccs(&g, &params);
        let no_pruning = DccsOptions {
            order_pruning: false,
            layer_pruning: false,
            ..DccsOptions::default()
        };
        let unpruned = bottom_up_dccs_with_options(&g, &params, &no_pruning);
        check_cores_are_valid(&g, &params, &unpruned);
        // Pruning is an optimization within the same 1/4-approximate scheme;
        // the pruned run never needs more core computations.
        prop_assert!(baseline.stats.dcc_calls <= unpruned.stats.dcc_calls);
    }

    #[test]
    fn top_down_refine_c_matches_plain_peeling(
        g in small_multilayer(16, 4, 60),
        d in 1u32..3,
        s in 2usize..5,
    ) {
        let params = DccsParams::new(d, s.min(4), 2);
        let with_index = top_down_dccs(&g, &params);
        let opts = DccsOptions { use_refine_c: false, ..DccsOptions::default() };
        let plain = top_down_dccs_with_options(&g, &params, &opts);
        // Same algorithm, two implementations of the core-extraction step.
        prop_assert_eq!(with_index.cover_size(), plain.cover_size());
        check_cores_are_valid(&g, &params, &with_index);
    }

    #[test]
    fn lattice_candidates_match_naive_per_subset_peels(
        g in small_multilayer(18, 4, 70),
        d in 1u32..4,
        s in 1usize..5,
    ) {
        // The subset-lattice engine (prefix-seeded peels on a reused
        // workspace) must emit, per layer subset in lexicographic order,
        // exactly what the pre-refactor path computed: a from-scratch peel
        // of the intersection of the memoized per-layer d-cores.
        let params = DccsParams::new(d, s, 2);
        let pre = dccs::preprocess::preprocess(&g, &params, &DccsOptions::default());
        let mut ws = coreness::PeelWorkspace::new();
        let mut got: Vec<(Vec<usize>, Vec<Vertex>)> = Vec::new();
        dccs::for_each_subset_core(&g, d, s, &pre.layer_cores, &mut ws, |subset, core| {
            got.push((subset.to_vec(), core.to_vec()));
        });
        let expected: Vec<(Vec<usize>, Vec<Vertex>)> =
            dccs::naive_subset_cores(&g, d, s, &pre.layer_cores)
                .into_iter()
                .map(|(subset, core)| (subset, core.to_vec()))
                .collect();
        prop_assert_eq!(got, expected, "d={} s={}", d, s);
    }

    #[test]
    fn greedy_cover_never_shrinks_with_k(
        g in small_multilayer(16, 3, 60),
        d in 1u32..3,
    ) {
        let mut previous = 0usize;
        for k in 1..5usize {
            let cover = greedy_dccs(&g, &DccsParams::new(d, 2, k)).cover_size();
            prop_assert!(cover >= previous, "cover shrank when k grew");
            previous = cover;
        }
    }

    #[test]
    fn cover_never_grows_with_s_or_d(
        g in small_multilayer(16, 3, 70),
    ) {
        // Property 2 / Property 3 consequences observed in Figs. 16–17, 20–21.
        let c_s1 = greedy_dccs(&g, &DccsParams::new(2, 1, 2)).cover_size();
        let c_s2 = greedy_dccs(&g, &DccsParams::new(2, 2, 2)).cover_size();
        let c_s3 = greedy_dccs(&g, &DccsParams::new(2, 3, 2)).cover_size();
        prop_assert!(c_s1 >= c_s2 && c_s2 >= c_s3);
        let c_d1 = greedy_dccs(&g, &DccsParams::new(1, 2, 2)).cover_size();
        let c_d2 = greedy_dccs(&g, &DccsParams::new(2, 2, 2)).cover_size();
        let c_d3 = greedy_dccs(&g, &DccsParams::new(3, 2, 2)).cover_size();
        prop_assert!(c_d1 >= c_d2 && c_d2 >= c_d3);
    }
}
