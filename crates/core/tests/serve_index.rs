//! Round-trip and bit-identity tests for the serve-from-index path.
//!
//! The contract under test: build a [`DccIndex`] → serialize → deserialize
//! (in-process or through a file) → attach → query, and the answer is
//! **bit-identical** to the peel path — same cores, same cover, same work
//! counters modulo the serve-path/timing fields — which the peel path's own
//! suites already tie to the frozen `naive_subset_cores` oracle. The stored
//! candidate lists are additionally compared against that oracle directly.
//! Corrupt artifacts (flipped bytes, truncations) must fail with the typed
//! [`DccsError::IndexCorrupt`], never a panic.

use dccs::{
    naive_subset_cores, Algorithm, DccIndex, DccsError, DccsOptions, DccsParams, DccsSession,
    Serve, ServePath,
};
use mlgraph::{MultiLayerGraph, Vertex, VertexSet};
use proptest::prelude::*;

fn small_multilayer(
    n: usize,
    layers: usize,
    max_edges: usize,
) -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(
        prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..max_edges),
        layers..=layers,
    )
    .prop_map(move |lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(n, &cleaned).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Build → serialize → deserialize → attach → query at 1 and 4 threads:
    // every query from the loaded index is bit-identical to the same query
    // peeled from scratch.
    #[test]
    fn queries_from_a_loaded_index_are_bit_identical_to_peeling(
        g in small_multilayer(16, 4, 60),
        d in 1u32..4,
        s in 1usize..4,
        k in 1usize..4,
    ) {
        let params = DccsParams::new(d, s, k);
        let built = DccIndex::build(&g, &[d], 0);
        let loaded = DccIndex::from_bytes(&built.to_bytes()).expect("round trip");
        prop_assert_eq!(&built, &loaded);
        for threads in [1usize, 4] {
            let opts = DccsOptions::with_threads(threads);
            let mut peel_session = DccsSession::with_options(&g, opts);
            let peeled = peel_session
                .query(params)
                .algorithm(Algorithm::Greedy)
                .serve(Serve::Peel)
                .run()
                .unwrap();
            let mut index_session = DccsSession::with_options(&g, opts);
            index_session.attach_index(loaded.clone()).unwrap();
            let served = index_session
                .query(params)
                .algorithm(Algorithm::Greedy)
                .serve(Serve::Index)
                .run()
                .unwrap();
            prop_assert_eq!(served.stats.serve, Some(ServePath::Index));
            prop_assert_eq!(peeled.stats.serve, Some(ServePath::Peel));
            prop_assert_eq!(&served.cores, &peeled.cores, "threads={}", threads);
            prop_assert_eq!(
                served.cover.to_vec(), peeled.cover.to_vec(), "threads={}", threads
            );
            prop_assert_eq!(served.stats.candidates_generated, peeled.stats.candidates_generated);
            prop_assert_eq!(served.stats.updates_accepted, peeled.stats.updates_accepted);
            prop_assert_eq!(served.stats.complete, peeled.stats.complete);
            prop_assert_eq!(served.stats.limit_hit, peeled.stats.limit_hit);
            prop_assert_eq!(served.stats.algorithm, Some(Algorithm::Greedy));
        }
    }

    // The stored candidate list for every (d, s) equals the frozen oracle's
    // per-subset cores, in the oracle's lexicographic order.
    #[test]
    fn stored_candidates_match_the_frozen_oracle(
        g in small_multilayer(14, 3, 45),
        d in 1u32..4,
    ) {
        let index = DccIndex::build(&g, &[d], 0);
        let hierarchy = coreness::CoreHierarchy::build(&g);
        let layer_cores: Vec<VertexSet> =
            (0..g.num_layers()).map(|i| hierarchy.d_core(i, d)).collect();
        for s in 1..=g.num_layers() {
            let naive = naive_subset_cores(&g, d, s, &layer_cores);
            let stored = index.entry(d, s).expect("build covers every s");
            prop_assert_eq!(stored.len(), naive.len(), "s={}", s);
            for (core, (subset, vertices)) in stored.iter().zip(&naive) {
                prop_assert_eq!(&core.layers, subset, "s={}", s);
                prop_assert_eq!(core.vertices.to_vec(), vertices.to_vec(), "s={}", s);
            }
        }
    }

    // Any single flipped byte makes deserialization fail with the typed
    // corruption error — never a panic, never a silently wrong index.
    #[test]
    fn any_byte_flip_is_a_typed_error(
        g in small_multilayer(10, 3, 25),
        pos_seed in 0usize..10_000,
        mask in 1u32..=255,
    ) {
        let bytes = DccIndex::build(&g, &[2], 0).to_bytes();
        let pos = pos_seed % bytes.len();
        let mut mangled = bytes.clone();
        mangled[pos] ^= mask as u8;
        let err = DccIndex::from_bytes(&mangled).unwrap_err();
        prop_assert!(
            matches!(err, DccsError::IndexCorrupt { .. }),
            "flip at {} gave {:?}", pos, err
        );
    }
}

fn clique(b: &mut mlgraph::MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
    for i in 0..vs.len() {
        for j in (i + 1)..vs.len() {
            b.add_edge(layer, vs[i], vs[j]).unwrap();
        }
    }
}

/// Four layers over 12 vertices with two planted coherent cliques — the
/// session suite's fixture.
fn fixture() -> MultiLayerGraph {
    let mut b = mlgraph::MultiLayerGraphBuilder::new(12, 4);
    clique(&mut b, 0, &[0, 1, 2, 3]);
    clique(&mut b, 1, &[0, 1, 2, 3]);
    clique(&mut b, 2, &[4, 5, 6, 7]);
    clique(&mut b, 3, &[4, 5, 6, 7]);
    clique(&mut b, 1, &[8, 9, 10, 11]);
    b.build()
}

#[test]
fn file_round_trip_serves_bit_identical_queries() {
    let g = fixture();
    let dir = std::env::temp_dir().join("dccs_serve_index_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fixture.dcx");

    let mut session = DccsSession::new(&g);
    let index = session.build_index(&[2, 3], 0);
    index.save(&path).unwrap();
    let loaded = DccIndex::load(&path).unwrap();
    assert_eq!(index, loaded);
    session.attach_index(loaded).unwrap();

    for (d, s, k) in [(2u32, 2usize, 2usize), (3, 2, 2), (2, 1, 3), (3, 4, 1)] {
        let params = DccsParams::new(d, s, k);
        let served = session.query(params).serve(Serve::Index).run().unwrap();
        let peeled = DccsSession::new(&g).query(params).algorithm(Algorithm::Greedy).run().unwrap();
        assert_eq!(served.cores, peeled.cores, "d={d} s={s} k={k}");
        assert_eq!(served.cover.to_vec(), peeled.cover.to_vec(), "d={d} s={s} k={k}");
        assert_eq!(served.stats.serve, Some(ServePath::Index));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_truncation_of_the_artifact_is_a_typed_error() {
    let g = fixture();
    let bytes = DccIndex::build(&g, &[2], 2).to_bytes();
    for cut in 0..bytes.len() {
        let err = DccIndex::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(matches!(err, DccsError::IndexCorrupt { .. }), "cut at {cut}: {err}");
        assert!(!err.to_string().contains('\n'), "one-line message: {err}");
    }
}

#[test]
fn corrupt_and_missing_files_are_typed_errors() {
    let g = fixture();
    let dir = std::env::temp_dir().join("dccs_serve_index_corrupt_test");
    std::fs::create_dir_all(&dir).unwrap();

    // Truncated on disk.
    let path = dir.join("truncated.dcx");
    let bytes = DccIndex::build(&g, &[2], 0).to_bytes();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = DccIndex::load(&path).unwrap_err();
    assert!(matches!(err, DccsError::IndexCorrupt { .. }), "got {err}");

    // Not an index at all.
    let garbage = dir.join("garbage.dcx");
    std::fs::write(&garbage, b"definitely not an index").unwrap();
    let err = DccIndex::load(&garbage).unwrap_err();
    assert!(matches!(err, DccsError::IndexCorrupt { .. }), "got {err}");

    // Missing file.
    let err = DccIndex::load(dir.join("does_not_exist.dcx")).unwrap_err();
    assert!(matches!(err, DccsError::IndexCorrupt { .. }), "got {err}");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&garbage).ok();
}

/// `Auto` picks the index exactly when it can serve; the chosen path is
/// pinned in `stats.serve` either way.
#[test]
fn auto_serve_path_is_pinned_in_stats() {
    let g = fixture();
    let mut session = DccsSession::new(&g);
    let index = session.build_index(&[3], 0);
    session.attach_index(index).unwrap();
    // Covered (d, s): Auto serves from the index, resolving to greedy.
    let served = session.query(DccsParams::new(3, 2, 2)).run().unwrap();
    assert_eq!(served.stats.serve, Some(ServePath::Index));
    assert_eq!(served.stats.algorithm, Some(Algorithm::Greedy));
    // Uncovered d: Auto peels.
    let peeled = session.query(DccsParams::new(2, 2, 2)).run().unwrap();
    assert_eq!(peeled.stats.serve, Some(ServePath::Peel));
}
