//! Concurrency property tests for the [`dccs::QueryService`] tier split:
//! N interleaved service queries — batched over 1/2/4/8 workers or issued
//! concurrently through `&self` from scoped threads, under mixed
//! `Serve::{Auto,Peel,Index}` modes — must be bit-identical to the same
//! specs run sequentially through fresh single-tenant sessions. Fault
//! injection (`batch.query`, `bu.eval`) and mid-flight cancellation must
//! stay confined to their own query: siblings and the shared snapshot
//! survive, and a clean rerun still matches the sequential reference.

use dccs::fault::{self, site, FaultMode};
use dccs::{
    Algorithm, CancelToken, DccIndex, DccsError, DccsOptions, DccsParams, DccsResult, DccsSession,
    QueryLimits, QueryService, Serve, ServiceQuery,
};
use mlgraph::{MultiLayerGraph, MultiLayerGraphBuilder, Vertex};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes the tests that arm the process-global fault slot (same idiom
/// as `fault_injection.rs`; this is a separate test binary, so the two
/// files' faults cannot collide).
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII disarm so a panicking assertion never leaks an armed fault.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn small_multilayer(
    n: usize,
    layers: usize,
    max_edges: usize,
) -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(
        prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..max_edges),
        layers..=layers,
    )
    .prop_map(move |lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(n, &cleaned).unwrap()
    })
}

const ALGORITHMS: [Algorithm; 4] =
    [Algorithm::Auto, Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown];

/// One service query drawn by proptest: `(d, s, k)` plus algorithm and
/// serve-mode picks. `Serve::Index` is exercised by the deterministic test
/// below (it needs an attached index to be meaningful).
fn query_strategy() -> impl Strategy<Value = ServiceQuery> {
    (1u32..4, 1usize..4, 1usize..4, 0usize..ALGORITHMS.len(), 0usize..2).prop_map(
        |(d, s, k, a, peel)| {
            ServiceQuery::new(DccsParams::new(d, s, k))
                .with_algorithm(ALGORITHMS[a])
                .with_serve(if peel == 1 { Serve::Peel } else { Serve::Auto })
        },
    )
}

/// The sequential ground truth: each query through its own fresh session.
fn sequential_reference(g: &MultiLayerGraph, queries: &[ServiceQuery]) -> Vec<DccsResult> {
    queries
        .iter()
        .map(|q| {
            DccsSession::new(g)
                .query(q.spec.params)
                .algorithm(q.spec.algorithm)
                .serve(q.serve)
                .run()
                .expect("unlimited reference queries succeed")
        })
        .collect()
}

fn assert_identical(got: &DccsResult, want: &DccsResult, label: &str) {
    assert_eq!(got.cores, want.cores, "{label}: cores differ");
    assert_eq!(got.cover.to_vec(), want.cover.to_vec(), "{label}: cover differs");
    assert_eq!(got.stats, want.stats, "{label}: work counters differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_service_queries_match_sequential_sessions_at_any_width(
        g in small_multilayer(14, 3, 50),
        queries in prop::collection::vec(query_strategy(), 1..8),
    ) {
        let reference = sequential_reference(&g, &queries);
        for workers in [1usize, 2, 4, 8] {
            let service = QueryService::new(&g, DccsOptions::with_threads(workers));
            let outcomes = service.run_batch(&queries).unwrap();
            prop_assert_eq!(outcomes.len(), reference.len());
            for (i, (outcome, want)) in outcomes.iter().zip(&reference).enumerate() {
                let got = outcome.result.as_ref().expect("unlimited queries succeed");
                assert_identical(got, want, &format!("workers={workers} query={i}"));
            }
        }
    }

    #[test]
    fn interleaved_shared_queries_match_sequential_sessions(
        g in small_multilayer(12, 3, 40),
        queries in prop::collection::vec(query_strategy(), 1..5),
    ) {
        let reference = sequential_reference(&g, &queries);
        let service = QueryService::new(&g, DccsOptions::default());
        // Four threads issue the same interleaved mix concurrently through
        // `&self`; every one of them must observe the sequential answers,
        // whether its queries ran or hit the cache warmed by a sibling.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (i, (query, want)) in queries.iter().zip(&reference).enumerate() {
                        let got = service.query(query).expect("unlimited queries succeed");
                        assert_identical(&got, want, &format!("concurrent query={i}"));
                    }
                });
            }
        });
    }
}

/// The session tests' planted-clique fixture, where every serve mode and
/// algorithm has real work to do.
fn clique_graph() -> MultiLayerGraph {
    let mut b = MultiLayerGraphBuilder::new(12, 4);
    for (layer, vs) in [
        (0usize, [0u32, 1, 2, 3]),
        (1, [0, 1, 2, 3]),
        (2, [4, 5, 6, 7]),
        (3, [4, 5, 6, 7]),
        (1, [8, 9, 10, 11]),
    ] {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }
    b.build()
}

#[test]
fn mixed_serve_modes_with_an_attached_index_match_indexed_sessions() {
    let g = clique_graph();
    let queries: Vec<ServiceQuery> = [
        (2u32, 2usize, 2usize, Serve::Index),
        (3, 2, 2, Serve::Auto),
        (2, 3, 1, Serve::Peel),
        (2, 1, 2, Serve::Index),
        (3, 2, 2, Serve::Auto), // repeat: served from the result cache
    ]
    .into_iter()
    .map(|(d, s, k, serve)| ServiceQuery::new(DccsParams::new(d, s, k)).with_serve(serve))
    .collect();
    // Reference: fresh sessions with the same index attached (the build is
    // deterministic, so rebuilding per session attaches the same artifact).
    let reference: Vec<DccsResult> = queries
        .iter()
        .map(|q| {
            let mut session = DccsSession::new(&g);
            session.attach_index(DccIndex::build(&g, &[2, 3], 0)).unwrap();
            session.query(q.spec.params).algorithm(q.spec.algorithm).serve(q.serve).run().unwrap()
        })
        .collect();
    for workers in [1usize, 2, 4, 8] {
        let service = QueryService::new(&g, DccsOptions::with_threads(workers));
        service.attach_index(DccIndex::build(&g, &[2, 3], 0)).unwrap();
        let outcomes = service.run_batch(&queries).unwrap();
        for (i, (outcome, want)) in outcomes.iter().zip(&reference).enumerate() {
            let got = outcome.result.as_ref().unwrap();
            assert_identical(got, want, &format!("workers={workers} query={i}"));
        }
    }
}

#[test]
fn limit_tripped_queries_do_not_affect_batch_siblings() {
    let g = clique_graph();
    let tripped = CancelToken::new();
    tripped.cancel();
    let queries = vec![
        ServiceQuery::new(DccsParams::new(2, 2, 2)),
        // A zero deadline trips deterministically at the first checkpoint.
        ServiceQuery::new(DccsParams::new(2, 2, 2))
            .with_serve(Serve::Peel)
            .with_limits(QueryLimits::none().with_deadline(Duration::ZERO)),
        ServiceQuery::new(DccsParams::new(3, 2, 2)),
        // A pre-tripped token cancels deterministically.
        ServiceQuery::new(DccsParams::new(2, 3, 1)).with_token(tripped),
        ServiceQuery::new(DccsParams::new(2, 2, 3)),
    ];
    let healthy = [0usize, 2, 4];
    let reference =
        sequential_reference(&g, &healthy.iter().map(|&i| queries[i].clone()).collect::<Vec<_>>());
    for workers in [1usize, 2, 4] {
        let service = QueryService::new(&g, DccsOptions::with_threads(workers));
        let outcomes = service.run_batch(&queries).unwrap();
        assert!(
            matches!(outcomes[1].result, Err(DccsError::DeadlineExceeded { .. })),
            "workers={workers}: got {:?}",
            outcomes[1].result
        );
        assert!(
            matches!(outcomes[3].result, Err(DccsError::Cancelled { .. })),
            "workers={workers}: got {:?}",
            outcomes[3].result
        );
        for (&slot, want) in healthy.iter().zip(&reference) {
            let got = outcomes[slot].result.as_ref().expect("healthy siblings succeed");
            assert_identical(got, want, &format!("workers={workers} slot={slot}"));
        }
    }
}

#[test]
fn a_poisoned_batch_query_stays_in_its_slot_and_the_snapshot_survives() {
    let _guard = lock();
    let _disarm = Disarm;
    let g = clique_graph();
    let queries: Vec<ServiceQuery> = [(2u32, 2usize, 2usize), (3, 2, 2), (2, 3, 1), (2, 1, 2)]
        .into_iter()
        .map(|(d, s, k)| ServiceQuery::new(DccsParams::new(d, s, k)))
        .collect();
    let reference = sequential_reference(&g, &queries);
    for (fault_site, algorithm) in
        [(site::BATCH_QUERY, None), (site::BU_EVAL, Some(Algorithm::BottomUp))]
    {
        for workers in [1usize, 2, 4] {
            let label = format!("{fault_site} workers={workers}");
            let queries: Vec<ServiceQuery> = queries
                .iter()
                .map(|q| match algorithm {
                    Some(a) => q.clone().with_algorithm(a),
                    None => q.clone(),
                })
                .collect();
            let reference = match algorithm {
                Some(_) => sequential_reference(&g, &queries),
                None => reference.clone(),
            };
            let service = QueryService::new(&g, DccsOptions::with_threads(workers));
            // Warm nothing: the fault must hit a cold snapshot and leave it
            // usable. One armed shot panics exactly one query.
            fault::arm(fault_site, FaultMode::Panic, 1);
            let outcomes = service.run_batch(&queries).unwrap();
            fault::disarm();
            let panicked: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o.result, Err(DccsError::TaskPanicked { .. })))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(panicked.len(), 1, "{label}: exactly one slot absorbs the fault");
            for (i, (outcome, want)) in outcomes.iter().zip(&reference).enumerate() {
                if i == panicked[0] {
                    continue;
                }
                let got = outcome.result.as_ref().expect("siblings are unaffected");
                assert_identical(got, want, &format!("{label} sibling={i}"));
            }
            // The snapshot and service survive: a clean rerun of the full
            // mix — including the slot that died — matches the reference.
            let rerun = service.run_batch(&queries).unwrap();
            for (i, (outcome, want)) in rerun.iter().zip(&reference).enumerate() {
                let got = outcome.result.as_ref().expect("clean rerun succeeds");
                assert_identical(got, want, &format!("{label} rerun={i}"));
            }
        }
    }
}

#[test]
fn mid_flight_cancellation_under_concurrency_is_confined_to_the_token() {
    let g = clique_graph();
    let token = CancelToken::new();
    // Half the mix carries the shared token, half does not; limits disable
    // caching for the tokened half, so every tokened query really runs.
    let queries: Vec<ServiceQuery> = (0..16)
        .map(|i| {
            let params = DccsParams::new(2, 1 + (i % 3), 1 + (i % 2));
            let q = ServiceQuery::new(params).with_algorithm(Algorithm::BottomUp);
            if i % 2 == 0 {
                q.with_token(token.clone())
            } else {
                q
            }
        })
        .collect();
    let service = QueryService::new(&g, DccsOptions::with_threads(4));
    let outcomes = std::thread::scope(|scope| {
        let canceller = scope.spawn(|| {
            // Best-effort mid-flight: whenever this lands, every tokened
            // query must come back either complete or cleanly cancelled.
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        });
        let outcomes = service.run_batch(&queries).unwrap();
        canceller.join().unwrap();
        outcomes
    });
    let untokened: Vec<ServiceQuery> = queries.iter().skip(1).step_by(2).cloned().collect();
    let reference = sequential_reference(&g, &untokened);
    let mut refs = reference.iter();
    for (i, (outcome, query)) in outcomes.iter().zip(&queries).enumerate() {
        if query.token.is_some() {
            match &outcome.result {
                Ok(result) => assert!(result.stats.complete, "slot {i}: complete or cancelled"),
                Err(DccsError::Cancelled { partial }) => {
                    assert!(!partial.stats.complete, "slot {i}: partial must be flagged")
                }
                Err(other) => panic!("slot {i}: unexpected error {other:?}"),
            }
        } else {
            let want = refs.next().unwrap();
            let got = outcome.result.as_ref().expect("untokened queries are unaffected");
            assert_identical(got, want, &format!("untokened slot {i}"));
        }
    }
    // The tripped token does not stick to the service: a fresh batch of the
    // same specs without tokens matches the sequential reference.
    let rerun = service.run_batch(&untokened).unwrap();
    for (outcome, want) in rerun.iter().zip(&reference) {
        assert_identical(outcome.result.as_ref().unwrap(), want, "post-cancel rerun");
    }
}
