//! Cache-correctness guard for the session API.
//!
//! A [`DccsSession`] reused across a parameter sweep carries three caches
//! between queries: the driver `PeelWorkspace`, the universe-keyed dense
//! index, and the per-`d` layer-core memo. This property test proves the
//! caches are *invisible*: over random small multi-layer graphs, an
//! `s`-then-`d` sweep through one session returns bit-identical cores,
//! cover, and work counters to fresh one-shot calls — per algorithm
//! (including `Auto`) and at 1 and 4 executor threads — and `run_batch`
//! agrees with the same one-shots.

use dccs::{Algorithm, DccsOptions, DccsParams, DccsResult, DccsSession, QuerySpec};
use mlgraph::{MultiLayerGraph, Vertex};
use proptest::prelude::*;

fn small_multilayer(
    n: usize,
    layers: usize,
    max_edges: usize,
) -> impl Strategy<Value = MultiLayerGraph> {
    prop::collection::vec(
        prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..max_edges),
        layers..=layers,
    )
    .prop_map(move |lists| {
        let cleaned: Vec<Vec<(Vertex, Vertex)>> = lists
            .into_iter()
            .map(|edges| edges.into_iter().filter(|(u, v)| u != v).collect())
            .collect();
        MultiLayerGraph::from_edge_lists(n, &cleaned).unwrap()
    })
}

/// The Fig. 14/18-style sweep shape: vary `s` at fixed `d`, then vary `d`
/// at fixed `s` — exactly the access pattern the session caches target.
fn sweep_points(layers: usize, k: usize) -> Vec<DccsParams> {
    let mut points: Vec<DccsParams> = (1..=layers).map(|s| DccsParams::new(2, s, k)).collect();
    points.extend((1u32..=3).map(|d| DccsParams::new(d, 2.min(layers), k)));
    points
}

fn assert_identical(a: &DccsResult, b: &DccsResult, label: &str) {
    assert_eq!(a.cores, b.cores, "{label}: cores differ");
    assert_eq!(a.cover.to_vec(), b.cover.to_vec(), "{label}: cover differs");
    assert_eq!(a.stats, b.stats, "{label}: work counters differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn session_sweep_is_bit_identical_to_one_shot_queries(
        g in small_multilayer(16, 4, 60),
        k in 1usize..4,
    ) {
        let points = sweep_points(g.num_layers(), k);
        for algorithm in
            [Algorithm::Greedy, Algorithm::BottomUp, Algorithm::TopDown, Algorithm::Auto]
        {
            for threads in [1usize, 4] {
                let opts = DccsOptions::with_threads(threads);
                let mut session = DccsSession::with_options(&g, opts);
                for params in &points {
                    let swept =
                        session.query(*params).algorithm(algorithm).run().unwrap();
                    let fresh = DccsSession::with_options(&g, opts)
                        .query(*params)
                        .algorithm(algorithm)
                        .run()
                        .unwrap();
                    let label = format!(
                        "{} d={} s={} k={} threads={threads}",
                        algorithm.name(), params.d, params.s, params.k
                    );
                    assert_identical(&swept, &fresh, &label);
                }
            }
        }
    }

    #[test]
    fn run_batch_is_bit_identical_to_one_shot_queries(
        g in small_multilayer(14, 4, 50),
        k in 1usize..4,
    ) {
        let points = sweep_points(g.num_layers(), k);
        let specs: Vec<QuerySpec> = points.iter().map(|p| QuerySpec::new(*p)).collect();
        let reference: Vec<DccsResult> = points
            .iter()
            .map(|p| DccsSession::new(&g).query(*p).run().unwrap())
            .collect();
        for threads in [1usize, 4] {
            let mut session = DccsSession::with_options(&g, DccsOptions::with_threads(threads));
            let batch = session.run_batch(&specs).unwrap();
            prop_assert_eq!(batch.len(), reference.len());
            for ((got, want), params) in batch.iter().zip(&reference).zip(&points) {
                let label = format!(
                    "batch d={} s={} k={} threads={threads}",
                    params.d, params.s, params.k
                );
                let got = got.as_ref().expect("unlimited batch specs all succeed");
                assert_identical(got, want, &label);
            }
        }
    }
}
