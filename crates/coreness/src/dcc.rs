//! The `dCC` procedure (Appendix B of the paper): computing the d-coherent
//! core `C_L^d(G)` of a multi-layer graph with respect to a layer subset `L`.
//!
//! A vertex survives iff its degree inside the surviving set is at least `d`
//! on *every* layer of `L`. The implementation peels: it maintains the
//! per-layer degrees of every candidate vertex restricted to the current
//! candidate set and repeatedly removes vertices whose minimum degree over
//! `L` drops below `d`, cascading the removals. The running time is
//! O((n + Σ_{i∈L} m_i)·1) — each edge of each layer in `L` is touched a
//! constant number of times.

use crate::workspace::{with_thread_workspace, PeelWorkspace};
use mlgraph::{Layer, MultiLayerGraph, Vertex, VertexSet};

/// Computes `C_L^d(G[candidates])`: the maximal subset `S ⊆ candidates` such
/// that every vertex of `S` has at least `d` neighbors inside `S` on every
/// layer in `layers`.
///
/// Passing the full vertex set as `candidates` yields the d-CC of the whole
/// graph w.r.t. `layers`. By Lemma 1 (intersection bound) the caller can — and
/// the DCCS algorithms do — shrink `candidates` first without changing the
/// result, as long as the true d-CC is contained in `candidates`.
///
/// Scratch buffers are borrowed from the calling thread's shared
/// [`PeelWorkspace`], so only the returned set is allocated. Callers peeling
/// in a loop should hold their own workspace and use [`d_coherent_core_in`]
/// (or [`PeelWorkspace::peel_in_place`] directly) to make the steady state
/// fully allocation-free.
///
/// # Panics
///
/// Panics if `layers` is empty or contains an out-of-range layer index.
pub fn d_coherent_core(
    g: &MultiLayerGraph,
    layers: &[Layer],
    d: u32,
    candidates: &VertexSet,
) -> VertexSet {
    let mut alive = candidates.clone();
    with_thread_workspace(|ws| ws.peel_in_place(g, layers, d, &mut alive));
    alive
}

/// [`d_coherent_core`] with an explicit workspace and output set: copies
/// `candidates` into `out` and peels in place. In steady state (same vertex
/// universe, `out` already sized) this performs no heap allocation.
pub fn d_coherent_core_in(
    ws: &mut PeelWorkspace,
    g: &MultiLayerGraph,
    layers: &[Layer],
    d: u32,
    candidates: &VertexSet,
    out: &mut VertexSet,
) {
    if out.capacity() != candidates.capacity() {
        *out = candidates.clone();
    } else {
        out.copy_from(candidates);
    }
    ws.peel_in_place(g, layers, d, out);
}

/// Reference implementation of [`d_coherent_core`] that allocates all its
/// scratch per call — the pre-workspace code path, kept verbatim as the
/// equivalence oracle for property tests and as the baseline the
/// `dcc_procedure` / `dccs_algorithms` benches compare the engine against.
pub fn d_coherent_core_naive(
    g: &MultiLayerGraph,
    layers: &[Layer],
    d: u32,
    candidates: &VertexSet,
) -> VertexSet {
    assert!(!layers.is_empty(), "d_coherent_core requires a non-empty layer set");
    for &i in layers {
        assert!(i < g.num_layers(), "layer {i} out of range ({} layers)", g.num_layers());
    }
    let n = g.num_vertices();
    let mut alive = candidates.clone();
    if d == 0 {
        return alive;
    }

    // degrees[j][v] = degree of v on layers[j] restricted to `alive`.
    let mut degrees: Vec<Vec<u32>> = layers
        .iter()
        .map(|&i| {
            let csr = g.layer(i);
            let mut deg = vec![0u32; n];
            for v in alive.iter() {
                deg[v as usize] = csr.degree_within(v, &alive) as u32;
            }
            deg
        })
        .collect();

    // Seed the removal queue with every vertex already violating the
    // threshold on some layer.
    let mut queue: Vec<Vertex> = Vec::new();
    let mut queued = vec![false; n];
    for v in alive.iter() {
        if degrees.iter().any(|deg| deg[v as usize] < d) {
            queue.push(v);
            queued[v as usize] = true;
        }
    }

    while let Some(v) = queue.pop() {
        if !alive.remove(v) {
            continue;
        }
        for (j, &i) in layers.iter().enumerate() {
            let csr = g.layer(i);
            for &u in csr.neighbors(v) {
                if !alive.contains(u) {
                    continue;
                }
                let du = &mut degrees[j][u as usize];
                *du = du.saturating_sub(1);
                if *du < d && !queued[u as usize] {
                    queued[u as usize] = true;
                    queue.push(u);
                }
            }
        }
    }
    alive
}

/// Convenience wrapper: the d-CC of the *whole* graph w.r.t. `layers`.
pub fn d_coherent_core_full(g: &MultiLayerGraph, layers: &[Layer], d: u32) -> VertexSet {
    d_coherent_core(g, layers, d, &g.full_vertex_set())
}

/// For every vertex of `within`, the minimum degree over `layers` restricted
/// to `within` (the quantity `m(v)` of the Appendix-B pseudocode). Vertices
/// outside `within` get 0.
pub fn min_degree_profile(g: &MultiLayerGraph, layers: &[Layer], within: &VertexSet) -> Vec<u32> {
    let n = g.num_vertices();
    let mut profile = vec![0u32; n];
    for v in within.iter() {
        let m =
            layers.iter().map(|&i| g.layer(i).degree_within(v, within) as u32).min().unwrap_or(0);
        profile[v as usize] = m;
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_d_dense_multilayer, is_maximal_d_coherent_core};
    use mlgraph::MultiLayerGraphBuilder;

    /// Layer 0: 4-clique {0,1,2,3} plus pendant 4.
    /// Layer 1: 4-clique {0,1,2,3} minus edge (0,1), plus triangle {4,5,6}.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(7, 2);
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)] {
            b.add_edge(0, u, v).unwrap();
        }
        for (u, v) in [(0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 6)] {
            b.add_edge(1, u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn single_layer_reduces_to_d_core() {
        let g = graph();
        let all = g.full_vertex_set();
        let cc = d_coherent_core(&g, &[0], 3, &all);
        assert_eq!(cc.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(cc, crate::peel::d_core(g.layer(0), 3));
    }

    #[test]
    fn two_layer_core_requires_density_on_both() {
        let g = graph();
        let all = g.full_vertex_set();
        // d=3 on both layers: layer 1 lacks edge (0,1) so only degree-2 there;
        // the whole clique collapses.
        let cc3 = d_coherent_core(&g, &[0, 1], 3, &all);
        assert!(cc3.is_empty());
        // d=2 on both layers: {0,1,2,3} works on both.
        let cc2 = d_coherent_core(&g, &[0, 1], 2, &all);
        assert_eq!(cc2.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn d_zero_returns_candidates() {
        let g = graph();
        let all = g.full_vertex_set();
        assert_eq!(d_coherent_core(&g, &[0, 1], 0, &all).len(), 7);
    }

    #[test]
    fn restricted_candidates_are_respected() {
        let g = graph();
        let candidates = VertexSet::from_iter(7, [0, 1, 2, 3, 4]);
        let cc = d_coherent_core(&g, &[1], 2, &candidates);
        // Triangle {4,5,6} is excluded because 5 and 6 are not candidates.
        assert_eq!(cc.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn result_is_d_dense_and_maximal() {
        let g = graph();
        let all = g.full_vertex_set();
        for d in 1..=3u32 {
            for layers in [vec![0], vec![1], vec![0, 1]] {
                let cc = d_coherent_core(&g, &layers, d, &all);
                assert!(is_d_dense_multilayer(&g, &layers, &cc, d));
                assert!(is_maximal_d_coherent_core(&g, &layers, d, &cc));
            }
        }
    }

    #[test]
    fn hierarchy_property_in_d() {
        // Property 2: C_L^{d} ⊆ C_L^{d-1}.
        let g = graph();
        let all = g.full_vertex_set();
        let mut prev = d_coherent_core(&g, &[0, 1], 0, &all);
        for d in 1..=4u32 {
            let cur = d_coherent_core(&g, &[0, 1], d, &all);
            assert!(cur.is_subset_of(&prev));
            prev = cur;
        }
    }

    #[test]
    fn containment_property_in_layers() {
        // Property 3: L ⊆ L' implies C_{L'} ⊆ C_L.
        let g = graph();
        let all = g.full_vertex_set();
        let c_both = d_coherent_core(&g, &[0, 1], 2, &all);
        let c_zero = d_coherent_core(&g, &[0], 2, &all);
        let c_one = d_coherent_core(&g, &[1], 2, &all);
        assert!(c_both.is_subset_of(&c_zero));
        assert!(c_both.is_subset_of(&c_one));
        // Lemma 1: C_{L1∪L2} ⊆ C_{L1} ∩ C_{L2}.
        assert!(c_both.is_subset_of(&c_zero.intersection(&c_one)));
    }

    #[test]
    fn min_degree_profile_matches_definition() {
        let g = graph();
        let all = g.full_vertex_set();
        let profile = min_degree_profile(&g, &[0, 1], &all);
        assert_eq!(profile[0], 2); // deg 3 on layer 0, 2 on layer 1
        assert_eq!(profile[4], 1); // deg 1 on layer 0, 2 on layer 1
        assert_eq!(profile[5], 0); // isolated on layer 0
        let partial = VertexSet::from_iter(7, [0, 2, 3]);
        let p2 = min_degree_profile(&g, &[0], &partial);
        assert_eq!(p2[0], 2);
        assert_eq!(p2[1], 0);
    }

    #[test]
    #[should_panic(expected = "non-empty layer set")]
    fn empty_layer_set_panics() {
        let g = graph();
        let all = g.full_vertex_set();
        let _ = d_coherent_core(&g, &[], 1, &all);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_layer_panics() {
        let g = graph();
        let all = g.full_vertex_set();
        let _ = d_coherent_core(&g, &[9], 1, &all);
    }

    #[test]
    fn full_wrapper_equals_explicit_candidates() {
        let g = graph();
        let all = g.full_vertex_set();
        assert_eq!(d_coherent_core_full(&g, &[0, 1], 2), d_coherent_core(&g, &[0, 1], 2, &all));
    }

    #[test]
    fn engine_matches_naive_reference() {
        let g = graph();
        let all = g.full_vertex_set();
        let restricted = VertexSet::from_iter(7, [0, 1, 2, 3, 4]);
        for candidates in [&all, &restricted] {
            for d in 0..=4u32 {
                for layers in [vec![0usize], vec![1], vec![0, 1]] {
                    assert_eq!(
                        d_coherent_core(&g, &layers, d, candidates).to_vec(),
                        d_coherent_core_naive(&g, &layers, d, candidates).to_vec(),
                        "d={d} layers={layers:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn explicit_workspace_variant_reuses_output() {
        let g = graph();
        let all = g.full_vertex_set();
        let mut ws = crate::workspace::PeelWorkspace::new();
        let mut out = VertexSet::new(1); // wrong capacity: replaced on first call
        for d in 1..=3u32 {
            d_coherent_core_in(&mut ws, &g, &[0, 1], d, &all, &mut out);
            assert_eq!(out.to_vec(), d_coherent_core_naive(&g, &[0, 1], d, &all).to_vec());
        }
    }
}
