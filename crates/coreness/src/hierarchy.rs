//! Core-number hierarchies: reusable per-layer core decompositions.
//!
//! The experiments sweep the degree threshold `d` (Figs. 18–21) and the
//! algorithms repeatedly need "the d-core of layer i" for several values of
//! `d`. Because the d-core is exactly `{v : core_number(v) ≥ d}`, computing
//! the core numbers once per layer lets any d-core be extracted in O(n)
//! without re-peeling. [`CoreHierarchy`] bundles that table for a whole
//! multi-layer graph together with the derived support profiles
//! (`Num(v)` for a given `d`).

use crate::peel::core_numbers;
use mlgraph::{Layer, MultiLayerGraph, Vertex, VertexSet};

/// Precomputed core numbers for every layer of a multi-layer graph.
#[derive(Clone, Debug)]
pub struct CoreHierarchy {
    /// `core[i][v]` = core number of vertex `v` on layer `i`.
    core: Vec<Vec<u32>>,
    num_vertices: usize,
}

impl CoreHierarchy {
    /// Decomposes every layer of `g` (O(Σ_i m_i) total).
    pub fn build(g: &MultiLayerGraph) -> Self {
        CoreHierarchy {
            core: g.layers().iter().map(core_numbers).collect(),
            num_vertices: g.num_vertices(),
        }
    }

    /// Number of layers covered by the hierarchy.
    pub fn num_layers(&self) -> usize {
        self.core.len()
    }

    /// The core number of `v` on layer `i`.
    #[inline]
    pub fn core_number(&self, layer: Layer, v: Vertex) -> u32 {
        self.core[layer][v as usize]
    }

    /// The maximum core number (degeneracy) of layer `i`.
    pub fn degeneracy(&self, layer: Layer) -> u32 {
        self.core[layer].iter().copied().max().unwrap_or(0)
    }

    /// The d-core of layer `i`, extracted from the table in O(n).
    pub fn d_core(&self, layer: Layer, d: u32) -> VertexSet {
        let mut out = VertexSet::new(self.num_vertices);
        for (v, &c) in self.core[layer].iter().enumerate() {
            if c >= d && (c > 0 || d == 0) {
                out.insert(v as Vertex);
            }
        }
        out
    }

    /// `Num(v)` for threshold `d`: the number of layers whose d-core contains
    /// `v`. This is the support value driving the vertex-deletion
    /// preprocessing and the top-down index.
    pub fn support(&self, v: Vertex, d: u32) -> usize {
        self.core.iter().filter(|layer| layer[v as usize] >= d && d > 0).count()
            + if d == 0 { self.core.len() } else { 0 }
    }

    /// The support profile of every vertex for threshold `d`.
    pub fn support_profile(&self, d: u32) -> Vec<u32> {
        (0..self.num_vertices as Vertex).map(|v| self.support(v, d) as u32).collect()
    }

    /// The largest `d` for which at least `min_size` vertices appear in the
    /// d-core of at least `min_support` layers — a useful starting point when
    /// choosing parameters for an unknown dataset.
    pub fn max_feasible_d(&self, min_support: usize, min_size: usize) -> u32 {
        let global_max = (0..self.num_layers()).map(|i| self.degeneracy(i)).max().unwrap_or(0);
        for d in (1..=global_max).rev() {
            let qualifying = (0..self.num_vertices as Vertex)
                .filter(|&v| self.support(v, d) >= min_support)
                .count();
            if qualifying >= min_size {
                return d;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::d_core;
    use mlgraph::MultiLayerGraphBuilder;

    fn clique(b: &mut MultiLayerGraphBuilder, layer: usize, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                b.add_edge(layer, vs[i], vs[j]).unwrap();
            }
        }
    }

    /// Layer 0: 5-clique {0..4} + path 5-6-7.
    /// Layer 1: 4-clique {0..3} + triangle {5,6,7}.
    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(8, 2);
        clique(&mut b, 0, &[0, 1, 2, 3, 4]);
        b.add_edge(0, 5, 6).unwrap();
        b.add_edge(0, 6, 7).unwrap();
        clique(&mut b, 1, &[0, 1, 2, 3]);
        clique(&mut b, 1, &[5, 6, 7]);
        b.build()
    }

    #[test]
    fn core_numbers_match_direct_decomposition() {
        let g = graph();
        let h = CoreHierarchy::build(&g);
        assert_eq!(h.num_layers(), 2);
        assert_eq!(h.core_number(0, 0), 4);
        assert_eq!(h.core_number(0, 6), 1);
        assert_eq!(h.core_number(1, 6), 2);
        assert_eq!(h.degeneracy(0), 4);
        assert_eq!(h.degeneracy(1), 3);
    }

    #[test]
    fn extracted_d_cores_match_peeling_for_every_d() {
        let g = graph();
        let h = CoreHierarchy::build(&g);
        for layer in 0..2 {
            for d in 0..=5u32 {
                assert_eq!(
                    h.d_core(layer, d).to_vec(),
                    d_core(g.layer(layer), d).to_vec(),
                    "layer {layer} d {d}"
                );
            }
        }
    }

    #[test]
    fn support_counts_layers_with_membership() {
        let g = graph();
        let h = CoreHierarchy::build(&g);
        // Vertex 0 is in the 3-core of layer 0 and layer 1.
        assert_eq!(h.support(0, 3), 2);
        assert_eq!(h.support(0, 4), 1);
        assert_eq!(h.support(4, 3), 1);
        assert_eq!(h.support(6, 2), 1);
        assert_eq!(h.support(6, 1), 2);
        // d = 0 counts every layer.
        assert_eq!(h.support(7, 0), 2);
        let profile = h.support_profile(2);
        assert_eq!(profile[0], 2);
        assert_eq!(profile[4], 1);
        assert_eq!(profile[5], 1);
    }

    #[test]
    fn max_feasible_d_reflects_the_densest_shared_structure() {
        let g = graph();
        let h = CoreHierarchy::build(&g);
        // Four vertices ({0..3}) appear in the 3-core of both layers.
        assert_eq!(h.max_feasible_d(2, 4), 3);
        // Requiring five such vertices forces d down.
        assert_eq!(h.max_feasible_d(2, 5), 1);
        // A single layer supports d = 4 for five vertices.
        assert_eq!(h.max_feasible_d(1, 5), 4);
        // Impossible requirements yield 0.
        assert_eq!(h.max_feasible_d(3, 1), 0);
    }
}
