//! # coreness — core decomposition substrate
//!
//! Single-layer k-core machinery and the multi-layer `dCC` procedure of the
//! paper's Appendix B, shared by all three DCCS algorithms.
//!
//! * [`core_numbers`] — Batagelj–Zaversnik O(m) bin-sort core decomposition
//!   of one layer.
//! * [`d_core`] / [`d_core_within`] — the d-core of a layer, optionally
//!   restricted to a candidate vertex set.
//! * [`repair_d_core`] / [`repair_core_numbers`] — incremental maintenance
//!   after an edge delta: bounded subcore traversal on insert, cascade
//!   re-peel / capped-h-operator worklist on delete, with the full peels
//!   above kept as the frozen oracle.
//! * [`d_coherent_core`] — the `dCC` procedure: the d-coherent core
//!   `C_L^d(G)` of a multi-layer graph w.r.t. a layer subset `L`, computed by
//!   multi-layer peeling restricted to a candidate set (O((n + m)·|L|)).
//! * [`validate`] — d-denseness and maximality checkers used as test oracles.
//! * [`PeelWorkspace`] — reusable scratch buffers making steady-state
//!   peeling allocation-free; the free functions above borrow a thread-local
//!   instance, and the DCCS algorithms own explicit ones.
//!
//! ```
//! use mlgraph::MultiLayerGraphBuilder;
//! use coreness::{d_core, d_coherent_core};
//!
//! let mut b = MultiLayerGraphBuilder::new(4, 2);
//! // layer 0: 4-clique; layer 1: triangle {0,1,2}
//! for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
//!     b.add_edge(0, u, v).unwrap();
//! }
//! for (u, v) in [(0, 1), (1, 2), (0, 2)] {
//!     b.add_edge(1, u, v).unwrap();
//! }
//! let g = b.build();
//! assert_eq!(d_core(g.layer(0), 3).to_vec(), vec![0, 1, 2, 3]);
//! let all = g.full_vertex_set();
//! assert_eq!(d_coherent_core(&g, &[0, 1], 2, &all).to_vec(), vec![0, 1, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dcc;
pub mod hierarchy;
pub mod peel;
pub mod validate;
pub mod workspace;

pub use dcc::{
    d_coherent_core, d_coherent_core_full, d_coherent_core_in, d_coherent_core_naive,
    min_degree_profile,
};
pub use hierarchy::CoreHierarchy;
pub use peel::{
    core_numbers, core_numbers_within, core_numbers_within_into, d_core, d_core_within,
    d_core_within_into, degeneracy, repair_core_numbers, repair_d_core,
};
pub use validate::{is_d_dense, is_d_dense_multilayer, is_maximal_d_coherent_core};
pub use workspace::{CancelProbe, PeelWorkspace};
