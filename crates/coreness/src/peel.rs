//! Single-layer core decomposition (Batagelj–Zaversnik bin-sort peeling).
//!
//! `core_numbers` computes the core number of every vertex in O(n + m); the
//! d-core of the layer is then just the set of vertices with core number
//! ≥ d. `d_core_within` restricts the computation to an arbitrary candidate
//! vertex subset, which is how the DCCS algorithms repeatedly shrink
//! per-layer d-cores after vertex deletions.

use crate::workspace::{with_thread_workspace, PeelWorkspace};
use mlgraph::{Csr, VertexSet};

/// Computes the core number of every vertex of `g` using the
/// Batagelj–Zaversnik bin-sort peeling algorithm (O(n + m)).
pub fn core_numbers(g: &Csr) -> Vec<u32> {
    core_numbers_within(g, &VertexSet::full(g.num_vertices()))
}

/// Core numbers of the subgraph induced by `within`. Vertices outside
/// `within` get core number 0.
///
/// Scratch buffers are borrowed from the calling thread's shared
/// [`PeelWorkspace`]; only the returned vector is allocated. Callers in a
/// loop can borrow an explicit workspace via [`core_numbers_within_into`].
pub fn core_numbers_within(g: &Csr, within: &VertexSet) -> Vec<u32> {
    let mut core = Vec::new();
    with_thread_workspace(|ws| ws.core_numbers_into(g, within, &mut core));
    core
}

/// [`core_numbers_within`] with an explicit workspace and output vector, for
/// allocation-free steady-state use.
pub fn core_numbers_within_into(
    ws: &mut PeelWorkspace,
    g: &Csr,
    within: &VertexSet,
    core: &mut Vec<u32>,
) {
    ws.core_numbers_into(g, within, core);
}

/// The d-core of `g`: the maximal vertex set whose induced subgraph has
/// minimum degree ≥ `d`.
pub fn d_core(g: &Csr, d: u32) -> VertexSet {
    d_core_within(g, d, &VertexSet::full(g.num_vertices()))
}

/// The d-core of the subgraph of `g` induced by `within`.
///
/// Implemented as a threshold peel on the thread-shared workspace (cheaper
/// than a full core decomposition when only one `d` is needed).
pub fn d_core_within(g: &Csr, d: u32, within: &VertexSet) -> VertexSet {
    let mut out = within.clone();
    with_thread_workspace(|ws| ws.peel_layer_in_place(g, d, &mut out));
    out
}

/// [`d_core_within`] with an explicit workspace and output set: copies
/// `within` into `out` and peels in place, allocation-free in steady state.
pub fn d_core_within_into(
    ws: &mut PeelWorkspace,
    g: &Csr,
    d: u32,
    within: &VertexSet,
    out: &mut VertexSet,
) {
    if out.capacity() != within.capacity() {
        *out = within.clone();
    } else {
        out.copy_from(within);
    }
    ws.peel_layer_in_place(g, d, out);
}

/// The degeneracy of `g`: the maximum core number over all vertices.
pub fn degeneracy(g: &Csr) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// Incrementally repairs a layer's d-core after an edge delta, on the
/// calling thread's shared workspace. `layer` is the layer *after* the
/// delta, `old_core` its exact d-core before it, `inserted` the canonical
/// edges the delta added (deletions are discovered by the re-peel). See
/// [`PeelWorkspace::repair_d_core`].
pub fn repair_d_core(
    layer: &Csr,
    d: u32,
    old_core: &VertexSet,
    inserted: &[(mlgraph::Vertex, mlgraph::Vertex)],
) -> VertexSet {
    let mut out = VertexSet::new(layer.num_vertices());
    with_thread_workspace(|ws| ws.repair_d_core(layer, d, old_core, inserted, &mut out));
    out
}

/// Incrementally repairs per-vertex core numbers after an edge delta, on
/// the calling thread's shared workspace. `g` is the layer *after* the
/// delta and `core` the exact core numbers before it, repaired in place.
/// See [`PeelWorkspace::repair_core_numbers`].
pub fn repair_core_numbers(
    g: &Csr,
    inserted: &[(mlgraph::Vertex, mlgraph::Vertex)],
    deleted: &[(mlgraph::Vertex, mlgraph::Vertex)],
    core: &mut [u32],
) {
    with_thread_workspace(|ws| ws.repair_core_numbers(g, inserted, deleted, core));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::VertexSet;

    /// A clique on {0,1,2,3} with a path 3-4-5 hanging off it.
    fn clique_with_tail() -> Csr {
        Csr::from_edges(6, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn core_numbers_of_clique_with_tail() {
        let g = clique_with_tail();
        let core = core_numbers(&g);
        assert_eq!(core, vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn core_numbers_of_path() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn core_numbers_of_cycle() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(core_numbers(&g), vec![2; 5]);
    }

    #[test]
    fn core_numbers_with_isolated_vertices() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 0, 0]);
    }

    #[test]
    fn core_numbers_empty_graph() {
        let g = Csr::empty(3);
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
        let g0 = Csr::empty(0);
        assert!(core_numbers(&g0).is_empty());
    }

    #[test]
    fn d_core_extraction() {
        let g = clique_with_tail();
        assert_eq!(d_core(&g, 0).len(), 6);
        assert_eq!(d_core(&g, 1).len(), 6);
        assert_eq!(d_core(&g, 2).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(d_core(&g, 3).to_vec(), vec![0, 1, 2, 3]);
        assert!(d_core(&g, 4).is_empty());
    }

    #[test]
    fn d_core_hierarchy_property() {
        // Property 2 analogue on a single layer: higher-d cores are nested.
        let g = clique_with_tail();
        let mut prev = d_core(&g, 0);
        for d in 1..=5 {
            let cur = d_core(&g, d);
            assert!(cur.is_subset_of(&prev), "d-core hierarchy violated at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn restricted_core_numbers_ignore_outside_vertices() {
        let g = clique_with_tail();
        // Remove vertex 3: the clique loses a member, so core numbers drop.
        let within = VertexSet::from_iter(6, [0, 1, 2, 4, 5]);
        let core = core_numbers_within(&g, &within);
        assert_eq!(core[0], 2);
        assert_eq!(core[3], 0);
        assert_eq!(core[4], 1);
        let dc = d_core_within(&g, 2, &within);
        assert_eq!(dc.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn restricted_to_empty_set() {
        let g = clique_with_tail();
        let empty = VertexSet::new(6);
        assert!(core_numbers_within(&g, &empty).iter().all(|&c| c == 0));
        assert!(d_core_within(&g, 1, &empty).is_empty());
    }

    #[test]
    fn degeneracy_values() {
        assert_eq!(degeneracy(&clique_with_tail()), 3);
        assert_eq!(degeneracy(&Csr::empty(4)), 0);
        let star = Csr::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(degeneracy(&star), 1);
    }

    #[test]
    fn d_core_minimum_degree_invariant() {
        // Every vertex of the d-core has at least d neighbors inside it.
        let g = clique_with_tail();
        for d in 1..=3 {
            let core = d_core(&g, d);
            for v in core.iter() {
                assert!(g.degree_within(v, &core) >= d as usize);
            }
        }
    }

    #[test]
    fn two_cliques_different_sizes() {
        // Clique {0..4} (5-clique) and triangle {5,6,7}.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        edges.extend_from_slice(&[(5, 6), (6, 7), (5, 7)]);
        let g = Csr::from_edges(8, &edges);
        let core = core_numbers(&g);
        assert_eq!(&core[0..5], &[4, 4, 4, 4, 4]);
        assert_eq!(&core[5..8], &[2, 2, 2]);
        assert_eq!(d_core(&g, 3).to_vec(), vec![0, 1, 2, 3, 4]);
        assert_eq!(d_core(&g, 2).len(), 8);
    }
}
