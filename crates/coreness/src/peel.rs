//! Single-layer core decomposition (Batagelj–Zaversnik bin-sort peeling).
//!
//! `core_numbers` computes the core number of every vertex in O(n + m); the
//! d-core of the layer is then just the set of vertices with core number
//! ≥ d. `d_core_within` restricts the computation to an arbitrary candidate
//! vertex subset, which is how the DCCS algorithms repeatedly shrink
//! per-layer d-cores after vertex deletions.

use mlgraph::{Csr, Vertex, VertexSet};

/// Computes the core number of every vertex of `g` using the
/// Batagelj–Zaversnik bin-sort peeling algorithm (O(n + m)).
pub fn core_numbers(g: &Csr) -> Vec<u32> {
    core_numbers_within(g, &VertexSet::full(g.num_vertices()))
}

/// Core numbers of the subgraph induced by `within`. Vertices outside
/// `within` get core number 0.
pub fn core_numbers_within(g: &Csr, within: &VertexSet) -> Vec<u32> {
    let n = g.num_vertices();
    let mut degree: Vec<u32> = vec![0; n];
    let mut max_degree = 0u32;
    for v in within.iter() {
        let d = g.degree_within(v, within) as u32;
        degree[v as usize] = d;
        max_degree = max_degree.max(d);
    }

    // bin[d] = starting index in `ver` of vertices with current degree d.
    let mut bin = vec![0usize; max_degree as usize + 2];
    for v in within.iter() {
        bin[degree[v as usize] as usize + 1] += 1;
    }
    for d in 1..bin.len() {
        bin[d] += bin[d - 1];
    }
    let mut start = bin.clone();
    let active = within.len();
    let mut ver: Vec<Vertex> = vec![0; active];
    let mut pos: Vec<usize> = vec![usize::MAX; n];
    for v in within.iter() {
        let d = degree[v as usize] as usize;
        pos[v as usize] = start[d];
        ver[start[d]] = v;
        start[d] += 1;
    }

    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    for i in 0..active {
        let v = ver[i];
        let dv = degree[v as usize];
        core[v as usize] = dv;
        removed[v as usize] = true;
        for &u in g.neighbors(v) {
            if !within.contains(u) || removed[u as usize] {
                continue;
            }
            let du = degree[u as usize];
            if du > dv {
                // Move u to the front of its bin, then shift it one bin down.
                let du = du as usize;
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = ver[pw];
                if u != w {
                    ver.swap(pu, pw);
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// The d-core of `g`: the maximal vertex set whose induced subgraph has
/// minimum degree ≥ `d`.
pub fn d_core(g: &Csr, d: u32) -> VertexSet {
    d_core_within(g, d, &VertexSet::full(g.num_vertices()))
}

/// The d-core of the subgraph of `g` induced by `within`.
pub fn d_core_within(g: &Csr, d: u32, within: &VertexSet) -> VertexSet {
    let core = core_numbers_within(g, within);
    let mut out = VertexSet::new(g.num_vertices());
    for v in within.iter() {
        if core[v as usize] >= d {
            out.insert(v);
        }
    }
    out
}

/// The degeneracy of `g`: the maximum core number over all vertices.
pub fn degeneracy(g: &Csr) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::VertexSet;

    /// A clique on {0,1,2,3} with a path 3-4-5 hanging off it.
    fn clique_with_tail() -> Csr {
        Csr::from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        )
    }

    #[test]
    fn core_numbers_of_clique_with_tail() {
        let g = clique_with_tail();
        let core = core_numbers(&g);
        assert_eq!(core, vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn core_numbers_of_path() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn core_numbers_of_cycle() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(core_numbers(&g), vec![2; 5]);
    }

    #[test]
    fn core_numbers_with_isolated_vertices() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 0, 0]);
    }

    #[test]
    fn core_numbers_empty_graph() {
        let g = Csr::empty(3);
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
        let g0 = Csr::empty(0);
        assert!(core_numbers(&g0).is_empty());
    }

    #[test]
    fn d_core_extraction() {
        let g = clique_with_tail();
        assert_eq!(d_core(&g, 0).len(), 6);
        assert_eq!(d_core(&g, 1).len(), 6);
        assert_eq!(d_core(&g, 2).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(d_core(&g, 3).to_vec(), vec![0, 1, 2, 3]);
        assert!(d_core(&g, 4).is_empty());
    }

    #[test]
    fn d_core_hierarchy_property() {
        // Property 2 analogue on a single layer: higher-d cores are nested.
        let g = clique_with_tail();
        let mut prev = d_core(&g, 0);
        for d in 1..=5 {
            let cur = d_core(&g, d);
            assert!(cur.is_subset_of(&prev), "d-core hierarchy violated at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn restricted_core_numbers_ignore_outside_vertices() {
        let g = clique_with_tail();
        // Remove vertex 3: the clique loses a member, so core numbers drop.
        let within = VertexSet::from_iter(6, [0, 1, 2, 4, 5]);
        let core = core_numbers_within(&g, &within);
        assert_eq!(core[0], 2);
        assert_eq!(core[3], 0);
        assert_eq!(core[4], 1);
        let dc = d_core_within(&g, 2, &within);
        assert_eq!(dc.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn restricted_to_empty_set() {
        let g = clique_with_tail();
        let empty = VertexSet::new(6);
        assert!(core_numbers_within(&g, &empty).iter().all(|&c| c == 0));
        assert!(d_core_within(&g, 1, &empty).is_empty());
    }

    #[test]
    fn degeneracy_values() {
        assert_eq!(degeneracy(&clique_with_tail()), 3);
        assert_eq!(degeneracy(&Csr::empty(4)), 0);
        let star = Csr::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(degeneracy(&star), 1);
    }

    #[test]
    fn d_core_minimum_degree_invariant() {
        // Every vertex of the d-core has at least d neighbors inside it.
        let g = clique_with_tail();
        for d in 1..=3 {
            let core = d_core(&g, d);
            for v in core.iter() {
                assert!(g.degree_within(v, &core) >= d as usize);
            }
        }
    }

    #[test]
    fn two_cliques_different_sizes() {
        // Clique {0..4} (5-clique) and triangle {5,6,7}.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        edges.extend_from_slice(&[(5, 6), (6, 7), (5, 7)]);
        let g = Csr::from_edges(8, &edges);
        let core = core_numbers(&g);
        assert_eq!(&core[0..5], &[4, 4, 4, 4, 4]);
        assert_eq!(&core[5..8], &[2, 2, 2]);
        assert_eq!(d_core(&g, 3).to_vec(), vec![0, 1, 2, 3, 4]);
        assert_eq!(d_core(&g, 2).len(), 8);
    }
}
