//! Checkers used as test oracles for the core-decomposition routines and the
//! DCCS algorithms.

use mlgraph::{Csr, Layer, MultiLayerGraph, VertexSet};

/// Whether every vertex of `within` has at least `d` neighbors inside
/// `within` on the single layer `g` (the paper's single-layer d-denseness).
pub fn is_d_dense(g: &Csr, within: &VertexSet, d: u32) -> bool {
    within.iter().all(|v| g.degree_within(v, within) >= d as usize)
}

/// Whether `g[within]` is d-dense w.r.t. every layer in `layers`
/// (the multi-layer d-denseness of Section II).
pub fn is_d_dense_multilayer(
    g: &MultiLayerGraph,
    layers: &[Layer],
    within: &VertexSet,
    d: u32,
) -> bool {
    layers.iter().all(|&i| is_d_dense(g.layer(i), within, d))
}

/// Whether `set` is exactly the (unique, maximal) d-coherent core of `g`
/// w.r.t. `layers`: it must be d-dense and no proper superset may be.
/// Maximality is checked by recomputing the d-CC of the whole graph, which
/// by uniqueness (Property 1) must coincide with `set`.
pub fn is_maximal_d_coherent_core(
    g: &MultiLayerGraph,
    layers: &[Layer],
    d: u32,
    set: &VertexSet,
) -> bool {
    if !is_d_dense_multilayer(g, layers, set, d) {
        return false;
    }
    let full = crate::dcc::d_coherent_core_full(g, layers, d);
    &full == set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgraph::MultiLayerGraphBuilder;

    fn graph() -> MultiLayerGraph {
        let mut b = MultiLayerGraphBuilder::new(5, 2);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            b.add_edge(0, u, v).unwrap();
        }
        for (u, v) in [(0, 1), (1, 2), (2, 0), (0, 3)] {
            b.add_edge(1, u, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn d_dense_on_single_layer() {
        let g = graph();
        let triangle = VertexSet::from_iter(5, [0, 1, 2]);
        assert!(is_d_dense(g.layer(0), &triangle, 2));
        assert!(!is_d_dense(g.layer(0), &triangle, 3));
        let pair = VertexSet::from_iter(5, [3, 4]);
        assert!(is_d_dense(g.layer(0), &pair, 1));
        assert!(!is_d_dense(g.layer(1), &pair, 1));
    }

    #[test]
    fn empty_set_is_vacuously_dense() {
        let g = graph();
        let empty = VertexSet::new(5);
        assert!(is_d_dense(g.layer(0), &empty, 5));
        assert!(is_d_dense_multilayer(&g, &[0, 1], &empty, 5));
    }

    #[test]
    fn multilayer_density_requires_all_layers() {
        let g = graph();
        let triangle = VertexSet::from_iter(5, [0, 1, 2]);
        assert!(is_d_dense_multilayer(&g, &[0, 1], &triangle, 2));
        let with_three = VertexSet::from_iter(5, [0, 1, 2, 3]);
        assert!(!is_d_dense_multilayer(&g, &[0, 1], &with_three, 1));
    }

    #[test]
    fn maximality_check_accepts_true_core_and_rejects_subsets() {
        let g = graph();
        let triangle = VertexSet::from_iter(5, [0, 1, 2]);
        assert!(is_maximal_d_coherent_core(&g, &[0, 1], 2, &triangle));
        // A proper d-dense subset that is not maximal must be rejected:
        // the empty set is d-dense but not the maximal core.
        let empty = VertexSet::new(5);
        assert!(!is_maximal_d_coherent_core(&g, &[0, 1], 2, &empty));
        // A non-dense set must be rejected.
        let bad = VertexSet::from_iter(5, [0, 1, 3]);
        assert!(!is_maximal_d_coherent_core(&g, &[0, 1], 2, &bad));
    }
}
